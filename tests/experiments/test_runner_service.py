"""CLI front of the scan service: serve / submit / status / results."""

from __future__ import annotations

import re
import socket
import threading
import time

import pytest

from repro.engine.scan import clear_context_snapshots
from repro.experiments import service as service_cli
from repro.experiments.runner import main
from repro.service import ServiceClient


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture()
def serving(tmp_path):
    """A real ``serve`` loop on a background thread, torn down cleanly."""
    clear_context_snapshots()
    port = _free_port()
    stop = threading.Event()
    thread = threading.Thread(
        target=service_cli.render_serve,
        args=(str(tmp_path / "data"), "127.0.0.1", port),
        kwargs={"executors": 2, "stop_event": stop},
        daemon=True,
    )
    thread.start()
    address = f"127.0.0.1:{port}"
    deadline = time.monotonic() + 15
    while True:
        try:
            with ServiceClient(("127.0.0.1", port), timeout=2) as client:
                if client.ping():
                    break
        except OSError:
            if time.monotonic() >= deadline:
                raise RuntimeError("serve thread never came up")
            time.sleep(0.05)
    try:
        yield address
    finally:
        stop.set()
        thread.join(30)
        clear_context_snapshots()


def test_cli_submit_status_results_roundtrip(serving, capsys):
    address = serving
    assert main([
        "submit", "--address", address,
        "--scale", "0.01", "--shards", "2", "--wait",
    ]) == 0
    out = capsys.readouterr().out
    assert "completed" in out
    match = re.search(r"run-[0-9a-f]{16}", out)
    assert match, out
    run_id = match.group(0)
    assert f"results --run-id {run_id}" in out

    # a second submit of the same scan coalesces instead of re-queuing.
    assert main([
        "submit", "--address", address,
        "--scale", "0.01", "--shards", "2", "--wait",
    ]) == 0
    assert "coalesced onto an existing run" in capsys.readouterr().out

    assert main(["status", "--address", address]) == 0
    out = capsys.readouterr().out
    assert run_id in out
    assert "totals: 1 submitted, 1 coalesced, 1 completed" in out

    assert main(["status", "--address", address, "--run-id", run_id]) == 0
    assert "completed" in capsys.readouterr().out

    assert main([
        "results", "--address", address, "--run-id", run_id, "--limit", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert f"{run_id}: 2 of" in out
    assert "0x" in out and "profit=$" in out
    assert "next --offset 2" in out


def test_cli_results_requires_run_id(capsys):
    with pytest.raises(SystemExit):
        main(["results", "--address", "127.0.0.1:1"])
    assert "requires --run-id" in capsys.readouterr().err


def test_cli_rejects_bad_address(capsys):
    with pytest.raises(SystemExit):
        main(["status", "--address", "no-port-here"])
    assert "--address" in capsys.readouterr().err


def test_cli_validates_service_bounds(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--executors", "0"])
    assert "--executors" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["results", "--run-id", "run-x", "--offset", "-1"])
    assert "--offset" in capsys.readouterr().err


def test_parse_address():
    assert service_cli.parse_address("127.0.0.1:9744") == ("127.0.0.1", 9744)
    with pytest.raises(ValueError):
        service_cli.parse_address("9744")
    with pytest.raises(ValueError):
        service_cli.parse_address("host:")
