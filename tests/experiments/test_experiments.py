"""Experiment harness: every table/figure renders and keeps paper shape."""

import pytest

from repro.experiments import ablations, fig1, fig8, perf, table1, table4, table5, table6, table7
from repro.experiments.runner import main


@pytest.fixture(scope="module")
def scan_result():
    return table5.run(scale=0.01, seed=7)


class TestRenderings:
    def test_fig1(self):
        text = fig1.render()
        assert "208342" in text.replace(",", "").replace("'", "") or "208_342" in text or "208342" in text

    def test_table1_subset(self):
        rows = table1.run(keys=["harvest", "bzx1"])
        text = table1.render(rows)
        assert "Harvest" in text and "bZx-1" in text

    def test_table4_full(self):
        rows = table4.run()
        text = table4.render(rows)
        assert "DeFiRanger 9, Explorer+LeiShen 4, LeiShen 15" in text
        assert all(row.matches_paper for row in rows)

    def test_table5(self, scan_result):
        text = table5.render(scan_result)
        assert "KRP" in text and "precision" in text

    def test_table6(self, scan_result):
        assert "Balancer" in table6.render(scan_result)

    def test_table7(self, scan_result):
        text = table7.render(scan_result)
        assert "total_profit_usd" in text

    def test_fig8(self, scan_result):
        text = fig8.render(scan_result)
        assert "6.5 and 4.3" in text

    def test_perf_within_budget(self):
        stats = perf.run(iterations=5)
        assert stats.mean_ms < 10.0  # the paper's mean latency
        assert stats.p75_ms < 16.0  # the paper's p75


class TestAblations:
    def test_pipeline_variants(self):
        rows = ablations.run_pipeline_ablation(keys=["wault", "harvest", "bzx1"])
        by_name = {row.name: row for row in rows}
        assert by_name["full pipeline"].detected == 3
        # account-level transfers lose the split-contract attack (wault)
        assert by_name["account-level transfers"].detected < 3

    def test_threshold_sweep_monotone(self):
        rows = ablations.run_threshold_sweep(scale=0.005, seed=7)
        base = rows[0]
        relaxed_all = rows[-1]
        assert relaxed_all[1] >= base[1]  # more detections
        assert relaxed_all[3] <= base[3] + 1e-9  # not better precision


class TestRunnerCli:
    def test_runs_single_experiment(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out

    def test_scale_flag(self, capsys):
        assert main(["fig1", "--scale", "0.01"]) == 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])
