"""CLI surface of the run ledger: --ledger / --resume on scan/stream/cluster."""

from __future__ import annotations

import pytest

from repro.experiments.runner import main


class TestScanSubcommand:
    def test_scan_renders_without_ledger(self, capsys):
        assert main(["scan", "--scale", "0.005", "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "Wild scan at scale 0.005" in out
        assert "ledger:" not in out

    def test_scan_journal_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "run.ledger")
        assert main(["scan", "--scale", "0.005", "--shards", "4",
                     "--ledger", path]) == 0
        first = capsys.readouterr().out
        assert "0 shard(s) resumed" in first
        assert "4 freshly executed" in first

        assert main(["scan", "--scale", "0.005", "--shards", "4",
                     "--resume", path]) == 0
        second = capsys.readouterr().out
        assert "4 shard(s) resumed" in second
        assert "0 freshly executed" in second


class TestStreamSubcommand:
    def test_stream_journal_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "run.ledger")
        args = ["stream", "--scale", "0.005", "--shards", "4", "--jobs", "2"]
        assert main([*args, "--ledger", path]) == 0
        first = capsys.readouterr().out
        assert "4 freshly executed" in first
        assert main([*args, "--resume", path]) == 0
        second = capsys.readouterr().out
        assert "4 shard(s) resumed" in second


class TestClusterSubcommand:
    def test_cluster_journal_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "run.ledger")
        args = ["cluster", "--scale", "0.005", "--shards", "4",
                "--workers", "2", "--no-verify"]
        assert main([*args, "--ledger", path]) == 0
        capsys.readouterr()
        assert main([*args, "--resume", path]) == 0
        second = capsys.readouterr().out
        assert "4 shard(s) resumed from the journal" in second


class TestCompactEvery:
    def test_scan_compacts_and_resumes(self, tmp_path, capsys):
        from repro.runtime import RunLedger
        from repro.workload.generator import WildScanConfig

        path = str(tmp_path / "run.ledger")
        args = ["scan", "--scale", "0.005", "--shards", "4", "--ledger", path]
        assert main([*args, "--compact-every", "2"]) == 0
        first = capsys.readouterr().out
        assert "4 freshly executed" in first

        replay = RunLedger.open(
            path, config=WildScanConfig(scale=0.005, seed=7, shards=4),
            shard_count=4,
        )
        assert replay.snapshot_shards == 4  # fully folded journal
        replay.close()

        assert main(["scan", "--scale", "0.005", "--shards", "4",
                     "--resume", path]) == 0
        second = capsys.readouterr().out
        assert "4 shard(s) resumed" in second


class TestStandbyCLI:
    def test_standby_adopts_a_complete_journal(self, tmp_path, capsys):
        """End-to-end --standby: the primary address is already dead and
        the journal already complete, so adoption merges immediately."""
        import socket

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead = "%s:%d" % probe.getsockname()[:2]
        probe.close()

        path = str(tmp_path / "run.ledger")
        assert main(["scan", "--scale", "0.005", "--shards", "4",
                     "--ledger", path]) == 0
        capsys.readouterr()

        assert main(["cluster", "--scale", "0.005", "--shards", "4",
                     "--standby", dead, "--host", "127.0.0.1", "--port", "0",
                     "--resume", path]) == 0
        out = capsys.readouterr().out
        assert "standby following" in out
        assert "adopting the journal" in out
        assert "4 shard(s) adopted from the dead primary's journal" in out


class TestFlagValidation:
    def test_ledger_and_resume_mutually_exclusive(self, tmp_path):
        path = str(tmp_path / "run.ledger")
        with pytest.raises(SystemExit):
            main(["scan", "--ledger", path, "--resume", path])

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["scan", "--resume", str(tmp_path / "absent.ledger")])

    def test_ledger_rejected_for_table_experiments(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["table4", "--ledger", str(tmp_path / "run.ledger")])

    def test_ledger_rejected_for_worker_mode(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cluster", "--connect", "127.0.0.1:9", "--ledger",
                  str(tmp_path / "run.ledger")])

    def test_compact_every_requires_ledger(self):
        with pytest.raises(SystemExit):
            main(["scan", "--compact-every", "2"])

    def test_compact_every_must_be_positive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["scan", "--ledger", str(tmp_path / "run.ledger"),
                  "--compact-every", "0"])

    def test_standby_requires_ledger(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--standby", "127.0.0.1:9733"])

    def test_standby_and_serve_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cluster", "--standby", "127.0.0.1:9733", "--serve",
                  "--ledger", str(tmp_path / "run.ledger")])

    def test_standby_rejected_outside_cluster(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["scan", "--standby", "127.0.0.1:9733",
                  "--ledger", str(tmp_path / "run.ledger")])

    def test_connect_rejects_malformed_address_list(self):
        with pytest.raises(ValueError, match="--connect expects HOST:PORT"):
            main(["cluster", "--connect", "127.0.0.1:9733,badaddress"])

    def test_config_mismatch_fails_loudly(self, tmp_path, capsys):
        from repro.runtime import LedgerError

        path = str(tmp_path / "run.ledger")
        assert main(["scan", "--scale", "0.005", "--shards", "4",
                     "--ledger", path]) == 0
        capsys.readouterr()
        with pytest.raises(LedgerError, match="config digest mismatch"):
            main(["scan", "--scale", "0.01", "--shards", "4",
                  "--resume", path])
