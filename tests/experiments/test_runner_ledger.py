"""CLI surface of the run ledger: --ledger / --resume on scan/stream/cluster."""

from __future__ import annotations

import pytest

from repro.experiments.runner import main


class TestScanSubcommand:
    def test_scan_renders_without_ledger(self, capsys):
        assert main(["scan", "--scale", "0.005", "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "Wild scan at scale 0.005" in out
        assert "ledger:" not in out

    def test_scan_journal_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "run.ledger")
        assert main(["scan", "--scale", "0.005", "--shards", "4",
                     "--ledger", path]) == 0
        first = capsys.readouterr().out
        assert "0 shard(s) resumed" in first
        assert "4 freshly executed" in first

        assert main(["scan", "--scale", "0.005", "--shards", "4",
                     "--resume", path]) == 0
        second = capsys.readouterr().out
        assert "4 shard(s) resumed" in second
        assert "0 freshly executed" in second


class TestStreamSubcommand:
    def test_stream_journal_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "run.ledger")
        args = ["stream", "--scale", "0.005", "--shards", "4", "--jobs", "2"]
        assert main([*args, "--ledger", path]) == 0
        first = capsys.readouterr().out
        assert "4 freshly executed" in first
        assert main([*args, "--resume", path]) == 0
        second = capsys.readouterr().out
        assert "4 shard(s) resumed" in second


class TestClusterSubcommand:
    def test_cluster_journal_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "run.ledger")
        args = ["cluster", "--scale", "0.005", "--shards", "4",
                "--workers", "2", "--no-verify"]
        assert main([*args, "--ledger", path]) == 0
        capsys.readouterr()
        assert main([*args, "--resume", path]) == 0
        second = capsys.readouterr().out
        assert "4 shard(s) resumed from the journal" in second


class TestFlagValidation:
    def test_ledger_and_resume_mutually_exclusive(self, tmp_path):
        path = str(tmp_path / "run.ledger")
        with pytest.raises(SystemExit):
            main(["scan", "--ledger", path, "--resume", path])

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["scan", "--resume", str(tmp_path / "absent.ledger")])

    def test_ledger_rejected_for_table_experiments(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["table4", "--ledger", str(tmp_path / "run.ledger")])

    def test_ledger_rejected_for_worker_mode(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cluster", "--connect", "127.0.0.1:9", "--ledger",
                  str(tmp_path / "run.ledger")])

    def test_config_mismatch_fails_loudly(self, tmp_path, capsys):
        from repro.runtime import LedgerError

        path = str(tmp_path / "run.ledger")
        assert main(["scan", "--scale", "0.005", "--shards", "4",
                     "--ledger", path]) == 0
        capsys.readouterr()
        with pytest.raises(LedgerError, match="config digest mismatch"):
            main(["scan", "--scale", "0.01", "--shards", "4",
                  "--resume", path])
