"""DeFiRanger, Explorer+LeiShen, and volatility baselines."""

import pytest

from repro.baselines import DeFiRanger, ExplorerLeiShen, VolatilityDetector
from repro.study.scenarios import SCENARIO_BUILDERS


class TestDeFiRanger:
    def test_detects_symmetric_round_attacks(self, harvest_outcome):
        assert DeFiRanger(harvest_outcome.world.chain).detect(harvest_outcome.trace)

    def test_misses_victim_executed_raise(self, bzx1_outcome):
        """bZx-1's raise is the venue's trade; the symmetric trades hit
        different accounts — outside DeFiRanger's two-trade rule."""
        assert not DeFiRanger(bzx1_outcome.world.chain).detect(bzx1_outcome.trace)

    def test_misses_batch_buying(self):
        outcome = SCENARIO_BUILDERS["bzx2"]()
        assert not DeFiRanger(outcome.world.chain).detect(outcome.trace)

    def test_non_flash_tx_is_none(self, world):
        token = world.new_token("DR")
        a, b = world.create_attacker("a"), world.create_attacker("b")
        token.mint(a, 10)
        trace = world.chain.transact(a, token.address, "transfer", b, 5)
        assert DeFiRanger(world.chain).analyze(trace) is None

    def test_report_contains_evidence(self, harvest_outcome):
        report = DeFiRanger(harvest_outcome.world.chain).analyze(harvest_outcome.trace)
        assert report.is_attack and len(report.evidence) >= 3  # three rounds


class TestExplorerLeiShen:
    def test_detects_event_rich_attacks(self, harvest_outcome):
        assert ExplorerLeiShen(harvest_outcome.world.chain).detect(harvest_outcome.trace)

    def test_misses_eventless_venues(self):
        outcome = SCENARIO_BUILDERS["cheesebank"]()
        assert not ExplorerLeiShen(outcome.world.chain).detect(outcome.trace)

    def test_event_trades_match_transfer_trades_for_uniswap(self, bzx1_outcome):
        explorer = ExplorerLeiShen(bzx1_outcome.world.chain)
        trades = explorer.extract_trades(bzx1_outcome.trace)
        # only the two Uniswap swaps are event-visible in bZx-1
        assert len(trades) == 2

    def test_vault_events_lift_to_mint_remove(self, harvest_outcome):
        from repro.leishen import TradeKind

        explorer = ExplorerLeiShen(harvest_outcome.world.chain)
        trades = explorer.extract_trades(harvest_outcome.trace)
        kinds = {t.kind for t in trades}
        assert TradeKind.MINT_LIQUIDITY in kinds
        assert TradeKind.REMOVE_LIQUIDITY in kinds

    def test_registry_parity_with_detector_on_event_rich_attack(self, harvest_outcome):
        """Both paths run the same registry plugins: on a venue whose
        events carry the full trade stream, the explorer baseline and
        the transfer-lifting detector must agree pattern for pattern."""
        world = harvest_outcome.world
        report = world.detector().analyze(harvest_outcome.trace)
        matches = ExplorerLeiShen(world.chain).analyze(harvest_outcome.trace)
        assert matches and report is not None
        assert {m.pattern for m in matches} == report.patterns

    def test_settings_seam_disables_patterns(self, harvest_outcome):
        """The baseline honours the same enabled-set seam as the
        detector — disabling MBS blinds it to Harvest."""
        from repro.leishen.registry import PatternSettings

        settings = PatternSettings(enabled=("KRP", "SBS"))
        explorer = ExplorerLeiShen(harvest_outcome.world.chain, settings)
        assert not explorer.detect(harvest_outcome.trace)

    def test_legacy_flat_config_still_tunes_thresholds(self, harvest_outcome):
        from repro.leishen import PatternConfig

        strict = ExplorerLeiShen(
            harvest_outcome.world.chain, PatternConfig(mbs_min_rounds=99)
        )
        assert not strict.detect(harvest_outcome.trace)


class TestVolatilityDetector:
    def test_flags_extreme_volatility(self):
        outcome = SCENARIO_BUILDERS["balancer"]()
        detector = VolatilityDetector(outcome.world.detector(), threshold=0.99)
        assert detector.detect(outcome.trace)

    def test_misses_low_volatility_attack(self, harvest_outcome):
        """Harvest's 0.5% volatility sails under the 99% threshold —
        the paper's argument against threshold-only detection."""
        detector = VolatilityDetector(harvest_outcome.world.detector(), threshold=0.99)
        assert not detector.detect(harvest_outcome.trace)
        # yet LeiShen catches it
        assert harvest_outcome.world.detector().detect(harvest_outcome.trace)

    def test_report_carries_measured_volatility(self, bzx1_outcome):
        detector = VolatilityDetector(bzx1_outcome.world.detector(), threshold=0.2)
        report = detector.analyze(bzx1_outcome.trace)
        assert report.max_volatility == pytest.approx(0.4167, rel=0.05)
        assert report.is_attack
