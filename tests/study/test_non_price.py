"""Non-price flash loan attacks are out of scope and must not be flagged."""

import pytest

from repro.baselines import DeFiRanger
from repro.study.non_price import build_governance, build_reentrancy


@pytest.fixture(scope="module")
def reentrancy():
    return build_reentrancy()


@pytest.fixture(scope="module")
def governance():
    return build_governance()


class TestReentrancy:
    def test_attack_succeeds_and_profits(self, reentrancy):
        assert reentrancy.trace.success
        dai = reentrancy.world.token("DAI")
        profit = dai.balance_of(reentrancy.attacker) + dai.balance_of(
            reentrancy.attack_contracts[0]
        )
        assert profit > 19 * 10**5 * dai.unit  # withdrew twice (minus the 2-wei fee)

    def test_is_flash_loan_but_not_flpattack(self, reentrancy):
        report = reentrancy.world.detector().analyze(reentrancy.trace)
        assert report is not None  # flash loan tx
        assert not report.is_attack  # no price pattern: out of scope

    def test_defiranger_also_silent(self, reentrancy):
        assert not DeFiRanger(reentrancy.world.chain).detect(reentrancy.trace)

    def test_bank_invariant_broken(self, reentrancy):
        """The bug's signature: the attacker's ledger went negative."""
        from repro.study.non_price import ReentrantBank

        bank = next(
            c for c in reentrancy.world.chain.contracts.values()
            if isinstance(c, ReentrantBank)
        )
        dai = reentrancy.world.token("DAI")
        assert bank.deposit_of(reentrancy.attack_contracts[0], dai.address) < 0


class TestGovernance:
    def test_treasury_drained(self, governance):
        bean = governance.world.token("BEAN")
        total = bean.balance_of(governance.attacker) + bean.balance_of(
            governance.attack_contracts[0]
        )
        assert total > 4 * 10**7 * bean.unit

    def test_not_flagged_as_flpattack(self, governance):
        report = governance.world.detector().analyze(governance.trace)
        assert report is not None
        assert not report.is_attack

    def test_majority_required(self, governance):
        from repro.chain import Revert

        world = governance.world
        outsider = world.create_attacker("outsider")
        treasury = governance.trace.to  # not the treasury; find it properly
        from repro.study.non_price import GovernanceTreasury

        treasury = next(
            c for c in world.chain.contracts.values()
            if isinstance(c, GovernanceTreasury)
        )
        proposal = None
        with pytest.raises(Revert, match="majority"):
            world.chain.transact(outsider, treasury.address, "emergency_execute", 1)
