"""The empirical study: catalog invariants and all 22 scenario replays."""

import pytest

from repro.baselines import DeFiRanger, ExplorerLeiShen
from repro.leishen import AttackPattern
from repro.study import FLP_ATTACKS, NON_PRICE_ATTACKS, flp_attack, patterned_attacks


class TestCatalogInvariants:
    def test_counts_match_paper(self):
        assert len(FLP_ATTACKS) == 22
        assert len(NON_PRICE_ATTACKS) == 22

    def test_pattern_distribution(self):
        krp = [m for m in FLP_ATTACKS if AttackPattern.KRP in m.patterns]
        sbs = [m for m in FLP_ATTACKS if AttackPattern.SBS in m.patterns]
        mbs = [m for m in FLP_ATTACKS if AttackPattern.MBS in m.patterns]
        assert (len(krp), len(sbs), len(mbs)) == (4, 8, 6)

    def test_saddle_is_the_only_dual_pattern(self):
        dual = [m for m in FLP_ATTACKS if len(m.patterns) == 2]
        assert [m.key for m in dual] == ["saddle"]

    def test_five_attacks_without_pattern(self):
        assert sum(1 for m in FLP_ATTACKS if not m.patterns) == 5

    def test_seventeen_patterned(self):
        assert len(patterned_attacks()) == 17

    def test_leishen_misses_exactly_julswap_and_pancakehunny(self):
        missed = [m.key for m in patterned_attacks() if not m.expect_leishen]
        assert sorted(missed) == ["julswap", "pancakehunny"]
        for key in missed:
            assert flp_attack(key).miss_reason

    def test_defiranger_detects_nine(self):
        assert sum(1 for m in FLP_ATTACKS if m.expect_defiranger) == 9

    def test_explorer_detects_four(self):
        assert sum(1 for m in FLP_ATTACKS if m.expect_explorer) == 4

    def test_chain_split(self):
        ethereum = [m for m in FLP_ATTACKS if m.chain == "ethereum"]
        bsc = [m for m in FLP_ATTACKS if m.chain == "bsc"]
        assert len(ethereum) + len(bsc) == 22
        assert len(ethereum) >= 8 and len(bsc) >= 8


class TestScenarioReplays:
    def test_all_scenarios_execute_successfully(self, all_outcomes):
        assert len(all_outcomes) == 22
        for key, outcome in all_outcomes.items():
            assert outcome.trace.success, key

    def test_every_scenario_takes_a_flash_loan(self, all_outcomes):
        from repro.leishen import FlashLoanIdentifier

        identifier = FlashLoanIdentifier()
        for key, outcome in all_outcomes.items():
            assert identifier.identify(outcome.trace), key

    def test_attacks_are_profitable_for_the_attacker(self, all_outcomes):
        """Every replay must leave the attacker with a positive net flow
        in some asset (the study's attacks all made money)."""
        for key, outcome in all_outcomes.items():
            accounts = {outcome.attacker, *outcome.attack_contracts}
            gains = {}
            for transfer in outcome.trace.transfers:
                into = transfer.receiver in accounts
                outof = transfer.sender in accounts
                if into == outof:
                    continue
                delta = transfer.amount if into else -transfer.amount
                gains[transfer.token] = gains.get(transfer.token, 0) + delta
            assert any(v > 0 for v in gains.values()), key

    @pytest.mark.parametrize("meta", FLP_ATTACKS, ids=lambda m: m.key)
    def test_leishen_matches_table_iv(self, meta, all_outcomes):
        outcome = all_outcomes[meta.key]
        report = outcome.world.detector().analyze(outcome.trace)
        detected = report is not None and report.is_attack
        assert detected == meta.expect_leishen
        if detected and meta.patterns:
            expected = {p.name for p in meta.patterns}
            assert expected <= report.patterns or report.patterns & expected

    @pytest.mark.parametrize("meta", FLP_ATTACKS, ids=lambda m: m.key)
    def test_defiranger_matches_table_iv(self, meta, all_outcomes):
        outcome = all_outcomes[meta.key]
        assert DeFiRanger(outcome.world.chain).detect(outcome.trace) == meta.expect_defiranger

    @pytest.mark.parametrize("meta", FLP_ATTACKS, ids=lambda m: m.key)
    def test_explorer_matches_table_iv(self, meta, all_outcomes):
        outcome = all_outcomes[meta.key]
        assert (
            ExplorerLeiShen(outcome.world.chain).detect(outcome.trace)
            == meta.expect_explorer
        )

    def test_saddle_detected_with_both_patterns(self, all_outcomes):
        outcome = all_outcomes["saddle"]
        report = outcome.world.detector().analyze(outcome.trace)
        assert report.patterns == {AttackPattern.SBS, AttackPattern.MBS}


class TestStudyAnalysis:
    def test_harvest_volatility_near_paper(self, harvest_outcome):
        from repro.study import analyze_scenario

        row = analyze_scenario(harvest_outcome)
        assert 0.2 < row.max_volatility_pct < 3.0  # paper: 0.5%

    def test_balancer_volatility_astronomical(self, all_outcomes):
        from repro.study import analyze_scenario

        row = analyze_scenario(all_outcomes["balancer"])
        assert row.max_volatility_pct > 1e5  # paper: 6.5e28 %

    def test_borrowed_value_over_one_million_usd(self, all_outcomes):
        """Sec. III-B: borrowed assets in price manipulation attacks are
        worth more than 1M USD."""
        from repro.study import analyze_scenario

        row = analyze_scenario(all_outcomes["harvest"])
        assert row.borrowed_usd > 1_000_000


class TestFlashLoanAnalysis:
    def test_sec3b_aggregates(self, all_outcomes):
        """Sec. III-B: flpAttacks borrow >1M USD; providers are the three
        the paper fingerprints (PancakeSwap sharing Uniswap's fork shape)."""
        from repro.study import analyze_scenario, flash_loan_analysis
        from repro.study.catalog import FLP_ATTACKS

        rows = [analyze_scenario(all_outcomes[m.key], m) for m in FLP_ATTACKS]
        stats = flash_loan_analysis(rows)
        assert stats["attacks"] == 22
        assert set(stats["providers"]) <= {"Uniswap", "dYdX", "AAVE", "PancakeSwap"}
        # the paper: borrowed assets in price manipulation attacks exceed 1M USD
        assert stats["over_one_million_usd"] >= 15
        assert stats["max_borrowed_usd"] > 10_000_000
