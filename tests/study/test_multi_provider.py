"""Multi-provider flash loans (paper Sec. III-B: seven attacks borrowed
from more than one provider in a single transaction, e.g. Beanstalk)."""

import pytest

from repro.chain import ETH
from repro.leishen import FlashLoanIdentifier
from repro.study.scenarios import ScriptedAttackContract
from repro.study.scenarios.common import world_for


@pytest.fixture()
def multi_loan_outcome():
    """dYdX WETH loan that nests an AAVE DAI loan and a Uniswap flash swap."""
    world = world_for("ethereum")
    weth = world.weth
    dai = world.new_token("DAI")
    usdc = world.new_token("USDC", 6)
    solo = world.dydx(funding={weth: 100_000 * ETH})
    aave = world.aave(funding={dai: 10_000_000 * dai.unit})
    flash_pair = world.dex_pair(usdc, dai, 10**7 * usdc.unit, 10**7 * dai.unit)

    def innermost(atk: ScriptedAttackContract) -> None:
        pass  # all three loans are now held simultaneously

    def after_aave(atk: ScriptedAttackContract) -> None:
        atk.flash_uniswap_then(flash_pair.address, usdc.address, 10**6 * usdc.unit, innermost)

    def body(atk: ScriptedAttackContract) -> None:
        atk.flash_aave_then(aave.address, dai.address, 10**6 * dai.unit, after_aave)

    attacker = world.create_attacker("beanstalk-eoa")
    contract = world.chain.deploy(attacker, ScriptedAttackContract, body)
    # float covering the nested loans' fees (0.09% AAVE + 0.3% Uniswap)
    dai.mint(contract.address, 10_000 * dai.unit)
    usdc.mint(contract.address, 10_000 * usdc.unit)
    weth.mint(contract.address, ETH)  # covers dYdX's 2-wei premium
    trace = world.chain.transact(
        attacker, contract.address, "run_dydx", solo.address, weth.address, 10_000 * ETH
    )
    from repro.study.scenarios import ScenarioOutcome

    outcome = ScenarioOutcome(
        name="beanstalk-like", world=world, trace=trace,
        attacker=attacker, attack_contracts=[contract.address],
    )
    return world, outcome, dai, usdc


def test_all_three_providers_identified(multi_loan_outcome):
    world, outcome, dai, usdc = multi_loan_outcome
    loans = FlashLoanIdentifier().identify(outcome.trace)
    providers = {loan.provider for loan in loans}
    assert providers == {"dYdX", "AAVE", "Uniswap"}


def test_amounts_per_provider(multi_loan_outcome):
    world, outcome, dai, usdc = multi_loan_outcome
    loans = {l.provider: l for l in FlashLoanIdentifier().identify(outcome.trace)}
    assert loans["dYdX"].amount == 10_000 * ETH
    assert loans["AAVE"].amount == 10**6 * dai.unit
    assert loans["Uniswap"].amount == 10**6 * usdc.unit


def test_borrower_consistent_across_providers(multi_loan_outcome):
    world, outcome, *_ = multi_loan_outcome
    loans = FlashLoanIdentifier().identify(outcome.trace)
    assert {l.borrower for l in loans} == {outcome.attack_contracts[0]}
