"""Attacker post-attack behaviours (paper Sec. VI-D2)."""

import pytest

from repro.chain import NotAContract
from repro.defi import Mixer, commitment_of
from repro.study import (
    launder_through_intermediaries,
    launder_through_mixer,
    simulate_selfdestruct,
    trace_profit_exit,
)
from repro.study.scenarios import SCENARIO_BUILDERS


@pytest.fixture()
def finished_attack():
    """A fresh bZx-1 replay whose attacker holds WETH profit."""
    outcome = SCENARIO_BUILDERS["bzx1"]()
    token = outcome.world.weth
    assert token.balance_of(outcome.attacker) > 0
    return outcome, token


class TestSelfdestruct:
    def test_code_removed_history_replayable(self, finished_attack):
        outcome, token = finished_attack
        report_before = outcome.world.detector().analyze(outcome.trace)
        simulate_selfdestruct(outcome)
        with pytest.raises(NotAContract):
            outcome.chain.transact(outcome.attacker, outcome.attack_contracts[0], "run")
        # "the contract code remains in the blockchain history and can be
        # replayed exactly": detection on the recorded trace still works
        report_after = outcome.world.detector().analyze(outcome.trace)
        assert report_after.patterns == report_before.patterns

    def test_tracer_flags_destroyed_contract(self, finished_attack):
        outcome, token = finished_attack
        simulate_selfdestruct(outcome)
        report = trace_profit_exit(outcome, token)
        assert report.contract_destroyed


class TestIntermediaryLaundering:
    def test_profit_moves_through_n_levels(self, finished_attack):
        outcome, token = finished_attack
        amount = token.balance_of(outcome.attacker)
        hops = launder_through_intermediaries(outcome, token, depth=4)
        assert len(hops) == 4
        assert token.balance_of(outcome.attacker) == 0
        assert token.balance_of(hops[-1]) == amount

    def test_tracer_recovers_full_path(self, finished_attack):
        outcome, token = finished_attack
        hops = launder_through_intermediaries(outcome, token, depth=3)
        report = trace_profit_exit(outcome, token)
        assert report.hops == hops
        assert report.terminal == hops[-1]
        assert not report.entered_mixer
        assert report.laundering_depth == 3

    def test_no_profit_raises(self, finished_attack):
        outcome, _ = finished_attack
        other = outcome.world.new_token("NOPE")
        with pytest.raises(ValueError):
            launder_through_intermediaries(outcome, other)


class TestMixer:
    @pytest.fixture()
    def mixer(self, finished_attack):
        outcome, token = finished_attack
        deployer = outcome.world.deployer_of("Tornado Cash")
        denomination = 100 * 10**18
        mixer = outcome.chain.deploy(
            deployer, Mixer, token.address, denomination, label="Tornado Cash: 100 WETH"
        )
        # honest users populate the anonymity set
        for i in range(3):
            honest = outcome.world.create_attacker(f"honest-{i}")
            outcome.world.fund_weth(honest, denomination)
            outcome.world.approve(honest, token, mixer.address)
            outcome.chain.transact(honest, mixer.address, "deposit", commitment_of(f"h{i}"))
        return mixer

    def test_deposit_withdraw_unlinkable_recipient(self, finished_attack, mixer):
        outcome, token = finished_attack
        clean = launder_through_mixer(outcome, token, mixer)
        assert token.balance_of(clean) >= mixer.denomination
        assert clean != outcome.attacker

    def test_tracer_stops_at_mixer(self, finished_attack, mixer):
        outcome, token = finished_attack
        launder_through_mixer(outcome, token, mixer)
        report = trace_profit_exit(outcome, token)
        assert report.entered_mixer
        assert report.hops[-1] == mixer.address

    def test_double_spend_rejected(self, finished_attack, mixer):
        from repro.chain import Revert

        outcome, token = finished_attack
        user = outcome.world.create_attacker("ds")
        outcome.world.fund_weth(user, mixer.denomination)
        outcome.world.approve(user, token, mixer.address)
        outcome.chain.transact(user, mixer.address, "deposit", commitment_of("sec"))
        other = outcome.world.create_attacker("o")
        outcome.chain.transact(user, mixer.address, "withdraw", "sec", other)
        with pytest.raises(Revert, match="already spent"):
            outcome.chain.transact(user, mixer.address, "withdraw", "sec", other)

    def test_unknown_note_rejected(self, finished_attack, mixer):
        from repro.chain import Revert

        outcome, _ = finished_attack
        user = outcome.world.create_attacker("un")
        with pytest.raises(Revert, match="unknown note"):
            outcome.chain.transact(user, mixer.address, "withdraw", "never", user)

    def test_commitment_reuse_rejected(self, finished_attack, mixer):
        from repro.chain import Revert

        outcome, token = finished_attack
        user = outcome.world.create_attacker("cr")
        outcome.world.fund_weth(user, 2 * mixer.denomination)
        outcome.world.approve(user, token, mixer.address)
        outcome.chain.transact(user, mixer.address, "deposit", commitment_of("dup"))
        with pytest.raises(Revert, match="reused"):
            outcome.chain.transact(user, mixer.address, "deposit", commitment_of("dup"))

    def test_anonymity_set_tracking(self, finished_attack, mixer):
        assert mixer.anonymity_set() == 3  # the honest users
