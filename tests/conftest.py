"""Shared test fixtures."""

from __future__ import annotations

import pytest

from repro.chain import Chain, ETH
from repro.tokens import TokenRegistry
from repro.world import DeFiWorld


@pytest.fixture()
def chain() -> Chain:
    return Chain()


@pytest.fixture()
def registry() -> TokenRegistry:
    return TokenRegistry()


@pytest.fixture()
def world() -> DeFiWorld:
    return DeFiWorld()


@pytest.fixture()
def funded_accounts(chain):
    """Three EOAs with ETH balances."""
    accounts = [chain.create_eoa(f"acct-{i}") for i in range(3)]
    for account in accounts:
        chain.faucet(account, 1_000 * ETH)
    return accounts


@pytest.fixture(scope="session")
def bzx1_outcome():
    from repro.study.scenarios import SCENARIO_BUILDERS

    return SCENARIO_BUILDERS["bzx1"]()


@pytest.fixture(scope="session")
def harvest_outcome():
    from repro.study.scenarios import SCENARIO_BUILDERS

    return SCENARIO_BUILDERS["harvest"]()


@pytest.fixture(scope="session")
def all_outcomes():
    """Every study scenario, built once per session (used by study tests)."""
    from repro.study.scenarios import SCENARIO_BUILDERS

    return {key: builder() for key, builder in SCENARIO_BUILDERS.items()}
