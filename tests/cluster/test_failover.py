"""Hot-standby coordinator failover: adoption, reconnection, identity.

The contract under test: a journaled cluster scan survives the death of
its coordinator. A standby that was probing the primary detects the
death, adopts the ledger mid-scan (resuming every journaled shard,
queueing only the remainder), workers with a multi-address connect list
fail over through their ordinary reconnect loop, and the merged result
is byte-identical to an uninterrupted run. Late results from the dead
primary's workers are suppressed as duplicates.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.cluster import (
    ClusterWorker,
    Coordinator,
    StandbyCoordinator,
    StandbyError,
)
from repro.cluster.protocol import PROTOCOL_VERSION, recv_message, send_message
from repro.engine.plan import build_schedule, resolve_shard_count, shard_schedule
from repro.engine.scan import ScanEngine, run_shard
from repro.engine.wire import shard_result_to_wire
from repro.runtime import RunLedger
from repro.workload.generator import WildScanConfig

SCALE = 0.005
SEED = 7
SHARDS = 4
#: per-task stall in workers, slow enough to catch a scan mid-flight.
DELAY = 0.01


def _config() -> WildScanConfig:
    return WildScanConfig(scale=SCALE, seed=SEED, shards=SHARDS)


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "rows": {name: (r.n, r.tp, r.fp) for name, r in result.rows.items()},
    }


def _dead_address() -> tuple[str, int]:
    """An address nothing is listening on (bound once, then released)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()[:2]
    probe.close()
    return address


def _journaled_shards(path) -> int:
    """Intact journaled shards (snapshot prefix + tail; torn tail ignored)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        return 0
    count = 0
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if record.get("kind") == "shard":
            count += 1
        elif record.get("kind") == "snapshot":
            count += record.get("shards", 0)
    return count


def _spawn_worker(addresses, name, *, delay=DELAY, tries=200):
    """A reconnecting worker thread; returns (worker, thread, summary_box)."""
    hook = (lambda worker, shard, number: time.sleep(delay)) if delay else None
    worker = ClusterWorker(
        addresses,
        name=name,
        connect_timeout=2.0,
        reconnect=True,
        reconnect_backoff=0.05,
        reconnect_max_delay=0.25,
        reconnect_tries=tries,
        task_hook=hook,
    )
    box: list = []
    thread = threading.Thread(
        target=lambda: box.append(worker.run()), name=name, daemon=True
    )
    thread.start()
    return worker, thread, box


@pytest.fixture(scope="module")
def cold_result():
    return ScanEngine(_config()).run()


@pytest.fixture(scope="module")
def outcomes():
    cfg = _config()
    tasks = build_schedule(cfg.scale, cfg.seed)
    count = resolve_shard_count(cfg.shards, len(tasks))
    parts = shard_schedule(tasks, count)
    return [run_shard((cfg, i, count, part)) for i, part in enumerate(parts)]


class TestWorkerMultiAddress:
    def test_single_pair_and_list_normalization(self):
        single = ClusterWorker(("127.0.0.1", 5000), name="w")
        assert single.addresses == [("127.0.0.1", 5000)]
        assert single.address == ("127.0.0.1", 5000)
        many = ClusterWorker(
            [("127.0.0.1", 5000), ("127.0.0.1", 5001), ("127.0.0.1", 5000)],
            name="w",
        )
        assert many.addresses == [("127.0.0.1", 5000), ("127.0.0.1", 5001)]

    def test_empty_address_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ClusterWorker([], name="w")

    def test_worker_rotates_to_live_address(self, cold_result):
        """First address refuses (nothing listens): the worker rotates to
        the live coordinator within the same connect attempt."""
        dead = _dead_address()
        with Coordinator(_config()) as coordinator:
            worker, thread, box = _spawn_worker(
                [dead, coordinator.address], "rotating", delay=0.0
            )
            result = coordinator.run(timeout=120.0)
            worker.stop()
            thread.join(timeout=10.0)
        assert _snapshot(result) == _snapshot(cold_result)
        assert box and box[0].failovers >= 1
        assert box[0].shards_completed >= 1  # the live address did the work

    def test_connect_is_sticky_on_success(self):
        """_connect rotates past the dead address once, then stays on the
        live one for subsequent attempts (cursor only moves on failure)."""
        from repro.cluster.worker import WorkerSummary

        dead = _dead_address()
        with Coordinator(_config()) as coordinator:
            worker = ClusterWorker([dead, coordinator.address], name="sticky")
            summary = WorkerSummary(name="sticky")
            for expected_failovers in (1, 1):  # second attempt: no rotation
                sock = worker._connect(summary)
                sock.close()
                assert worker.address == coordinator.address
                assert summary.failovers == expected_failovers

    def test_welcome_broadcasts_failover_addresses(self, cold_result):
        """A fleet launched with only the primary's address still learns
        the standby's address from the welcome (protocol v5)."""
        standby_address = ("10.9.9.9", 4321)  # never dialed: scan finishes
        with Coordinator(
            _config(), failover_addresses=[standby_address]
        ) as coordinator:
            worker, thread, box = _spawn_worker(
                coordinator.address, "learner", delay=0.0
            )
            result = coordinator.run(timeout=120.0)
            worker.stop()
            thread.join(timeout=10.0)
        assert _snapshot(result) == _snapshot(cold_result)
        assert standby_address in worker.addresses


class TestStandbyGuards:
    def test_standby_requires_ledger(self):
        with pytest.raises(ValueError, match="ledger"):
            StandbyCoordinator(_config(), primary=("127.0.0.1", 1), ledger=None)

    def test_adopt_before_start_raises(self, tmp_path):
        standby = StandbyCoordinator(
            _config(),
            primary=("127.0.0.1", 1),
            ledger=tmp_path / "run.ledger",
        )
        with pytest.raises(StandbyError, match="never started"):
            standby.adopt()
        standby.shutdown()

    def test_stats_before_adoption_raise(self, tmp_path):
        standby = StandbyCoordinator(
            _config(),
            primary=("127.0.0.1", 1),
            ledger=tmp_path / "run.ledger",
        )
        with pytest.raises(StandbyError, match="no stats"):
            standby.stats
        standby.shutdown()


class TestAdoption:
    def test_standby_adopts_dead_primarys_journal(
        self, tmp_path, cold_result, outcomes
    ):
        """The primary journaled two shards and died before the fleet
        existed: the standby detects the refused serve socket, adopts,
        resumes both shards, and finishes the scan byte-identically."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, _config(), SHARDS)
        for outcome in outcomes[:2]:
            ledger.record(outcome)
        ledger.close()

        standby = StandbyCoordinator(
            _config(),
            primary=_dead_address(),
            ledger=path,
            probe_interval=0.02,
            probe_failures=2,
            coordinator_options={"local_fallback": True},
        )
        with standby:
            assert standby.wait_for_primary_death(timeout=30.0)
            result = standby.adopt_and_run(timeout=2.0)
            assert standby.stats.resumed_shards == 2
            assert standby.stats.local_fallback_shards == 2
        assert _snapshot(result) == _snapshot(cold_result)

    def test_adoption_of_compacted_journal(self, tmp_path, cold_result, outcomes):
        """Adoption works when the dead primary had compacted: the
        snapshot prefix seeds completion membership without per-shard
        payloads, and the ledger merge restores full identity."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, _config(), SHARDS)
        for outcome in outcomes[:3]:
            ledger.record(outcome)
        assert ledger.compact() is True
        ledger.close()

        standby = StandbyCoordinator(
            _config(),
            primary=_dead_address(),
            ledger=path,
            probe_interval=0.02,
            probe_failures=2,
            coordinator_options={"local_fallback": True},
        )
        with standby:
            assert standby.wait_for_primary_death(timeout=30.0)
            result = standby.adopt_and_run(timeout=2.0)
            assert standby.stats.resumed_shards == 3
        assert _snapshot(result) == _snapshot(cold_result)

    def test_double_adopt_raises(self, tmp_path, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, _config(), SHARDS)
        for outcome in outcomes:
            ledger.record(outcome)
        ledger.close()
        standby = StandbyCoordinator(
            _config(),
            primary=_dead_address(),
            ledger=path,
            probe_interval=0.02,
            probe_failures=1,
        )
        standby.start()
        assert standby.wait_for_primary_death(timeout=30.0)
        coordinator = standby.adopt()
        try:
            with pytest.raises(StandbyError, match="already adopted"):
                standby.adopt()
        finally:
            coordinator.shutdown()

    def test_late_duplicate_from_dead_primarys_worker_suppressed(
        self, tmp_path, cold_result, outcomes
    ):
        """A worker that outlived the dead primary delivers a result the
        journal already holds: suppressed, not merged twice, and never
        re-journaled."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, _config(), SHARDS)
        ledger.record(outcomes[0])
        ledger.close()
        journal_before = path.read_bytes()

        standby = StandbyCoordinator(
            _config(),
            primary=_dead_address(),
            ledger=path,
            probe_interval=0.02,
            probe_failures=2,
            coordinator_options={"local_fallback": True},
        )
        standby.start()
        assert standby.wait_for_primary_death(timeout=30.0)
        coordinator = standby.adopt()
        try:
            with socket.create_connection(standby.address, timeout=10.0) as sock:
                send_message(
                    sock,
                    {"type": "hello", "worker": "orphan",
                     "protocol": PROTOCOL_VERSION},
                )
                welcome = recv_message(sock)
                assert welcome["type"] == "welcome"
                send_message(
                    sock,
                    {"type": "result", "shard": 0,
                     "payload": shard_result_to_wire(outcomes[0])},
                )
                send_message(sock, {"type": "bye"})
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if coordinator.stats.duplicates_suppressed >= 1:
                    break
                time.sleep(0.02)
            assert coordinator.stats.duplicates_suppressed == 1
            result = coordinator.run(timeout=2.0)
        finally:
            coordinator.shutdown()
        assert _snapshot(result) == _snapshot(cold_result)
        assert coordinator.stats.resumed_shards == 1
        # the journal grew only the genuinely new shards — no duplicate.
        after = RunLedger.open(path, config=_config(), shard_count=SHARDS)
        assert after.completed_shards() == frozenset(range(SHARDS))
        assert path.read_bytes().startswith(journal_before)


class TestLiveFailover:
    def test_workers_fail_over_mid_scan(self, tmp_path, cold_result):
        """In-process end-to-end: primary serves a journaled scan to two
        slow workers carrying both addresses; the primary dies mid-scan;
        the standby adopts and the same workers finish the run."""
        path = tmp_path / "run.ledger"
        primary = Coordinator(_config(), ledger=path, local_fallback=False)
        primary.start()
        standby = StandbyCoordinator(
            _config(),
            primary=primary.address,
            ledger=path,
            probe_interval=0.05,
            probe_failures=2,
            coordinator_options={"local_fallback": True},
        )
        standby.start()
        fleet = [
            _spawn_worker([primary.address, standby.address], f"dual-{i}")
            for i in range(2)
        ]
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if _journaled_shards(path) >= 1:
                    break
                time.sleep(0.01)
            journaled = _journaled_shards(path)
            assert journaled >= 1, "no shard journaled before the kill"
            # the "kill": the primary's serve socket and every worker
            # connection drop; probes start getting refused.
            primary.shutdown()

            assert standby.wait_for_primary_death(timeout=30.0)
            result = standby.adopt_and_run(timeout=120.0)
            assert standby.stats.resumed_shards >= journaled
            assert standby.stats.resumed_shards >= 1
        finally:
            for worker, _, _ in fleet:
                worker.stop()
            for _, thread, _ in fleet:
                thread.join(timeout=10.0)
            standby.shutdown()
        assert _snapshot(result) == _snapshot(cold_result)
        # at least one worker must have actually moved coordinators,
        # unless the adopted run resumed everything from the journal.
        if standby.stats.resumed_shards < SHARDS:
            assert any(box and box[0].failovers >= 1 for _, _, box in fleet)


def _primary_main(path: str, port: int) -> None:
    """Child process: a primary coordinator serving the journaled scan."""
    coordinator = Coordinator(
        _config(),
        host="127.0.0.1",
        port=port,
        ledger=path,
        local_fallback=False,
    )
    coordinator.start()
    coordinator.run()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="kill tests need the fork start method",
)
class TestSigkillFailover:
    def test_sigkilled_primary_standby_adopts_byte_identical(
        self, tmp_path, cold_result
    ):
        """The real thing: the primary is a separate process and dies by
        SIGKILL mid-scan — no cleanup, possibly a torn journal tail. The
        standby adopts; workers fail over; identity holds."""
        path = tmp_path / "run.ledger"
        primary_address = _dead_address()  # reserve a port for the child

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(
            target=_primary_main,
            args=(str(path), primary_address[1]),
            daemon=True,
        )
        try:
            child.start()
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process spawning denied: {exc}")

        standby = StandbyCoordinator(
            _config(),
            primary=primary_address,
            ledger=path,
            probe_interval=0.05,
            probe_failures=3,
            coordinator_options={"local_fallback": True},
        )
        standby.start()
        fleet = [
            _spawn_worker([primary_address, standby.address], f"surv-{i}")
            for i in range(2)
        ]
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if _journaled_shards(path) >= 1:
                    break
                if not child.is_alive():
                    break
                time.sleep(0.01)
            journaled = _journaled_shards(path)
            assert journaled >= 1, "child died before journaling a shard"
            if child.is_alive():
                os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=10.0)

            assert standby.wait_for_primary_death(timeout=60.0)
            result = standby.adopt_and_run(timeout=120.0)
            assert standby.stats.resumed_shards >= 1
        finally:
            for worker, _, _ in fleet:
                worker.stop()
            for _, thread, _ in fleet:
                thread.join(timeout=10.0)
            standby.shutdown()
            if child.is_alive():  # pragma: no cover
                child.terminate()
                child.join(timeout=5.0)
        assert _snapshot(result) == _snapshot(cold_result)
