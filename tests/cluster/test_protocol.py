"""Wire protocol framing + codec round trips.

The cluster's determinism contract rests on lossless serialization: a
shard result that crosses the wire must merge byte-identically to the
in-process original.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.engine.plan import build_schedule, shard_schedule
from repro.engine.scan import run_shard
from repro.engine.wire import (
    config_from_wire,
    config_to_wire,
    shard_result_from_wire,
    shard_result_to_wire,
)
from repro.leishen.patterns import PatternConfig
from repro.workload.generator import WildScanConfig


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        message = {"type": "assign", "shard": 3, "nested": {"a": [1, 2, None]}}
        send_message(left, message)
        assert recv_message(right) == message

    def test_sequential_frames_stay_ordered(self, pair):
        left, right = pair
        for index in range(5):
            send_message(left, {"type": "heartbeat", "n": index})
        assert [recv_message(right)["n"] for _ in range(5)] == list(range(5))

    def test_eof_raises_connection_closed(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_message(right)

    def test_mid_frame_eof_raises_connection_closed(self, pair):
        left, right = pair
        left.sendall(struct.pack("!I", 100) + b'{"type"')
        left.close()
        with pytest.raises(ConnectionClosed, match="mid-frame"):
            recv_message(right)

    def test_oversized_frame_rejected_without_allocation(self, pair):
        left, right = pair
        left.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_message(right)

    def test_bad_json_rejected(self, pair):
        left, right = pair
        payload = b"not json at all"
        left.sendall(struct.pack("!I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="undecodable"):
            recv_message(right)

    def test_untyped_payload_rejected(self, pair):
        left, right = pair
        payload = b'[1, 2, 3]'
        left.sendall(struct.pack("!I", len(payload)) + payload)
        with pytest.raises(ProtocolError, match="typed JSON object"):
            recv_message(right)


class TestConfigCodec:
    def test_round_trip_defaults(self):
        config = WildScanConfig(scale=0.01, seed=11, shards=4)
        decoded = config_from_wire(config_to_wire(config))
        assert decoded == config

    def test_round_trip_with_pattern_config(self):
        config = WildScanConfig(
            scale=0.5,
            seed=3,
            with_heuristic=True,
            keep_history=True,
            pattern_config=PatternConfig(krp_min_buys=7, mbs_min_rounds=2),
        )
        decoded = config_from_wire(config_to_wire(config))
        assert decoded == config
        assert decoded.pattern_config.krp_min_buys == 7

    def test_jobs_never_crosses_the_wire(self):
        config = WildScanConfig(scale=0.01, seed=7, jobs=8)
        wire = config_to_wire(config)
        assert "jobs" not in wire
        assert config_from_wire(wire).jobs == 1


class TestShardResultCodec:
    @pytest.fixture(scope="class")
    def shard_outcome(self):
        config = WildScanConfig(scale=0.005, seed=7, shards=4)
        tasks = build_schedule(config.scale, config.seed)
        parts = shard_schedule(tasks, 4)
        return run_shard((config, 0, 4, parts[0]))

    def test_lossless_round_trip(self, shard_outcome):
        decoded = shard_result_from_wire(shard_result_to_wire(shard_outcome))
        assert decoded == shard_outcome

    def test_wire_form_is_json_safe(self, shard_outcome):
        import json

        wire = shard_result_to_wire(shard_outcome)
        assert json.loads(json.dumps(wire)) == wire

    def test_detection_truth_survives(self, shard_outcome):
        attacks = [d for d in shard_outcome.detections if d.truth.is_attack]
        assert attacks, "shard 0 at this seed should contain attacks"
        decoded = shard_result_from_wire(shard_result_to_wire(shard_outcome))
        for original, restored in zip(shard_outcome.detections, decoded.detections):
            assert restored.truth == original.truth
            assert restored.patterns == original.patterns
            assert isinstance(restored.patterns, tuple)
