"""``ClusterStats`` / ``CapacitySnapshot`` dict round-trips.

Both types cross process boundaries as JSON (bench artifacts, scaling
logs), so ``to_dict`` → ``from_dict`` must be lossless and strict:
unknown fields mean the payload came from a different build and are
rejected rather than silently dropped.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.coordinator import CapacitySnapshot, ClusterStats


def _stats() -> ClusterStats:
    return ClusterStats(
        workers_seen=3,
        assignments=11,
        requeues=2,
        heartbeat_requeues=1,
        worker_losses=1,
        shard_errors=1,
        duplicates_suppressed=2,
        workers_excluded=1,
        local_fallback_shards=1,
        workers_spawned=2,
        workers_drained=1,
        workers_readmitted=1,
        probation_passes=1,
        probation_failures=0,
        resumed_shards=3,
    )


def _snapshot() -> CapacitySnapshot:
    return CapacitySnapshot(
        shard_count=8,
        completed=3,
        pending=2,
        running=3,
        live_workers=("a", "b"),
        idle_workers=("b",),
        retiring_workers=("c",),
        excluded_ages={"d": 1.5},
        stopping=False,
        failed=False,
    )


class TestClusterStatsRoundTrip:
    def test_round_trip_is_lossless(self):
        stats = _stats()
        assert ClusterStats.from_dict(stats.to_dict()) == stats

    def test_round_trip_survives_json(self):
        stats = _stats()
        decoded = json.loads(json.dumps(stats.to_dict()))
        assert ClusterStats.from_dict(decoded) == stats

    def test_to_dict_covers_every_field(self):
        assert set(_stats().to_dict()) == set(ClusterStats.__dataclass_fields__)

    def test_unknown_field_rejected(self):
        payload = dict(_stats().to_dict(), surprise=1)
        with pytest.raises(ValueError, match="unknown"):
            ClusterStats.from_dict(payload)

    def test_resumed_shards_defaults_to_zero(self):
        assert ClusterStats().resumed_shards == 0


class TestCapacitySnapshotRoundTrip:
    def test_round_trip_is_lossless(self):
        snapshot = _snapshot()
        assert CapacitySnapshot.from_dict(snapshot.to_dict()) == snapshot

    def test_round_trip_survives_json(self):
        snapshot = _snapshot()
        decoded = json.loads(json.dumps(snapshot.to_dict()))
        assert CapacitySnapshot.from_dict(decoded) == snapshot

    def test_round_trip_preserves_derived_views(self):
        rebuilt = CapacitySnapshot.from_dict(_snapshot().to_dict())
        assert rebuilt.outstanding == 5
        assert rebuilt.demand == 5
        assert not rebuilt.finished

    def test_to_dict_covers_every_field(self):
        assert set(_snapshot().to_dict()) == set(
            CapacitySnapshot.__dataclass_fields__
        )

    def test_unknown_field_rejected(self):
        payload = dict(_snapshot().to_dict(), surprise=1)
        with pytest.raises(ValueError, match="unknown"):
            CapacitySnapshot.from_dict(payload)

    def test_missing_field_rejected(self):
        payload = _snapshot().to_dict()
        del payload["pending"]
        with pytest.raises(ValueError, match="missing"):
            CapacitySnapshot.from_dict(payload)
