"""Cluster fault injection: the merge survives everything we throw at it.

Every test pins the same invariant from a different failure direction:
for a fixed ``(seed, scale, shards)`` the coordinator's merged
``WildScanResult`` is byte-identical to ``ScanEngine.run()`` no matter
how many workers serve the run, which of them die or stall mid-shard,
and in what order their results arrive.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.cluster import (
    ClusterError,
    ClusterWorker,
    Coordinator,
    WorkerKilled,
    run_cluster_scan,
)
from repro.cluster.protocol import PROTOCOL_VERSION, recv_message, send_message
from repro.engine.wire import config_to_wire
from repro.engine.plan import build_schedule, shard_schedule
from repro.engine.scan import run_shard
from repro.engine.wire import shard_result_to_wire
from repro.workload.generator import WildScanConfig, WildScanner

SCALE = 0.005
SEED = 7
SHARDS = 4


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "truths": [d.truth for d in result.detections],
        "table5": [(r.pattern, r.n, r.tp, r.fp) for r in result.table5()],
        "table6": result.table6(),
        "fig8": result.fig8_months(),
    }


def _config(shards: int = SHARDS) -> WildScanConfig:
    return WildScanConfig(scale=SCALE, seed=SEED, shards=shards)


@pytest.fixture(scope="module")
def batch_snapshot():
    return _snapshot(WildScanner(_config()).run())


def _wait_for(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestHappyPath:
    def test_two_workers_identical_to_batch(self, batch_snapshot):
        result, stats = run_cluster_scan(
            _config(),
            workers=2,
            worker_factory=lambda i, addr: ClusterWorker(addr, name=f"w-{i}"),
        )
        assert _snapshot(result) == batch_snapshot
        assert stats.workers_seen == 2
        assert stats.assignments == SHARDS
        assert stats.requeues == 0

    def test_worker_count_never_changes_the_result(self, batch_snapshot):
        for workers in (1, 3):
            result, _ = run_cluster_scan(
                _config(),
                workers=workers,
                worker_factory=lambda i, addr: ClusterWorker(addr, name=f"n-{i}"),
            )
            assert _snapshot(result) == batch_snapshot

    def test_process_workers_identical_to_batch(self, batch_snapshot):
        # real OS processes when the environment allows them; silently
        # degrades to threads elsewhere — identical either way.
        result, stats = run_cluster_scan(_config(), workers=2)
        assert _snapshot(result) == batch_snapshot
        assert stats.workers_seen == 2


class TestKilledWorker:
    def test_killed_mid_shard_requeues_and_merges_identically(self, batch_snapshot):
        state = {"killed": False}

        def factory(index: int, address) -> ClusterWorker:
            def die(worker, shard, task):
                if not state["killed"] and task == 3:
                    state["killed"] = True
                    raise WorkerKilled()

            return ClusterWorker(
                address, name=f"k-{index}", task_hook=die if index == 0 else None
            )

        result, stats = run_cluster_scan(
            _config(), workers=2, worker_factory=factory, heartbeat_timeout=5.0
        )
        assert state["killed"], "the rigged worker never reached its kill point"
        assert stats.worker_losses == 1
        assert stats.requeues >= 1
        assert _snapshot(result) == batch_snapshot


class TestHeartbeatTimeout:
    def test_stalled_worker_requeues_and_late_duplicate_is_suppressed(
        self, batch_snapshot
    ):
        """Protocol-level: a stalled worker's shard is speculatively
        requeued, a second worker completes it, and the straggler's late
        result is discarded — not double-merged."""
        config = _config(shards=1)
        baseline = _snapshot(WildScanner(config).run())
        tasks = build_schedule(config.scale, config.seed)
        parts = shard_schedule(tasks, 1)
        payload = shard_result_to_wire(run_shard((config, 0, 1, parts[0])))

        coordinator = Coordinator(config, heartbeat_timeout=0.3)
        coordinator.start()
        slow = fast = None
        try:
            host, port = coordinator.address
            slow = socket.create_connection((host, port), timeout=5.0)
            send_message(
                slow,
                {"type": "hello", "worker": "slow", "protocol": PROTOCOL_VERSION},
            )
            assert recv_message(slow)["type"] == "welcome"
            send_message(slow, {"type": "ready"})
            assign = recv_message(slow)
            assert assign["type"] == "assign"
            assert (assign["seed"], assign["scale"]) == (config.seed, config.scale)
            assert assign["shard"] == 0 and assign["shard_count"] == 1

            # "slow" now goes silent: no heartbeat, no result. The monitor
            # must requeue its shard without closing the connection.
            _wait_for(
                lambda: coordinator.stats.heartbeat_requeues >= 1,
                message="heartbeat-timeout requeue",
            )

            fast = socket.create_connection((host, port), timeout=5.0)
            send_message(
                fast,
                {"type": "hello", "worker": "fast", "protocol": PROTOCOL_VERSION},
            )
            assert recv_message(fast)["type"] == "welcome"
            send_message(fast, {"type": "ready"})
            reassign = recv_message(fast)
            assert reassign["type"] == "assign" and reassign["shard"] == 0

            send_message(fast, {"type": "result", "shard": 0, "payload": payload})
            _wait_for(
                lambda: len(coordinator._completed) == 1,
                message="first completion to land",
            )

            # the straggler wakes up and sends the same shard — late.
            send_message(slow, {"type": "result", "shard": 0, "payload": payload})
            _wait_for(
                lambda: coordinator.stats.duplicates_suppressed == 1,
                message="late duplicate suppression",
            )

            result = coordinator.run()
        finally:
            for sock in (slow, fast):
                if sock is not None:
                    sock.close()
            coordinator.shutdown()

        assert _snapshot(result) == baseline
        assert coordinator.stats.heartbeat_requeues >= 1
        assert coordinator.stats.duplicates_suppressed == 1
        # the merge consumed exactly one copy of the shard
        assert result.total_transactions == baseline["total"]


class TestFailingWorkers:
    def test_repeatedly_failing_worker_is_excluded(self, batch_snapshot):
        def factory(index: int, address) -> ClusterWorker:
            def explode(worker, shard, task):
                raise ValueError(f"worker {index} refuses shard {shard}")

            return ClusterWorker(
                address, name=f"f-{index}", task_hook=explode if index == 0 else None
            )

        result, stats = run_cluster_scan(
            _config(),
            workers=2,
            worker_factory=factory,
            max_worker_strikes=2,
        )
        assert stats.workers_excluded == 1
        assert stats.shard_errors >= 2
        assert stats.requeues >= 2
        assert _snapshot(result) == batch_snapshot

    def test_poisoned_shard_aborts_after_bounded_retries(self):
        def factory(index: int, address) -> ClusterWorker:
            def explode(worker, shard, task):
                raise ValueError("poisoned")

            return ClusterWorker(address, name=f"p-{index}", task_hook=explode)

        with pytest.raises(ClusterError, match="still failing"):
            run_cluster_scan(
                _config(),
                workers=1,
                worker_factory=factory,
                max_shard_attempts=1,
                max_worker_strikes=100,  # exclusion must not mask the abort
                local_fallback=True,  # bounded retry beats fallback
            )


class TestNoWorkersLeft:
    def _doomed_factory(self, index: int, address) -> ClusterWorker:
        def die_instantly(worker, shard, task):
            raise WorkerKilled()

        return ClusterWorker(address, name=f"d-{index}", task_hook=die_instantly)

    def test_local_fallback_completes_the_run(self, batch_snapshot):
        result, stats = run_cluster_scan(
            _config(),
            workers=1,
            worker_factory=self._doomed_factory,
            max_worker_strikes=1,
            local_fallback=True,
        )
        assert stats.workers_excluded == 1
        assert stats.local_fallback_shards == SHARDS
        assert _snapshot(result) == batch_snapshot

    def test_without_fallback_the_run_fails_loudly(self):
        with pytest.raises(ClusterError, match="no workers left"):
            run_cluster_scan(
                _config(),
                workers=1,
                worker_factory=self._doomed_factory,
                max_worker_strikes=1,
                local_fallback=False,
            )


class TestWorkerLiveness:
    def test_worker_times_out_on_silently_dead_coordinator(self):
        """A coordinator host that dies without FIN must not strand the
        worker in ``recv_message`` forever: the recv timeout (a few
        heartbeat intervals) expires and the worker reports itself
        disconnected."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        release = threading.Event()
        held: list[socket.socket] = []

        def fake_coordinator():
            conn, _ = server.accept()
            held.append(conn)  # keep the socket open: no FIN, ever
            hello = recv_message(conn)
            assert hello["type"] == "hello"
            send_message(
                conn,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "config": config_to_wire(_config(shards=1)),
                    "shard_count": 1,
                    "heartbeat_interval": 0.05,
                },
            )
            release.wait(30.0)  # then go silent — no assign, no drain

        thread = threading.Thread(target=fake_coordinator, daemon=True)
        thread.start()
        try:
            worker = ClusterWorker(server.getsockname()[:2], name="stranded")
            start = time.monotonic()
            summary = worker.run()
            elapsed = time.monotonic() - start
            assert summary.disconnected
            assert summary.shards_completed == 0
            # recv timeout is a few 0.05 s intervals (floored at 1 s),
            # nowhere near a hang
            assert elapsed < 10.0
        finally:
            release.set()
            for conn in held:
                conn.close()
            server.close()


class TestShutdownLiveness:
    def test_shutdown_is_prompt_with_large_heartbeat_timeout(self):
        """The monitor loop waits on the condition, so ``shutdown()``
        wakes it immediately instead of blocking up to
        ``heartbeat_timeout/4`` and leaking the thread past the join."""
        coordinator = Coordinator(_config(shards=1), heartbeat_timeout=60.0)
        coordinator.start()
        time.sleep(0.2)  # let the monitor enter its wait
        start = time.monotonic()
        coordinator.shutdown()
        assert time.monotonic() - start < 2.0
        assert all(not thread.is_alive() for thread in coordinator._threads)

    def test_loss_during_shutdown_is_not_a_strike(self):
        """A drain that races the shutdown socket teardown must not be
        booked as a worker loss (that would strike — and potentially
        exclude — healthy workers after the run already finished)."""
        coordinator = Coordinator(_config(shards=1))
        coordinator.start()
        sock = None
        try:
            sock = socket.create_connection(coordinator.address, timeout=5.0)
            send_message(
                sock,
                {"type": "hello", "worker": "clean", "protocol": PROTOCOL_VERSION},
            )
            assert recv_message(sock)["type"] == "welcome"
            _wait_for(
                lambda: "clean" in coordinator._workers,
                message="worker registration",
            )
            worker = coordinator._workers["clean"]
            with coordinator._cond:
                coordinator._stopping = True
            coordinator._handle_loss(worker, worker.conn)
            assert coordinator.stats.worker_losses == 0
            assert worker.strikes == 0
            assert coordinator.stats.workers_excluded == 0
        finally:
            if sock is not None:
                sock.close()
            coordinator.shutdown()


class TestParkedWorker:
    def test_parked_worker_backlog_and_late_assignment(self):
        """A parked worker keeps heartbeating into a socket nobody reads
        (its handler thread sits in ``_handle_ready``). The backlog must
        not wedge anything: the coordinator park-pings it, hands it a
        late requeued shard, drains the buffered heartbeats afterwards,
        and the stats stay churn-free after the clean drain."""
        config = _config(shards=2)
        baseline = _snapshot(WildScanner(config).run())
        tasks = build_schedule(config.scale, config.seed)
        parts = shard_schedule(tasks, 2)
        payloads = {
            index: shard_result_to_wire(run_shard((config, index, 2, parts[index])))
            for index in range(2)
        }

        coordinator = Coordinator(
            config, heartbeat_timeout=5.0, heartbeat_interval=0.05
        )
        coordinator.start()
        parked = flaky = None
        try:
            host, port = coordinator.address
            parked = socket.create_connection((host, port), timeout=5.0)
            send_message(
                parked,
                {"type": "hello", "worker": "parked", "protocol": PROTOCOL_VERSION},
            )
            assert recv_message(parked)["type"] == "welcome"
            send_message(parked, {"type": "ready"})
            first = recv_message(parked)
            assert first["type"] == "assign"

            flaky = socket.create_connection((host, port), timeout=5.0)
            send_message(
                flaky,
                {"type": "hello", "worker": "flaky", "protocol": PROTOCOL_VERSION},
            )
            assert recv_message(flaky)["type"] == "welcome"
            send_message(flaky, {"type": "ready"})
            second = recv_message(flaky)
            assert second["type"] == "assign"
            assert second["shard"] != first["shard"]

            # "parked" finishes its shard and parks on the next ready;
            # its handler thread now waits in _handle_ready while these
            # heartbeats pile up unread in the coordinator's buffer.
            send_message(
                parked,
                {
                    "type": "result",
                    "shard": first["shard"],
                    "payload": payloads[first["shard"]],
                },
            )
            send_message(parked, {"type": "ready"})
            for _ in range(50):
                send_message(parked, {"type": "heartbeat"})

            # the parked worker sees coordinator park pings while it waits
            parked.settimeout(5.0)
            ping = recv_message(parked)
            assert ping["type"] == "heartbeat"

            # "flaky" fails its shard; the requeue must reach the parked
            # worker as a late assignment despite the buffered backlog
            send_message(
                flaky, {"type": "shard-error", "shard": second["shard"],
                        "error": "ValueError('rigged')"},
            )
            while True:
                message = recv_message(parked)
                if message["type"] != "heartbeat":
                    break
            assert message["type"] == "assign"
            assert message["shard"] == second["shard"]
            send_message(
                parked,
                {
                    "type": "result",
                    "shard": second["shard"],
                    "payload": payloads[second["shard"]],
                },
            )

            result = coordinator.run()
        finally:
            for sock in (parked, flaky):
                if sock is not None:
                    sock.close()
            coordinator.shutdown()

        assert _snapshot(result) == baseline
        assert coordinator.stats.shard_errors == 1
        # churn-free after the clean drain: no losses, no exclusions
        assert coordinator.stats.worker_losses == 0
        assert coordinator.stats.workers_excluded == 0
        assert coordinator.stats.duplicates_suppressed == 0


class TestCoordinatorValidation:
    def test_rejects_bad_options(self):
        config = _config()
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            Coordinator(config, heartbeat_timeout=0)
        with pytest.raises(ValueError, match="max_shard_attempts"):
            Coordinator(config, max_shard_attempts=0)
        with pytest.raises(ValueError, match="max_worker_strikes"):
            Coordinator(config, max_worker_strikes=0)

    def test_rejects_protocol_mismatch(self):
        coordinator = Coordinator(_config(shards=1))
        coordinator.start()
        try:
            sock = socket.create_connection(coordinator.address, timeout=5.0)
            send_message(sock, {"type": "hello", "worker": "old", "protocol": 999})
            with pytest.raises((ConnectionError, OSError)):
                # coordinator drops the connection instead of welcoming
                recv_message(sock)
            sock.close()
        finally:
            coordinator.shutdown()
