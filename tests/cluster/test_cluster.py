"""Cluster fault injection: the merge survives everything we throw at it.

Every test pins the same invariant from a different failure direction:
for a fixed ``(seed, scale, shards)`` the coordinator's merged
``WildScanResult`` is byte-identical to ``ScanEngine.run()`` no matter
how many workers serve the run, which of them die or stall mid-shard,
and in what order their results arrive.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.cluster import (
    ClusterError,
    ClusterWorker,
    Coordinator,
    WorkerKilled,
    run_cluster_scan,
)
from repro.cluster.protocol import recv_message, send_message
from repro.engine.plan import build_schedule, shard_schedule
from repro.engine.scan import run_shard
from repro.engine.wire import shard_result_to_wire
from repro.workload.generator import WildScanConfig, WildScanner

SCALE = 0.005
SEED = 7
SHARDS = 4


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "truths": [d.truth for d in result.detections],
        "table5": [(r.pattern, r.n, r.tp, r.fp) for r in result.table5()],
        "table6": result.table6(),
        "fig8": result.fig8_months(),
    }


def _config(shards: int = SHARDS) -> WildScanConfig:
    return WildScanConfig(scale=SCALE, seed=SEED, shards=shards)


@pytest.fixture(scope="module")
def batch_snapshot():
    return _snapshot(WildScanner(_config()).run())


def _wait_for(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestHappyPath:
    def test_two_workers_identical_to_batch(self, batch_snapshot):
        result, stats = run_cluster_scan(
            _config(),
            workers=2,
            worker_factory=lambda i, addr: ClusterWorker(addr, name=f"w-{i}"),
        )
        assert _snapshot(result) == batch_snapshot
        assert stats.workers_seen == 2
        assert stats.assignments == SHARDS
        assert stats.requeues == 0

    def test_worker_count_never_changes_the_result(self, batch_snapshot):
        for workers in (1, 3):
            result, _ = run_cluster_scan(
                _config(),
                workers=workers,
                worker_factory=lambda i, addr: ClusterWorker(addr, name=f"n-{i}"),
            )
            assert _snapshot(result) == batch_snapshot

    def test_process_workers_identical_to_batch(self, batch_snapshot):
        # real OS processes when the environment allows them; silently
        # degrades to threads elsewhere — identical either way.
        result, stats = run_cluster_scan(_config(), workers=2)
        assert _snapshot(result) == batch_snapshot
        assert stats.workers_seen == 2


class TestKilledWorker:
    def test_killed_mid_shard_requeues_and_merges_identically(self, batch_snapshot):
        state = {"killed": False}

        def factory(index: int, address) -> ClusterWorker:
            def die(worker, shard, task):
                if not state["killed"] and task == 3:
                    state["killed"] = True
                    raise WorkerKilled()

            return ClusterWorker(
                address, name=f"k-{index}", task_hook=die if index == 0 else None
            )

        result, stats = run_cluster_scan(
            _config(), workers=2, worker_factory=factory, heartbeat_timeout=5.0
        )
        assert state["killed"], "the rigged worker never reached its kill point"
        assert stats.worker_losses == 1
        assert stats.requeues >= 1
        assert _snapshot(result) == batch_snapshot


class TestHeartbeatTimeout:
    def test_stalled_worker_requeues_and_late_duplicate_is_suppressed(
        self, batch_snapshot
    ):
        """Protocol-level: a stalled worker's shard is speculatively
        requeued, a second worker completes it, and the straggler's late
        result is discarded — not double-merged."""
        config = _config(shards=1)
        baseline = _snapshot(WildScanner(config).run())
        tasks = build_schedule(config.scale, config.seed)
        parts = shard_schedule(tasks, 1)
        payload = shard_result_to_wire(run_shard((config, 0, 1, parts[0])))

        coordinator = Coordinator(config, heartbeat_timeout=0.3)
        coordinator.start()
        slow = fast = None
        try:
            host, port = coordinator.address
            slow = socket.create_connection((host, port), timeout=5.0)
            send_message(slow, {"type": "hello", "worker": "slow", "protocol": 1})
            assert recv_message(slow)["type"] == "welcome"
            send_message(slow, {"type": "ready"})
            assign = recv_message(slow)
            assert assign["type"] == "assign"
            assert (assign["seed"], assign["scale"]) == (config.seed, config.scale)
            assert assign["shard"] == 0 and assign["shard_count"] == 1

            # "slow" now goes silent: no heartbeat, no result. The monitor
            # must requeue its shard without closing the connection.
            _wait_for(
                lambda: coordinator.stats.heartbeat_requeues >= 1,
                message="heartbeat-timeout requeue",
            )

            fast = socket.create_connection((host, port), timeout=5.0)
            send_message(fast, {"type": "hello", "worker": "fast", "protocol": 1})
            assert recv_message(fast)["type"] == "welcome"
            send_message(fast, {"type": "ready"})
            reassign = recv_message(fast)
            assert reassign["type"] == "assign" and reassign["shard"] == 0

            send_message(fast, {"type": "result", "shard": 0, "payload": payload})
            _wait_for(
                lambda: len(coordinator._completed) == 1,
                message="first completion to land",
            )

            # the straggler wakes up and sends the same shard — late.
            send_message(slow, {"type": "result", "shard": 0, "payload": payload})
            _wait_for(
                lambda: coordinator.stats.duplicates_suppressed == 1,
                message="late duplicate suppression",
            )

            result = coordinator.run()
        finally:
            for sock in (slow, fast):
                if sock is not None:
                    sock.close()
            coordinator.shutdown()

        assert _snapshot(result) == baseline
        assert coordinator.stats.heartbeat_requeues >= 1
        assert coordinator.stats.duplicates_suppressed == 1
        # the merge consumed exactly one copy of the shard
        assert result.total_transactions == baseline["total"]


class TestFailingWorkers:
    def test_repeatedly_failing_worker_is_excluded(self, batch_snapshot):
        def factory(index: int, address) -> ClusterWorker:
            def explode(worker, shard, task):
                raise ValueError(f"worker {index} refuses shard {shard}")

            return ClusterWorker(
                address, name=f"f-{index}", task_hook=explode if index == 0 else None
            )

        result, stats = run_cluster_scan(
            _config(),
            workers=2,
            worker_factory=factory,
            max_worker_strikes=2,
        )
        assert stats.workers_excluded == 1
        assert stats.shard_errors >= 2
        assert stats.requeues >= 2
        assert _snapshot(result) == batch_snapshot

    def test_poisoned_shard_aborts_after_bounded_retries(self):
        def factory(index: int, address) -> ClusterWorker:
            def explode(worker, shard, task):
                raise ValueError("poisoned")

            return ClusterWorker(address, name=f"p-{index}", task_hook=explode)

        with pytest.raises(ClusterError, match="still failing"):
            run_cluster_scan(
                _config(),
                workers=1,
                worker_factory=factory,
                max_shard_attempts=1,
                max_worker_strikes=100,  # exclusion must not mask the abort
                local_fallback=True,  # bounded retry beats fallback
            )


class TestNoWorkersLeft:
    def _doomed_factory(self, index: int, address) -> ClusterWorker:
        def die_instantly(worker, shard, task):
            raise WorkerKilled()

        return ClusterWorker(address, name=f"d-{index}", task_hook=die_instantly)

    def test_local_fallback_completes_the_run(self, batch_snapshot):
        result, stats = run_cluster_scan(
            _config(),
            workers=1,
            worker_factory=self._doomed_factory,
            max_worker_strikes=1,
            local_fallback=True,
        )
        assert stats.workers_excluded == 1
        assert stats.local_fallback_shards == SHARDS
        assert _snapshot(result) == batch_snapshot

    def test_without_fallback_the_run_fails_loudly(self):
        with pytest.raises(ClusterError, match="no workers left"):
            run_cluster_scan(
                _config(),
                workers=1,
                worker_factory=self._doomed_factory,
                max_worker_strikes=1,
                local_fallback=False,
            )


class TestCoordinatorValidation:
    def test_rejects_bad_options(self):
        config = _config()
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            Coordinator(config, heartbeat_timeout=0)
        with pytest.raises(ValueError, match="max_shard_attempts"):
            Coordinator(config, max_shard_attempts=0)
        with pytest.raises(ValueError, match="max_worker_strikes"):
            Coordinator(config, max_worker_strikes=0)

    def test_rejects_protocol_mismatch(self):
        coordinator = Coordinator(_config(shards=1))
        coordinator.start()
        try:
            sock = socket.create_connection(coordinator.address, timeout=5.0)
            send_message(sock, {"type": "hello", "worker": "old", "protocol": 999})
            with pytest.raises((ConnectionError, OSError)):
                # coordinator drops the connection instead of welcoming
                recv_message(sock)
            sock.close()
        finally:
            coordinator.shutdown()
