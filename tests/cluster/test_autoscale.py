"""Elastic pool behavior: scale from zero, drain idle, probation trials.

Every scenario re-checks the cluster's core invariant — the merged
``WildScanResult`` stays byte-identical to the batch scanner no matter
what the autoscaler does — and then asserts the scaling events that the
scenario was built to provoke (``workers_spawned``, ``workers_drained``,
``workers_readmitted``, ``probation_passes``, ``probation_failures``).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import ClusterWorker, Coordinator, ElasticPool, run_cluster_scan
from repro.cluster.autoscale import DEFAULT_PROBATION_COOLDOWN
from repro.cluster.worker import WorkerKilled
from repro.workload.generator import WildScanConfig, WildScanner

SCALE = 0.005
SEED = 7


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "truths": [d.truth for d in result.detections],
        "table5": [(r.pattern, r.n, r.tp, r.fp) for r in result.table5()],
        "table6": result.table6(),
        "fig8": result.fig8_months(),
    }


def _config(shards: int = 4) -> WildScanConfig:
    return WildScanConfig(scale=SCALE, seed=SEED, shards=shards)


def _baseline(config: WildScanConfig):
    return _snapshot(WildScanner(config).run())


def _wait_for(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestScaleFromZero:
    def test_zero_workers_scale_up_and_merge_identically(self):
        """``run(timeout=None)`` with no connected workers must spawn
        against queue depth instead of hanging forever."""
        config = _config()
        result, stats = run_cluster_scan(
            config,
            workers=0,
            autoscale=True,
            max_workers=2,
            autoscale_options=dict(poll_interval=0.02),
            worker_factory=lambda i, addr: ClusterWorker(addr, name=f"z-{i}"),
        )
        assert _snapshot(result) == _baseline(config)
        # demand (4 shards) exceeds max_workers, so the pool fills to the
        # cap in its first tick and never needs more.
        assert stats.workers_spawned == 2
        assert stats.workers_seen == 2
        assert stats.local_fallback_shards == 0


class TestAcceptanceScenario:
    def test_kill_exclude_readmit_merges_identically(self):
        """The ISSUE acceptance run: start from zero, scale to two, lose
        one worker mid-shard (immediate exclusion), re-admit it on
        probation, and still merge byte-identically — with every scaling
        event visible in the stats."""
        config = _config(shards=6)
        state = {"killed": False}

        def factory(index: int, address) -> ClusterWorker:
            def hook(worker, shard, task):
                if task == 0:
                    time.sleep(0.15)  # keep shards in flight during probation
                if index == 0 and not state["killed"] and task == 3:
                    state["killed"] = True
                    raise WorkerKilled()

            return ClusterWorker(address, name=f"e-{index}", task_hook=hook)

        result, stats = run_cluster_scan(
            config,
            workers=0,
            autoscale=True,
            max_workers=2,
            autoscale_options=dict(poll_interval=0.02, probation_cooldown=0.1),
            worker_factory=factory,
            max_worker_strikes=1,
            heartbeat_timeout=5.0,
        )
        assert state["killed"], "the rigged worker never reached its kill point"
        assert _snapshot(result) == _baseline(config)
        assert stats.worker_losses >= 1
        assert stats.requeues >= 1
        assert stats.workers_excluded >= 1
        # two initial spawns plus at least one replacement/respawn
        assert stats.workers_spawned >= 3
        assert stats.workers_readmitted >= 1
        assert stats.probation_passes >= 1
        assert stats.local_fallback_shards == 0


class TestScaleDown:
    def test_idle_workers_drain_after_grace(self):
        """Once the queue empties, pool-spawned idle workers above
        ``min_workers`` are drained — cleanly: no losses, no strikes."""
        config = _config()
        release = threading.Event()

        def factory(index: int, address) -> ClusterWorker:
            def hold(worker, shard, task):
                if task == 0:
                    release.wait(15.0)

            return ClusterWorker(
                address, name=f"s-{index}", task_hook=hold if index == 0 else None
            )

        coordinator = Coordinator(config, heartbeat_timeout=5.0)
        pool = ElasticPool(
            coordinator,
            min_workers=0,
            max_workers=4,
            initial_workers=4,
            poll_interval=0.02,
            idle_grace=0.1,
            worker_factory=factory,
        )
        try:
            coordinator.start()
            pool.start()
            # the queue empties while s-0 (at most) still holds a shard;
            # after the idle grace the other workers are asked to retire.
            _wait_for(
                lambda: coordinator.stats.workers_drained >= 2,
                message="idle workers to be drained",
            )
            release.set()
            result = coordinator.run()
        finally:
            release.set()
            pool.stop()
            coordinator.shutdown()

        assert _snapshot(result) == _baseline(config)
        assert coordinator.stats.workers_drained >= 2
        # clean drains are not churn: nobody lost, nobody struck
        assert coordinator.stats.worker_losses == 0
        assert coordinator.stats.workers_excluded == 0


class TestProbation:
    def test_reconnecting_worker_earns_readmission(self):
        """An excluded ``reconnect=True`` worker keeps knocking; after
        the cooldown it is let back in for a trial shard, and a clean
        result clears its strikes (``probation_passes``)."""
        config = _config(shards=6)
        state = {"failed": False}

        def factory(index: int, address) -> ClusterWorker:
            if index == 0:
                def fail_once(worker, shard, task):
                    if not state["failed"] and task == 2:
                        state["failed"] = True
                        raise ValueError("rigged shard failure")

                return ClusterWorker(
                    address,
                    name="r-0",
                    task_hook=fail_once,
                    reconnect=True,
                    reconnect_backoff=0.05,
                    reconnect_max_delay=0.1,
                    reconnect_tries=50,
                )

            def slow(worker, shard, task):
                if task == 0:
                    time.sleep(0.15)

            return ClusterWorker(address, name=f"r-{index}", task_hook=slow)

        result, stats = run_cluster_scan(
            config,
            workers=2,
            autoscale=True,
            max_workers=2,
            autoscale_options=dict(poll_interval=0.02, probation_cooldown=0.1),
            worker_factory=factory,
            max_worker_strikes=1,
            heartbeat_timeout=5.0,
        )
        assert state["failed"]
        assert _snapshot(result) == _baseline(config)
        assert stats.shard_errors >= 1
        assert stats.workers_excluded >= 1
        assert stats.workers_readmitted >= 1
        assert stats.probation_passes >= 1

    def test_failed_probation_reexcludes_immediately(self):
        """A worker that faults on its trial shard is re-excluded on the
        spot (one strike is enough on probation), and the run still
        completes through the healthy workers."""
        config = _config(shards=6)

        def factory(index: int, address) -> ClusterWorker:
            if index == 0:
                def always_fail(worker, shard, task):
                    if task == 1:
                        raise ValueError("permanently rigged")

                return ClusterWorker(
                    address,
                    name="p-0",
                    task_hook=always_fail,
                    reconnect=True,
                    reconnect_backoff=0.05,
                    reconnect_max_delay=0.1,
                    reconnect_tries=100,
                )

            def slow(worker, shard, task):
                if task == 0:
                    time.sleep(0.15)

            return ClusterWorker(address, name=f"p-{index}", task_hook=slow)

        result, stats = run_cluster_scan(
            config,
            workers=2,
            autoscale=True,
            max_workers=2,
            autoscale_options=dict(poll_interval=0.02, probation_cooldown=0.2),
            worker_factory=factory,
            max_worker_strikes=1,
            max_shard_attempts=10,
            heartbeat_timeout=5.0,
        )
        assert _snapshot(result) == _baseline(config)
        assert stats.probation_failures >= 1
        # initial exclusion plus at least one probation re-exclusion
        assert stats.workers_excluded >= 2
        assert stats.workers_readmitted >= 1


class TestValidation:
    def test_pool_rejects_bad_bounds(self):
        dummy = object()
        with pytest.raises(ValueError):
            ElasticPool(dummy, max_workers=0)
        with pytest.raises(ValueError):
            ElasticPool(dummy, min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            ElasticPool(dummy, initial_workers=5, max_workers=2)
        with pytest.raises(ValueError):
            ElasticPool(dummy, poll_interval=0.0)
        with pytest.raises(ValueError):
            ElasticPool(dummy, idle_grace=-1.0)

    def test_zero_workers_without_autoscale_rejected(self):
        with pytest.raises(ValueError):
            run_cluster_scan(_config(), workers=0)

    def test_worker_rejects_bad_reconnect_options(self):
        with pytest.raises(ValueError):
            ClusterWorker(("127.0.0.1", 1), recv_timeout=0.0)
        with pytest.raises(ValueError):
            ClusterWorker(("127.0.0.1", 1), reconnect_backoff=0.0)
        with pytest.raises(ValueError):
            ClusterWorker(("127.0.0.1", 1), reconnect_tries=-1)

    def test_default_cooldown_is_positive(self):
        assert DEFAULT_PROBATION_COOLDOWN > 0
