"""Attack-cluster composition: the Table V/VI arithmetic."""

from repro.workload import ATTACK_CLUSTERS, FULL_SCALE_ATTACKS


def n_attacks(predicate):
    return sum(c.n_attacks for c in ATTACK_CLUSTERS if predicate(c))


class TestClusterArithmetic:
    def test_total_attacks_142(self):
        assert FULL_SCALE_ATTACKS == 142

    def test_known_33_unknown_109(self):
        assert n_attacks(lambda c: c.known) == 33
        assert n_attacks(lambda c: not c.known) == 109

    def test_pattern_truth_totals(self):
        assert n_attacks(lambda c: "KRP" in c.truth_patterns) == 21
        assert n_attacks(lambda c: "SBS" in c.truth_patterns) == 68
        assert n_attacks(lambda c: "MBS" in c.truth_patterns) == 60

    def test_dual_truth_attacks_seven(self):
        assert n_attacks(lambda c: len(c.truth_patterns) == 2) == 7

    def test_spurious_mbs_inside_sbs_attacks(self):
        """15 dual-shape attacks whose ground truth is SBS-only: their MBS
        detections are the paper's pattern-level FPs inside true attacks."""
        assert n_attacks(
            lambda c: c.shape == "dual" and c.truth_patterns == ("SBS",)
        ) == 15

    def test_spurious_sbs_inside_mbs_attacks(self):
        assert n_attacks(
            lambda c: c.shape == "dual" and c.truth_patterns == ("MBS",)
        ) == 5

    def test_table6_top_three(self):
        def cluster_stats(app):
            clusters = [c for c in ATTACK_CLUSTERS if c.app == app and not c.known]
            return (
                sum(c.n_attacks for c in clusters),
                max(c.n_attackers for c in clusters),
                max(c.n_contracts for c in clusters),
                max(c.n_assets for c in clusters),
            )

        assert cluster_stats("Balancer") == (31, 5, 14, 13)
        assert cluster_stats("Uniswap") == (16, 6, 8, 5)
        assert cluster_stats("Yearn") == (11, 1, 1, 1)

    def test_severest_attack_profit(self):
        assert max(c.profit_usd for c in ATTACK_CLUSTERS) > 6_000_000

    def test_expected_pattern_pair_counts(self):
        """Full-scale detections should land on the paper's Table V rows."""
        krp = n_attacks(lambda c: c.shape == "krp")
        sbs_like = n_attacks(lambda c: c.shape in ("sbs", "dual"))
        mbs_like = n_attacks(lambda c: c.shape in ("mbs", "dual"))
        assert krp == 21
        assert sbs_like + 6 == 79   # + 6 migration FPs
        assert mbs_like + 32 == 107  # + 32 aggregator-strategy FPs
