"""Calibrated time series (Fig. 1 / Fig. 8)."""

from repro.workload import (
    PROVIDER_TOTALS,
    TOTAL_FLASH_LOAN_TXS,
    UNKNOWN_ATTACK_TOTAL,
    month_label,
    monthly_attack_weights,
    weekly_flash_loan_series,
)


class TestFig1Series:
    def test_provider_totals_exact(self):
        points = weekly_flash_loan_series()
        for provider, target in PROVIDER_TOTALS.items():
            assert sum(p.counts[provider] for p in points) == target

    def test_aave_first(self):
        points = weekly_flash_loan_series()
        first_week = {p: None for p in PROVIDER_TOTALS}
        for point in points:
            for provider, count in point.counts.items():
                if count and first_week[provider] is None:
                    first_week[provider] = point.week
        assert first_week["AAVE"] < first_week["dYdX"] < first_week["Uniswap"]

    def test_uniswap_dominates_after_launch(self):
        points = weekly_flash_loan_series()
        late = points[40:90]
        assert all(p.counts["Uniswap"] > p.counts["dYdX"] for p in late)

    def test_decline_after_oct_2021(self):
        points = weekly_flash_loan_series()
        peak_era = sum(p.total for p in points[80:92]) / 12
        tail = sum(p.total for p in points[110:]) / len(points[110:])
        assert tail < peak_era

    def test_deterministic(self):
        a = weekly_flash_loan_series()
        b = weekly_flash_loan_series()
        assert [p.counts for p in a] == [p.counts for p in b]


class TestFig8Weights:
    def test_total_109(self):
        assert sum(monthly_attack_weights()) == UNKNOWN_ATTACK_TOTAL

    def test_first_attack_june_2020(self):
        weights = monthly_attack_weights()
        assert all(w == 0 for w in weights[:5])
        assert weights[5] > 0  # Jun 2020

    def test_surge_aug_2020_to_feb_2021(self):
        weights = monthly_attack_weights()
        surge = weights[7:14]
        rest = weights[14:]
        assert min(surge) >= max(rest) - 1

    def test_yearly_averages_match_paper(self):
        weights = monthly_attack_weights()
        avg_2020 = sum(weights[5:12]) / 7
        avg_2021 = sum(weights[12:24]) / 12
        assert abs(avg_2020 - 6.5) < 0.3
        assert abs(avg_2021 - 4.3) < 0.3

    def test_month_labels(self):
        assert month_label(0) == "Jan 2020"
        assert month_label(13) == "Feb 2021"
        assert month_label(27) == "Apr 2022"

    def test_total_flash_loan_count_consistent(self):
        assert TOTAL_FLASH_LOAN_TXS == 272_984
