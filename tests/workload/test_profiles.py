"""Each benign profile must execute and carry its intended detector verdict."""

import random

import pytest

from repro.world import DeFiWorld
from repro.workload.profiles import (
    BENIGN_PROFILES,
    WildMarket,
    profile_migration,
    profile_yield_strategy,
)


@pytest.fixture(scope="module")
def market():
    world = DeFiWorld()
    return WildMarket(world, random.Random(99)), world.detector()


@pytest.mark.parametrize("name,weight,runner", BENIGN_PROFILES, ids=lambda p: str(p)[:16])
def test_benign_profiles_execute_and_stay_clean(market, name, weight, runner):
    wild, detector = market
    for _ in range(3):
        labeled = runner(wild)
        assert labeled.trace.success
        assert not labeled.truth.is_attack
        report = detector.analyze(labeled.trace)
        assert report is not None, "every profile must be a flash loan tx"
        assert not report.is_attack, f"profile {name} false-positived"


def test_migration_is_an_sbs_false_positive(market):
    wild, detector = market
    labeled = profile_migration(wild)
    report = detector.analyze(labeled.trace)
    assert report is not None and report.is_attack
    assert report.patterns == {"SBS"}
    assert not labeled.truth.is_attack  # ground truth: operator migration


def test_yield_strategy_is_an_mbs_false_positive(market):
    wild, detector = market
    labeled = profile_yield_strategy(wild, aggregator_initiated=True)
    report = detector.analyze(labeled.trace)
    assert report is not None and report.is_attack
    assert "MBS" in report.patterns
    assert labeled.truth.aggregator_initiated


def test_profile_weights_normalized():
    total = sum(weight for _, weight, _ in BENIGN_PROFILES)
    assert total == pytest.approx(1.0)
