"""Adversarial attack families and the FlashSyn-style mutation engine."""

from __future__ import annotations

import random

import pytest

from repro.leishen.detector import LeiShen, LeiShenConfig
from repro.leishen.registry import ALL_PATTERN_KEYS, PatternSettings
from repro.workload.attacks import ADVERSARIAL_CLUSTERS, WildAttackInjector
from repro.workload.mutate import BASELINE, MUTATIONS, mutation_by_key
from repro.workload.profiles import WildMarket
from repro.world import DeFiWorld


def fresh_injector(seed="adv-test"):
    rng = random.Random(seed)
    world = DeFiWorld()
    market = WildMarket(world, rng)
    return world, WildAttackInjector(market, rng, scale=1.0)


def execute(world_injector, cluster, asset_id=0, mutation=None, subsidize=False):
    _, injector = world_injector
    return injector.execute(
        cluster, 0, 0, asset_id, None, mutation=mutation, subsidize=subsidize
    )


def trace_bytes(trace) -> str:
    """A content fingerprint of everything LeiShen observes."""
    return repr((trace.transfers, trace.calls, trace.logs))


class TestAdversarialFamilies:
    def test_three_families_with_distinct_patterns(self):
        families = [c.family for c in ADVERSARIAL_CLUSTERS]
        assert families == ["SANDWICH", "MINT", "DONATION"]
        for cluster in ADVERSARIAL_CLUSTERS:
            assert cluster.truth_patterns == (cluster.family,)

    @pytest.mark.parametrize("cluster", ADVERSARIAL_CLUSTERS,
                             ids=lambda c: c.family)
    def test_family_fires_exactly_its_own_pattern(self, cluster):
        wi = fresh_injector()
        labeled = execute(wi, cluster)
        world, _ = wi
        detector = LeiShen(
            world.chain,
            LeiShenConfig(patterns=PatternSettings(enabled=ALL_PATTERN_KEYS)),
        )
        report = detector.analyze(labeled.trace)
        assert report is not None
        assert report.patterns == {cluster.family}
        assert labeled.truth.family == cluster.family
        assert labeled.truth.is_attack

    @pytest.mark.parametrize("cluster", ADVERSARIAL_CLUSTERS,
                             ids=lambda c: c.family)
    def test_paper_default_registry_is_blind_to_them(self, cluster):
        """The point of the plugins: the paper's KRP/SBS/MBS selection
        does not see the new families."""
        wi = fresh_injector()
        labeled = execute(wi, cluster)
        world, _ = wi
        report = LeiShen(world.chain).analyze(labeled.trace)
        assert report is None or not report.patterns


class TestMutationEngine:
    def test_baseline_mutation_reproduces_unmutated_bytes(self):
        clean = execute(fresh_injector(), ADVERSARIAL_CLUSTERS[0])
        base = execute(
            fresh_injector(), ADVERSARIAL_CLUSTERS[0], mutation=BASELINE
        )
        assert trace_bytes(clean.trace) == trace_bytes(base.trace)

    def test_mutated_runs_are_deterministic(self):
        mutation = mutation_by_key("drop_rounds")
        a = execute(fresh_injector(), ADVERSARIAL_CLUSTERS[1],
                    mutation=mutation, subsidize=True)
        b = execute(fresh_injector(), ADVERSARIAL_CLUSTERS[1],
                    mutation=mutation, subsidize=True)
        assert trace_bytes(a.trace) == trace_bytes(b.trace)

    def test_mutation_keys_unique_and_baseline_first(self):
        keys = [m.key for m in MUTATIONS]
        assert keys[0] == "baseline"
        assert len(keys) == len(set(keys))

    def test_every_paper_pattern_has_a_documented_evasion(self):
        evaded = set()
        for mutation in MUTATIONS:
            evaded.update(mutation.expect_evades)
        assert {"KRP", "SBS", "MBS"} <= evaded

    def test_unknown_mutation_key_is_loud(self):
        with pytest.raises(KeyError):
            mutation_by_key("nope")
