"""Wild scan: population generation, detection, verification tables."""

import pytest

from repro.workload import WildScanConfig, WildScanner


@pytest.fixture(scope="module")
def scan_result():
    return WildScanner(WildScanConfig(scale=0.01, seed=7)).run()


@pytest.fixture(scope="module")
def scan_with_heuristic():
    return WildScanner(WildScanConfig(scale=0.01, seed=7, with_heuristic=True)).run()


class TestScan:
    def test_population_size_scales(self, scan_result):
        assert scan_result.total_transactions == pytest.approx(2_730, abs=60)

    def test_krp_precision_always_100(self, scan_result):
        krp = scan_result.rows["KRP"]
        assert krp.n > 0 and krp.fp == 0

    def test_sbs_has_false_positives(self, scan_result):
        sbs = scan_result.rows["SBS"]
        assert sbs.tp > 0 and sbs.fp >= 1  # the migration look-alikes

    def test_mbs_lowest_precision(self, scan_result):
        rows = {r.pattern: r for r in scan_result.table5()}
        assert rows["MBS"].precision < rows["KRP"].precision
        assert rows["MBS"].precision <= rows["SBS"].precision + 0.15

    def test_overall_precision_in_paper_band(self, scan_result):
        assert 0.6 <= scan_result.precision <= 1.0
        assert scan_result.true_positives >= 15  # ~20 injected at this scale

    def test_heuristic_raises_mbs_precision(self, scan_result, scan_with_heuristic):
        before = scan_result.rows["MBS"]
        after = scan_with_heuristic.rows["MBS"]
        assert after.fp < before.fp
        assert after.precision > before.precision
        assert after.tp == before.tp  # no true attacks suppressed

    def test_deterministic_given_seed(self):
        a = WildScanner(WildScanConfig(scale=0.005, seed=3)).run()
        b = WildScanner(WildScanConfig(scale=0.005, seed=3)).run()
        assert a.detected_count == b.detected_count
        assert [d.tx_hash for d in a.detections] == [d.tx_hash for d in b.detections]

    def test_different_seed_differs(self):
        a = WildScanner(WildScanConfig(scale=0.005, seed=3)).run()
        b = WildScanner(WildScanConfig(scale=0.005, seed=4)).run()
        assert [d.tx_hash for d in a.detections] != [d.tx_hash for d in b.detections]


class TestTables:
    def test_table6_groups_unknown_attacks(self, scan_result):
        rows = scan_result.table6()
        assert rows
        apps = {row[0] for row in rows}
        assert "Balancer" in apps or "Uniswap" in apps
        for _, attacks, attackers, contracts, assets in rows:
            assert attackers <= attacks and contracts <= attacks and assets <= attacks

    def test_table7_heavy_tail(self, scan_result):
        stats = scan_result.table7()
        assert stats["max_profit_usd"] > 100 * stats["min_profit_usd"]
        assert stats["total_profit_usd"] > stats["max_profit_usd"]
        assert stats["top10_profit_usd"] >= stats["top20_profit_usd"]

    def test_fig8_months_within_range(self, scan_result):
        months = scan_result.fig8_months()
        assert months
        assert all(5 <= m <= 27 for m in months)

    def test_no_detection_before_first_flpattack(self, scan_result):
        """Paper Sec. VI-D: no attacks detected before bZx-1 (Feb 2020)."""
        months = scan_result.fig8_months()
        assert all(m >= 1 for m in months)


class TestConfigValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            WildScanConfig(scale=0.005, seed=7, jobs=0)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            WildScanConfig(scale=0.005, seed=7, jobs=-2)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            WildScanConfig(scale=0.005, seed=7, shards=0)

    def test_default_and_explicit_values_accepted(self):
        WildScanConfig(scale=0.005, seed=7)  # shards=None: automatic
        WildScanConfig(scale=0.005, seed=7, jobs=1, shards=1)


class TestEmptyResultGuards:
    """Division guards: empty scans report 0.0, never ZeroDivisionError."""

    def test_pattern_row_with_no_matches(self):
        from repro.workload.generator import PatternRow

        row = PatternRow(pattern="KRP")
        assert row.precision == 0.0

    def test_result_with_no_detections(self):
        from repro.workload.generator import WildScanResult

        result = WildScanResult(config=WildScanConfig(scale=0.005, seed=7))
        assert result.detected_count == 0
        assert result.true_positives == 0
        assert result.precision == 0.0
