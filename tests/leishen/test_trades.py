"""Trade action identification (paper Table III)."""

import pytest

from repro.chain import Address, ETHER
from repro.leishen import AppTransfer, BLACKHOLE_TAG, TradeIdentifier, TradeKind

T1 = Address("0x" + "11" * 20)
T2 = Address("0x" + "22" * 20)
T3 = Address("0x" + "33" * 20)


def appt(seq, sender, receiver, amount, token):
    return AppTransfer(seq=seq, sender=sender, receiver=receiver, amount=amount, token=token)


@pytest.fixture()
def identifier():
    return TradeIdentifier()


class TestSwap:
    def test_two_transfer_swap(self, identifier):
        trades = identifier.identify(
            [appt(1, "A", "B", 100, T1), appt(2, "B", "A", 50, T2)]
        )
        assert len(trades) == 1
        trade = trades[0]
        assert trade.kind is TradeKind.SWAP
        assert (trade.buyer, trade.seller) == ("A", "B")
        assert (trade.amount_sell, trade.token_sell) == (100, T1)
        assert (trade.amount_buy, trade.token_buy) == (50, T2)

    def test_same_token_not_a_swap(self, identifier):
        assert identifier.identify(
            [appt(1, "A", "B", 100, T1), appt(2, "B", "A", 100, T1)]
        ) == []

    def test_three_transfer_swap_dual_output(self, identifier):
        trades = identifier.identify(
            [appt(1, "A", "B", 100, T1), appt(2, "B", "A", 50, T2), appt(3, "B", "A", 25, T3)]
        )
        assert len(trades) == 1
        assert trades[0].extra_legs == ((T3, 25),)

    def test_untagged_party_blocks_trade(self, identifier):
        assert identifier.identify(
            [appt(1, None, "B", 100, T1), appt(2, "B", None, 50, T2)]
        ) == []


class TestMintLiquidity:
    def test_two_transfer_mint(self, identifier):
        trades = identifier.identify(
            [appt(1, "A", "Vault", 100, T1), appt(2, BLACKHOLE_TAG, "A", 80, T2)]
        )
        assert trades[0].kind is TradeKind.MINT_LIQUIDITY
        assert trades[0].seller == "Vault"

    def test_reversed_order_mint(self, identifier):
        trades = identifier.identify(
            [appt(1, BLACKHOLE_TAG, "A", 80, T2), appt(2, "A", "Vault", 100, T1)]
        )
        assert trades and trades[0].kind is TradeKind.MINT_LIQUIDITY

    def test_three_transfer_mint(self, identifier):
        trades = identifier.identify(
            [
                appt(1, "A", "Pool", 100, T1),
                appt(2, "A", "Pool", 60, T2),
                appt(3, BLACKHOLE_TAG, "A", 40, T3),
            ]
        )
        assert len(trades) == 1
        assert trades[0].kind is TradeKind.MINT_LIQUIDITY
        assert trades[0].extra_legs == ((T2, 60),)


class TestRemoveLiquidity:
    def test_two_transfer_remove(self, identifier):
        trades = identifier.identify(
            [appt(1, "A", BLACKHOLE_TAG, 80, T2), appt(2, "Vault", "A", 100, T1)]
        )
        assert trades[0].kind is TradeKind.REMOVE_LIQUIDITY
        assert trades[0].seller == "Vault"

    def test_three_transfer_remove(self, identifier):
        trades = identifier.identify(
            [
                appt(1, "A", BLACKHOLE_TAG, 40, T3),
                appt(2, "Pool", "A", 100, T1),
                appt(3, "Pool", "A", 60, T2),
            ]
        )
        assert len(trades) == 1
        assert trades[0].kind is TradeKind.REMOVE_LIQUIDITY


class TestFeeBurnStripping:
    def test_fee_burn_after_receipt_ignored(self, identifier):
        """Deflationary fee burns must not pair into phantom removes."""
        trades = identifier.identify(
            [
                appt(1, "A", "Pool", 100_000, T1),
                appt(2, "Pool", "A", 99_000, T2),
                appt(3, "Pool", BLACKHOLE_TAG, 1_000, T2),  # 1% burn
                appt(4, "A", "Pool", 100_000, T1),
                appt(5, "Pool", "A", 98_000, T2),
            ]
        )
        assert len(trades) == 2
        assert all(t.kind is TradeKind.SWAP for t in trades)

    def test_large_burn_not_stripped(self, identifier):
        """A burn comparable to its neighbour is a real remove-liquidity leg."""
        trades = identifier.identify(
            [appt(1, "Pool", "A", 100, T2), appt(2, "A", BLACKHOLE_TAG, 100, T3),
             appt(3, "Vault", "A", 50, T1)]
        )
        kinds = {t.kind for t in trades}
        assert TradeKind.REMOVE_LIQUIDITY in kinds


class TestGreedyScan:
    def test_consecutive_trades_all_found(self, identifier):
        stream = []
        for i in range(5):
            stream.append(appt(2 * i, "A", "B", 100 + i, T1))
            stream.append(appt(2 * i + 1, "B", "A", 50, T2))
        trades = identifier.identify(stream)
        assert len(trades) == 5

    def test_unrelated_transfer_skipped(self, identifier):
        trades = identifier.identify(
            [
                appt(1, "X", "Y", 7, T3),
                appt(2, "A", "B", 100, T1),
                appt(3, "B", "A", 50, T2),
            ]
        )
        assert len(trades) == 1

    def test_rates(self, identifier):
        trades = identifier.identify(
            [appt(1, "A", "B", 100, T1), appt(2, "B", "A", 50, T2)]
        )
        assert trades[0].sell_rate == 2.0
        assert trades[0].buy_rate == 0.5
