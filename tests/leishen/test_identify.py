"""Flash loan transaction identification (paper Table II)."""

import pytest

from repro.chain import ETH
from repro.leishen import FlashLoanIdentifier
from repro.study.scenarios import SCENARIO_BUILDERS


@pytest.fixture(scope="module")
def identifier():
    return FlashLoanIdentifier()


class TestProviderFingerprints:
    def test_dydx_identified(self, identifier, bzx1_outcome):
        loans = identifier.identify(bzx1_outcome.trace)
        assert len(loans) == 1
        loan = loans[0]
        assert loan.provider == "dYdX"
        assert loan.amount == 10_000 * ETH
        assert loan.borrower in bzx1_outcome.attack_contracts

    def test_uniswap_flash_swap_identified(self, identifier, harvest_outcome):
        loans = identifier.identify(harvest_outcome.trace)
        assert loans and loans[0].provider == "Uniswap"
        assert loans[0].borrower in harvest_outcome.attack_contracts
        assert loans[0].amount > 0

    def test_aave_identified(self, identifier):
        outcome = SCENARIO_BUILDERS["valuedefi"]()
        loans = identifier.identify(outcome.trace)
        assert loans and loans[0].provider == "AAVE"

    def test_plain_swap_not_identified(self, identifier, world):
        token = world.new_token("PLN")
        pair = world.dex_pair(token, world.weth, 10**6 * token.unit, 10**4 * ETH)
        trader = world.create_attacker("t")
        token.mint(trader, 10**6 * token.unit)
        router = world.dex_router()
        world.approve(trader, token, router.address)
        trace = world.chain.transact(
            trader, router.address, "swapExactTokensForTokens",
            100 * token.unit, 0, (pair.address,), token.address,
        )
        assert identifier.identify(trace) == []
        assert not identifier.is_flash_loan_transaction(trace)

    def test_plain_erc20_transfer_not_identified(self, identifier, world):
        token = world.new_token("PL2")
        a = world.create_attacker("a")
        b = world.create_attacker("b")
        token.mint(a, 100)
        trace = world.chain.transact(a, token.address, "transfer", b, 10)
        assert identifier.identify(trace) == []

    def test_failed_transaction_yields_no_loans(self, identifier, world):
        from repro.chain import Revert

        token = world.new_token("PL3")
        a = world.create_attacker("a")
        b = world.create_attacker("b")
        trace = world.chain.transact(
            a, token.address, "transfer", b, 10, allow_failure=True
        )
        assert not trace.success
        assert identifier.identify(trace) == []
