"""The three simplification rules (paper Sec. V-B-2)."""

import pytest

from repro.chain import Address, ETHER
from repro.leishen import SimplifierConfig, TaggedTransfer, TransferSimplifier

TOKEN = Address("0x" + "77" * 20)
WETH_TOKEN = Address("0x" + "88" * 20)
ACCT = Address("0x" + "99" * 20)


def tagged(seq, sender, receiver, amount, token=TOKEN):
    return TaggedTransfer(
        seq=seq, tag_sender=sender, tag_receiver=receiver,
        amount=amount, token=token, sender=ACCT, receiver=ACCT,
    )


def simplifier(**overrides):
    return TransferSimplifier(
        SimplifierConfig(weth_tokens=frozenset({WETH_TOKEN}), **overrides)
    )


class TestIntraApp:
    def test_removed(self):
        out = simplifier().simplify([tagged(1, "Uniswap", "Uniswap", 10)])
        assert out == []

    def test_inter_app_kept(self):
        out = simplifier().simplify([tagged(1, "A", "B", 10)])
        assert len(out) == 1

    def test_untagged_kept(self):
        out = simplifier().simplify([tagged(1, None, None, 10)])
        assert len(out) == 1

    def test_disabled(self):
        out = simplifier(remove_intra_app=False).simplify(
            [tagged(1, "Uniswap", "Uniswap", 10)]
        )
        assert len(out) == 1


class TestWeth:
    def test_transfers_touching_weth_contract_removed(self):
        transfers = [
            tagged(1, "A", "Wrapped Ether", 10),
            tagged(2, "Wrapped Ether", "A", 10, token=WETH_TOKEN),
        ]
        assert simplifier().simplify(transfers) == []

    def test_weth_token_unified_to_ether(self):
        out = simplifier().simplify([tagged(1, "A", "B", 10, token=WETH_TOKEN)])
        assert out[0].token == ETHER

    def test_disabled_keeps_weth(self):
        out = simplifier(remove_weth=False).simplify(
            [tagged(1, "A", "B", 10, token=WETH_TOKEN)]
        )
        assert out[0].token == WETH_TOKEN


class TestMerge:
    def test_exact_relay_merged(self):
        transfers = [tagged(1, "A", "Kyber", 100), tagged(2, "Kyber", "B", 100)]
        out = simplifier().simplify(transfers)
        assert len(out) == 1
        assert (out[0].sender, out[0].receiver, out[0].amount) == ("A", "B", 100)

    def test_fee_within_tolerance_merged(self):
        transfers = [tagged(1, "A", "Kyber", 100_000), tagged(2, "Kyber", "B", 99_950)]
        out = simplifier().simplify(transfers)
        assert len(out) == 1
        assert out[0].amount == 99_950  # delivered amount wins

    def test_fee_beyond_tolerance_not_merged(self):
        transfers = [tagged(1, "A", "Kyber", 100_000), tagged(2, "Kyber", "B", 98_000)]
        assert len(simplifier().simplify(transfers)) == 2

    def test_different_token_not_merged(self):
        other = Address("0x" + "66" * 20)
        transfers = [tagged(1, "A", "K", 100), tagged(2, "K", "B", 100, token=other)]
        assert len(simplifier().simplify(transfers)) == 2

    def test_chain_of_relays_merges_to_fixpoint(self):
        transfers = [
            tagged(1, "A", "K1", 100),
            tagged(2, "K1", "K2", 100),
            tagged(3, "K2", "B", 100),
        ]
        out = simplifier().simplify(transfers)
        assert len(out) == 1
        assert (out[0].sender, out[0].receiver) == ("A", "B")

    def test_round_trip_through_intermediary_cancels(self):
        # A -> K -> A becomes intra-app and disappears entirely
        transfers = [tagged(1, "A", "K", 100), tagged(2, "K", "A", 100)]
        assert simplifier().simplify(transfers) == []

    def test_sender_equals_intermediary_not_merged(self):
        transfers = [tagged(1, "K", "K2", 100), tagged(2, "K2", "K", 100)]
        # relay back to origin is a round trip, not a pass-through
        assert simplifier().simplify(transfers) == []

    def test_disabled(self):
        transfers = [tagged(1, "A", "K", 100), tagged(2, "K", "B", 100)]
        out = simplifier(merge_inter_app=False).simplify(transfers)
        assert len(out) == 2

    def test_untagged_intermediary_not_merged(self):
        transfers = [tagged(1, "A", None, 100), tagged(2, None, "B", 100)]
        assert len(simplifier().simplify(transfers)) == 2


class TestEndToEnd:
    def test_bzx1_fig6_construction(self, bzx1_outcome):
        """The paper's Fig. 6: after simplification the margin trade appears
        as a direct bZx <-> Uniswap exchange (Kyber hop merged)."""
        world = bzx1_outcome.world
        detector = world.detector()
        tagged_transfers = detector.tagger.tag_transfers(bzx1_outcome.trace.transfers)
        app_transfers = detector.simplifier.simplify(tagged_transfers)
        pairs = {(t.sender, t.receiver) for t in app_transfers}
        assert ("bZx", "Uniswap") in pairs
        assert ("Uniswap", "bZx") in pairs
        assert not any("Kyber" in (t.sender, t.receiver) for t in app_transfers)
