"""Cross-transaction windowed matcher: assembly, dedup, bounded state."""

from __future__ import annotations

import pytest

from repro.chain import Address
from repro.leishen import Trade, TradeKind
from repro.leishen.window import (
    DEFAULT_WINDOW_BLOCKS,
    TradeObservation,
    WindowedDetection,
    WindowedMatcher,
    windowed_recall,
)

X = Address("0x" + "aa" * 20)  # target token
Q = Address("0x" + "bb" * 20)  # quote token
BORROWER = "0xatk"


def buy(seq, amount_q, amount_x, buyer=BORROWER, seller="Pool"):
    return Trade(seq=seq, kind=TradeKind.SWAP, buyer=buyer, seller=seller,
                 amount_sell=amount_q, token_sell=Q, amount_buy=amount_x, token_buy=X)


def sell(seq, amount_x, amount_q, buyer=BORROWER, seller="Pool"):
    return Trade(seq=seq, kind=TradeKind.SWAP, buyer=buyer, seller=seller,
                 amount_sell=amount_x, token_sell=X, amount_buy=amount_q, token_buy=Q)


def obs(tx, position, trades, matched=(), group=None):
    return TradeObservation(
        tx_hash=tx, position=position, borrower_tags=(BORROWER,),
        trades=tuple(trades), matched_patterns=frozenset(matched),
        split_group=group,
    )


def krp_legs():
    """A five-buy rising KRP series plus the final dump, as three
    per-transaction slices that are individually pattern-free."""
    buys = [buy(i, (100 + 10 * i) * 10, 10) for i in range(5)]
    dump = sell(5, 50, 5_000, seller="Venue")
    return [buys[:2], buys[2:4], [buys[4], dump]]


class TestWindowAssembly:
    def test_split_series_detected_across_blocks(self):
        matcher = WindowedMatcher(window_blocks=4)
        legs = krp_legs()
        assert matcher.observe_block(100, [obs("tx0", 0, legs[0], group=3)]) == []
        assert matcher.observe_block(101, [obs("tx1", 1, legs[1], group=3)]) == []
        found = matcher.observe_block(102, [obs("tx2", 2, legs[2], group=3)])
        assert [d.pattern for d in found] == ["KRP"]
        detection = found[0]
        assert detection.tx_hashes == ("tx0", "tx1", "tx2")
        assert (detection.first_block, detection.last_block) == (100, 102)
        assert detection.split_group == 3
        assert detection.target_token == X

    def test_single_tx_observation_can_still_match(self):
        # the window degenerates gracefully: one transaction carrying the
        # whole series matches too (and is *not* suppressed unless the
        # transaction already matched per-tx).
        matcher = WindowedMatcher(window_blocks=2)
        trades = [t for leg in krp_legs() for t in leg]
        found = matcher.observe_block(100, [obs("tx0", 0, trades)])
        assert [d.pattern for d in found] == ["KRP"]
        assert found[0].tx_hashes == ("tx0",)

    def test_mixed_split_groups_yield_unlabelled_detection(self):
        matcher = WindowedMatcher(window_blocks=4)
        legs = krp_legs()
        matcher.observe_block(100, [obs("tx0", 0, legs[0], group=0)])
        matcher.observe_block(101, [obs("tx1", 1, legs[1], group=1)])
        found = matcher.observe_block(102, [obs("tx2", 2, legs[2], group=0)])
        assert len(found) == 1
        assert found[0].split_group is None


class TestWindowDedup:
    def test_suppressed_when_every_contributor_matched_per_tx(self):
        matcher = WindowedMatcher(window_blocks=2)
        trades = [t for leg in krp_legs() for t in leg]
        found = matcher.observe_block(100, [obs("tx0", 0, trades, matched={"KRP"})])
        assert found == []

    def test_not_suppressed_when_one_contributor_is_new(self):
        # two txs contribute; only one matched KRP on its own — the
        # windowed match still says something new, so it fires.
        matcher = WindowedMatcher(window_blocks=4)
        legs = krp_legs()
        matcher.observe_block(100, [obs("tx0", 0, legs[0] + legs[1], matched={"KRP"})])
        found = matcher.observe_block(101, [obs("tx1", 1, legs[2])])
        assert [d.pattern for d in found] == ["KRP"]

    def test_same_match_not_reemitted_while_in_window(self):
        matcher = WindowedMatcher(window_blocks=8)
        legs = krp_legs()
        matcher.observe_block(100, [obs("tx0", 0, legs[0])])
        matcher.observe_block(101, [obs("tx1", 1, legs[1])])
        assert len(matcher.observe_block(102, [obs("tx2", 2, legs[2])])) == 1
        # a later observation for the same tag re-runs the matcher, but
        # the identical match (same pattern/token/tag/txs) stays quiet.
        later = matcher.observe_block(103, [obs("tx3", 3, [buy(0, 1_000, 10)])])
        assert later == []


class TestBoundedState:
    def test_block_count_never_exceeds_window(self):
        matcher = WindowedMatcher(window_blocks=3)
        for number in range(50):
            matcher.observe_block(number, [obs(f"tx{number}", number,
                                               [buy(0, 1_000, 10)])])
            assert matcher.block_count <= 3
        assert matcher.block_count == 3
        assert matcher.observation_count == 3

    def test_series_wider_than_window_not_detected(self):
        matcher = WindowedMatcher(window_blocks=2)
        legs = krp_legs()
        matcher.observe_block(100, [obs("tx0", 0, legs[0])])
        matcher.observe_block(101, [obs("tx1", 1, legs[1])])
        # tx0's buys have slid out by now: the surviving window holds
        # only legs 1 and 2, which never complete the five-buy series.
        found = matcher.observe_block(102, [obs("tx2", 2, legs[2])])
        assert found == []

    def test_dedup_keys_evicted_with_their_blocks(self):
        matcher = WindowedMatcher(window_blocks=3)
        legs = krp_legs()
        matcher.observe_block(100, [obs("tx0", 0, legs[0])])
        matcher.observe_block(101, [obs("tx1", 1, legs[1])])
        assert len(matcher.observe_block(102, [obs("tx2", 2, legs[2])])) == 1
        assert matcher._seen
        for number in range(103, 107):
            matcher.observe_block(number, [])
        assert matcher._seen == {}

    def test_empty_blocks_still_slide_the_window(self):
        matcher = WindowedMatcher(window_blocks=3)
        legs = krp_legs()
        matcher.observe_block(100, [obs("tx0", 0, legs[0])])
        matcher.observe_block(101, [])
        matcher.observe_block(102, [obs("tx1", 1, legs[1])])
        # block 100 just slid out with tx0's buys — no match possible.
        assert matcher.observe_block(103, [obs("tx2", 2, legs[2])]) == []

    def test_window_blocks_validated(self):
        with pytest.raises(ValueError):
            WindowedMatcher(window_blocks=0)
        assert WindowedMatcher().window_blocks == DEFAULT_WINDOW_BLOCKS


class TestWindowedRecall:
    def make(self, group):
        return WindowedDetection(
            pattern="KRP", target_token=X, borrower_tag=BORROWER,
            tx_hashes=("a", "b"), first_block=1, last_block=2,
            split_group=group,
        )

    def test_full_and_partial_recall(self):
        detections = [self.make(0), self.make(None)]
        assert windowed_recall(detections, [0]) == 1.0
        assert windowed_recall(detections, [0, 1]) == 0.5
        assert windowed_recall([], [0, 1]) == 0.0
        assert windowed_recall(detections, []) == 0.0

    def test_to_dict_is_json_safe(self):
        import json

        payload = self.make(2).to_dict()
        assert json.loads(json.dumps(payload)) == payload
