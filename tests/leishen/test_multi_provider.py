"""Multi-provider borrower anchoring (regression).

Seven of the 22 studied flpAttacks borrow from more than one provider,
and identification lists Uniswap loans before AAVE and dYdX ones
regardless of execution order. A detector anchored only on
``flash_loans[0].borrower`` therefore misses any attack executed by a
later-listed provider's borrower. These tests build exactly that shape:
a decoy contract takes a trivial Uniswap flash swap inside the attack
transaction while a second, unrelated contract borrows via dYdX and runs
the KRP trades.
"""

from __future__ import annotations

import pytest

from repro.leishen import AttackPattern, FlashLoanIdentifier
from repro.study.scenarios.base import ScriptedAttackContract
from repro.world import DeFiWorld


@pytest.fixture(scope="module")
def two_provider_outcome():
    world = DeFiWorld()
    quote = world.weth
    target = world.new_token("KRT", 18)
    pool = world.dex_pair(target, quote, 263_000 * target.unit, 1_000 * quote.unit)
    sink = world.dex_pair(target, quote, 2_000_000 * target.unit, 12_400 * quote.unit)

    # The decoy borrower is deployed by its own EOA, so its creation-root
    # tag differs from the attack contract's — anchoring on the wrong one
    # must not find the other's trades.
    decoy_eoa = world.create_attacker("decoy-eoa")
    decoy = world.chain.deploy(
        decoy_eoa, ScriptedAttackContract, lambda atk: None, hint="decoy"
    )
    decoy_token = world.new_token("DCY", 18)
    decoy_pair = world.dex_pair(
        decoy_token, quote, 100_000 * decoy_token.unit, 1_000 * quote.unit
    )
    decoy_token.mint(decoy.address, 10 * decoy_token.unit)  # flash-swap fee

    n_buys, buy_amount = 18, 20 * quote.unit
    borrow = n_buys * buy_amount + 10 * quote.unit
    solo = world.dydx(funding={quote: borrow * 2})

    def body(atk: ScriptedAttackContract) -> None:
        # the decoy's borrow-and-repay flash swap rides inside the attack tx
        atk.call(
            decoy.address,
            "run_uniswap",
            decoy_pair.address,
            decoy_token.address,
            1_000 * decoy_token.unit,
        )
        for _ in range(n_buys):
            atk.swap_pool(pool.address, quote.address, buy_amount)
        atk.swap_pool(sink.address, target.address, atk.balance(target.address))

    attacker = world.create_attacker("attacker-eoa")
    contract = world.chain.deploy(
        attacker, ScriptedAttackContract, body, hint="attacker-contract"
    )
    world.fund_weth(contract.address, 10 * quote.unit)  # dYdX deposit rounding
    trace = world.chain.transact(
        attacker, contract.address, "run_dydx", solo.address, quote.address, borrow
    )
    return world, trace, decoy.address, contract.address


class TestMultiProviderAnchoring:
    def test_uniswap_loan_listed_first_with_decoy_borrower(self, two_provider_outcome):
        _, trace, decoy_address, contract_address = two_provider_outcome
        loans = FlashLoanIdentifier().identify(trace)
        providers = [loan.provider for loan in loans]
        assert providers[0] == "Uniswap"
        assert "dYdX" in providers
        assert loans[0].borrower == decoy_address
        dydx = next(loan for loan in loans if loan.provider == "dYdX")
        assert dydx.borrower == contract_address

    def test_first_borrower_anchor_alone_misses_the_attack(self, two_provider_outcome):
        """The pre-fix behavior: matching only ``flash_loans[0]``'s tag
        finds nothing, because the KRP trades belong to the dYdX borrower."""
        world, trace, _, _ = two_provider_outcome
        detector = world.detector()
        report = detector.analyze(trace)
        assert report is not None
        assert detector.matcher.match(report.trades, report.borrower_tags[0]) == []

    def test_union_over_borrowers_detects_the_attack(self, two_provider_outcome):
        world, trace, decoy_address, contract_address = two_provider_outcome
        report = world.detector().analyze(trace)
        assert report is not None
        assert report.is_attack
        assert AttackPattern.KRP in report.patterns
        assert report.borrowers == (decoy_address, contract_address)
        assert len(report.borrower_tags) == 2
        assert report.borrower_tags[0] != report.borrower_tags[1]
        # `borrower` stays the first-identified loan's borrower (compat)
        assert report.borrower == decoy_address

    def test_group_profit_flows_nets_the_borrower_set(self, two_provider_outcome):
        world, trace, _, _ = two_provider_outcome
        report = world.detector().analyze(trace)
        quote = world.weth.address
        # the KRP dump is profitable in the quote asset for the group
        assert report.profit_flows.get(quote, 0) > 0

    def test_export_carries_the_borrower_set(self, two_provider_outcome):
        from repro.leishen.export import report_to_dict

        world, trace, decoy_address, contract_address = two_provider_outcome
        payload = report_to_dict(world.detector().analyze(trace))
        assert payload["borrowers"] == [str(decoy_address), str(contract_address)]
        assert len(payload["borrower_tags"]) == 2

    def test_single_provider_reports_are_unchanged(self, bzx1_outcome):
        """The common case keeps its shape: one borrower, one tag, and the
        primary fields mirror the set's first entry."""
        report = bzx1_outcome.world.detector().analyze(bzx1_outcome.trace)
        assert report.borrowers == (report.borrower,)
        assert report.borrower_tags == (report.borrower_tag,)
