"""JSON export of reports and scan results."""

import json

import pytest

from repro.leishen import report_to_dict, report_to_json, scan_result_to_dict


class TestReportExport:
    def test_round_trips_through_json(self, bzx1_outcome):
        report = bzx1_outcome.world.detector().analyze(bzx1_outcome.trace)
        text = report_to_json(report, bzx1_outcome.world.registry)
        data = json.loads(text)
        assert data["is_attack"] is True
        assert data["patterns"] == ["SBS"]
        assert data["flash_loans"][0]["provider"] == "dYdX"
        assert data["price_volatility"] == pytest.approx(report.volatility())

    def test_symbols_resolved_via_registry(self, bzx1_outcome):
        report = bzx1_outcome.world.detector().analyze(bzx1_outcome.trace)
        data = report_to_dict(report, bzx1_outcome.world.registry)
        traded = {leg["sell"]["token"] for leg in data["trades"]}
        traded |= {leg["buy"]["token"] for leg in data["trades"]}
        assert "WBTC" in traded

    def test_amounts_are_strings(self, bzx1_outcome):
        """Wei-scale integers exceed JSON number precision; they must be
        serialized as strings."""
        report = bzx1_outcome.world.detector().analyze(bzx1_outcome.trace)
        data = report_to_dict(report)
        assert all(isinstance(l["amount"], str) for l in data["flash_loans"])
        assert all(isinstance(t["sell"]["amount"], str) for t in data["trades"])

    def test_benign_report_exports(self, world):
        from repro.study.scenarios.base import ScriptedAttackContract

        token = world.new_token("EXB")
        solo = world.dydx(funding={token: 10**6 * token.unit})
        user = world.create_attacker("u")
        bot = world.chain.deploy(user, ScriptedAttackContract, lambda atk: None)
        token.mint(bot.address, 10)
        trace = world.chain.transact(
            user, bot.address, "run_dydx", solo.address, token.address, 10**3 * token.unit
        )
        report = world.detector().analyze(trace)
        data = report_to_dict(report)
        assert data["is_attack"] is False and data["patterns"] == []


class TestScanExport:
    def test_scan_summary_json_safe(self):
        from repro.workload import WildScanConfig, WildScanner

        result = WildScanner(WildScanConfig(scale=0.005, seed=9)).run()
        data = scan_result_to_dict(result)
        json.dumps(data)  # must not raise
        assert data["per_pattern"]["KRP"]["fp"] == 0
        assert data["detected"] == result.detected_count
