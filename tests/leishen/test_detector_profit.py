"""End-to-end detector pipeline, reports, profit analysis, heuristics."""

import pytest

from repro.chain import ETH
from repro.leishen import (
    AttackPattern,
    DEFAULT_AGGREGATOR_APPS,
    FlashLoanIdentifier,
    LeiShenConfig,
    ProfitAnalyzer,
    YieldAggregatorHeuristic,
    pair_volatilities,
    price_volatility,
    profit_statistics,
)
from repro.leishen.profit import ProfitBreakdown


class TestDetectorPipeline:
    def test_bzx1_detected_sbs(self, bzx1_outcome):
        report = bzx1_outcome.world.detector().analyze(bzx1_outcome.trace)
        assert report is not None and report.is_attack
        assert report.patterns == {AttackPattern.SBS}
        assert report.borrower in bzx1_outcome.attack_contracts
        assert len(report.trades) == 3

    def test_non_flash_tx_returns_none(self, world):
        token = world.new_token("NF")
        a, b = world.create_attacker("a"), world.create_attacker("b")
        token.mint(a, 100)
        trace = world.chain.transact(a, token.address, "transfer", b, 10)
        assert world.detector().analyze(trace) is None

    def test_failed_tx_returns_none(self, world):
        token = world.new_token("NF2")
        a, b = world.create_attacker("a"), world.create_attacker("b")
        trace = world.chain.transact(a, token.address, "transfer", b, 10, allow_failure=True)
        assert world.detector().analyze(trace) is None

    def test_benign_flash_loan_not_flagged(self, world):
        """A flash loan that only borrows and repays is not an attack."""
        from repro.study.scenarios.base import ScriptedAttackContract

        token = world.new_token("NB")
        solo = world.dydx(funding={token: 10**6 * token.unit})
        user = world.create_attacker("u")
        bot = world.chain.deploy(user, ScriptedAttackContract, lambda atk: None)
        token.mint(bot.address, 10)
        trace = world.chain.transact(
            user, bot.address, "run_dydx", solo.address, token.address, 1_000 * token.unit
        )
        report = world.detector().analyze(trace)
        assert report is not None  # it IS a flash loan transaction
        assert not report.is_attack

    def test_account_level_ablation_misses_split_contract_attacks(self):
        """Attacks split across two attacker contracts (Wault) need the
        creation-root tagging; raw account-level transfers miss them —
        the paper's core argument for application-level lifting."""
        from repro.leishen import LeiShen
        from repro.study.scenarios import SCENARIO_BUILDERS

        outcome = SCENARIO_BUILDERS["wault"]()
        config = LeiShenConfig(
            simplifier=outcome.world.simplifier_config(),
            use_app_level_transfers=False,
        )
        report = LeiShen(outcome.world.chain, config).analyze(outcome.trace)
        assert report is not None
        assert not report.is_attack
        # the full pipeline detects it
        full = outcome.world.detector().analyze(outcome.trace)
        assert full.is_attack

    def test_report_summary_renders(self, bzx1_outcome):
        report = bzx1_outcome.world.detector().analyze(bzx1_outcome.trace)
        text = report.summary()
        assert "SBS" in text and "dYdX" in text

    def test_profit_flows_nonempty(self, bzx1_outcome):
        report = bzx1_outcome.world.detector().analyze(bzx1_outcome.trace)
        assert report.profit_flows  # borrower ends with net asset deltas


class TestVolatility:
    def test_pair_volatility_requires_two_trades(self, bzx1_outcome):
        report = bzx1_outcome.world.detector().analyze(bzx1_outcome.trace)
        vols = pair_volatilities(report.trades)
        assert len(vols) >= 1
        assert all(v >= 0 for v in vols.values())

    def test_headline_volatility_positive_for_attack(self, bzx1_outcome):
        report = bzx1_outcome.world.detector().analyze(bzx1_outcome.trace)
        assert price_volatility(report.trades) > 0.28  # SBS threshold held

    def test_empty_trades_zero(self):
        assert price_volatility([]) == 0.0


class TestProfit:
    def test_attack_profit_positive(self, bzx1_outcome):
        world = bzx1_outcome.world
        analyzer = ProfitAnalyzer(world.registry)
        loans = FlashLoanIdentifier().identify(bzx1_outcome.trace)
        accounts = [bzx1_outcome.attacker, *bzx1_outcome.attack_contracts]
        breakdown = analyzer.breakdown(bzx1_outcome.trace, loans, accounts)
        assert breakdown.profit_usd > 0
        assert breakdown.borrowed_usd > breakdown.profit_usd
        assert 0 < breakdown.yield_rate < 1

    def test_statistics_shape(self):
        downs = [ProfitBreakdown("0x1", 100.0, 1_000.0),
                 ProfitBreakdown("0x2", 900.0, 1_000.0),
                 ProfitBreakdown("0x3", 10.0, 100.0)]
        stats = profit_statistics(downs)
        assert stats["min_profit_usd"] == 10.0
        assert stats["max_profit_usd"] == 900.0
        assert stats["total_profit_usd"] == pytest.approx(1010.0)
        assert stats["top10_profit_usd"] == 900.0

    def test_statistics_empty(self):
        assert profit_statistics([]) == {}


class TestHeuristic:
    def test_aggregator_sender_suppresses_mbs(self, world):
        """The Sec. VI-C heuristic drops MBS detections from aggregators."""
        from repro.leishen import AttackReport, PatternMatch
        from repro.leishen.trades import Trade, TradeKind

        detector = world.detector()
        keeper = world.chain.create_eoa("keeper", label="Yearn Strategy: Keeper")
        assert "Yearn Strategy" in DEFAULT_AGGREGATOR_APPS
        heuristic = YieldAggregatorHeuristic(detector.tagger)

        token = world.new_token("HH")
        match = PatternMatch(pattern=AttackPattern.MBS, target_token=token.address, trades=())
        # a trace whose sender is the labelled keeper
        plain = world.create_attacker("p")
        token.mint(keeper, 10)
        trace = world.chain.transact(keeper, token.address, "transfer", plain, 1)
        report = AttackReport(
            tx_hash=trace.tx_hash, flash_loans=[], borrower=keeper,
            borrower_tag="x", trades=[], matches=[match],
        )
        filtered = heuristic.apply(trace, report)
        assert filtered.matches == []

    def test_plain_sender_untouched(self, world):
        from repro.leishen import AttackReport, PatternMatch

        detector = world.detector()
        heuristic = YieldAggregatorHeuristic(detector.tagger)
        sender = world.create_attacker("plain")
        token = world.new_token("HH2")
        token.mint(sender, 10)
        other = world.create_attacker("o")
        trace = world.chain.transact(sender, token.address, "transfer", other, 1)
        match = PatternMatch(pattern=AttackPattern.MBS, target_token=token.address, trades=())
        report = AttackReport(
            tx_hash=trace.tx_hash, flash_loans=[], borrower=sender,
            borrower_tag="x", trades=[], matches=[match],
        )
        assert heuristic.apply(trace, report).matches == [match]

    def test_sbs_matches_survive_heuristic(self, world):
        from repro.leishen import AttackReport, PatternMatch

        detector = world.detector()
        keeper = world.chain.create_eoa("k2", label="Harvest Strategy: Keeper")
        heuristic = YieldAggregatorHeuristic(detector.tagger)
        token = world.new_token("HH3")
        token.mint(keeper, 10)
        other = world.create_attacker("o")
        trace = world.chain.transact(keeper, token.address, "transfer", other, 1)
        sbs = PatternMatch(pattern=AttackPattern.SBS, target_token=token.address, trades=())
        mbs = PatternMatch(pattern=AttackPattern.MBS, target_token=token.address, trades=())
        report = AttackReport(
            tx_hash=trace.tx_hash, flash_loans=[], borrower=keeper,
            borrower_tag="x", trades=[], matches=[sbs, mbs],
        )
        assert heuristic.apply(trace, report).matches == [sbs]
