"""Tag-cache warm start: snapshots must never change a tag result.

``AccountTagger.label_sync_snapshot()`` captures the synced label and
creation-tree state right after a deterministic world build; installing
it into an identically built chain skips the cold sync. The contract
pinned here: warm start is *safe-or-ignored* — it either reproduces the
cold tagger bit for bit, or (on any counter mismatch) is silently
dropped and the cold sync runs instead.
"""

from __future__ import annotations

import pytest

from repro.engine.scan import (
    build_shard_context,
    clear_tag_snapshots,
    finalize_shard,
    run_shard,
    tag_snapshot_for,
)
from repro.leishen.tagging import AccountTagger
from repro.workload.generator import WildScanConfig

SCALE = 0.005
SEED = 7
SHARDS = 4


@pytest.fixture(autouse=True)
def _fresh_snapshot_store():
    clear_tag_snapshots()
    yield
    clear_tag_snapshots()


def _config() -> WildScanConfig:
    return WildScanConfig(scale=SCALE, seed=SEED, shards=SHARDS)


class TestSnapshotEquivalence:
    def test_warm_tagger_resolves_identical_tags(self):
        cold_ctx = build_shard_context(_config(), 0, SHARDS)
        cold_tagger = cold_ctx.detector.tagger
        assert not cold_tagger.warm_started
        snapshot = cold_tagger.label_sync_snapshot()

        warm_ctx = build_shard_context(
            _config(), 0, SHARDS, tag_snapshot=snapshot
        )
        warm_tagger = warm_ctx.detector.tagger
        assert warm_tagger.warm_started
        chain = warm_ctx.detector.chain
        addresses = set(chain.created_by) | set(chain.labels)
        assert addresses, "world build produced no accounts to tag"
        for address in sorted(addresses):
            assert warm_tagger.tag_of(address) == cold_tagger.tag_of(address)

    def test_warm_shard_result_byte_identical(self):
        """A full shard executed on a warm-started tagger produces the
        same ShardResult as the cold build — detections, counters, all."""
        cfg = _config()
        from repro.engine.plan import build_schedule, shard_schedule

        parts = shard_schedule(build_schedule(cfg.scale, cfg.seed), SHARDS)
        cold = run_shard((cfg, 1, SHARDS, parts[1]))
        snapshot = tag_snapshot_for(cfg.seed, cfg.scale, 1, SHARDS)
        assert snapshot is not None  # captured by the first build
        clear_tag_snapshots()
        warm = run_shard((cfg, 1, SHARDS, parts[1], snapshot))
        assert warm.total_transactions == cold.total_transactions
        assert [d.tx_hash for d in warm.detections] == [
            d.tx_hash for d in cold.detections
        ]
        assert warm.row_counts == cold.row_counts

    def test_snapshot_is_json_safe(self):
        import json

        ctx = build_shard_context(_config(), 0, SHARDS)
        snapshot = ctx.detector.tagger.label_sync_snapshot()
        decoded = json.loads(json.dumps(snapshot))
        tagger = AccountTagger(ctx.detector.chain, snapshot=decoded)
        assert tagger.warm_started


class TestSnapshotRejection:
    def test_foreign_chain_snapshot_ignored(self):
        """A snapshot from shard 0 must be rejected by shard 1's chain
        (different namespace), falling back to the cold sync."""
        ctx0 = build_shard_context(_config(), 0, SHARDS)
        snapshot = ctx0.detector.tagger.label_sync_snapshot()
        ctx1_ctx = build_shard_context(
            _config(), 1, SHARDS, tag_snapshot=snapshot
        )
        assert not ctx1_ctx.detector.tagger.warm_started

    def test_stale_generation_snapshot_ignored(self):
        ctx = build_shard_context(_config(), 0, SHARDS)
        snapshot = ctx.detector.tagger.label_sync_snapshot()
        stale = dict(snapshot, version=snapshot["version"] - 1)
        tagger = AccountTagger(ctx.detector.chain, snapshot=stale)
        assert not tagger.warm_started

    def test_malformed_snapshot_ignored(self):
        ctx = build_shard_context(_config(), 0, SHARDS)
        tagger = AccountTagger(ctx.detector.chain, snapshot={"nonsense": True})
        assert not tagger.warm_started
        # and the cold sync still produced a working tagger
        chain = ctx.detector.chain
        for address in list(chain.labels)[:3]:
            assert tagger.tag_of(address) is not None


class TestProcessLevelStore:
    def test_rebuilding_same_shard_warm_starts(self):
        first = build_shard_context(_config(), 2, SHARDS)
        assert not first.detector.tagger.warm_started
        second = build_shard_context(_config(), 2, SHARDS)
        assert second.detector.tagger.warm_started

    def test_store_is_keyed_by_shard(self):
        build_shard_context(_config(), 0, SHARDS)
        assert tag_snapshot_for(SEED, SCALE, 0, SHARDS) is not None
        assert tag_snapshot_for(SEED, SCALE, 3, SHARDS) is None

    def test_clear_resets_the_store(self):
        build_shard_context(_config(), 0, SHARDS)
        clear_tag_snapshots()
        assert tag_snapshot_for(SEED, SCALE, 0, SHARDS) is None
        rebuilt = build_shard_context(_config(), 0, SHARDS)
        assert not rebuilt.detector.tagger.warm_started
