"""Pattern registry: plugin set, settings normalization, the matcher seam."""

import pytest

from repro.chain import Address
from repro.leishen import PatternConfig, PatternMatcher, Trade, TradeKind
from repro.leishen.registry import (
    ALL_PATTERN_KEYS,
    LEGACY_FIELD_MAP,
    PAPER_PATTERN_KEYS,
    REGISTRY_VERSION,
    PatternRegistry,
    PatternSettings,
    default_registry,
    enabled_pattern_keys,
)

X = Address("0x" + "aa" * 20)
Q = Address("0x" + "bb" * 20)
BORROWER = "0xatk"


def buy(seq, amount_q, amount_x, buyer=BORROWER, seller="Pool"):
    return Trade(seq=seq, kind=TradeKind.SWAP, buyer=buyer, seller=seller,
                 amount_sell=amount_q, token_sell=Q, amount_buy=amount_x, token_buy=X)


def sell(seq, amount_x, amount_q, buyer=BORROWER, seller="Venue"):
    return Trade(seq=seq, kind=TradeKind.SWAP, buyer=buyer, seller=seller,
                 amount_sell=amount_x, token_sell=X, amount_buy=amount_q, token_buy=Q)


class TestDefaultRegistry:
    def test_ships_every_pattern_in_order(self):
        assert default_registry().keys() == ALL_PATTERN_KEYS

    def test_paper_keys_are_the_default_prefix(self):
        assert ALL_PATTERN_KEYS[:3] == PAPER_PATTERN_KEYS == ("KRP", "SBS", "MBS")

    def test_select_preserves_enabled_order(self):
        registry = default_registry()
        selected = registry.select(("MBS", "KRP"))
        assert tuple(p.key for p in selected) == ("MBS", "KRP")

    def test_unknown_key_is_loud(self):
        with pytest.raises(KeyError, match="unknown pattern key"):
            default_registry().get("NOPE")

    def test_duplicate_key_rejected(self):
        krp = default_registry().get("KRP")
        with pytest.raises(ValueError, match="duplicate pattern key"):
            PatternRegistry([krp, krp])


class TestPatternSettings:
    def test_none_normalizes_to_paper_defaults(self):
        settings = PatternSettings.from_value(None)
        assert settings == PatternSettings()
        assert settings.enabled == PAPER_PATTERN_KEYS
        assert settings.registry_version == REGISTRY_VERSION

    def test_settings_pass_through_unchanged(self):
        settings = PatternSettings(enabled=("KRP",))
        assert PatternSettings.from_value(settings) is settings

    def test_legacy_flat_config_maps_field_for_field(self):
        legacy = PatternConfig(krp_min_buys=6, sbs_min_volatility=0.5)
        settings = PatternSettings.from_value(legacy)
        assert settings.enabled == PAPER_PATTERN_KEYS
        for field, (key, name) in LEGACY_FIELD_MAP.items():
            assert settings.param(key, name, None) == getattr(legacy, field)

    def test_legacy_round_trips_through_settings(self):
        legacy = PatternConfig(krp_min_buys=9, mbs_min_rounds=4)
        assert PatternSettings.from_value(legacy).to_legacy_config() == legacy

    def test_junk_value_rejected(self):
        with pytest.raises(TypeError, match="pattern config must be"):
            PatternSettings.from_value({"krp_min_buys": 5})

    def test_make_sorts_params_structurally(self):
        a = PatternSettings.make(params={"SBS": {"min_volatility": 0.5},
                                         "KRP": {"min_buys": 6}})
        b = PatternSettings.make(params={"KRP": {"min_buys": 6},
                                         "SBS": {"min_volatility": 0.5}})
        assert a == b and hash(a) == hash(b)

    def test_enabled_pattern_keys_for_every_flavour(self):
        assert enabled_pattern_keys(None) == PAPER_PATTERN_KEYS
        assert enabled_pattern_keys(PatternConfig()) == PAPER_PATTERN_KEYS
        custom = PatternSettings(enabled=("MINT", "KRP"))
        assert enabled_pattern_keys(custom) == ("MINT", "KRP")


class TestMatcherSeam:
    def krp_series(self, n=6):
        trades = [buy(i, (100 + 10 * i) * 10, 10) for i in range(n)]
        trades.append(sell(n, 50, 5_000))
        return trades

    def test_default_matcher_runs_paper_patterns(self):
        matches = PatternMatcher().match(self.krp_series(), BORROWER)
        assert {m.pattern for m in matches} == {"KRP"}

    def test_disabled_pattern_never_fires(self):
        settings = PatternSettings(enabled=("SBS", "MBS"))
        assert PatternMatcher(settings).match(self.krp_series(), BORROWER) == []

    def test_threshold_override_via_namespaced_params(self):
        series = self.krp_series(n=4)  # four buys: below the paper's 5
        assert PatternMatcher().match(series, BORROWER) == []
        loose = PatternSettings.make(enabled=("KRP",), params={"KRP": {"min_buys": 4}})
        matches = PatternMatcher(loose).match(series, BORROWER)
        assert {m.pattern for m in matches} == {"KRP"}

    def test_legacy_flat_config_still_drives_thresholds(self):
        series = self.krp_series(n=4)
        matches = PatternMatcher(PatternConfig(krp_min_buys=4)).match(series, BORROWER)
        assert {m.pattern for m in matches} == {"KRP"}
