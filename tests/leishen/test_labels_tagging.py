"""Label database and creation-tree account tagging (paper Fig. 7)."""

import pytest

from repro.chain import BLACKHOLE, Chain, Contract
from repro.leishen import AccountTagger, BLACKHOLE_TAG, LabelDatabase, app_name_of_label


class Dummy(Contract):
    pass


class TestLabelDatabase:
    def test_app_name_extraction(self):
        assert app_name_of_label("Uniswap: Factory Contract") == "Uniswap"
        assert app_name_of_label("AAVE") == "AAVE"
        assert app_name_of_label("bZx : Fulcrum") == "bZx"

    def test_add_remove(self, chain):
        account = chain.create_eoa()
        db = LabelDatabase()
        db.add(account, "Yearn: Vault")
        assert db.app_of(account) == "Yearn"
        assert account in db
        db.remove(account)
        assert db.app_of(account) is None

    def test_from_chain(self, chain):
        account = chain.create_eoa(label="Curve: Deployer")
        db = LabelDatabase.from_chain(chain)
        assert db.app_of(account) == "Curve"

    def test_addresses_of_app(self, chain):
        a = chain.create_eoa(label="X: One")
        b = chain.create_eoa(label="X: Two")
        db = LabelDatabase.from_chain(chain)
        assert set(db.addresses_of_app("X")) == {a, b}


class TestTaggingCases:
    def _tree(self, chain, root_label=None):
        root = chain.create_eoa(label=root_label)
        mid = chain.deploy(root, Dummy)
        leaf = chain.deploy(mid.address, Dummy)
        return root, mid, leaf

    def test_fig7a_single_tag_propagates(self, chain):
        root, mid, leaf = self._tree(chain)
        chain.labels[mid.address] = "Uniswap: Factory"
        tagger = AccountTagger(chain)
        assert tagger.tag_of(leaf.address) == "Uniswap"
        assert tagger.tag_of(root) == "Uniswap"

    def test_fig7b_no_tag_uses_root_address(self, chain):
        root, mid, leaf = self._tree(chain)
        tagger = AccountTagger(chain)
        assert tagger.tag_of(leaf.address) == str(root)
        assert tagger.tag_of(mid.address) == str(root)
        # both accounts share the root tag: attacker EOA + contract group
        assert tagger.tag_of(leaf.address) == tagger.tag_of(mid.address)

    def test_fig7c_conflicting_tags_untaggable(self, chain):
        root, mid, leaf = self._tree(chain, root_label="Yearn: Deployer")
        chain.labels[leaf.address] = "Uniswap: Pool"
        tagger = AccountTagger(chain)
        assert tagger.tag_of(mid.address) is None  # sees Yearn above, Uniswap below

    def test_siblings_do_not_conflict(self, chain):
        root = chain.create_eoa(label="A: Deployer")
        child_a = chain.deploy(root, Dummy)
        child_b = chain.deploy(root, Dummy)
        chain.labels[child_b.address] = "B: Pool"
        tagger = AccountTagger(chain)
        # child_a's tree: ancestors {root(A)} + its own descendants: no B
        assert tagger.tag_of(child_a.address) == "A"

    def test_blackhole_tag(self, chain):
        tagger = AccountTagger(chain)
        assert tagger.tag_of(BLACKHOLE) == BLACKHOLE_TAG

    def test_plain_eoa_tagged_by_own_address(self, chain):
        eoa = chain.create_eoa()
        tagger = AccountTagger(chain)
        assert tagger.tag_of(eoa) == str(eoa)

    def test_cache_invalidation_on_new_deploy(self, chain):
        root = chain.create_eoa()
        tagger = AccountTagger(chain)
        assert tagger.tag_of(root) == str(root)
        mid = chain.deploy(root, Dummy)
        chain.labels[mid.address] = "Late: Label"
        assert tagger.tag_of(root) == "Late"

    def test_removing_attacker_labels(self, chain):
        attacker = chain.create_eoa(label="Exploiter: bZx Attacker")
        tagger = AccountTagger(chain)
        assert tagger.tag_of(attacker) == "Exploiter"
        tagger.labels.remove(attacker)
        tagger.invalidate()
        assert tagger.tag_of(attacker) == str(attacker)


class TestTagTransfers:
    def test_lifts_all_fields(self, chain, registry):
        deployer = chain.create_eoa(label="Token: Deployer")
        token = registry.deploy(chain, deployer, "T")
        a = chain.create_eoa()
        b = chain.create_eoa()
        token.mint(a, 10)
        trace = chain.transact(a, token.address, "transfer", b, 10)
        tagger = AccountTagger(chain)
        tagged = tagger.tag_transfers(trace.transfers)
        assert len(tagged) == 1
        t = tagged[0]
        assert t.tag_sender == str(a) and t.tag_receiver == str(b)
        assert t.amount == 10 and t.token == token.address
