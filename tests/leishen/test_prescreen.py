"""Pre-screen soundness: a rejected trace provably holds no flash loan.

The screen's contract is one-sided — ``admits(trace) == False`` implies
``FlashLoanIdentifier.identify(trace) == []`` — so these tests pin the
necessary-condition side (known attacks from all three providers are
always admitted), the rejection side (plain swaps/transfers are screened
out), and the snapshot machinery (deterministic Bloom bits, counter
validation on ``from_wire``). The engine-level byte-parity property
lives in ``tests/engine/test_prescreen_parity.py``.
"""

from __future__ import annotations

import pytest

from repro.leishen import FlashLoanIdentifier
from repro.leishen.prescreen import BLOOM_THRESHOLD, AddressBloom, PreScreen
from repro.study.scenarios import SCENARIO_BUILDERS


@pytest.fixture(scope="module")
def outcomes():
    """One scenario per provider fingerprint (dYdX, Uniswap, AAVE)."""
    return {
        key: SCENARIO_BUILDERS[key]()
        for key in ("bzx1", "harvest", "valuedefi")
    }


class TestAdmits:
    @pytest.mark.parametrize("key", ["bzx1", "harvest", "valuedefi"])
    def test_known_attack_never_screened_out(self, outcomes, key):
        # The screen is consulted before any tagging; losing a real
        # attack here would silently change scan results.
        assert PreScreen().admits(outcomes[key].trace)

    @pytest.mark.parametrize("key", ["bzx1", "harvest", "valuedefi"])
    def test_identifier_agrees_with_admit(self, outcomes, key):
        trace = outcomes[key].trace
        assert FlashLoanIdentifier().identify(trace) != []
        assert PreScreen().admits(trace)

    def test_plain_swap_screened_out(self, world):
        token = world.new_token("PSC")
        pair = world.dex_pair(token, world.weth, 10**6 * token.unit, 10**4 * 10**18)
        trader = world.create_attacker("t")
        token.mint(trader, 10**6 * token.unit)
        router = world.dex_router()
        world.approve(trader, token, router.address)
        trace = world.chain.transact(
            trader, router.address, "swapExactTokensForTokens",
            100 * token.unit, 0, (pair.address,), token.address,
        )
        screen = PreScreen(world.chain)
        assert not screen.admits(trace)
        assert screen.screened == 1 and screen.admitted == 0
        # soundness: the identifier agrees the rejection was safe
        assert FlashLoanIdentifier().identify(trace) == []

    def test_plain_transfer_screened_out(self, world):
        token = world.new_token("PS2")
        a = world.create_attacker("a")
        b = world.create_attacker("b")
        token.mint(a, 100)
        trace = world.chain.transact(a, token.address, "transfer", b, 10)
        assert not PreScreen(world.chain).admits(trace)

    def test_rejection_never_consults_the_address_table(self, outcomes):
        # A chain-less screen has an empty table; admits() must still
        # pass every real attack purely on the fingerprint markers —
        # this is the guard against attacker-deployed unlabelled pools.
        screen = PreScreen()
        assert screen.table_size == 0
        for outcome in outcomes.values():
            assert screen.admits(outcome.trace)
        assert screen.fast_hits == 0  # empty table: markers alone admitted

    def test_counters_accumulate(self, outcomes, world):
        screen = PreScreen(world.chain)
        token = world.new_token("PS3")
        a = world.create_attacker("a")
        token.mint(a, 100)
        plain = world.chain.transact(a, token.address, "transfer", a, 10)
        for outcome in outcomes.values():
            assert screen.admits(outcome.trace)
        assert not screen.admits(plain)
        assert screen.admitted == 3
        assert screen.screened == 1


class TestAddressBloom:
    def test_no_false_negatives(self):
        bloom = AddressBloom(256)
        members = [f"0x{i:040x}" for i in range(200)]
        for address in members:
            bloom.add(address)
        assert all(address in bloom for address in members)

    def test_deterministic_bits(self):
        a, b = AddressBloom(128), AddressBloom(128)
        for address in ("0xabc", "0xdef", "0x123"):
            a.add(address)
            b.add(address)
        assert a.to_wire() == b.to_wire()

    def test_wire_roundtrip(self):
        bloom = AddressBloom(64)
        for i in range(40):
            bloom.add(f"0x{i:x}")
        clone = AddressBloom.from_wire(bloom.to_wire())
        assert clone.to_wire() == bloom.to_wire()
        assert all(f"0x{i:x}" in clone for i in range(40))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AddressBloom(0)


class TestSnapshots:
    def test_wire_roundtrip_preserves_table(self, world):
        world.dex_pair(
            world.new_token("SNP"), world.weth, 10**6 * 10**18, 10**4 * 10**18
        )
        screen = PreScreen(world.chain)
        clone = PreScreen.from_wire(screen.to_wire(), chain=world.chain)
        assert clone.providers == screen.providers
        assert clone.pools == screen.pools
        assert clone.table_size == screen.table_size

    def test_stale_snapshot_harvests_cold(self, world):
        screen = PreScreen(world.chain)
        payload = screen.to_wire()
        # grow the chain: a new factory-created pool must not be masked
        # by the stale table, so from_wire falls back to a cold harvest
        world.dex_pair(
            world.new_token("STL"), world.weth, 10**6 * 10**18, 10**4 * 10**18
        )
        rebuilt = PreScreen.from_wire(payload, chain=world.chain)
        assert rebuilt.table_size == PreScreen(world.chain).table_size
        assert rebuilt.pools >= screen.pools

    def test_incremental_resync_matches_cold_harvest(self, world):
        screen = PreScreen(world.chain)
        world.dex_pair(
            world.new_token("RSN"), world.weth, 10**6 * 10**18, 10**4 * 10**18
        )
        token = world.new_token("RS2")
        a = world.create_attacker("a")
        token.mint(a, 100)
        trace = world.chain.transact(a, token.address, "transfer", a, 10)
        screen.admits(trace)  # triggers the incremental re-sync
        cold = PreScreen(world.chain)
        assert screen.providers == cold.providers
        assert screen.pools == cold.pools

    def test_bloom_engages_past_threshold(self):
        screen = PreScreen()
        screen.pools = {f"0x{i:040x}" for i in range(BLOOM_THRESHOLD)}
        screen._rebuild_bloom()
        payload = screen.to_wire()
        assert payload["bloom"] is not None
        clone = PreScreen.from_wire(payload)
        assert all(screen._known(address) for address in screen.pools)
        assert all(clone._known(address) for address in screen.pools)
