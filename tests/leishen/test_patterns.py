"""KRP / SBS / MBS pattern matchers (paper Sec. IV-B)."""

import pytest

from repro.chain import Address
from repro.leishen import AttackPattern, PatternConfig, PatternMatcher, Trade, TradeKind

X = Address("0x" + "aa" * 20)  # target token
Q = Address("0x" + "bb" * 20)  # quote token
BORROWER = "0xatk"


def buy(seq, amount_q, amount_x, buyer=BORROWER, seller="Pool"):
    return Trade(seq=seq, kind=TradeKind.SWAP, buyer=buyer, seller=seller,
                 amount_sell=amount_q, token_sell=Q, amount_buy=amount_x, token_buy=X)


def sell(seq, amount_x, amount_q, buyer=BORROWER, seller="Pool"):
    return Trade(seq=seq, kind=TradeKind.SWAP, buyer=buyer, seller=seller,
                 amount_sell=amount_x, token_sell=X, amount_buy=amount_q, token_buy=Q)


@pytest.fixture()
def matcher():
    return PatternMatcher()


class TestKRP:
    def make_series(self, n, rising=True):
        trades = []
        for i in range(n):
            price = 100 + (10 * i if rising else -10 * i)
            trades.append(buy(i, price * 10, 10))
        trades.append(sell(n, 50, 5_000, seller="Venue"))
        return trades

    def test_five_rising_buys_match(self, matcher):
        matches = matcher.match(self.make_series(5), BORROWER)
        assert any(m.pattern == AttackPattern.KRP for m in matches)

    def test_four_buys_insufficient(self, matcher):
        matches = matcher.match(self.make_series(4), BORROWER)
        assert not any(m.pattern == AttackPattern.KRP for m in matches)

    def test_falling_price_no_match(self, matcher):
        matches = matcher.match(self.make_series(6, rising=False), BORROWER)
        assert not any(m.pattern == AttackPattern.KRP for m in matches)

    def test_mixed_sellers_not_grouped(self, matcher):
        trades = []
        for i in range(6):
            trades.append(buy(i, (100 + 10 * i) * 10, 10, seller=f"Pool{i % 2}"))
        trades.append(sell(6, 30, 4_000))
        matches = matcher.match(trades, BORROWER)
        assert not any(m.pattern == AttackPattern.KRP for m in matches)

    def test_sell_before_buys_no_match(self, matcher):
        trades = [sell(0, 50, 5_000)] + [buy(i + 1, (100 + 10 * i) * 10, 10) for i in range(6)]
        matches = matcher.match(trades, BORROWER)
        assert not any(m.pattern == AttackPattern.KRP for m in matches)

    def test_threshold_configurable(self):
        matcher = PatternMatcher(PatternConfig(krp_min_buys=3))
        matches = matcher.match(self.make_series(3), BORROWER)
        assert any(m.pattern == AttackPattern.KRP for m in matches)

    def test_other_buyers_ignored(self, matcher):
        trades = [buy(i, (100 + 10 * i) * 10, 10, buyer="somebody") for i in range(6)]
        trades.append(sell(6, 50, 5_000, buyer="somebody"))
        assert matcher.match(trades, BORROWER) == []

    def test_bzx2_style_consecutive_rise_matches(self, matcher):
        # the bZx-2 shape: every buy at or above the previous price, with
        # a plateau in the middle (same pool quote twice running), ending
        # strictly above the start — still a kept-raising series.
        prices = [100, 110, 110, 125, 140]
        trades = [buy(i, p * 10, 10) for i, p in enumerate(prices)]
        trades.append(sell(len(prices), 50, 5_000, seller="Venue"))
        matches = matcher.match(trades, BORROWER)
        assert any(m.pattern == AttackPattern.KRP for m in matches)

    def test_dip_in_middle_no_match(self, matcher):
        # regression: the matcher used to compare only the endpoints, so
        # a series that dipped mid-way (e.g. two unrelated buy runs
        # concatenated) still read as "rising". The price must climb
        # consecutively, not merely end above where it started.
        prices = [100, 140, 90, 120, 150]
        trades = [buy(i, p * 10, 10) for i, p in enumerate(prices)]
        trades.append(sell(len(prices), 50, 5_000, seller="Venue"))
        matches = matcher.match(trades, BORROWER)
        assert not any(m.pattern == AttackPattern.KRP for m in matches)

    def test_flat_series_no_match(self, matcher):
        # nondecreasing alone is not enough: an all-plateau series never
        # raised the price at all.
        trades = [buy(i, 100 * 10, 10) for i in range(5)]
        trades.append(sell(5, 50, 5_000, seller="Venue"))
        matches = matcher.match(trades, BORROWER)
        assert not any(m.pattern == AttackPattern.KRP for m in matches)


class TestSBS:
    def triple(self, p1=10.0, p2=15.0, p3=12.0, amount=100, raise_buyer="bZx"):
        return [
            buy(1, int(p1 * amount), amount),                       # t1 by borrower
            buy(2, int(p2 * 500), 500, buyer=raise_buyer),          # t2 raise (any app)
            sell(3, amount, int(p3 * amount)),                      # t3 symmetric sell
        ]

    def test_canonical_triple_matches(self, matcher):
        matches = matcher.match(self.triple(), BORROWER)
        assert any(m.pattern == AttackPattern.SBS for m in matches)

    def test_raise_by_victim_app_matches(self, matcher):
        """bZx-1: the raise trade is executed by the venue, not the borrower."""
        matches = matcher.match(self.triple(raise_buyer="bZx"), BORROWER)
        assert any(m.pattern == AttackPattern.SBS for m in matches)

    def test_below_28pct_volatility_no_match(self, matcher):
        matches = matcher.match(self.triple(p1=10.0, p2=12.0, p3=11.0), BORROWER)
        assert not any(m.pattern == AttackPattern.SBS for m in matches)

    def test_sell_price_above_raise_no_match(self, matcher):
        matches = matcher.match(self.triple(p3=16.0), BORROWER)
        assert not any(m.pattern == AttackPattern.SBS for m in matches)

    def test_sell_price_below_buy_no_match(self, matcher):
        matches = matcher.match(self.triple(p3=9.0), BORROWER)
        assert not any(m.pattern == AttackPattern.SBS for m in matches)

    def test_asymmetric_amounts_no_match(self, matcher):
        trades = self.triple()
        trades[2] = sell(3, 90, int(12.0 * 90))  # sells 90, bought 100
        matches = matcher.match(trades, BORROWER)
        assert not any(m.pattern == AttackPattern.SBS for m in matches)

    def test_amount_tolerance_accepts_dust_difference(self, matcher):
        trades = self.triple()
        trades[2] = sell(3, 99_950, int(12.0 * 99_950))
        trades[0] = buy(1, int(10.0 * 100_000), 100_000)
        matches = matcher.match(trades, BORROWER)
        assert any(m.pattern == AttackPattern.SBS for m in matches)

    def test_wrong_order_no_match(self, matcher):
        t1, t2, t3 = self.triple()
        reordered = [
            Trade(seq=1, kind=t2.kind, buyer=t2.buyer, seller=t2.seller,
                  amount_sell=t2.amount_sell, token_sell=t2.token_sell,
                  amount_buy=t2.amount_buy, token_buy=t2.token_buy),
            Trade(seq=2, kind=t1.kind, buyer=t1.buyer, seller=t1.seller,
                  amount_sell=t1.amount_sell, token_sell=t1.token_sell,
                  amount_buy=t1.amount_buy, token_buy=t1.token_buy),
            t3,
        ]
        matches = matcher.match(reordered, BORROWER)
        assert not any(m.pattern == AttackPattern.SBS for m in matches)


class TestMBS:
    def rounds(self, n, profitable=True, seller="Vault"):
        trades = []
        for i in range(n):
            buy_price, sell_price = (10, 11) if profitable else (11, 10)
            trades.append(buy(2 * i, buy_price * 100, 100, seller=seller))
            trades.append(sell(2 * i + 1, 100, sell_price * 100, seller=seller))
        return trades

    def test_three_profitable_rounds_match(self, matcher):
        matches = matcher.match(self.rounds(3), BORROWER)
        assert any(m.pattern == AttackPattern.MBS for m in matches)

    def test_two_rounds_insufficient(self, matcher):
        matches = matcher.match(self.rounds(2), BORROWER)
        assert not any(m.pattern == AttackPattern.MBS for m in matches)

    def test_unprofitable_rounds_no_match(self, matcher):
        matches = matcher.match(self.rounds(5, profitable=False), BORROWER)
        assert not any(m.pattern == AttackPattern.MBS for m in matches)

    def test_mixed_sellers_not_rounds(self, matcher):
        trades = self.rounds(2, seller="V1") + self.rounds(1, seller="V2")
        matches = matcher.match(trades, BORROWER)
        assert not any(m.pattern == AttackPattern.MBS for m in matches)

    def test_round_count_reported(self, matcher):
        matches = matcher.match(self.rounds(4), BORROWER)
        mbs = next(
            m for m in matches
            if m.pattern == AttackPattern.MBS and m.target_token == X
        )
        assert mbs.detail("n_rounds") == 4

    def test_mirror_quote_rounds_also_reported(self, matcher):
        """Selling the target back is buying the quote: the mirror-image
        round series on the quote token is reported as a second match of
        the same pattern (harmless for per-transaction verdicts)."""
        matches = matcher.match(self.rounds(4), BORROWER)
        tokens = {m.target_token for m in matches if m.pattern == AttackPattern.MBS}
        assert tokens == {X, Q}

    def test_threshold_configurable(self):
        matcher = PatternMatcher(PatternConfig(mbs_min_rounds=2))
        matches = matcher.match(self.rounds(2), BORROWER)
        assert any(m.pattern == AttackPattern.MBS for m in matches)


class TestGeneral:
    def test_untaggable_borrower_matches_nothing(self, matcher):
        trades = [buy(0, 1000, 100), sell(1, 100, 1100)]
        assert matcher.match(trades, None) == []

    def test_empty_trades(self, matcher):
        assert matcher.match([], BORROWER) == []
