"""Vector/object byte-equality for the lifted simplify/identify kernels.

The numpy path of :mod:`repro.leishen.lifting` is only admissible if it
is indistinguishable from the per-row object path on *every* input, so
these tests fuzz randomized transfer batches (huge int amounts, boundary
tolerances, BlackHole/WETH/None tags) through both paths and require
exact equality — plus the auto-dispatch contract around
``VECTOR_MIN_ROWS`` and graceful degradation when numpy is absent.
"""

from __future__ import annotations

import random

import pytest

from repro.chain import Address, ETHER
from repro.leishen import (
    AppTransfer,
    BLACKHOLE_TAG,
    SimplifierConfig,
    TaggedTransfer,
    TradeIdentifier,
    TransferSimplifier,
)
from repro.leishen.lifting import HAVE_NUMPY, VECTOR_MIN_ROWS, TagInterner

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

WETH_TOKEN = Address("0x" + "ee" * 20)
TOKENS = (ETHER, WETH_TOKEN, *(Address("0x" + f"{i:02x}" * 20) for i in (1, 2, 3)))
TAGS = (None, "A", "B", "Kyber", "Uniswap", "Wrapped Ether", BLACKHOLE_TAG)
ACCT = Address("0x" + "99" * 20)


def random_tagged(rng: random.Random, n: int) -> list[TaggedTransfer]:
    rows = []
    for seq in range(n):
        # amounts span int64-overflowing token units and tiny dust, with
        # occasional near-duplicates of the previous amount to land in
        # (and just outside) the merge tolerance / fee-burn ratio.
        if rows and rng.random() < 0.3:
            base = rows[-1].amount
            amount = max(1, base + rng.choice((0, 1, -1, base // 1000, base // 4)))
        else:
            amount = rng.choice((1, 7, 10**3, 10**18, 3 * 10**26))
        rows.append(
            TaggedTransfer(
                seq=seq,
                tag_sender=rng.choice(TAGS),
                tag_receiver=rng.choice(TAGS),
                amount=amount,
                token=rng.choice(TOKENS),
                sender=ACCT,
                receiver=ACCT,
            )
        )
    return rows


def to_app(rows: list[TaggedTransfer]) -> list[AppTransfer]:
    return [
        AppTransfer(
            seq=row.seq, sender=row.tag_sender, receiver=row.tag_receiver,
            amount=row.amount, token=row.token,
        )
        for row in rows
    ]


def make_simplifier(vectorize):
    return TransferSimplifier(
        SimplifierConfig(weth_tokens=frozenset({WETH_TOKEN})), vectorize=vectorize
    )


@needs_numpy
class TestSimplifyEquality:
    @pytest.mark.parametrize("seed", range(25))
    def test_vector_matches_object_path(self, seed):
        rng = random.Random(seed)
        rows = random_tagged(rng, rng.randrange(0, 3 * VECTOR_MIN_ROWS))
        assert (
            make_simplifier(True).simplify(rows)
            == make_simplifier(False).simplify(rows)
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_batch_matches_per_transaction(self, seed):
        rng = random.Random(1000 + seed)
        batches = [
            random_tagged(rng, rng.randrange(0, 20)) for _ in range(rng.randrange(1, 8))
        ]
        vector = make_simplifier(True)
        assert vector.simplify_batch(batches) == [
            make_simplifier(False).simplify(batch) for batch in batches
        ]

    def test_merge_never_crosses_batch_boundaries(self):
        # two halves of a perfect relay split across transactions must
        # NOT merge, even though their concatenation would.
        first = [
            TaggedTransfer(
                seq=0, tag_sender="A", tag_receiver="Kyber", amount=100,
                token=TOKENS[2], sender=ACCT, receiver=ACCT,
            )
        ]
        second = [
            TaggedTransfer(
                seq=1, tag_sender="Kyber", tag_receiver="B", amount=100,
                token=TOKENS[2], sender=ACCT, receiver=ACCT,
            )
        ]
        merged = make_simplifier(True).simplify(first + second)
        split = make_simplifier(True).simplify_batch([first, second])
        assert len(merged) == 1
        assert [len(out) for out in split] == [1, 1]


@needs_numpy
class TestIdentifyEquality:
    @pytest.mark.parametrize("seed", range(25))
    def test_vector_matches_object_path(self, seed):
        rng = random.Random(2000 + seed)
        transfers = to_app(random_tagged(rng, rng.randrange(0, 3 * VECTOR_MIN_ROWS)))
        assert (
            TradeIdentifier(vectorize=True).identify(transfers)
            == TradeIdentifier(vectorize=False).identify(transfers)
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_full_pipeline_equality(self, seed):
        # simplify -> identify, both stages on each path, end to end.
        rng = random.Random(3000 + seed)
        rows = random_tagged(rng, rng.randrange(4, 2 * VECTOR_MIN_ROWS))
        via_vector = TradeIdentifier(vectorize=True).identify(
            make_simplifier(True).simplify(rows)
        )
        via_object = TradeIdentifier(vectorize=False).identify(
            make_simplifier(False).simplify(rows)
        )
        assert via_vector == via_object

    @pytest.mark.parametrize("seed", range(5))
    def test_identify_batch_matches_per_list(self, seed):
        rng = random.Random(4000 + seed)
        batches = [
            to_app(random_tagged(rng, rng.randrange(0, 20)))
            for _ in range(rng.randrange(1, 6))
        ]
        assert TradeIdentifier(vectorize=True).identify_batch(batches) == [
            TradeIdentifier(vectorize=False).identify(batch) for batch in batches
        ]


@needs_numpy
class TestDispatch:
    def test_auto_dispatch_uses_vector_past_threshold(self, monkeypatch):
        calls = []
        original = TransferSimplifier._simplify_vector
        monkeypatch.setattr(
            TransferSimplifier,
            "_simplify_vector",
            lambda self, rows: calls.append(len(rows)) or original(self, rows),
        )
        simplifier = make_simplifier(None)
        small = random_tagged(random.Random(1), VECTOR_MIN_ROWS - 1)
        large = random_tagged(random.Random(2), VECTOR_MIN_ROWS)
        simplifier.simplify(small)
        assert calls == []  # below threshold: object path
        simplifier.simplify(large)
        assert calls == [VECTOR_MIN_ROWS]

    def test_forced_object_path_never_vectorizes(self, monkeypatch):
        def boom(self, rows):  # pragma: no cover - failure path
            raise AssertionError("vector path used despite vectorize=False")

        monkeypatch.setattr(TransferSimplifier, "_simplify_vector", boom)
        rows = random_tagged(random.Random(3), 2 * VECTOR_MIN_ROWS)
        make_simplifier(False).simplify(rows)


class TestInterner:
    def test_none_is_reserved_and_codes_are_dense(self):
        interner = TagInterner()
        assert interner.code(None) == -1
        codes = [interner.code(tag) for tag in ("a", "b", "a", "c")]
        assert codes == [0, 1, 0, 2]

    def test_code_of_never_interns(self):
        interner = TagInterner()
        assert interner.code_of("missing") == -2
        assert interner.code_of("missing", default=-7) == -7
        assert interner.codes == {}
        interner.code("present")
        assert interner.code_of("present") == 0
