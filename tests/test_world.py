"""DeFiWorld builder: profiles, deployments, labels."""

import pytest

from repro.chain import ETH
from repro.world import BSC_PROFILE, DeFiWorld


class TestProfiles:
    def test_ethereum_default(self, world):
        assert world.chain.name == "ethereum"
        assert world.weth.symbol == "WETH"
        assert world.registry.native_symbol == "ETH"

    def test_bsc_profile(self):
        world = DeFiWorld(profile=BSC_PROFILE)
        assert world.chain.name == "bsc"
        assert world.weth.symbol == "WBNB"
        assert world.dex_factory().app_name == "PancakeSwap"


class TestDeployments:
    def test_deployers_labeled(self, world):
        deployer = world.deployer_of("Uniswap")
        assert world.chain.labels[deployer] == "Uniswap: Deployer 1"
        assert world.deployer_of("Uniswap") == deployer  # cached

    def test_dex_pair_seeded(self, world):
        token = world.new_token("WT")
        pair = world.dex_pair(token, world.weth, 1_000 * token.unit, 10 * ETH)
        r0, r1 = pair.get_reserves()
        assert r0 > 0 and r1 > 0

    def test_factory_created_pairs_tag_to_dex_app(self, world):
        from repro.leishen import AccountTagger

        token = world.new_token("WT2")
        pair = world.dex_pair(token, world.weth, 1_000 * token.unit, 10 * ETH)
        tagger = AccountTagger(world.chain)
        assert tagger.tag_of(pair.address) == "Uniswap"

    def test_flash_providers_singletons(self, world):
        assert world.aave() is world.aave()
        assert world.dydx() is world.dydx()

    def test_detector_wired_to_weth(self, world):
        detector = world.detector()
        assert world.weth.address in detector.config.simplifier.weth_tokens

    def test_fund_weth(self, world):
        user = world.create_attacker("u")
        world.fund_weth(user, 5 * ETH)
        assert world.weth.balance_of(user) == 5 * ETH
