"""Property tests: AMM invariants under random trading."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import ETH, Revert
from repro.world import DeFiWorld


@pytest.fixture(scope="module")
def amm_world():
    world = DeFiWorld()
    token = world.new_token("PAM")
    pair = world.dex_pair(token, world.weth, 1_000_000 * token.unit, 10_000 * ETH)
    trader = world.create_attacker("pt")
    token.mint(trader, 10**9 * token.unit)
    world.fund_weth(trader, 10**6 * ETH)
    return world, token, pair, trader


class TestConstantProduct:
    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 10_000)), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_k_never_decreases_under_swaps(self, amm_world, trades):
        world, token, pair, trader = amm_world
        r0, r1 = pair.get_reserves()
        k = r0 * r1
        for sell_token, units in trades:
            asset = token if sell_token else world.weth
            amount = units * (token.unit if sell_token else ETH) // 100
            if amount == 0:
                continue
            out = pair.get_amount_out(amount, asset.address)
            if out <= 0:
                continue
            world.chain.transact(trader, asset.address, "transfer", pair.address, amount)
            other = pair.other_token(asset.address)
            out0, out1 = (out, 0) if other == pair.token0 else (0, out)
            world.chain.transact(trader, pair.address, "swap", out0, out1, trader)
            r0b, r1b = pair.get_reserves()
            assert r0b * r1b >= k
            k = r0b * r1b

    @given(st.integers(1, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_quoted_output_always_accepted(self, amm_world, units):
        """get_amount_out must never quote an amount the K check rejects."""
        world, token, pair, trader = amm_world
        amount = units * token.unit // 1000 + 1
        out = pair.get_amount_out(amount, token.address)
        if out <= 0:
            return
        world.chain.transact(trader, token.address, "transfer", pair.address, amount)
        other = pair.other_token(token.address)
        out0, out1 = (out, 0) if other == pair.token0 else (0, out)
        world.chain.transact(trader, pair.address, "swap", out0, out1, trader)

    @given(st.integers(2, 10**5))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_never_profits(self, amm_world, units):
        world, token, pair, trader = amm_world
        amount = units * token.unit
        before = token.balance_of(trader)
        got = pair.get_amount_out(amount, token.address)
        if got <= 0:
            return
        world.chain.transact(trader, token.address, "transfer", pair.address, amount)
        other = pair.other_token(token.address)
        out0, out1 = (got, 0) if other == pair.token0 else (0, got)
        world.chain.transact(trader, pair.address, "swap", out0, out1, trader)
        back = pair.get_amount_out(got, other)
        world.chain.transact(trader, world.weth.address, "transfer", pair.address, got)
        out0, out1 = (back, 0) if token.address == pair.token0 else (0, back)
        world.chain.transact(trader, pair.address, "swap", out0, out1, trader)
        assert token.balance_of(trader) <= before


class TestStableSwap:
    @given(st.integers(1, 5_000_000), st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_d_never_decreases_on_exchange(self, units, direction):
        world = DeFiWorld()
        usdc = world.new_token("PSA", 6)
        usdt = world.new_token("PSB", 6)
        pool = world.curve_pool({usdc: 10**7 * usdc.unit, usdt: 10**7 * usdt.unit})
        trader = world.create_attacker("ct")
        src = usdc if direction else usdt
        src.mint(trader, 10**8 * src.unit)
        world.approve(trader, src, pool.address)
        d_before = pool.get_D()
        i, j = (0, 1) if direction else (1, 0)
        world.chain.transact(trader, pool.address, "exchange", i, j, units * src.unit)
        assert pool.get_D() >= d_before - 2  # integer rounding slack

    @given(st.integers(1, 3_000_000))
    @settings(max_examples=20, deadline=None)
    def test_output_never_exceeds_input_value_much(self, units):
        """Near-peg stableswap output can exceed input only by the pool's
        imbalance bonus, never by more than the amplification allows."""
        world = DeFiWorld()
        usdc = world.new_token("PSC", 6)
        usdt = world.new_token("PSD", 6)
        pool = world.curve_pool({usdc: 10**7 * usdc.unit, usdt: 10**7 * usdt.unit})
        dy = pool.get_dy(0, 1, units * usdc.unit)
        assert dy <= units * usdt.unit * 1.01
