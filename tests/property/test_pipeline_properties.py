"""Property tests on the detection pipeline's data transformations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Address, ETHER
from repro.leishen import (
    PatternConfig,
    PatternMatcher,
    SimplifierConfig,
    TaggedTransfer,
    Trade,
    TradeKind,
    TransferSimplifier,
)

TOKENS = [Address("0x" + f"{i + 1:02x}" * 20) for i in range(3)]
TAGS = ["A", "B", "Kyber", "Vault", None]
ACCT = Address("0x" + "99" * 20)

tagged_transfer = st.builds(
    TaggedTransfer,
    seq=st.integers(1, 10**6),
    tag_sender=st.sampled_from(TAGS),
    tag_receiver=st.sampled_from(TAGS),
    amount=st.integers(1, 10**24),
    token=st.sampled_from(TOKENS),
    sender=st.just(ACCT),
    receiver=st.just(ACCT),
)


def net_flows(transfers, tags=("A", "B")):
    """Net (tag, token) flows, WETH-unification-aware."""
    flows = {}
    for t in transfers:
        sender = getattr(t, "tag_sender", None) or getattr(t, "sender", None)
        receiver = getattr(t, "tag_receiver", None) or getattr(t, "receiver", None)
        for tag, sign in ((sender, -1), (receiver, +1)):
            if tag in tags:
                flows[(tag, t.token)] = flows.get((tag, t.token), 0) + sign * t.amount
    return flows


class TestSimplifierProperties:
    @given(st.lists(tagged_transfer, max_size=25))
    @settings(max_examples=80)
    def test_no_intra_app_output(self, transfers):
        out = TransferSimplifier(SimplifierConfig()).simplify(transfers)
        assert not any(t.sender == t.receiver and t.sender is not None for t in out)

    @given(st.lists(tagged_transfer, max_size=25))
    @settings(max_examples=80)
    def test_idempotent_on_own_output(self, transfers):
        simplifier = TransferSimplifier(SimplifierConfig())
        once = simplifier.simplify(transfers)
        as_tagged = [
            TaggedTransfer(
                seq=t.seq, tag_sender=t.sender, tag_receiver=t.receiver,
                amount=t.amount, token=t.token, sender=ACCT, receiver=ACCT,
            )
            for t in once
        ]
        assert simplifier.simplify(as_tagged) == once

    @given(st.lists(tagged_transfer, max_size=25))
    @settings(max_examples=80)
    def test_merge_preserves_endpoint_net_flows(self, transfers):
        """Merging relays must not change what A and B net-receive
        (intermediary fee differences are bounded by the tolerance)."""
        config = SimplifierConfig(merge_tolerance=0.0)  # exact merges only
        out = TransferSimplifier(config).simplify(transfers)
        before = net_flows(transfers)
        after = net_flows(out)
        for key in set(before) | set(after):
            # intra-app removal only drops same-tag flows (net zero), and
            # exact merges conserve endpoint amounts
            assert before.get(key, 0) == after.get(key, 0)

    @given(st.lists(tagged_transfer, max_size=25))
    @settings(max_examples=50)
    def test_output_never_longer(self, transfers):
        out = TransferSimplifier(SimplifierConfig()).simplify(transfers)
        assert len(out) <= len(transfers)


X, Q = TOKENS[0], TOKENS[1]


def make_trade(seq, buyer, sell_amount, sell_token, buy_amount, buy_token, seller="P"):
    return Trade(
        seq=seq, kind=TradeKind.SWAP, buyer=buyer, seller=seller,
        amount_sell=sell_amount, token_sell=sell_token,
        amount_buy=buy_amount, token_buy=buy_token,
    )


random_trade = st.builds(
    make_trade,
    seq=st.integers(1, 1000),
    buyer=st.sampled_from(["atk", "other"]),
    sell_amount=st.integers(1, 10**12),
    sell_token=st.sampled_from([X, Q]),
    buy_amount=st.integers(1, 10**12),
    buy_token=st.sampled_from([X, Q]),
    seller=st.sampled_from(["P", "V"]),
)


class TestPatternProperties:
    @given(st.lists(random_trade, max_size=25))
    @settings(max_examples=80)
    def test_relaxed_thresholds_detect_superset(self, trades):
        strict = PatternMatcher(PatternConfig())
        relaxed = PatternMatcher(
            PatternConfig(krp_min_buys=3, sbs_min_volatility=0.05, mbs_min_rounds=2)
        )
        strict_patterns = {m.pattern for m in strict.match(trades, "atk")}
        relaxed_patterns = {m.pattern for m in relaxed.match(trades, "atk")}
        assert strict_patterns <= relaxed_patterns

    @given(st.lists(random_trade, max_size=25))
    @settings(max_examples=60)
    def test_matches_only_reference_existing_trades(self, trades):
        matcher = PatternMatcher()
        for match in matcher.match(trades, "atk"):
            for trade in match.trades:
                assert trade in trades

    @given(st.lists(random_trade, max_size=20))
    @settings(max_examples=60)
    def test_deterministic(self, trades):
        a = PatternMatcher().match(trades, "atk")
        b = PatternMatcher().match(trades, "atk")
        assert [(m.pattern, m.target_token) for m in a] == [
            (m.pattern, m.target_token) for m in b
        ]
