"""Property test: flash-loan atomicity under random interleavings.

Whatever a borrower contract does inside the callback, a transaction that
fails repayment must leave every balance and reserve exactly as before —
the guarantee that makes flash loans safe for the lender (paper Sec. I).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import ETH, Revert, external
from repro.defi import FlashLoanReceiver, UniswapV2Pair
from repro.world import DeFiWorld


class ChaoticBorrower(FlashLoanReceiver):
    """Executes a random action script inside the flash-loan callback,
    then (optionally) fails to repay."""

    def configure(self, script, repay, pair, token, weth):
        self.script = script
        self.repay = repay
        self.pair = pair
        self.token = token
        self.weth = weth

    @external
    def go(self, msg, amount):
        pool = self.chain.contract_of(self.pair, UniswapV2Pair)
        out0, out1 = (amount, 0) if self.token == pool.token0 else (0, amount)
        self.chain.call(self.address, self.pair, "swap", out0, out1, self.address, "x")

    @external
    def uniswapV2Call(self, msg, sender, amount0, amount1, data):
        pool = self.chain.contract_of(self.pair, UniswapV2Pair)
        for action, units in self.script:
            balance = self.chain.contract_of(self.token, type(pool).__mro__[1]).balance_of(self.address)  # noqa: E501
            amount = min(units * 10**15, balance // 2)
            if amount <= 0:
                continue
            if action == "swap":
                out = pool.get_amount_out(amount, self.token)
                if out > 0:
                    self.chain.call(self.address, self.token, "transfer", self.pair, amount)
                    other = pool.other_token(self.token)
                    o0, o1 = (out, 0) if other == pool.token0 else (0, out)
                    self.chain.call(self.address, self.pair, "swap", o0, o1, self.address)
            elif action == "burn_own":
                self.chain.call(self.address, self.token, "transfer", self.pair, amount)
        if self.repay:
            borrowed = amount0 or amount1
            fee = borrowed * 3 // 997 + 1
            self.chain.call(self.address, self.token, "transfer", msg.sender, borrowed + fee)


@pytest.fixture(scope="module")
def chaos_world():
    world = DeFiWorld()
    token = world.new_token("CHA")
    pair = world.dex_pair(token, world.weth, 10**7 * token.unit, 10**5 * ETH)
    owner = world.create_attacker("chaos")
    borrower = world.chain.deploy(owner, ChaoticBorrower)
    token.mint(borrower.address, 10**6 * token.unit)
    return world, token, pair, owner, borrower


action = st.tuples(st.sampled_from(["swap", "burn_own"]), st.integers(1, 1000))


class TestAtomicity:
    @given(st.lists(action, max_size=6), st.integers(1, 500))
    @settings(max_examples=40, deadline=None)
    def test_unpaid_loan_leaves_no_footprint(self, chaos_world, script, units):
        """Either the pool is made whole (donations inside the script count
        as repayment — that is real flash-swap semantics) or the revert
        leaves zero footprint."""
        world, token, pair, owner, borrower = chaos_world
        borrower.configure(script, repay=False, pair=pair.address,
                           token=token.address, weth=world.weth.address)
        reserves = pair.get_reserves()
        k_before = reserves[0] * reserves[1]
        balance = token.balance_of(borrower.address)
        supply = token.total_supply()
        try:
            world.chain.transact(owner, borrower.address, "go", units * token.unit)
        except Revert:
            assert pair.get_reserves() == reserves
            assert token.balance_of(borrower.address) == balance
            assert token.total_supply() == supply
        else:
            r0, r1 = pair.get_reserves()
            assert r0 * r1 >= k_before  # accidental repayment made it whole
        assert world.chain.state.depth == 0

    @given(st.lists(action, max_size=4), st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_repaid_loan_keeps_pool_whole(self, chaos_world, script, units):
        world, token, pair, owner, borrower = chaos_world
        borrower.configure(script, repay=True, pair=pair.address,
                           token=token.address, weth=world.weth.address)
        r0, r1 = pair.get_reserves()
        k_before = r0 * r1
        try:
            world.chain.transact(owner, borrower.address, "go", units * token.unit)
        except Revert:
            return  # ran out of float mid-script: fine, atomicity covered above
        r0b, r1b = pair.get_reserves()
        assert r0b * r1b >= k_before
