"""Property tests: the state journal against a model dict."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Address, StateJournal

OWNERS = [Address("0x" + f"{i:02x}" * 20) for i in range(4)]

op = st.one_of(
    st.tuples(st.just("set"), st.sampled_from(OWNERS), st.integers(0, 5), st.integers(-100, 100)),
    st.tuples(st.just("delete"), st.sampled_from(OWNERS), st.integers(0, 5), st.none()),
    st.tuples(st.just("add"), st.sampled_from(OWNERS), st.integers(0, 5), st.integers(-10, 10)),
)


def apply_ops(state, model, ops):
    for kind, owner, slot, value in ops:
        if kind == "set":
            state.set(owner, slot, value)
            model[(owner, slot)] = value
        elif kind == "delete":
            state.delete(owner, slot)
            model.pop((owner, slot), None)
        else:
            new = model.get((owner, slot), 0) + value
            state.add(owner, slot, value)
            model[(owner, slot)] = new


def assert_matches(state, model):
    for (owner, slot), value in model.items():
        assert state.get(owner, slot) == value
    for owner in OWNERS:
        for slot in range(6):
            if (owner, slot) not in model:
                assert not state.contains(owner, slot)


class TestJournalModel:
    @given(st.lists(op, max_size=30))
    @settings(max_examples=60)
    def test_flat_ops_match_model(self, ops):
        state, model = StateJournal(), {}
        apply_ops(state, model, ops)
        assert_matches(state, model)

    @given(st.lists(op, max_size=15), st.lists(op, max_size=15))
    @settings(max_examples=60)
    def test_rollback_discards_exactly_the_checkpointed_suffix(self, before, after):
        state, model = StateJournal(), {}
        apply_ops(state, model, before)
        state.checkpoint()
        throwaway = dict(model)
        apply_ops(state, throwaway, after)
        state.rollback()
        assert_matches(state, model)

    @given(st.lists(op, max_size=10), st.lists(op, max_size=10), st.lists(op, max_size=10))
    @settings(max_examples=60)
    def test_commit_inner_rollback_outer(self, a, b, c):
        state, model = StateJournal(), {}
        apply_ops(state, model, a)
        state.checkpoint()
        scratch = dict(model)
        apply_ops(state, scratch, b)
        state.checkpoint()
        apply_ops(state, scratch, c)
        state.commit()
        state.rollback()
        assert_matches(state, model)
