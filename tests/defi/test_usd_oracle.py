"""Historical USD price oracle."""

import pytest

from repro.defi import UsdPriceOracle


class TestUsdOracle:
    def test_deterministic(self):
        a = UsdPriceOracle()
        b = UsdPriceOracle()
        assert a.price("ETH", 123) == b.price("ETH", 123)

    def test_daily_variation_bounded(self):
        oracle = UsdPriceOracle()
        prices = [oracle.price("ETH", day) for day in range(200)]
        assert min(prices) >= 1500 * 0.8 - 1e-9
        assert max(prices) <= 1500 * 1.2 + 1e-9
        assert len(set(prices)) > 100  # actually varies

    def test_unknown_symbol_defaults_to_one_dollar(self):
        oracle = UsdPriceOracle()
        assert 0.8 <= oracle.price("NOPE", 5) <= 1.2

    def test_value_usd_uses_decimals(self):
        oracle = UsdPriceOracle({"XX": 2.0})
        value = oracle.value_usd("XX", 5 * 10**6, decimals=6, day=0)
        assert value == pytest.approx(5 * oracle.price("XX", 0))

    def test_set_price_overrides(self):
        oracle = UsdPriceOracle()
        oracle.set_price("ETH", 100.0)
        assert oracle.price("ETH", 0) <= 120.0
