"""Balancer weighted pool: records-based pricing, gulp, deflation drift."""

import pytest

from repro.chain import ETH, Revert
from repro.tokens import DeflationaryERC20


@pytest.fixture()
def weighted(world):
    weth = world.weth
    tkn = world.new_token("BTK")
    pool = world.balancer_pool({weth: 100 * ETH, tkn: 10_000 * tkn.unit})
    return world, weth, tkn, pool


class TestPricing:
    def test_spot_price_by_weights(self, weighted):
        world, weth, tkn, pool = weighted
        assert pool.spot_price(tkn.address, weth.address) == pytest.approx(0.01)

    def test_weighted_pool_spot(self, world):
        weth = world.weth
        tkn = world.new_token("W80")
        pool = world.balancer_pool({weth: 100 * ETH, tkn: 10_000 * tkn.unit}, weights=[0.8, 0.2])
        # price = (q/wq)/(b/wb) = (100/0.8)/(10000/0.2) = 0.0025
        assert pool.spot_price(tkn.address, weth.address) == pytest.approx(0.0025)

    def test_calc_out_given_in_monotonic(self, weighted):
        *_, tkn, pool = weighted
        world, weth = _[0], _[1]
        small = pool.calc_out_given_in(weth.address, 1 * ETH, tkn.address)
        big = pool.calc_out_given_in(weth.address, 10 * ETH, tkn.address)
        assert big > small
        assert big < 10 * small  # diminishing returns


class TestSwap:
    def test_swap_moves_records(self, weighted):
        world, weth, tkn, pool = weighted
        trader = world.create_attacker("t")
        world.fund_weth(trader, 10 * ETH)
        world.approve(trader, weth, pool.address)
        before = pool.record_balance(tkn.address)
        world.chain.transact(trader, pool.address, "swapExactAmountIn", weth.address, 1 * ETH, tkn.address)
        assert pool.record_balance(tkn.address) < before

    def test_unbound_token_rejected(self, weighted):
        world, weth, *_ , pool = weighted
        other = world.new_token("OTHER")
        trader = world.create_attacker("t")
        with pytest.raises(Revert, match="not bound"):
            world.chain.transact(
                trader, pool.address, "swapExactAmountIn", other.address, 1, weth.address
            )


class TestDeflationaryDrift:
    def test_record_exceeds_actual_after_fee_on_transfer_in(self, world):
        weth = world.weth
        sta = world.deflationary_token("STA2", fee_bps=100)
        pool = world.balancer_pool({weth: 100 * ETH, sta: 10_000 * sta.unit})
        trader = world.create_attacker("t")
        sta.mint(trader, 10_000 * sta.unit)
        world.approve(trader, sta, pool.address)
        world.chain.transact(
            trader, pool.address, "swapExactAmountIn", sta.address, 1_000 * sta.unit, weth.address
        )
        assert pool.record_balance(sta.address) > pool.actual_balance(sta.address)

    def test_gulp_resyncs(self, world):
        weth = world.weth
        sta = world.deflationary_token("STA3", fee_bps=100)
        pool = world.balancer_pool({weth: 100 * ETH, sta: 10_000 * sta.unit})
        trader = world.create_attacker("t")
        sta.mint(trader, 10_000 * sta.unit)
        world.approve(trader, sta, pool.address)
        world.chain.transact(
            trader, pool.address, "swapExactAmountIn", sta.address, 1_000 * sta.unit, weth.address
        )
        world.chain.transact(trader, pool.address, "gulp", sta.address)
        assert pool.record_balance(sta.address) == pool.actual_balance(sta.address)


class TestJoinExit:
    def test_join_and_exit(self, weighted):
        world, weth, tkn, pool = weighted
        lp = world.create_attacker("lp")
        world.fund_weth(lp, 50 * ETH)
        tkn.mint(lp, 5_000 * tkn.unit)
        world.approve(lp, weth, pool.address)
        world.approve(lp, tkn, pool.address)
        world.chain.transact(lp, pool.address, "joinPool", 10 * ETH)
        assert pool.balance_of(lp) == 10 * ETH
        world.chain.transact(lp, pool.address, "exitPool", 10 * ETH)
        assert pool.balance_of(lp) == 0
        assert weth.balance_of(lp) > 0
