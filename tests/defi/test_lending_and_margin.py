"""Lending market, liquidations, and the bZx-style margin venue."""

import pytest

from repro.chain import ETH, Revert
from repro.defi import DexSpotOracle


@pytest.fixture()
def lending(world):
    weth = world.weth
    usdc = world.new_token("USDC", 6)
    market = world.lending_market(
        prices={weth.address: 1.0, usdc.address: (1 / 1500) * 10**12},
        funding={weth: 10_000 * ETH, usdc: 10_000_000 * usdc.unit},
    )
    borrower = world.create_attacker("borrower")
    world.fund_weth(borrower, 1_000 * ETH)
    world.approve(borrower, weth, market.address)
    world.approve(borrower, usdc, market.address)
    return world, weth, usdc, market, borrower


class TestBorrow:
    def test_collateralized_borrow(self, lending):
        world, weth, usdc, market, borrower = lending
        world.chain.transact(
            borrower, market.address, "borrow",
            weth.address, 100 * ETH, usdc.address, 100_000 * usdc.unit,
        )
        assert usdc.balance_of(borrower) == 100_000 * usdc.unit
        assert market.debt_of(borrower, usdc.address) == 100_000 * usdc.unit
        assert market.collateral_of(borrower, weth.address) == 100 * ETH

    def test_undercollateralized_reverts(self, lending):
        world, weth, usdc, market, borrower = lending
        with pytest.raises(Revert, match="undercollateralized"):
            world.chain.transact(
                borrower, market.address, "borrow",
                weth.address, 1 * ETH, usdc.address, 10_000 * usdc.unit,
            )

    def test_repay_and_withdraw(self, lending):
        world, weth, usdc, market, borrower = lending
        world.chain.transact(
            borrower, market.address, "borrow",
            weth.address, 100 * ETH, usdc.address, 50_000 * usdc.unit,
        )
        world.chain.transact(borrower, market.address, "repay", usdc.address, 50_000 * usdc.unit)
        world.chain.transact(borrower, market.address, "withdraw_collateral", weth.address, 100 * ETH)
        assert market.debt_of(borrower, usdc.address) == 0
        assert weth.balance_of(borrower) == 1_000 * ETH

    def test_withdraw_with_outstanding_debt_blocked(self, lending):
        world, weth, usdc, market, borrower = lending
        world.chain.transact(
            borrower, market.address, "borrow",
            weth.address, 100 * ETH, usdc.address, 50_000 * usdc.unit,
        )
        with pytest.raises(Revert, match="outstanding debt"):
            world.chain.transact(
                borrower, market.address, "withdraw_collateral", weth.address, 100 * ETH
            )


class TestLiquidation:
    def test_liquidator_seizes_with_bonus(self, lending):
        world, weth, usdc, market, borrower = lending
        world.chain.transact(
            borrower, market.address, "borrow",
            weth.address, 100 * ETH, usdc.address, 90_000 * usdc.unit,
        )
        liquidator = world.create_attacker("liq")
        usdc.mint(liquidator, 90_000 * usdc.unit)
        world.approve(liquidator, usdc, market.address)
        world.chain.transact(
            liquidator, market.address, "liquidate",
            borrower, usdc.address, 30_000 * usdc.unit, weth.address,
        )
        seized = weth.balance_of(liquidator)
        fair = 30_000 * usdc.unit * (1 / 1500) * 10**12
        assert seized == pytest.approx(fair * 1.05, rel=1e-6)

    def test_liquidate_beyond_debt_reverts(self, lending):
        world, weth, usdc, market, borrower = lending
        liquidator = world.create_attacker("liq")
        with pytest.raises(Revert):
            world.chain.transact(
                liquidator, market.address, "liquidate",
                borrower, usdc.address, 1, weth.address,
            )


@pytest.fixture()
def venue(world):
    weth = world.weth
    tkn = world.new_token("VTK")
    pool = world.dex_pair(tkn, weth, 1_000_000 * tkn.unit, 10_000 * ETH)
    venue = world.margin_venue([pool], funding={weth: 100_000 * ETH, tkn: 2_000_000 * tkn.unit})
    trader = world.create_attacker("mt")
    world.fund_weth(trader, 10_000 * ETH)
    world.approve(trader, weth, venue.address)
    world.approve(trader, tkn, venue.address)
    return world, weth, tkn, pool, venue, trader


class TestMarginVenue:
    def test_margin_trade_uses_venue_cash(self, venue):
        world, weth, tkn, pool, v, trader = venue
        world.chain.transact(
            trader, v.address, "open_margin_position",
            weth.address, 100 * ETH, pool.address, 5,
        )
        assert v.position_of(trader, tkn.address) > 0

    def test_leverage_bounds(self, venue):
        world, weth, _, pool, v, trader = venue
        with pytest.raises(Revert, match="leverage"):
            world.chain.transact(
                trader, v.address, "open_margin_position",
                weth.address, 10 * ETH, pool.address, 9,
            )

    def test_margin_trade_moves_pool_price(self, venue):
        world, weth, tkn, pool, v, trader = venue
        before = pool.spot_price(tkn.address, weth.address)
        world.chain.transact(
            trader, v.address, "open_margin_position",
            weth.address, 1_000 * ETH, pool.address, 5,
        )
        assert pool.spot_price(tkn.address, weth.address) > before

    def test_oracle_swap_at_spot(self, venue):
        world, weth, tkn, pool, v, trader = venue
        spot = pool.spot_price(weth.address, tkn.address)
        world.chain.transact(
            trader, v.address, "oracle_swap", weth.address, 10 * ETH, tkn.address
        )
        assert tkn.balance_of(trader) == int(10 * ETH * spot)

    def test_borrow_against_uses_manipulable_oracle(self, venue):
        world, weth, tkn, pool, v, trader = venue
        tkn.mint(trader, 10_000 * tkn.unit)
        base = weth.balance_of(trader)
        world.chain.transact(
            trader, v.address, "borrow_against", tkn.address, 10_000 * tkn.unit, weth.address
        )
        fair_gain = weth.balance_of(trader) - base
        # pump the oracle pool (buy TKN with 4,000 WETH from a second actor)
        pumper = world.create_attacker("pump")
        world.fund_weth(pumper, 5_000 * ETH)
        out = pool.get_amount_out(4_000 * ETH, weth.address)
        world.chain.transact(pumper, weth.address, "transfer", pool.address, 4_000 * ETH)
        out0, out1 = (out, 0) if pool.token0 == tkn.address else (0, out)
        world.chain.transact(pumper, pool.address, "swap", out0, out1, pumper)
        # the same collateral now fetches a much larger loan
        tkn.mint(trader, 10_000 * tkn.unit)
        before = weth.balance_of(trader)
        world.chain.transact(
            trader, v.address, "borrow_against", tkn.address, 10_000 * tkn.unit, weth.address
        )
        assert weth.balance_of(trader) - before > fair_gain * 1.5


class TestDexSpotOracle:
    def test_direct_pricing(self, venue):
        world, weth, tkn, pool, *_ = venue
        oracle = DexSpotOracle([pool])
        assert oracle.price(tkn.address, weth.address) == pytest.approx(0.01)
        assert oracle.price(tkn.address, tkn.address) == 1.0

    def test_two_hop_pricing(self, world):
        weth = world.weth
        a = world.new_token("HOPA")
        b = world.new_token("HOPB")
        pool_a = world.dex_pair(a, weth, 1_000_000 * a.unit, 10_000 * ETH)
        pool_b = world.dex_pair(b, weth, 2_000_000 * b.unit, 10_000 * ETH)
        oracle = DexSpotOracle([pool_a, pool_b])
        # a = 0.01 WETH, b = 0.005 WETH -> a/b = 2
        assert oracle.price(a.address, b.address) == pytest.approx(2.0, rel=1e-6)

    def test_unknown_pair_raises(self, world):
        oracle = DexSpotOracle([])
        with pytest.raises(LookupError):
            oracle.price(world.weth.address, world.new_token("ZZ").address)
