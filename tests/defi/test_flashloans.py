"""AAVE and dYdX flash-loan providers: fingerprints and repayment."""

import pytest

from repro.chain import Revert, external
from repro.defi import (
    AAVE_FLASHLOAN_FEE_BPS,
    DYDX_FLASH_FEE_WEI,
    FlashLoanReceiver,
    call_action,
    deposit_action,
    withdraw_action,
)


@pytest.fixture()
def funded(world):
    token = world.new_token("USDX")
    aave = world.aave(funding={token: 1_000_000 * token.unit})
    solo = world.dydx(funding={token: 1_000_000 * token.unit})
    return world, token, aave, solo


class GoodBorrower(FlashLoanReceiver):
    @external
    def via_aave(self, msg, pool, token, amount):
        self.chain.call(self.address, pool, "flashLoan", self.address, token, amount)

    @external
    def executeOperation(self, msg, token, amount, fee, params):
        self.chain.call(self.address, token, "approve", msg.sender, amount + fee)

    @external
    def via_dydx(self, msg, solo, token, amount):
        self.chain.call(self.address, token, "approve", solo, amount + 2)
        self.chain.call(
            self.address, solo, "operate",
            [withdraw_action(token, amount), call_action(self.address),
             deposit_action(token, amount + 2)],
        )

    @external
    def callFunction(self, msg, sender, data):
        pass


class TestAave:
    def test_loan_and_fee(self, funded):
        world, token, aave, _ = funded
        user = world.create_attacker("u")
        borrower = world.chain.deploy(user, GoodBorrower)
        amount = 100_000 * token.unit
        fee = amount * AAVE_FLASHLOAN_FEE_BPS // 10_000
        token.mint(borrower.address, fee)
        liquidity_before = aave.storage.get(("liquidity", token.address))
        trace = world.chain.transact(user, borrower.address, "via_aave", aave.address, token.address, amount)
        assert trace.success
        assert aave.storage.get(("liquidity", token.address)) == liquidity_before + fee

    def test_emits_flashloan_event(self, funded):
        world, token, aave, _ = funded
        user = world.create_attacker("u")
        borrower = world.chain.deploy(user, GoodBorrower)
        token.mint(borrower.address, 1_000 * token.unit)
        trace = world.chain.transact(
            user, borrower.address, "via_aave", aave.address, token.address, 10_000 * token.unit
        )
        logs = [l for l in trace.logs if l.event == "FlashLoan"]
        assert len(logs) == 1
        assert logs[0].param("target") == borrower.address
        assert logs[0].param("amount") == 10_000 * token.unit

    def test_unpaid_loan_reverts(self, funded):
        world, token, aave, _ = funded

        class Deadbeat(FlashLoanReceiver):
            @external
            def go(self, msg, pool, tok, amount):
                self.chain.call(self.address, pool, "flashLoan", self.address, tok, amount)

            @external
            def executeOperation(self, msg, token, amount, fee, params):
                pass  # keep it

        user = world.create_attacker("u")
        deadbeat = world.chain.deploy(user, Deadbeat)
        with pytest.raises(Revert):
            world.chain.transact(user, deadbeat.address, "go", aave.address, token.address, 1000)
        assert token.balance_of(deadbeat.address) == 0

    def test_exceeding_liquidity_reverts(self, funded):
        world, token, aave, _ = funded
        user = world.create_attacker("u")
        borrower = world.chain.deploy(user, GoodBorrower)
        with pytest.raises(Revert):
            world.chain.transact(
                user, borrower.address, "via_aave", aave.address, token.address,
                10**12 * token.unit,
            )


class TestDydx:
    def test_loan_via_operate(self, funded):
        world, token, _, solo = funded
        user = world.create_attacker("u")
        borrower = world.chain.deploy(user, GoodBorrower)
        token.mint(borrower.address, DYDX_FLASH_FEE_WEI)
        trace = world.chain.transact(
            user, borrower.address, "via_dydx", solo.address, token.address, 50_000 * token.unit
        )
        assert trace.success
        events = trace.emitted_events()
        assert {"LogOperation", "LogWithdraw", "LogCall", "LogDeposit"} <= events

    def test_insolvent_operate_reverts(self, funded):
        world, token, _, solo = funded

        class Insolvent(FlashLoanReceiver):
            @external
            def go(self, msg, solo_addr, tok, amount):
                self.chain.call(self.address, tok, "approve", solo_addr, amount)
                self.chain.call(
                    self.address, solo_addr, "operate",
                    [withdraw_action(tok, amount), call_action(self.address),
                     deposit_action(tok, amount)],  # missing the 2 wei fee
                )

            @external
            def callFunction(self, msg, sender, data):
                pass

        user = world.create_attacker("u")
        insolvent = world.chain.deploy(user, Insolvent)
        token.mint(insolvent.address, 10)
        with pytest.raises(Revert, match="solvent"):
            world.chain.transact(
                user, insolvent.address, "go", solo.address, token.address, 1_000 * token.unit
            )

    def test_unknown_action_rejected(self, funded):
        world, token, _, solo = funded
        from repro.defi import Action

        class Weird(FlashLoanReceiver):
            @external
            def go(self, msg, solo_addr):
                self.chain.call(self.address, solo_addr, "operate", [Action(kind="dance")])

        user = world.create_attacker("u")
        weird = world.chain.deploy(user, Weird)
        with pytest.raises(Revert):
            world.chain.transact(user, weird.address, "go", solo.address)
