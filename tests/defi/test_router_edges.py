"""Router, aggregator and venue edge cases."""

import pytest

from repro.chain import ETH, Revert


@pytest.fixture()
def routed(world):
    token = world.new_token("RTE")
    pair = world.dex_pair(token, world.weth, 10**6 * token.unit, 10**4 * ETH)
    router = world.dex_router()
    trader = world.create_attacker("r")
    token.mint(trader, 10**6 * token.unit)
    world.fund_weth(trader, 1_000 * ETH)
    world.approve(trader, token, router.address)
    world.approve(trader, world.weth, router.address)
    return world, token, pair, router, trader


class TestRouter:
    def test_slippage_guard_reverts(self, routed):
        world, token, pair, router, trader = routed
        with pytest.raises(Revert, match="slippage"):
            world.chain.transact(
                trader, router.address, "swapExactTokensForTokens",
                100 * token.unit, 10**30, (pair.address,), token.address,
            )

    def test_multi_hop_swap(self, routed):
        world, token, pair, router, trader = routed
        other = world.new_token("RT2")
        pair2 = world.dex_pair(other, world.weth, 10**6 * other.unit, 10**4 * ETH)
        got = world.chain.transact(
            trader, router.address, "swapExactTokensForTokens",
            100 * token.unit, 0, (pair.address, pair2.address), token.address,
        )
        assert other.balance_of(trader) > 0

    def test_explicit_recipient(self, routed):
        world, token, pair, router, trader = routed
        friend = world.create_attacker("friend")
        world.chain.transact(
            trader, router.address, "swapExactTokensForTokens",
            100 * token.unit, 0, (pair.address,), token.address, friend,
        )
        assert world.weth.balance_of(friend) > 0

    def test_router_hops_vanish_at_app_level(self, routed):
        """Router legs are intra-app (same Uniswap tag): the simplified
        stream shows one clean trader <-> Uniswap swap."""
        from repro.leishen import TradeKind

        world, token, pair, router, trader = routed
        trace = world.chain.transact(
            trader, router.address, "swapExactTokensForTokens",
            100 * token.unit, 0, (pair.address,), token.address,
        )
        detector = world.detector()
        tagged = detector.tagger.tag_transfers(trace.transfers)
        app_transfers = detector.simplifier.simplify(tagged)
        trades = detector.trade_identifier.identify(app_transfers)
        assert len(trades) == 1
        assert trades[0].kind is TradeKind.SWAP
        assert trades[0].seller == "Uniswap"


class TestPairSync:
    def test_sync_after_donation(self, routed):
        world, token, pair, router, trader = routed
        world.chain.transact(trader, token.address, "transfer", pair.address, 1_000 * token.unit)
        r_before = pair.reserve_of(token.address)
        world.chain.transact(trader, pair.address, "sync")
        assert pair.reserve_of(token.address) == r_before + 1_000 * token.unit


class TestTransactGuards:
    def test_reentrant_transact_rejected(self, world):
        from repro.chain import ChainError, Contract, Msg, external

        class Nested(Contract):
            @external
            def go(self, msg: Msg):
                # calling transact() from inside a transaction is a
                # programming error the chain must reject loudly
                self.chain.transact(msg.sender, self.address, "noop")

            @external
            def noop(self, msg: Msg):
                pass

        user = world.create_attacker("u")
        nested = world.chain.deploy(user, Nested)
        with pytest.raises(ChainError, match="re-entrant"):
            world.chain.transact(user, nested.address, "go")
        assert world.chain.state.depth == 0
