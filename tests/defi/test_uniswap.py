"""Uniswap V2 pair: swaps, liquidity, flash swaps, invariants."""

import math

import pytest

from repro.chain import BLACKHOLE, ETH, InsufficientLiquidity, Revert, external
from repro.defi import FlashLoanReceiver, UniswapV2Pair


@pytest.fixture()
def setup(world):
    token = world.new_token("TKN")
    pair = world.dex_pair(token, world.weth, 1_000_000 * token.unit, 10_000 * ETH)
    trader = world.create_attacker("trader")
    token.mint(trader, 10_000_000 * token.unit)
    world.fund_weth(trader, 10_000 * ETH)
    return world, token, pair, trader


class TestPricing:
    def test_spot_price(self, setup):
        world, token, pair, _ = setup
        assert pair.spot_price(token.address, world.weth.address) == pytest.approx(0.01)

    def test_get_amount_out_charges_fee(self, setup):
        world, token, pair, _ = setup
        gross = 10_000 * ETH * 10**18 // (1_000_000 * 10**18 + 10**18)
        out = pair.get_amount_out(token.unit, token.address)
        assert out < gross  # fee reduces output

    def test_get_amount_in_inverse_of_out(self, setup):
        _, token, pair, _ = setup
        out = pair.get_amount_out(5 * token.unit, token.address)
        needed = pair.get_amount_in(out, pair.other_token(token.address))
        assert abs(needed - 5 * token.unit) <= needed * 2 // 1000 + 2

    def test_empty_pool_has_no_price(self, world):
        a = world.new_token("A1")
        b = world.new_token("B1")
        factory = world.dex_factory()
        pair = factory.create_pair(a.address, b.address)
        with pytest.raises(InsufficientLiquidity):
            pair.spot_price(a.address, b.address)


class TestSwap:
    def test_swap_updates_reserves_and_k(self, setup):
        world, token, pair, trader = setup
        r0, r1 = pair.get_reserves()
        k_before = r0 * r1
        amount = 100 * token.unit
        out = pair.get_amount_out(amount, token.address)
        world.chain.transact(trader, token.address, "transfer", pair.address, amount)
        out0, out1 = (out, 0) if pair.other_token(token.address) == pair.token0 else (0, out)
        world.chain.transact(trader, pair.address, "swap", out0, out1, trader)
        r0b, r1b = pair.get_reserves()
        assert r0b * r1b >= k_before  # fees only grow K

    def test_swap_without_payment_reverts(self, setup):
        world, token, pair, trader = setup
        with pytest.raises(Revert):
            world.chain.transact(trader, pair.address, "swap", 0, 10**18, trader)

    def test_cannot_drain_reserves(self, setup):
        world, token, pair, trader = setup
        reserve = pair.reserve_of(world.weth.address)
        out0, out1 = (reserve, 0) if pair.token0 == world.weth.address else (0, reserve)
        with pytest.raises(InsufficientLiquidity):
            world.chain.transact(trader, pair.address, "swap", out0, out1, trader)

    def test_swap_emits_event(self, setup):
        world, token, pair, trader = setup
        amount = token.unit
        out = pair.get_amount_out(amount, token.address)
        world.chain.transact(trader, token.address, "transfer", pair.address, amount)
        out0, out1 = (out, 0) if pair.other_token(token.address) == pair.token0 else (0, out)
        trace = world.chain.transact(trader, pair.address, "swap", out0, out1, trader)
        assert "Swap" in trace.emitted_events()

    def test_no_events_when_disabled(self, setup):
        world, token, pair, trader = setup
        pair.emits_trade_events = False
        amount = token.unit
        out = pair.get_amount_out(amount, token.address)
        world.chain.transact(trader, token.address, "transfer", pair.address, amount)
        out0, out1 = (out, 0) if pair.other_token(token.address) == pair.token0 else (0, out)
        trace = world.chain.transact(trader, pair.address, "swap", out0, out1, trader)
        assert "Swap" not in trace.emitted_events()


class TestLiquidity:
    def test_mint_via_router(self, setup):
        world, token, pair, trader = setup
        router = world.dex_router()
        world.approve(trader, token, router.address)
        world.approve(trader, world.weth, router.address)
        a0 = 1000 * token.unit if pair.token0 == token.address else 10 * ETH
        a1 = 1000 * token.unit if pair.token1 == token.address else 10 * ETH
        world.chain.transact(trader, router.address, "addLiquidity", pair.address, a0, a1)
        assert pair.balance_of(trader) > 0

    def test_burn_returns_proportional_assets(self, setup):
        world, token, pair, trader = setup
        router = world.dex_router()
        world.approve(trader, token, router.address)
        world.approve(trader, world.weth, router.address)
        a0 = 1000 * token.unit if pair.token0 == token.address else 10 * ETH
        a1 = 1000 * token.unit if pair.token1 == token.address else 10 * ETH
        world.chain.transact(trader, router.address, "addLiquidity", pair.address, a0, a1)
        lp = pair.balance_of(trader)
        weth_before = world.weth.balance_of(trader)
        world.approve(trader, pair, router.address)
        world.chain.transact(trader, router.address, "removeLiquidity", pair.address, lp)
        assert world.weth.balance_of(trader) > weth_before
        assert pair.balance_of(trader) == 0

    def test_minimum_liquidity_locked(self, world):
        token = world.new_token("ML")
        pair = world.dex_pair(token, world.weth, 1_000 * token.unit, 1_000 * ETH)
        assert pair.balance_of(BLACKHOLE) == 10**3
        assert pair.total_supply() >= math.isqrt(1_000 * token.unit * 1_000 * ETH) - 1


class TestFlashSwap:
    def test_flash_swap_repaid_succeeds(self, setup):
        world, token, pair, trader = setup

        class Borrower(FlashLoanReceiver):
            @external
            def go(self, msg, pair_addr, tok, amount):
                p = self.chain.contract_of(pair_addr, UniswapV2Pair)
                out0, out1 = (amount, 0) if tok == p.token0 else (0, amount)
                self.chain.call(self.address, pair_addr, "swap", out0, out1, self.address, "x")

            @external
            def uniswapV2Call(self, msg, sender, amount0, amount1, data):
                p = self.chain.contract_of(msg.sender, UniswapV2Pair)
                amount = amount0 or amount1
                tok = p.token0 if amount0 else p.token1
                fee = amount * 3 // 997 + 1
                self.chain.call(self.address, tok, "transfer", msg.sender, amount + fee)

        borrower = world.chain.deploy(trader, Borrower)
        token.mint(borrower.address, 10_000 * token.unit)
        trace = world.chain.transact(
            trader, borrower.address, "go", pair.address, token.address, 100_000 * token.unit
        )
        assert trace.success
        assert {"swap", "uniswapV2Call"} <= trace.called_functions()

    def test_flash_swap_unpaid_reverts_atomically(self, setup):
        world, token, pair, trader = setup

        class Thief(FlashLoanReceiver):
            @external
            def go(self, msg, pair_addr, tok, amount):
                p = self.chain.contract_of(pair_addr, UniswapV2Pair)
                out0, out1 = (amount, 0) if tok == p.token0 else (0, amount)
                self.chain.call(self.address, pair_addr, "swap", out0, out1, self.address, "x")

        thief = world.chain.deploy(trader, Thief)
        reserves = pair.get_reserves()
        with pytest.raises(Revert):
            world.chain.transact(
                trader, thief.address, "go", pair.address, token.address, 100_000 * token.unit
            )
        assert pair.get_reserves() == reserves
        assert token.balance_of(thief.address) == 0

    def test_underpaid_fee_reverts(self, setup):
        world, token, pair, trader = setup

        class Cheapskate(FlashLoanReceiver):
            @external
            def go(self, msg, pair_addr, tok, amount):
                p = self.chain.contract_of(pair_addr, UniswapV2Pair)
                out0, out1 = (amount, 0) if tok == p.token0 else (0, amount)
                self.chain.call(self.address, pair_addr, "swap", out0, out1, self.address, "x")

            @external
            def uniswapV2Call(self, msg, sender, amount0, amount1, data):
                amount = amount0 or amount1
                p = self.chain.contract_of(msg.sender, UniswapV2Pair)
                tok = p.token0 if amount0 else p.token1
                self.chain.call(self.address, tok, "transfer", msg.sender, amount)  # no fee

        cheapskate = world.chain.deploy(trader, Cheapskate)
        token.mint(cheapskate.address, 10_000 * token.unit)
        with pytest.raises(Revert, match="K invariant"):
            world.chain.transact(
                trader, cheapskate.address, "go", pair.address, token.address, 10_000 * token.unit
            )


class TestFactory:
    def test_pairs_created_by_factory(self, world):
        factory = world.dex_factory()
        a, b = world.new_token("FA"), world.new_token("FB")
        pair = factory.create_pair(a.address, b.address)
        assert world.chain.created_by[pair.address] == factory.address

    def test_identical_tokens_rejected(self, world):
        factory = world.dex_factory()
        a = world.new_token("FC")
        with pytest.raises(ValueError):
            factory.create_pair(a.address, a.address)
