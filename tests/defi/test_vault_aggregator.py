"""Vaults (share pricing, deviation guard) and trade aggregators."""

import pytest

from repro.chain import ETH, Revert


class TestVault:
    def test_first_deposit_one_to_one(self, world):
        usdc = world.new_token("VUSD", 6)
        vault = world.vault(usdc, "fV", seed_amount=0)
        user = world.create_attacker("u")
        usdc.mint(user, 1_000 * usdc.unit)
        world.approve(user, usdc, vault.address)
        world.chain.transact(user, vault.address, "deposit", 1_000 * usdc.unit)
        assert vault.balance_of(user) == 1_000 * usdc.unit

    def test_share_price_tracks_mark(self, world):
        usdc = world.new_token("VUSD2", 6)
        mark = {"value": 1.0}
        vault = world.vault(
            usdc, "fV2", value_per_underlying=lambda: mark["value"],
            seed_amount=100_000 * usdc.unit,
        )
        assert vault.price_per_share() == pytest.approx(1.0)
        mark["value"] = 0.5
        assert vault.price_per_share() == pytest.approx(0.5)

    def test_cheap_deposit_dear_withdraw_is_profitable(self, world):
        usdc = world.new_token("VUSD3", 6)
        mark = {"value": 1.0}
        vault = world.vault(
            usdc, "fV3", value_per_underlying=lambda: mark["value"],
            seed_amount=1_000_000 * usdc.unit,
        )
        user = world.create_attacker("u")
        usdc.mint(user, 100_000 * usdc.unit)
        world.approve(user, usdc, vault.address)
        mark["value"] = 0.9
        world.chain.transact(user, vault.address, "deposit", 100_000 * usdc.unit)
        shares = vault.balance_of(user)
        mark["value"] = 1.0
        world.chain.transact(user, vault.address, "withdraw", shares)
        assert usdc.balance_of(user) > 100_000 * usdc.unit

    def test_deviation_guard_blocks_manipulated_deposits(self, world):
        usdc = world.new_token("VUSD4", 6)
        mark = {"value": 1.0}
        vault = world.vault(
            usdc, "fV4", value_per_underlying=lambda: mark["value"],
            seed_amount=100_000 * usdc.unit, deviation_guard_bps=300,
        )
        user = world.create_attacker("u")
        usdc.mint(user, 1_000 * usdc.unit)
        world.approve(user, usdc, vault.address)
        mark["value"] = 0.9  # 10% deviation > 3% guard
        with pytest.raises(Revert, match="deviation guard"):
            world.chain.transact(user, vault.address, "deposit", 1_000 * usdc.unit)
        mark["value"] = 0.995  # 0.5% slips under, like the paper notes
        world.chain.transact(user, vault.address, "deposit", 1_000 * usdc.unit)

    def test_zero_amount_rejected(self, world):
        usdc = world.new_token("VUSD5", 6)
        vault = world.vault(usdc, "fV5", seed_amount=0)
        user = world.create_attacker("u")
        with pytest.raises(Revert):
            world.chain.transact(user, vault.address, "deposit", 0)


class TestAggregator:
    def test_routes_through_uniswap(self, world):
        weth = world.weth
        tkn = world.new_token("AGG")
        pool = world.dex_pair(tkn, weth, 1_000_000 * tkn.unit, 10_000 * ETH)
        agg = world.aggregator("Kyber", fee_bps=0)
        user = world.create_attacker("u")
        world.fund_weth(user, 100 * ETH)
        world.approve(user, weth, agg.address)
        world.chain.transact(
            user, agg.address, "trade", pool.address, weth.address, 10 * ETH, tkn.address
        )
        assert tkn.balance_of(user) > 0

    def test_fee_skimmed_from_output(self, world):
        weth = world.weth
        tkn = world.new_token("AGF")
        pool = world.dex_pair(tkn, weth, 1_000_000 * tkn.unit, 10_000 * ETH)
        free = world.aggregator("Free", fee_bps=0)
        pricey = world.aggregator("Pricey", fee_bps=8)
        user = world.create_attacker("u")
        world.fund_weth(user, 100 * ETH)
        world.approve(user, weth, free.address)
        world.approve(user, weth, pricey.address)
        out_free = pool.get_amount_out(10 * ETH, weth.address)
        world.chain.transact(user, pricey.address, "trade", pool.address, weth.address, 10 * ETH, tkn.address)
        got = tkn.balance_of(user)
        assert got < out_free
        assert got == pytest.approx(out_free * (1 - 8 / 10_000), rel=1e-3)

    def test_intermediary_transfer_shape(self, world):
        """The aggregator must appear as the A -> agg -> B relay LeiShen merges."""
        weth = world.weth
        tkn = world.new_token("AGS")
        pool = world.dex_pair(tkn, weth, 1_000_000 * tkn.unit, 10_000 * ETH)
        agg = world.aggregator("Kyber")
        user = world.create_attacker("u")
        world.fund_weth(user, 100 * ETH)
        world.approve(user, weth, agg.address)
        trace = world.chain.transact(
            user, agg.address, "trade", pool.address, weth.address, 10 * ETH, tkn.address
        )
        hops = [(t.sender, t.receiver) for t in trace.transfers if t.token == weth.address]
        assert (user, agg.address) in hops
        assert (agg.address, pool.address) in hops

    def test_curve_and_balancer_venues(self, world):
        usdc = world.new_token("AC1", 6)
        usdt = world.new_token("AC2", 6)
        curve = world.curve_pool({usdc: 10**6 * usdc.unit, usdt: 10**6 * usdt.unit})
        bal = world.balancer_pool({usdc: 10**5 * usdc.unit, usdt: 10**5 * usdt.unit})
        agg = world.aggregator("1inch")
        user = world.create_attacker("u")
        usdc.mint(user, 10_000 * usdc.unit)
        world.approve(user, usdc, agg.address)
        world.chain.transact(user, agg.address, "trade", curve.address, usdc.address, 1_000 * usdc.unit, usdt.address)
        world.chain.transact(user, agg.address, "trade", bal.address, usdc.address, 1_000 * usdc.unit, usdt.address)
        assert usdt.balance_of(user) > 1_900 * usdt.unit

    def test_unsupported_venue_reverts(self, world):
        agg = world.aggregator("1inch")
        user = world.create_attacker("u")
        tkn = world.new_token("AGX")
        tkn.mint(user, 100)
        world.approve(user, tkn, agg.address)
        with pytest.raises(Revert, match="unsupported venue"):
            world.chain.transact(
                user, agg.address, "trade", tkn.address, tkn.address, 10, tkn.address
            )
