"""StableSwap invariant math and trading."""

import pytest

from repro.chain import Revert


@pytest.fixture()
def pool(world):
    usdc = world.new_token("USDC", 6)
    usdt = world.new_token("USDT", 6)
    pool = world.curve_pool({usdc: 10_000_000 * usdc.unit, usdt: 10_000_000 * usdt.unit})
    return world, usdc, usdt, pool


class TestInvariant:
    def test_balanced_pool_D_equals_sum(self, pool):
        _, usdc, usdt, p = pool
        assert p.get_D() == pytest.approx(20_000_000 * 10**18, rel=1e-9)

    def test_virtual_price_starts_at_one(self, pool):
        *_, p = pool
        assert p.virtual_price() == pytest.approx(10**18, rel=1e-6)

    def test_low_slippage_near_balance(self, pool):
        _, usdc, usdt, p = pool
        dy = p.get_dy(0, 1, 100_000 * usdc.unit)
        assert dy > 99_900 * usdt.unit  # < 0.1% total cost

    def test_high_slippage_when_imbalanced(self, pool):
        world, usdc, usdt, p = pool
        whale = world.whale
        world.approve(whale, usdc, p.address)
        world.chain.transact(whale, p.address, "exchange", 0, 1, 8_000_000 * usdc.unit)
        dy = p.get_dy(0, 1, 100_000 * usdc.unit)
        assert dy < 99_000 * usdt.unit  # marginal rate degraded

    def test_mixed_decimals_normalized(self, world):
        six = world.new_token("SIX", 6)
        eighteen = world.new_token("E18", 18)
        p = world.curve_pool({six: 1_000_000 * six.unit, eighteen: 1_000_000 * eighteen.unit})
        dy = p.get_dy(0, 1, 1_000 * six.unit)
        assert dy == pytest.approx(1_000 * eighteen.unit, rel=2e-3)


class TestExchange:
    def test_exchange_moves_tokens(self, pool):
        world, usdc, usdt, p = pool
        trader = world.create_attacker("t")
        usdc.mint(trader, 1_000 * usdc.unit)
        world.approve(trader, usdc, p.address)
        trace = world.chain.transact(trader, p.address, "exchange", 0, 1, 1_000 * usdc.unit)
        assert usdt.balance_of(trader) > 0
        assert "TokenExchange" in trace.emitted_events()

    def test_bad_index_reverts(self, pool):
        world, usdc, *_ , p = pool
        trader = world.create_attacker("t")
        with pytest.raises(Revert):
            world.chain.transact(trader, p.address, "exchange", 0, 0, 100)

    def test_slippage_guard(self, pool):
        world, usdc, usdt, p = pool
        trader = world.create_attacker("t")
        usdc.mint(trader, 1_000 * usdc.unit)
        world.approve(trader, usdc, p.address)
        with pytest.raises(Revert, match="slippage"):
            world.chain.transact(
                trader, p.address, "exchange", 0, 1, 1_000 * usdc.unit, 2_000 * usdt.unit
            )


class TestLiquidity:
    def test_add_then_remove_round_trip(self, pool):
        world, usdc, usdt, p = pool
        lp = world.create_attacker("lp")
        usdc.mint(lp, 10_000 * usdc.unit)
        usdt.mint(lp, 10_000 * usdt.unit)
        world.approve(lp, usdc, p.address)
        world.approve(lp, usdt, p.address)
        world.chain.transact(lp, p.address, "add_liquidity", [10_000 * usdc.unit, 10_000 * usdt.unit])
        minted = p.balance_of(lp)
        assert minted > 0
        world.chain.transact(lp, p.address, "remove_liquidity", minted)
        assert usdc.balance_of(lp) == pytest.approx(10_000 * usdc.unit, rel=1e-3)

    def test_one_sided_add_mints_less_than_balanced(self, pool):
        world, usdc, usdt, p = pool
        lp = world.create_attacker("lp2")
        usdc.mint(lp, 20_000 * usdc.unit)
        world.approve(lp, usdc, p.address)
        world.chain.transact(lp, p.address, "add_liquidity", [20_000 * usdc.unit, 0])
        one_sided = p.balance_of(lp)
        assert 0 < one_sided < 20_000 * 10**18
