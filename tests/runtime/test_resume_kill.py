"""Kill-and-resume identity: the tentpole contract of the run ledger.

A run SIGKILLed mid-flight leaves a journal with a prefix of its shards
(possibly ending in a torn line); resuming from that journal schedules
only the remainder and merges to a result byte-identical to an
uninterrupted run. Both the batch engine and the cluster coordinator are
killed for real — a forked child process, ``SIGKILL``, no cleanup.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.engine.scan import ScanEngine
from repro.runtime import RunLedger
from repro.workload.generator import WildScanConfig

SCALE = 0.005
SEED = 7
SHARDS = 4
#: per-task stall in the child, slow enough to catch mid-run.
DELAY = 0.003

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="kill tests need the fork start method",
)


def _config() -> WildScanConfig:
    return WildScanConfig(scale=SCALE, seed=SEED, shards=SHARDS)


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "rows": {name: (r.n, r.tp, r.fp) for name, r in result.rows.items()},
    }


def _journaled_shards(path) -> int:
    """Count intact shard records in the ledger file (torn tail ignored)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        return 0
    count = 0
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if record.get("kind") == "shard":
            count += 1
        elif record.get("kind") == "snapshot":
            count += record.get("shards", 0)
    return count


def _run_child_until_first_shard(target, path, timeout: float = 120.0):
    """Fork ``target(path)``; SIGKILL it as soon as one shard is journaled.

    Returns the number of intact shard records left behind. Skips the
    test when the sandbox denies process spawning.
    """
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=target, args=(str(path),), daemon=True)
    try:
        process.start()
    except (OSError, PermissionError) as exc:  # pragma: no cover
        pytest.skip(f"process spawning denied: {exc}")
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            if _journaled_shards(path) >= 1:
                break
            if not process.is_alive():
                break
            time.sleep(0.02)
        if process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10.0)
    finally:
        if process.is_alive():  # pragma: no cover
            process.terminate()
            process.join(timeout=5.0)
    journaled = _journaled_shards(path)
    assert journaled >= 1, "child died before journaling a single shard"
    return journaled


def _slow_batch_main(path: str) -> None:
    """Child: run the batch engine with every task slowed down."""
    from repro.engine import scan

    original = scan.execute_task

    def slow_execute(ctx, task):
        time.sleep(DELAY)
        return original(ctx, task)

    scan.execute_task = slow_execute
    ScanEngine(_config(), ledger=path).run()


def _slow_compacting_batch_main(path: str) -> None:
    """Child: batch engine journaling through an aggressively
    auto-compacting ledger — every record triggers a fold-and-rotate, so
    the SIGKILL races create/append/write-new/rename/dir-fsync."""
    from repro.engine import scan

    original = scan.execute_task

    def slow_execute(ctx, task):
        time.sleep(DELAY)
        return original(ctx, task)

    scan.execute_task = slow_execute
    ledger = RunLedger.for_config(path, _config(), compact_every=1)
    ScanEngine(_config(), ledger=ledger).run()


def _slow_cluster_main(path: str) -> None:
    """Child: coordinator + two thread workers, every task slowed down."""
    from repro.cluster.local import run_cluster_scan
    from repro.cluster.worker import ClusterWorker

    def factory(index, address):
        def hook(worker, shard, number):
            time.sleep(DELAY)

        return ClusterWorker(address, name=f"slow-{index}", task_hook=hook)

    run_cluster_scan(_config(), workers=2, worker_factory=factory, ledger=path)


@pytest.fixture(scope="module")
def cold_result():
    return ScanEngine(_config()).run()


class TestBatchKillResume:
    def test_sigkilled_batch_run_resumes_byte_identical(
        self, tmp_path, cold_result
    ):
        path = tmp_path / "batch.ledger"
        journaled = _run_child_until_first_shard(_slow_batch_main, path)
        assert journaled < SHARDS, "child finished before the kill landed"

        engine = ScanEngine(_config(), ledger=path)
        resumed = engine.run()
        assert engine.ledger.resumed_count == journaled
        assert engine.ledger.recorded_count == SHARDS - journaled
        assert _snapshot(resumed) == _snapshot(cold_result)

    def test_second_resume_schedules_nothing(self, tmp_path, cold_result):
        path = tmp_path / "batch.ledger"
        _run_child_until_first_shard(_slow_batch_main, path)
        ScanEngine(_config(), ledger=path).run()  # completes the journal

        engine = ScanEngine(_config(), ledger=path)
        result = engine.run()
        assert engine.ledger.resumed_count == SHARDS
        assert engine.ledger.recorded_count == 0
        assert _snapshot(result) == _snapshot(cold_result)


class TestCompactingKillResume:
    def test_sigkilled_compacting_run_resumes_byte_identical(
        self, tmp_path, cold_result
    ):
        """SIGKILL a run that compacts after *every* record: whatever
        window the kill lands in — append, snapshot write, rename, or
        directory fsync — the surviving file parses and the resumed run
        merges byte-identical."""
        path = tmp_path / "compacting.ledger"
        journaled = _run_child_until_first_shard(_slow_compacting_batch_main, path)
        assert journaled < SHARDS, "child finished before the kill landed"

        reopened = RunLedger.open(path, config=_config(), shard_count=SHARDS)
        assert len(reopened.completed_shards()) == journaled
        reopened.close()

        engine = ScanEngine(_config(), ledger=path)
        resumed = engine.run()
        assert engine.ledger.resumed_count == journaled
        assert engine.ledger.recorded_count == SHARDS - journaled
        assert _snapshot(resumed) == _snapshot(cold_result)

    def test_resumed_run_can_keep_compacting(self, tmp_path, cold_result):
        path = tmp_path / "compacting.ledger"
        _run_child_until_first_shard(_slow_compacting_batch_main, path)
        ledger = RunLedger.for_config(path, _config(), compact_every=1)
        resumed = ScanEngine(_config(), ledger=ledger).run()
        assert _snapshot(resumed) == _snapshot(cold_result)
        ledger.close()
        replay = RunLedger.open(path, config=_config(), shard_count=SHARDS)
        assert replay.is_complete
        assert replay.snapshot_shards == SHARDS  # fully folded journal


class TestClusterKillResume:
    def test_sigkilled_coordinator_resumes_byte_identical(
        self, tmp_path, cold_result
    ):
        from repro.cluster.local import run_cluster_scan

        path = tmp_path / "cluster.ledger"
        journaled = _run_child_until_first_shard(_slow_cluster_main, path)
        assert journaled < SHARDS, "child finished before the kill landed"

        result, stats = run_cluster_scan(_config(), workers=2, ledger=path)
        assert stats.resumed_shards == journaled
        assert _snapshot(result) == _snapshot(cold_result)

        # the finished journal now resumes with zero assignments.
        result2, stats2 = run_cluster_scan(_config(), workers=2, ledger=path)
        assert stats2.resumed_shards == SHARDS
        assert stats2.assignments == 0
        assert _snapshot(result2) == _snapshot(cold_result)

    def test_late_duplicate_after_resume_is_suppressed(
        self, tmp_path, cold_result
    ):
        """Regression: a straggler's result for a shard the resumed run
        already loaded from the journal must be suppressed, not merged
        twice and not re-journaled."""
        from repro.cluster.coordinator import Coordinator
        from repro.cluster.protocol import (
            PROTOCOL_VERSION,
            recv_message,
            send_message,
        )
        import socket

        path = tmp_path / "late.ledger"
        journaled = _run_child_until_first_shard(_slow_cluster_main, path)
        before = RunLedger.open(path)
        resumed_shard = sorted(before.completed_payloads)[0]
        late_payload = before.completed_payloads[resumed_shard]

        coordinator = Coordinator(_config(), ledger=path)
        coordinator.start()
        try:
            host, port = coordinator.address
            with socket.create_connection((host, port), timeout=10.0) as sock:
                send_message(
                    sock,
                    {"type": "hello", "worker": "late", "protocol": PROTOCOL_VERSION},
                )
                welcome = recv_message(sock)
                assert welcome["type"] == "welcome"
                # replay a result for a shard the journal already holds.
                send_message(
                    sock,
                    {"type": "result", "shard": resumed_shard,
                     "payload": late_payload},
                )
                send_message(sock, {"type": "bye"})
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if coordinator.stats.duplicates_suppressed >= 1:
                    break
                time.sleep(0.02)
            assert coordinator.stats.duplicates_suppressed == 1
        finally:
            coordinator.shutdown()
        # the journal must not have grown a duplicate record.
        after = RunLedger.open(path)
        assert sorted(after.completed_payloads) == sorted(
            before.completed_payloads
        )
        assert journaled == len(before.completed_payloads)
