"""The run ledger: durability format, strictness, resume bookkeeping.

The file-level contract: a header binds the journal to one scan identity,
every record is one shard's lossless wire payload, a torn trailing line
(the signature of a kill mid-append) is tolerated, and every other
malformation refuses loudly instead of risking a wrong merge.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.scan import ScanEngine, run_shard
from repro.engine.plan import build_schedule, resolve_shard_count, shard_schedule
from repro.engine.wire import WIRE_VERSION, config_digest, shard_result_to_wire
from repro.runtime import LEDGER_VERSION, LedgerError, RunLedger, ensure_ledger
from repro.workload.generator import WildScanConfig

SCALE = 0.005
SEED = 7


@pytest.fixture()
def config():
    return WildScanConfig(scale=SCALE, seed=SEED, shards=4)


@pytest.fixture(scope="module")
def outcomes():
    cfg = WildScanConfig(scale=SCALE, seed=SEED, shards=4)
    tasks = build_schedule(cfg.scale, cfg.seed)
    count = resolve_shard_count(cfg.shards, len(tasks))
    parts = shard_schedule(tasks, count)
    return [run_shard((cfg, i, count, part)) for i, part in enumerate(parts)]


class TestCreateOpen:
    def test_create_writes_versioned_header(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["ledger_version"] == LEDGER_VERSION
        assert header["wire_version"] == WIRE_VERSION
        assert header["seed"] == SEED
        assert header["scale"] == SCALE
        assert header["shard_count"] == 4
        assert header["config_digest"] == config_digest(config)

    def test_create_refuses_existing_file(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        with pytest.raises(FileExistsError):
            RunLedger.create(path, config, 4)

    def test_open_round_trips_records(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            assert ledger.record(outcome) is True
        reopened = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(reopened.completed_payloads) == [0, 1]
        assert reopened.resumed_count == 2
        assert reopened.remaining() == [2, 3]
        assert not reopened.is_complete

    def test_open_missing_file(self, tmp_path, config):
        with pytest.raises(LedgerError, match="no ledger"):
            RunLedger.open(tmp_path / "absent.ledger", config=config)

    def test_open_rejects_config_digest_mismatch(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        other = WildScanConfig(scale=SCALE, seed=SEED + 1, shards=4)
        with pytest.raises(LedgerError, match="config digest mismatch"):
            RunLedger.open(path, config=other, shard_count=4)

    def test_open_rejects_shard_count_mismatch(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        with pytest.raises(LedgerError, match="shard count mismatch"):
            RunLedger.open(path, config=config, shard_count=8)

    def test_open_rejects_wrong_ledger_version(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        header = json.loads(path.read_text().splitlines()[0])
        header["ledger_version"] = LEDGER_VERSION + 1
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(LedgerError, match="ledger format version"):
            RunLedger.open(path, config=config)

    def test_open_rejects_wrong_wire_version(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        header = json.loads(path.read_text().splitlines()[0])
        header["wire_version"] = WIRE_VERSION + 1
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(LedgerError, match="wire schema version"):
            RunLedger.open(path, config=config)

    def test_open_rejects_non_header_first_line(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        path.write_text('{"kind": "shard", "shard": 0}\n')
        with pytest.raises(LedgerError, match="not a ledger header"):
            RunLedger.open(path, config=config)


class TestDurabilityAndCorruption:
    def test_torn_trailing_line_tolerated(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            ledger.record(outcome)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "shard", "shard": 2, "payl')  # kill signature
        reopened = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(reopened.completed_payloads) == [0, 1]

    def test_torn_tail_truncated_so_appends_stay_parseable(
        self, tmp_path, config, outcomes
    ):
        """Opening a torn ledger must cut the partial line; otherwise the
        resumed run's appends land *after* it and the tear — tolerable at
        the tail — becomes interior corruption at the next open."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "shard", "shard": 2, "payl')  # kill signature
        resumed = RunLedger.open(path, config=config, shard_count=4)
        assert path.read_text().endswith("\n")  # tail is a clean boundary again
        for outcome in outcomes[1:]:
            resumed.record(outcome)
        resumed.close()
        replay = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(replay.completed_payloads) == [0, 1, 2, 3]
        assert replay.is_complete

    def test_corrupt_interior_record_raises(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        lines = path.read_text().splitlines()
        lines.insert(1, '{"kind": "shard", bro')  # interior, not trailing
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError, match="corrupt interior record"):
            RunLedger.open(path, config=config)

    def test_out_of_range_shard_raises(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        payload = shard_result_to_wire(outcomes[0])
        with open(path, "a", encoding="utf-8") as handle:
            record = {"kind": "shard", "shard": 9, "payload": payload}
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(LedgerError, match="outside 0..3"):
            RunLedger.open(path, config=config)

    def test_wrong_payload_wire_version_raises(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        payload = dict(shard_result_to_wire(outcomes[0]), v=WIRE_VERSION + 1)
        with open(path, "a", encoding="utf-8") as handle:
            record = {"kind": "shard", "shard": 0, "payload": payload}
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(LedgerError, match="wire version"):
            RunLedger.open(path, config=config)

    def test_identical_duplicate_records_first_wins(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        line = path.read_text().splitlines()[1]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")  # replayed append after a crash
        reopened = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(reopened.completed_payloads) == [0]

    def test_divergent_duplicate_records_raise(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        payload = dict(shard_result_to_wire(outcomes[0]))
        payload["total_transactions"] += 1
        with open(path, "a", encoding="utf-8") as handle:
            record = {"kind": "shard", "shard": 0, "payload": payload}
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(LedgerError, match="divergent duplicate"):
            RunLedger.open(path, config=config)


class TestRecording:
    def test_record_is_idempotent(self, tmp_path, config, outcomes):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        assert ledger.record(outcomes[0]) is True
        assert ledger.record(outcomes[0]) is False
        assert ledger.recorded_count == 1
        assert ledger.duplicates_ignored == 1

    def test_record_divergent_payload_raises(self, tmp_path, config, outcomes):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        ledger.record(outcomes[0])
        payload = dict(shard_result_to_wire(outcomes[0]))
        payload["total_transactions"] += 1
        with pytest.raises(LedgerError, match="divergent result"):
            ledger.record_payload(0, payload)

    def test_record_out_of_range_shard_raises(self, tmp_path, config, outcomes):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        with pytest.raises(LedgerError, match="outside"):
            ledger.record_payload(4, shard_result_to_wire(outcomes[0]))

    def test_merge_requires_completeness(self, tmp_path, config, outcomes):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        ledger.record(outcomes[0])
        with pytest.raises(LedgerError, match="incomplete"):
            ledger.merge()

    def test_merge_matches_direct_merge(self, tmp_path, config, outcomes):
        from repro.engine.scan import merge_shard_results

        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        for outcome in outcomes:
            ledger.record(outcome)
        merged = ledger.merge()
        direct = merge_shard_results(config, outcomes)
        assert merged.total_transactions == direct.total_transactions
        assert [d.tx_hash for d in merged.detections] == [
            d.tx_hash for d in direct.detections
        ]
        assert {
            name: (row.n, row.tp, row.fp) for name, row in merged.rows.items()
        } == {name: (row.n, row.tp, row.fp) for name, row in direct.rows.items()}


class TestEnsureLedger:
    def test_none_passthrough(self, config):
        assert ensure_ledger(None, config, 4) is None

    def test_path_resumes_or_creates(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        first = ensure_ledger(path, config, 4)
        first.record(outcomes[0])
        second = ensure_ledger(path, config, 4)
        assert second.resumed_count == 1

    def test_instance_verified_against_config(self, tmp_path, config):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        other = WildScanConfig(scale=SCALE, seed=SEED + 1, shards=4)
        with pytest.raises(LedgerError, match="different config"):
            ensure_ledger(ledger, other, 4)
        with pytest.raises(LedgerError, match="shard_count"):
            ensure_ledger(ledger, config, 8)
        assert ensure_ledger(ledger, config, 4) is ledger


class TestEngineIntegration:
    def test_resumed_scan_matches_uninterrupted(self, tmp_path, config, outcomes):
        """Resume from a half-written journal; the merged result must be
        byte-identical to an uninterrupted ledger-free run."""
        cold = ScanEngine(config).run()
        path = tmp_path / "run.ledger"
        partial = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            partial.record(outcome)
        partial.close()

        engine = ScanEngine(config, ledger=path)
        resumed = engine.run()
        assert engine.ledger.resumed_count == 2
        assert engine.ledger.recorded_count == 2
        assert resumed.total_transactions == cold.total_transactions
        assert [d.tx_hash for d in resumed.detections] == [
            d.tx_hash for d in cold.detections
        ]

    def test_resuming_complete_ledger_schedules_zero_shards(
        self, tmp_path, config, outcomes
    ):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes:
            ledger.record(outcome)
        ledger.close()
        engine = ScanEngine(config, ledger=path)
        result = engine.run()
        assert engine.ledger.resumed_count == 4
        assert engine.ledger.recorded_count == 0  # nothing scheduled
        assert result.total_transactions == sum(
            outcome.total_transactions for outcome in outcomes
        )
