"""The run ledger: durability format, strictness, resume bookkeeping.

The file-level contract: a header binds the journal to one scan identity,
every record is one shard's lossless wire payload, a torn trailing line
(the signature of a kill mid-append) is tolerated, and every other
malformation refuses loudly instead of risking a wrong merge.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.scan import ScanEngine, run_shard
from repro.engine.plan import build_schedule, resolve_shard_count, shard_schedule
from repro.engine.wire import WIRE_VERSION, config_digest, shard_result_to_wire
from repro.runtime import LEDGER_VERSION, LedgerError, RunLedger, ensure_ledger
from repro.workload.generator import WildScanConfig

SCALE = 0.005
SEED = 7


@pytest.fixture()
def config():
    return WildScanConfig(scale=SCALE, seed=SEED, shards=4)


@pytest.fixture(scope="module")
def outcomes():
    cfg = WildScanConfig(scale=SCALE, seed=SEED, shards=4)
    tasks = build_schedule(cfg.scale, cfg.seed)
    count = resolve_shard_count(cfg.shards, len(tasks))
    parts = shard_schedule(tasks, count)
    return [run_shard((cfg, i, count, part)) for i, part in enumerate(parts)]


class TestCreateOpen:
    def test_create_writes_versioned_header(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["ledger_version"] == LEDGER_VERSION
        assert header["wire_version"] == WIRE_VERSION
        assert header["seed"] == SEED
        assert header["scale"] == SCALE
        assert header["shard_count"] == 4
        assert header["config_digest"] == config_digest(config)

    def test_create_refuses_existing_file(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        with pytest.raises(FileExistsError):
            RunLedger.create(path, config, 4)

    def test_open_round_trips_records(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            assert ledger.record(outcome) is True
        reopened = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(reopened.completed_payloads) == [0, 1]
        assert reopened.resumed_count == 2
        assert reopened.remaining() == [2, 3]
        assert not reopened.is_complete

    def test_open_missing_file(self, tmp_path, config):
        with pytest.raises(LedgerError, match="no ledger"):
            RunLedger.open(tmp_path / "absent.ledger", config=config)

    def test_open_rejects_config_digest_mismatch(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        other = WildScanConfig(scale=SCALE, seed=SEED + 1, shards=4)
        with pytest.raises(LedgerError, match="config digest mismatch") as info:
            RunLedger.open(path, config=other, shard_count=4)
        # the error is self-describing: both the header's identity and
        # the caller's land in the message, so the operator can see
        # *which* scan the journal belongs to without opening it.
        message = str(info.value)
        assert f"seed={config.seed}" in message
        assert f"seed={other.seed}" in message
        assert f"scale={config.scale}" in message
        from repro.engine.wire import config_digest

        assert config_digest(config) in message
        assert config_digest(other) in message

    def test_open_rejects_registry_mismatch(self, tmp_path, config):
        """A different enabled-pattern set is a different scan: resuming
        its ledger must fail as loudly as a seed mismatch, with both
        identity tuples in the message."""
        from repro.leishen.registry import ALL_PATTERN_KEYS, PatternSettings

        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        widened = WildScanConfig(
            scale=SCALE, seed=SEED, shards=4,
            pattern_config=PatternSettings(enabled=ALL_PATTERN_KEYS),
        )
        with pytest.raises(LedgerError, match="config digest mismatch") as info:
            RunLedger.open(path, config=widened, shard_count=4)
        message = str(info.value)
        assert config_digest(config) in message
        assert config_digest(widened) in message

    def test_open_rejects_shard_count_mismatch(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        with pytest.raises(LedgerError, match="shard count mismatch") as info:
            RunLedger.open(path, config=config, shard_count=8)
        message = str(info.value)
        assert "shard_count=4" in message  # what the ledger holds
        assert "shard_count=8" in message  # what the caller expected
        assert f"seed={config.seed}" in message

    def test_open_rejects_wrong_ledger_version(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        header = json.loads(path.read_text().splitlines()[0])
        header["ledger_version"] = LEDGER_VERSION + 1
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(LedgerError, match="ledger format version"):
            RunLedger.open(path, config=config)

    def test_open_rejects_wrong_wire_version(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        header = json.loads(path.read_text().splitlines()[0])
        header["wire_version"] = WIRE_VERSION + 1
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(LedgerError, match="wire schema version"):
            RunLedger.open(path, config=config)

    def test_open_rejects_non_header_first_line(self, tmp_path, config):
        path = tmp_path / "run.ledger"
        path.write_text('{"kind": "shard", "shard": 0}\n')
        with pytest.raises(LedgerError, match="not a ledger header"):
            RunLedger.open(path, config=config)


class TestDurabilityAndCorruption:
    def test_torn_trailing_line_tolerated(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            ledger.record(outcome)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "shard", "shard": 2, "payl')  # kill signature
        reopened = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(reopened.completed_payloads) == [0, 1]

    def test_torn_tail_truncated_so_appends_stay_parseable(
        self, tmp_path, config, outcomes
    ):
        """Opening a torn ledger must cut the partial line; otherwise the
        resumed run's appends land *after* it and the tear — tolerable at
        the tail — becomes interior corruption at the next open."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "shard", "shard": 2, "payl')  # kill signature
        resumed = RunLedger.open(path, config=config, shard_count=4)
        assert path.read_text().endswith("\n")  # tail is a clean boundary again
        for outcome in outcomes[1:]:
            resumed.record(outcome)
        resumed.close()
        replay = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(replay.completed_payloads) == [0, 1, 2, 3]
        assert replay.is_complete

    def test_corrupt_interior_record_raises(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        lines = path.read_text().splitlines()
        lines.insert(1, '{"kind": "shard", bro')  # interior, not trailing
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError, match="corrupt interior record"):
            RunLedger.open(path, config=config)

    def test_out_of_range_shard_raises(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        payload = shard_result_to_wire(outcomes[0])
        with open(path, "a", encoding="utf-8") as handle:
            record = {"kind": "shard", "shard": 9, "payload": payload}
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(LedgerError, match="outside 0..3"):
            RunLedger.open(path, config=config)

    def test_wrong_payload_wire_version_raises(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        payload = dict(shard_result_to_wire(outcomes[0]), v=WIRE_VERSION + 1)
        with open(path, "a", encoding="utf-8") as handle:
            record = {"kind": "shard", "shard": 0, "payload": payload}
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(LedgerError, match="wire version"):
            RunLedger.open(path, config=config)

    def test_identical_duplicate_records_first_wins(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        line = path.read_text().splitlines()[1]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")  # replayed append after a crash
        reopened = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(reopened.completed_payloads) == [0]

    def test_divergent_duplicate_records_raise(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        payload = dict(shard_result_to_wire(outcomes[0]))
        payload["total_transactions"] += 1
        with open(path, "a", encoding="utf-8") as handle:
            record = {"kind": "shard", "shard": 0, "payload": payload}
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(LedgerError, match="divergent duplicate"):
            RunLedger.open(path, config=config)


class TestTornTailByteAccounting:
    """Regressions for the two torn-tail classification/truncation bugs:
    parsing must split records on ``b"\\n"`` alone (never ``\\r`` and
    friends), and a torn partial record followed by trailing blank lines
    is a torn *tail*, not interior corruption."""

    def test_carriage_return_bearing_torn_tail(self, tmp_path, config, outcomes):
        """A torn tail with a stray ``\\r`` used to be split into extra
        'lines' by ``str.splitlines()``, truncating mid-record and turning
        a tolerable tear into interior corruption at the next open."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            ledger.record(outcome)
        ledger.close()
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "shard", "shard": 2, "pay\rl')
        resumed = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(resumed.completed_payloads) == [0, 1]
        assert path.read_bytes().endswith(b"}\n")  # whole tear cut away
        for outcome in outcomes[2:]:
            resumed.record(outcome)
        resumed.close()
        replay = RunLedger.open(path, config=config, shard_count=4)
        assert replay.is_complete

    def test_crlf_converted_ledger_still_parses(self, tmp_path, config, outcomes):
        """A ledger copied through a CRLF filesystem: ``\\r`` before the
        newline is JSON whitespace, so every record still decodes."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes:
            ledger.record(outcome)
        ledger.close()
        path.write_bytes(path.read_bytes().replace(b"\n", b"\r\n"))
        replay = RunLedger.open(path, config=config, shard_count=4)
        assert replay.is_complete

    def test_torn_tail_followed_by_blank_line_tolerated(
        self, tmp_path, config, outcomes
    ):
        """The tear landed after the partial record's bytes but an earlier
        flush already wrote ``\\n``: the partial line is followed by a
        trailing blank line. That is still a torn tail — it used to raise
        ``LedgerError`` because only the literal last line was checked."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        ledger.close()
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "shard", "shard": 2, "payl\n\n')
        resumed = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(resumed.completed_payloads) == [0]
        for outcome in outcomes[1:]:
            resumed.record(outcome)
        resumed.close()
        assert RunLedger.open(path, config=config, shard_count=4).is_complete

    def test_partial_record_before_valid_record_still_raises(
        self, tmp_path, config, outcomes
    ):
        """The other ordering stays loud: a partial record with a *real*
        record after it cannot be a tear — records append one at a time —
        so it is interior corruption."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        ledger.close()
        valid = path.read_text().splitlines()[1]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "shard", "shard": 2, "payl\n')
            handle.write(valid + "\n")
        with pytest.raises(LedgerError, match="corrupt interior record"):
            RunLedger.open(path, config=config)

    def test_undecodable_utf8_tail_tolerated(self, tmp_path, config, outcomes):
        """A tear can land mid-codepoint; invalid UTF-8 on the tail line
        classifies exactly like invalid JSON."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        ledger.close()
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "shard", "shard": 2, "p\xff\xfe')
        resumed = RunLedger.open(path, config=config, shard_count=4)
        assert sorted(resumed.completed_payloads) == [0]


class TestDirectoryFsync:
    def test_create_fsyncs_parent_directory(self, tmp_path, config, monkeypatch):
        """The new-file durability gap: creating the journal must fsync
        the directory entry, not just the file."""
        synced = []
        monkeypatch.setattr(
            RunLedger, "_fsync_dir", staticmethod(lambda d: synced.append(d))
        )
        path = tmp_path / "run.ledger"
        RunLedger.create(path, config, 4)
        assert synced == [path.parent]

    def test_compaction_rename_fsyncs_parent_directory(
        self, tmp_path, config, outcomes, monkeypatch
    ):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        synced = []
        monkeypatch.setattr(
            RunLedger, "_fsync_dir", staticmethod(lambda d: synced.append(d))
        )
        assert ledger.compact() is True
        assert synced == [path.parent]


def _fingerprint(result) -> str:
    """Canonical bytes of a merged result (what byte-identity means)."""
    from repro.engine.wire import detection_to_wire

    return json.dumps(
        {
            "total_transactions": result.total_transactions,
            "detections": [detection_to_wire(d) for d in result.detections],
            "rows": {
                name: (row.n, row.tp, row.fp)
                for name, row in sorted(result.rows.items())
            },
        },
        sort_keys=True,
    )


class TestCompaction:
    def test_compact_folds_prefix_and_rotates(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            ledger.record(outcome)
        assert ledger.compact() is True
        assert ledger.snapshot_shards == 2
        assert ledger.generation == 1
        assert ledger.compactions == 1
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        snapshot = json.loads(lines[1])
        assert snapshot["kind"] == "snapshot"
        assert snapshot["shards"] == 2
        assert snapshot["generation"] == 1
        assert len(lines) == 2  # no tail yet: two shards became one record
        assert not list(tmp_path.glob("run.ledger.*"))  # rotation renamed

    def test_compact_with_no_contiguous_prefix_is_noop(
        self, tmp_path, config, outcomes
    ):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[1])  # shard 1: shard 0 still missing
        before = path.read_bytes()
        assert ledger.compact() is False
        assert path.read_bytes() == before

    def test_compacted_ledger_reopens_with_prefix_accounted(
        self, tmp_path, config, outcomes
    ):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes[:3]:
            ledger.record(outcome)
        ledger.compact()
        ledger.close()
        resumed = RunLedger.open(path, config=config, shard_count=4)
        assert resumed.snapshot_shards == 3
        assert resumed.completed_shards() == frozenset({0, 1, 2})
        assert resumed.completed_payloads == {}  # prefix holds no payloads
        assert resumed.resumed_count == 3
        assert resumed.remaining() == [3]
        assert not resumed.is_complete
        resumed.record(outcomes[3])
        assert resumed.is_complete

    def test_compacted_merge_byte_identical_to_uncompacted(
        self, tmp_path, config, outcomes
    ):
        plain = RunLedger.create(tmp_path / "plain.ledger", config, 4)
        compacted = RunLedger.create(tmp_path / "compacted.ledger", config, 4)
        for outcome in outcomes:
            plain.record(outcome)
            compacted.record(outcome)
            compacted.compact()  # fold after every record: worst case
        assert compacted.generation == 4
        assert _fingerprint(compacted.merge()) == _fingerprint(plain.merge())
        # and the identity survives a reopen of the rotated file
        compacted.close()
        replay = RunLedger.open(
            tmp_path / "compacted.ledger", config=config, shard_count=4
        )
        assert _fingerprint(replay.merge()) == _fingerprint(plain.merge())

    def test_compact_extends_existing_snapshot(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        ledger.compact()
        # out-of-order completion: 2 journals while 1 is outstanding
        ledger.record(outcomes[2])
        assert ledger.compact() is False  # prefix can't extend past the gap
        ledger.record(outcomes[1])
        assert ledger.compact() is True
        assert ledger.snapshot_shards == 3
        assert ledger.generation == 2
        ledger.record(outcomes[3])
        from repro.engine.scan import merge_shard_results

        assert _fingerprint(ledger.merge()) == _fingerprint(
            merge_shard_results(config, outcomes)
        )

    def test_record_into_compacted_prefix_is_duplicate(
        self, tmp_path, config, outcomes
    ):
        """A late result for a compacted shard (a dead primary's worker
        finishing after adoption) is suppressed as a duplicate — the
        individual payload is gone, the determinism contract stands in."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        ledger.compact()
        assert ledger.record(outcomes[0]) is False
        assert ledger.duplicates_ignored == 1

    def test_compact_every_auto_compacts(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4, compact_every=2)
        for outcome in outcomes:
            ledger.record(outcome)
        assert ledger.compactions == 2
        assert ledger.snapshot_shards == 4
        assert ledger.is_complete
        from repro.engine.scan import merge_shard_results

        assert _fingerprint(ledger.merge()) == _fingerprint(
            merge_shard_results(config, outcomes)
        )

    def test_compact_every_validated(self, tmp_path, config):
        with pytest.raises(ValueError, match="compact_every"):
            RunLedger.create(tmp_path / "run.ledger", config, 4, compact_every=0)

    def test_appends_after_compaction_land_in_rotated_file(
        self, tmp_path, config, outcomes
    ):
        """compact() must rotate the append handle too: a record written
        through a stale handle would land in the unlinked old inode and
        silently vanish."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])  # opens the append handle
        ledger.compact()
        ledger.record(outcomes[1])
        ledger.close()
        replay = RunLedger.open(path, config=config, shard_count=4)
        assert replay.completed_shards() == frozenset({0, 1})


class TestCompactionCrashWindows:
    def test_crash_between_write_and_rename_keeps_old_file(
        self, tmp_path, config, outcomes, monkeypatch
    ):
        """Killed after writing ``<path>.N`` but before the rename: the
        rotation never took effect, the old journal is intact, and the
        leftover is cleared on the next open."""
        import os as os_module

        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            ledger.record(outcome)
        before = path.read_bytes()

        def crash(src, dst):
            raise KeyboardInterrupt("kill between write and rename")

        monkeypatch.setattr(os_module, "replace", crash)
        with pytest.raises(KeyboardInterrupt):
            ledger.compact()
        monkeypatch.undo()
        assert path.read_bytes() == before  # old file: every record intact
        assert (tmp_path / "run.ledger.1").exists()  # orphaned rotation
        resumed = RunLedger.open(path, config=config, shard_count=4)
        assert resumed.completed_shards() == frozenset({0, 1})
        assert resumed.snapshot_shards == 0
        assert not (tmp_path / "run.ledger.1").exists()  # swept on open

    def test_crash_between_rename_and_dir_fsync_keeps_new_file(
        self, tmp_path, config, outcomes, monkeypatch
    ):
        """Killed after the rename but before the directory fsync: the
        new (compacted) file is what parses — never neither."""
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            ledger.record(outcome)

        def crash(directory):
            raise KeyboardInterrupt("kill between rename and dir fsync")

        monkeypatch.setattr(RunLedger, "_fsync_dir", staticmethod(crash))
        with pytest.raises(KeyboardInterrupt):
            ledger.compact()
        monkeypatch.undo()
        resumed = RunLedger.open(path, config=config, shard_count=4)
        assert resumed.snapshot_shards == 2
        assert resumed.completed_shards() == frozenset({0, 1})
        for outcome in outcomes[2:]:
            resumed.record(outcome)
        from repro.engine.scan import merge_shard_results

        assert _fingerprint(resumed.merge()) == _fingerprint(
            merge_shard_results(config, outcomes)
        )

    def test_snapshot_after_shard_records_raises(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        ledger.compact()
        ledger.record(outcomes[1])  # a tail record after the snapshot
        ledger.close()
        lines = path.read_text().splitlines()
        doctored = [lines[0], lines[2], lines[1]]  # snapshot after a shard
        path.write_text("\n".join(doctored) + "\n")
        with pytest.raises(LedgerError, match="snapshot record must be the first"):
            RunLedger.open(path, config=config)

    def test_malformed_snapshot_raises(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        ledger.record(outcomes[0])
        ledger.compact()
        ledger.close()
        lines = path.read_text().splitlines()
        snapshot = json.loads(lines[1])
        snapshot["generation"] = 0
        path.write_text("\n".join([lines[0], json.dumps(snapshot)]) + "\n")
        with pytest.raises(LedgerError, match="generation"):
            RunLedger.open(path, config=config)


class TestRecording:
    def test_record_is_idempotent(self, tmp_path, config, outcomes):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        assert ledger.record(outcomes[0]) is True
        assert ledger.record(outcomes[0]) is False
        assert ledger.recorded_count == 1
        assert ledger.duplicates_ignored == 1

    def test_record_divergent_payload_raises(self, tmp_path, config, outcomes):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        ledger.record(outcomes[0])
        payload = dict(shard_result_to_wire(outcomes[0]))
        payload["total_transactions"] += 1
        with pytest.raises(LedgerError, match="divergent result"):
            ledger.record_payload(0, payload)

    def test_record_out_of_range_shard_raises(self, tmp_path, config, outcomes):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        with pytest.raises(LedgerError, match="outside"):
            ledger.record_payload(4, shard_result_to_wire(outcomes[0]))

    def test_merge_requires_completeness(self, tmp_path, config, outcomes):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        ledger.record(outcomes[0])
        with pytest.raises(LedgerError, match="incomplete"):
            ledger.merge()

    def test_merge_matches_direct_merge(self, tmp_path, config, outcomes):
        from repro.engine.scan import merge_shard_results

        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        for outcome in outcomes:
            ledger.record(outcome)
        merged = ledger.merge()
        direct = merge_shard_results(config, outcomes)
        assert merged.total_transactions == direct.total_transactions
        assert [d.tx_hash for d in merged.detections] == [
            d.tx_hash for d in direct.detections
        ]
        assert {
            name: (row.n, row.tp, row.fp) for name, row in merged.rows.items()
        } == {name: (row.n, row.tp, row.fp) for name, row in direct.rows.items()}


class TestEnsureLedger:
    def test_none_passthrough(self, config):
        assert ensure_ledger(None, config, 4) is None

    def test_path_resumes_or_creates(self, tmp_path, config, outcomes):
        path = tmp_path / "run.ledger"
        first = ensure_ledger(path, config, 4)
        first.record(outcomes[0])
        second = ensure_ledger(path, config, 4)
        assert second.resumed_count == 1

    def test_instance_verified_against_config(self, tmp_path, config):
        ledger = RunLedger.create(tmp_path / "run.ledger", config, 4)
        other = WildScanConfig(scale=SCALE, seed=SEED + 1, shards=4)
        with pytest.raises(LedgerError, match="different config"):
            ensure_ledger(ledger, other, 4)
        with pytest.raises(LedgerError, match="shard_count"):
            ensure_ledger(ledger, config, 8)
        assert ensure_ledger(ledger, config, 4) is ledger


class TestEngineIntegration:
    def test_resumed_scan_matches_uninterrupted(self, tmp_path, config, outcomes):
        """Resume from a half-written journal; the merged result must be
        byte-identical to an uninterrupted ledger-free run."""
        cold = ScanEngine(config).run()
        path = tmp_path / "run.ledger"
        partial = RunLedger.create(path, config, 4)
        for outcome in outcomes[:2]:
            partial.record(outcome)
        partial.close()

        engine = ScanEngine(config, ledger=path)
        resumed = engine.run()
        assert engine.ledger.resumed_count == 2
        assert engine.ledger.recorded_count == 2
        assert resumed.total_transactions == cold.total_transactions
        assert [d.tx_hash for d in resumed.detections] == [
            d.tx_hash for d in cold.detections
        ]

    def test_resuming_complete_ledger_schedules_zero_shards(
        self, tmp_path, config, outcomes
    ):
        path = tmp_path / "run.ledger"
        ledger = RunLedger.create(path, config, 4)
        for outcome in outcomes:
            ledger.record(outcome)
        ledger.close()
        engine = ScanEngine(config, ledger=path)
        result = engine.run()
        assert engine.ledger.resumed_count == 4
        assert engine.ledger.recorded_count == 0  # nothing scheduled
        assert result.total_transactions == sum(
            outcome.total_transactions for outcome in outcomes
        )
