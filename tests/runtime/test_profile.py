"""Stage-profiler unit contract: accumulation, merge, render, artifact.

Profiles are observability-only payloads; what these tests pin is the
arithmetic (timers and counters sum exactly, ``None`` shards are skipped
but counted via ``shards_profiled``) and the artifact schema that
``--profile`` and the fullscale bench write to disk.
"""

from __future__ import annotations

import json

from repro.runtime.profile import (
    DEFAULT_PROFILE_ARTIFACT,
    StageProfiler,
    merge_profiles,
    render_profile,
    write_profile,
)


class TestStageProfiler:
    def test_add_accumulates_per_stage(self):
        prof = StageProfiler()
        prof.add("detect", 100)
        prof.add("detect", 50)
        prof.add("tag", 7)
        assert prof.timers_ns == {"detect": 150, "tag": 7}

    def test_count_accumulates(self):
        prof = StageProfiler()
        prof.count("transactions")
        prof.count("transactions", 9)
        prof.count("screened_out", 0)
        assert prof.counters == {"transactions": 10, "screened_out": 0}

    def test_to_dict_is_a_copy(self):
        prof = StageProfiler()
        prof.add("detect", 1)
        payload = prof.to_dict()
        payload["timers_ns"]["detect"] = 999
        assert prof.timers_ns["detect"] == 1


class TestMergeProfiles:
    def test_sums_timers_and_counters(self):
        a = {"timers_ns": {"detect": 10, "tag": 5}, "counters": {"transactions": 3}}
        b = {"timers_ns": {"detect": 7}, "counters": {"transactions": 2, "hits": 1}}
        merged = merge_profiles([a, b])
        assert merged["timers_ns"] == {"detect": 17, "tag": 5}
        assert merged["counters"] == {
            "transactions": 5, "hits": 1, "shards_profiled": 2,
        }

    def test_none_shards_are_skipped_but_visible(self):
        # a ledger-resumed shard contributes no profile; the merge must
        # not crash and must record the partial coverage.
        a = {"timers_ns": {"detect": 10}, "counters": {}}
        merged = merge_profiles([None, a, None])
        assert merged["timers_ns"] == {"detect": 10}
        assert merged["counters"]["shards_profiled"] == 1

    def test_empty_input(self):
        merged = merge_profiles([])
        assert merged == {"timers_ns": {}, "counters": {"shards_profiled": 0}}


class TestRender:
    def test_slowest_stage_first_with_shares(self):
        text = render_profile(
            {
                "timers_ns": {"tag": 1_000_000, "detect": 3_000_000},
                "counters": {"transactions": 4},
            }
        )
        lines = text.splitlines()
        assert lines[0].startswith("stage profile")
        assert "detect" in lines[1] and "75.0%" in lines[1]
        assert "tag" in lines[2] and "25.0%" in lines[2]
        assert any("transactions" in line for line in lines)

    def test_zero_total_is_safe(self):
        assert "stage profile" in render_profile({"timers_ns": {}, "counters": {}})


class TestWriteProfile:
    def test_artifact_schema_and_ms_view(self, tmp_path):
        path = write_profile(
            {"timers_ns": {"detect": 2_500_000}, "counters": {"transactions": 1}},
            tmp_path / "profile.json",
        )
        artifact = json.loads(path.read_text())
        assert artifact["artifact"] == "stage_profile"
        assert artifact["timers_ns"] == {"detect": 2_500_000}
        assert artifact["timers_ms"] == {"detect": 2.5}
        assert artifact["counters"] == {"transactions": 1}

    def test_default_path_is_repo_root_name(self):
        assert DEFAULT_PROFILE_ARTIFACT == "PROFILE_wildscan.json"
