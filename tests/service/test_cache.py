"""TTL + LRU semantics of the service's warm-entity cache."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import TTLCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_put_get_roundtrip():
    cache = TTLCache(4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", "fallback") == "fallback"
    assert "a" in cache and "missing" not in cache
    assert len(cache) == 1


def test_lru_eviction_order():
    cache = TTLCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a's recency; b becomes LRU
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats()["evictions"] == 1


def test_ttl_expiry_with_fake_clock():
    clock = FakeClock()
    cache = TTLCache(4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(9.9)
    assert cache.get("a") == 1
    clock.advance(0.2)
    assert cache.get("a") is None
    assert cache.stats()["expirations"] == 1


def test_get_refreshes_recency_not_deadline():
    clock = FakeClock()
    cache = TTLCache(4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(6.0)
    assert cache.get("a") == 1  # read does not reset the deadline
    clock.advance(6.0)
    assert cache.get("a") is None


def test_put_resets_deadline():
    clock = FakeClock()
    cache = TTLCache(4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(6.0)
    cache.put("a", 2)
    clock.advance(6.0)
    assert cache.get("a") == 2


def test_purge_counts_expired_only():
    clock = FakeClock()
    cache = TTLCache(4, ttl=5.0, clock=clock)
    cache.put("old", 1)
    clock.advance(6.0)
    cache.put("fresh", 2)
    assert cache.purge() == 1
    assert cache.keys() == ["fresh"]


def test_pop_and_clear():
    cache = TTLCache(4)
    cache.put("a", 1)
    assert cache.pop("a") == 1
    assert cache.pop("a", "gone") == "gone"
    cache.put("b", 2)
    cache.clear()
    assert len(cache) == 0


def test_validation():
    with pytest.raises(ValueError, match="max_entries"):
        TTLCache(0)
    with pytest.raises(ValueError, match="ttl"):
        TTLCache(4, ttl=0)


def test_stats_shape():
    cache = TTLCache(2, ttl=60.0)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    stats = cache.stats()
    assert stats == {
        "entries": 1,
        "max_entries": 2,
        "ttl_s": 60.0,
        "hits": 1,
        "misses": 1,
        "evictions": 0,
        "expirations": 0,
    }


def test_concurrent_mutation_is_safe():
    cache = TTLCache(8)
    errors: list[Exception] = []

    def worker(base: int) -> None:
        try:
            for i in range(200):
                key = (base + i) % 12
                cache.put(key, i)
                cache.get(key)
                cache.get((key + 1) % 12)
        except Exception as exc:  # pragma: no cover - only on race
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 8


def test_pop_accounting_matches_get():
    """``hits + misses == lookups`` must hold across get *and* pop.

    Regression: ``pop`` used to bypass the counters entirely, so a
    pop-heavy caller read a hit rate computed over a fraction of its
    actual lookups.
    """
    clock = FakeClock()
    cache = TTLCache(4, ttl=10.0, clock=clock)
    cache.put("live", 1)
    cache.put("stale", 2)

    assert cache.pop("live") == 1          # live pop: a hit
    assert cache.pop("absent") is None     # absent pop: a miss
    clock.advance(11.0)
    assert cache.pop("stale", "d") == "d"  # expired pop: expiration + miss
    assert cache.get("also-absent") is None

    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 3
    assert stats["expirations"] == 1
    assert stats["hits"] + stats["misses"] == 4  # one per lookup above


def test_contains_is_a_pure_read():
    """``in`` never mutates the store nor any counter.

    Regression: ``__contains__`` used to delete expired entries and bump
    the expiration counter, so a membership probe raced concurrent
    ``get`` calls and double-counted expirations.
    """
    clock = FakeClock()
    cache = TTLCache(4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    before = cache.stats()

    assert "a" in cache
    assert "missing" not in cache
    clock.advance(11.0)
    assert "a" not in cache      # expired reads as absent...
    assert len(cache) == 1       # ...but stays resident: no mutation
    assert cache.stats() == {**before, "entries": 1}

    # the entry is still reaped by the mutating paths, exactly once.
    assert cache.get("a") is None
    stats = cache.stats()
    assert stats["expirations"] == 1
    assert len(cache) == 0


def test_expired_entry_counted_once_across_probe_then_get():
    clock = FakeClock()
    cache = TTLCache(4, ttl=5.0, clock=clock)
    cache.put("k", 1)
    clock.advance(6.0)
    for _ in range(3):
        assert "k" not in cache  # probes must not stack expirations
    assert cache.pop("k") is None
    assert cache.stats()["expirations"] == 1
