"""TTL + LRU semantics of the service's warm-entity cache."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import TTLCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_put_get_roundtrip():
    cache = TTLCache(4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", "fallback") == "fallback"
    assert "a" in cache and "missing" not in cache
    assert len(cache) == 1


def test_lru_eviction_order():
    cache = TTLCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a's recency; b becomes LRU
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats()["evictions"] == 1


def test_ttl_expiry_with_fake_clock():
    clock = FakeClock()
    cache = TTLCache(4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(9.9)
    assert cache.get("a") == 1
    clock.advance(0.2)
    assert cache.get("a") is None
    assert cache.stats()["expirations"] == 1


def test_get_refreshes_recency_not_deadline():
    clock = FakeClock()
    cache = TTLCache(4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(6.0)
    assert cache.get("a") == 1  # read does not reset the deadline
    clock.advance(6.0)
    assert cache.get("a") is None


def test_put_resets_deadline():
    clock = FakeClock()
    cache = TTLCache(4, ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(6.0)
    cache.put("a", 2)
    clock.advance(6.0)
    assert cache.get("a") == 2


def test_purge_counts_expired_only():
    clock = FakeClock()
    cache = TTLCache(4, ttl=5.0, clock=clock)
    cache.put("old", 1)
    clock.advance(6.0)
    cache.put("fresh", 2)
    assert cache.purge() == 1
    assert cache.keys() == ["fresh"]


def test_pop_and_clear():
    cache = TTLCache(4)
    cache.put("a", 1)
    assert cache.pop("a") == 1
    assert cache.pop("a", "gone") == "gone"
    cache.put("b", 2)
    cache.clear()
    assert len(cache) == 0


def test_validation():
    with pytest.raises(ValueError, match="max_entries"):
        TTLCache(0)
    with pytest.raises(ValueError, match="ttl"):
        TTLCache(4, ttl=0)


def test_stats_shape():
    cache = TTLCache(2, ttl=60.0)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    stats = cache.stats()
    assert stats == {
        "entries": 1,
        "max_entries": 2,
        "ttl_s": 60.0,
        "hits": 1,
        "misses": 1,
        "evictions": 0,
        "expirations": 0,
    }


def test_concurrent_mutation_is_safe():
    cache = TTLCache(8)
    errors: list[Exception] = []

    def worker(base: int) -> None:
        try:
            for i in range(200):
                key = (base + i) % 12
                cache.put(key, i)
                cache.get(key)
                cache.get((key + 1) % 12)
        except Exception as exc:  # pragma: no cover - only on race
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 8
