"""The framed-JSON TCP front: end-to-end runs, error kinds, bad frames."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.cluster.protocol import recv_message, send_message
from repro.engine.scan import ScanEngine, clear_context_snapshots
from repro.engine.wire import detection_to_wire
from repro.service import (
    AdmissionError,
    ScanService,
    ServiceClient,
    ServiceError,
    ServiceServer,
    UnknownRunError,
)
from repro.service.server import SERVICE_PROTOCOL_VERSION
from repro.workload.generator import WildScanConfig

CONFIG = WildScanConfig(scale=0.01, seed=7, shards=2)


@pytest.fixture(autouse=True)
def _cold_engine_store():
    clear_context_snapshots()
    yield
    clear_context_snapshots()


@pytest.fixture()
def served(tmp_path):
    with ScanService(tmp_path, executors=2) as service:
        with ServiceServer(service) as server:
            yield service, server


def test_tcp_end_to_end_identity(served):
    service, server = served
    reference = [detection_to_wire(d) for d in ScanEngine(CONFIG).run().detections]
    clear_context_snapshots()
    with ServiceClient(server.address) as client:
        assert client.ping()
        run = client.submit(CONFIG)
        assert not run["coalesced"]
        done = client.wait(run["run_id"], timeout=120)
        assert done["state"] == "completed"
        assert [
            detection_to_wire(d)
            for d in client.fetch_detections(run["run_id"], page_size=2)
        ] == reference
        assert client.results(run["run_id"])["detections"] == reference
        assert client.runs()[0]["run_id"] == run["run_id"]
        assert client.stats()["counters"]["completed"] == 1


def test_concurrent_clients_share_one_run(served):
    _, server = served
    views: list[dict] = []
    lock = threading.Lock()
    barrier = threading.Barrier(4)

    def one_client() -> None:
        with ServiceClient(server.address) as client:
            barrier.wait()
            run = client.submit(CONFIG)
            done = client.wait(run["run_id"], timeout=120)
            with lock:
                views.append({**done, "coalesced": run["coalesced"]})

    threads = [threading.Thread(target=one_client) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(views) == 4
    assert len({view["run_id"] for view in views}) == 1
    assert sum(view["coalesced"] for view in views) == 3
    assert all(view["state"] == "completed" for view in views)


def test_error_kinds_map_to_client_exceptions(served):
    service, server = served
    with ServiceClient(server.address) as client:
        with pytest.raises(UnknownRunError):
            client.status("run-nope")
        with pytest.raises(ServiceError, match="backend"):
            client.submit(CONFIG, backend="quantum")
        service.drain(timeout=30)
        with pytest.raises(AdmissionError):
            client.submit(CONFIG)


def test_protocol_version_mismatch_is_refused(served):
    _, server = served
    with socket.create_connection(server.address, timeout=10) as sock:
        send_message(sock, {"type": "ping", "protocol_version": 99})
        response = recv_message(sock)
        assert response["ok"] is False
        assert response["kind"] == "bad-request"
        assert "version mismatch" in response["error"]


def test_unknown_request_type_and_missing_fields(served):
    _, server = served
    with socket.create_connection(server.address, timeout=10) as sock:
        send_message(
            sock,
            {"type": "frobnicate", "protocol_version": SERVICE_PROTOCOL_VERSION},
        )
        assert recv_message(sock)["kind"] == "bad-request"
        send_message(
            sock,
            {"type": "status", "protocol_version": SERVICE_PROTOCOL_VERSION},
        )
        response = recv_message(sock)
        assert response["ok"] is False
        assert "run_id" in response["error"]
        send_message(
            sock,
            {"type": "submit", "protocol_version": SERVICE_PROTOCOL_VERSION},
        )
        assert "config" in recv_message(sock)["error"]


def test_malformed_frame_answers_then_hangs_up(served):
    _, server = served
    with socket.create_connection(server.address, timeout=10) as sock:
        payload = b"this is not json"
        sock.sendall(struct.pack(">I", len(payload)) + payload)
        response = recv_message(sock)
        assert response["ok"] is False and response["kind"] == "bad-request"
        # the server hangs up after an unframeable request.
        assert sock.recv(1) == b""


def test_abrupt_client_disconnect_leaves_server_serving(served):
    _, server = served
    sock = socket.create_connection(server.address, timeout=10)
    sock.close()  # no request at all
    half = socket.create_connection(server.address, timeout=10)
    half.sendall(struct.pack(">I", 64))  # length prefix, then vanish
    half.close()
    with ServiceClient(server.address) as client:
        assert client.ping()


def test_server_results_page_fields_over_wire(served):
    _, server = served
    with ServiceClient(server.address) as client:
        run = client.submit(CONFIG)
        client.wait(run["run_id"], timeout=120)
        page = client.results(run["run_id"], offset=1, limit=2)
        assert page["offset"] == 1
        assert page["count"] == len(page["detections"])
        assert set(page) == {
            "run_id", "total_detections", "offset", "count",
            "next_offset", "summary", "detections",
        }
