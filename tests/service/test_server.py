"""The framed-JSON TCP front: end-to-end runs, error kinds, bad frames."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.cluster.protocol import recv_message, send_message
from repro.engine.scan import ScanEngine, clear_context_snapshots
from repro.engine.wire import detection_to_wire
from repro.service import (
    AdmissionError,
    ScanService,
    ServiceClient,
    ServiceError,
    ServiceServer,
    UnknownRunError,
)
from repro.service.server import SERVICE_PROTOCOL_VERSION
from repro.workload.generator import WildScanConfig

CONFIG = WildScanConfig(scale=0.01, seed=7, shards=2)


@pytest.fixture(autouse=True)
def _cold_engine_store():
    clear_context_snapshots()
    yield
    clear_context_snapshots()


@pytest.fixture()
def served(tmp_path):
    with ScanService(tmp_path, executors=2) as service:
        with ServiceServer(service) as server:
            yield service, server


def test_tcp_end_to_end_identity(served):
    service, server = served
    reference = [detection_to_wire(d) for d in ScanEngine(CONFIG).run().detections]
    clear_context_snapshots()
    with ServiceClient(server.address) as client:
        assert client.ping()
        run = client.submit(CONFIG)
        assert not run["coalesced"]
        done = client.wait(run["run_id"], timeout=120)
        assert done["state"] == "completed"
        assert [
            detection_to_wire(d)
            for d in client.fetch_detections(run["run_id"], page_size=2)
        ] == reference
        assert client.results(run["run_id"])["detections"] == reference
        assert client.runs()[0]["run_id"] == run["run_id"]
        assert client.stats()["counters"]["completed"] == 1


def test_concurrent_clients_share_one_run(served):
    _, server = served
    views: list[dict] = []
    lock = threading.Lock()
    barrier = threading.Barrier(4)

    def one_client() -> None:
        with ServiceClient(server.address) as client:
            barrier.wait()
            run = client.submit(CONFIG)
            done = client.wait(run["run_id"], timeout=120)
            with lock:
                views.append({**done, "coalesced": run["coalesced"]})

    threads = [threading.Thread(target=one_client) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(views) == 4
    assert len({view["run_id"] for view in views}) == 1
    assert sum(view["coalesced"] for view in views) == 3
    assert all(view["state"] == "completed" for view in views)


def test_error_kinds_map_to_client_exceptions(served):
    service, server = served
    with ServiceClient(server.address) as client:
        with pytest.raises(UnknownRunError):
            client.status("run-nope")
        with pytest.raises(ServiceError, match="backend"):
            client.submit(CONFIG, backend="quantum")
        service.drain(timeout=30)
        with pytest.raises(AdmissionError):
            client.submit(CONFIG)


def test_protocol_version_mismatch_is_refused(served):
    _, server = served
    with socket.create_connection(server.address, timeout=10) as sock:
        send_message(sock, {"type": "ping", "protocol_version": 99})
        response = recv_message(sock)
        assert response["ok"] is False
        assert response["kind"] == "bad-request"
        assert "version mismatch" in response["error"]


def test_unknown_request_type_and_missing_fields(served):
    _, server = served
    with socket.create_connection(server.address, timeout=10) as sock:
        send_message(
            sock,
            {"type": "frobnicate", "protocol_version": SERVICE_PROTOCOL_VERSION},
        )
        assert recv_message(sock)["kind"] == "bad-request"
        send_message(
            sock,
            {"type": "status", "protocol_version": SERVICE_PROTOCOL_VERSION},
        )
        response = recv_message(sock)
        assert response["ok"] is False
        assert "run_id" in response["error"]
        send_message(
            sock,
            {"type": "submit", "protocol_version": SERVICE_PROTOCOL_VERSION},
        )
        assert "config" in recv_message(sock)["error"]


def test_malformed_frame_answers_then_hangs_up(served):
    _, server = served
    with socket.create_connection(server.address, timeout=10) as sock:
        payload = b"this is not json"
        sock.sendall(struct.pack(">I", len(payload)) + payload)
        response = recv_message(sock)
        assert response["ok"] is False and response["kind"] == "bad-request"
        # the server hangs up after an unframeable request.
        assert sock.recv(1) == b""


def test_abrupt_client_disconnect_leaves_server_serving(served):
    _, server = served
    sock = socket.create_connection(server.address, timeout=10)
    sock.close()  # no request at all
    half = socket.create_connection(server.address, timeout=10)
    half.sendall(struct.pack(">I", 64))  # length prefix, then vanish
    half.close()
    with ServiceClient(server.address) as client:
        assert client.ping()


def test_server_results_page_fields_over_wire(served):
    _, server = served
    with ServiceClient(server.address) as client:
        run = client.submit(CONFIG)
        client.wait(run["run_id"], timeout=120)
        page = client.results(run["run_id"], offset=1, limit=2)
        assert page["offset"] == 1
        assert page["count"] == len(page["detections"])
        assert set(page) == {
            "run_id", "total_detections", "offset", "count",
            "next_offset", "summary", "detections",
        }


class _FakeResultsServer:
    """A minimal framed-JSON server whose ``results`` pages are canned.

    Stands in for a buggy or protocol-skewed real server: the client's
    paging loop must terminate loudly on a page that fails to advance,
    not spin on it forever.
    """

    def __init__(self, page_for_offset):
        self._page_for_offset = page_for_offset
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.address = self._listener.getsockname()[:2]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._listener.accept()
        with conn:
            while True:
                try:
                    request = recv_message(conn)
                except (ConnectionError, OSError, EOFError):
                    return
                if request is None:
                    return
                page = self._page_for_offset(request.get("offset", 0))
                send_message(
                    conn, {"ok": True, "type": "results", **page}
                )

    def close(self):
        self._listener.close()


@pytest.mark.parametrize("next_offset", [0, -1, "3"])
def test_fetch_detections_raises_on_non_advancing_page(next_offset):
    from repro.service import PaginationError

    fake = _FakeResultsServer(
        lambda offset: {"detections": [], "next_offset": next_offset}
    )
    try:
        with ServiceClient(fake.address) as client:
            with pytest.raises(PaginationError):
                client.fetch_detections("run-x", page_size=4)
    finally:
        fake.close()


def test_fetch_detections_raises_when_offset_stalls_mid_stream():
    """The first page advances, then the server gets stuck — the loop
    must detect the stall at the second page, not loop on it."""
    from repro.service import PaginationError

    calls = []

    def page(offset):
        calls.append(offset)
        return {"detections": [], "next_offset": 4 if offset == 0 else offset}

    fake = _FakeResultsServer(page)
    try:
        with ServiceClient(fake.address) as client:
            with pytest.raises(PaginationError):
                client.fetch_detections("run-x", page_size=4)
    finally:
        fake.close()
    assert calls == [0, 4]


def test_fetch_detections_terminates_on_none(served):
    """Against the real server the paging loop still ends on
    ``next_offset: None`` and :class:`PaginationError` stays un-raised."""
    from repro.engine.wire import detection_from_wire

    service, server = served
    with ServiceClient(server.address) as client:
        run = client.submit(CONFIG)
        client.wait(run["run_id"], timeout=120)
        assert client.fetch_detections(run["run_id"]) == [
            detection_from_wire(d)
            for d in client.results(run["run_id"])["detections"]
        ]
