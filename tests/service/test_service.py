"""The resident service's contracts: dedup, identity, warm cache, restart.

These are the acceptance pins for the multi-tenant tier:

- concurrent overlapping submissions coalesce onto one run;
- everything the service serves is byte-identical to a standalone
  :class:`~repro.engine.ScanEngine` run of the same config, on every
  backend, paged or unpaged;
- a second run over the same shard layout hits the warm-entity cache;
- a service restarted over a half-journaled run adopts the ledger,
  finishes only the missing shards, and changes nothing.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.plan import build_schedule, shard_schedule
from repro.engine.scan import ScanEngine, clear_context_snapshots, run_shard
from repro.engine.wire import detection_to_wire
from repro.runtime import RunLedger
from repro.service import (
    AdmissionError,
    ScanService,
    ServiceError,
    UnknownRunError,
    run_id_for,
)
from repro.workload.generator import WildScanConfig

CONFIG = WildScanConfig(scale=0.01, seed=7, shards=2)


@pytest.fixture(autouse=True)
def _cold_engine_store():
    """Every test starts with an empty process-level snapshot store."""
    clear_context_snapshots()
    yield
    clear_context_snapshots()


def standalone_wire(config) -> list[dict]:
    return [detection_to_wire(d) for d in ScanEngine(config).run().detections]


def test_submit_runs_and_serves_identical_results(tmp_path):
    reference = standalone_wire(CONFIG)
    with ScanService(tmp_path) as service:
        view, coalesced = service.submit(CONFIG)
        assert not coalesced
        assert view["run_id"] == run_id_for(CONFIG)
        done = service.wait(view["run_id"], timeout=120)
        assert done["state"] == "completed"
        assert done["summary"]["detected"] == len(reference)
        page = service.results(view["run_id"])
        assert page["detections"] == reference
        assert page["total_detections"] == len(reference)


def test_concurrent_duplicate_submissions_coalesce(tmp_path):
    """N threads race the same config in; exactly one run may exist."""
    results: list[tuple[dict, bool]] = []
    with ScanService(tmp_path, executors=2) as service:
        barrier = threading.Barrier(6)

        def submit() -> None:
            barrier.wait()
            results.append(service.submit(CONFIG))

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        run_ids = {view["run_id"] for view, _ in results}
        assert run_ids == {run_id_for(CONFIG)}
        coalesced = [flag for _, flag in results]
        assert coalesced.count(False) == 1  # one admission...
        assert coalesced.count(True) == 5  # ...five coalesces
        assert service.counters["submitted"] == 1
        assert service.counters["coalesced"] == 5
        service.wait(run_id_for(CONFIG), timeout=120)
        assert len(service.runs()) == 1


def test_concurrent_distinct_submissions_all_identical(tmp_path):
    """Two submissions served concurrently by one resident process, each
    byte-identical to its own standalone engine run."""
    configs = [
        WildScanConfig(scale=0.01, seed=seed, shards=2) for seed in (7, 11)
    ]
    references = [standalone_wire(config) for config in configs]
    clear_context_snapshots()
    with ScanService(tmp_path, executors=2) as service:
        views = [service.submit(config)[0] for config in configs]
        for view, reference in zip(views, references):
            done = service.wait(view["run_id"], timeout=120)
            assert done["state"] == "completed"
            assert service.results(view["run_id"])["detections"] == reference


def test_status_polling_during_live_run(tmp_path):
    service = ScanService(tmp_path, executors=1)
    inner = service._execute
    started, release = threading.Event(), threading.Event()

    def gated(record):
        started.set()
        assert release.wait(30)
        inner(record)

    service._execute = gated
    other = WildScanConfig(scale=0.01, seed=11, shards=2)
    try:
        with service:
            view, _ = service.submit(CONFIG)
            assert view["state"] == "queued"
            assert started.wait(30)
            live = service.status(view["run_id"])
            assert live["state"] == "running"
            assert live["started_at"] is not None
            # a run queued behind the live one reports its position...
            queued, _ = service.submit(other)
            assert queued["state"] == "queued"
            assert queued["queue_position"] == 1
            # ...and a duplicate of the *live* run coalesces onto it.
            dup, coalesced = service.submit(CONFIG)
            assert coalesced and dup["state"] == "running"
            with pytest.raises(ServiceError, match="completed ledgers only"):
                service.results(view["run_id"])
            release.set()
            done = service.wait(view["run_id"], timeout=120)
            assert done["state"] == "completed"
            service.wait(queued["run_id"], timeout=120)
    finally:
        release.set()


def test_paged_fetch_equals_unpaged_merge(tmp_path):
    reference = standalone_wire(CONFIG)
    assert len(reference) >= 3  # the pagination needs something to page
    with ScanService(tmp_path) as service:
        view, _ = service.submit(CONFIG)
        service.wait(view["run_id"], timeout=120)
        unpaged = service.results(view["run_id"])["detections"]
        paged: list[dict] = []
        offset = 0
        while True:
            page = service.results(view["run_id"], offset=offset, limit=2)
            assert page["count"] == len(page["detections"]) <= 2
            paged.extend(page["detections"])
            if page["next_offset"] is None:
                break
            offset = page["next_offset"]
        assert paged == unpaged == reference
        # an offset past the end is an empty last page, not an error.
        past = service.results(view["run_id"], offset=len(reference) + 5)
        assert past["detections"] == [] and past["next_offset"] is None


def test_warm_cache_hit_on_second_run(tmp_path):
    """A different seed over the same shard layout reuses every snapshot."""
    with ScanService(tmp_path, executors=1) as service:
        first, _ = service.submit(CONFIG)
        done = service.wait(first["run_id"], timeout=120)
        assert done["warm_hits"] == 0 and done["warm_misses"] == 2
        second, _ = service.submit(WildScanConfig(scale=0.01, seed=99, shards=2))
        warm = service.wait(second["run_id"], timeout=120)
        assert warm["warm_hits"] == 2 and warm["warm_misses"] == 0


@pytest.mark.parametrize("backend", ["stream", "cluster"])
def test_alternate_backends_identical(tmp_path, backend):
    reference = standalone_wire(CONFIG)
    clear_context_snapshots()
    with ScanService(tmp_path, cluster_workers=2) as service:
        view, _ = service.submit(CONFIG, backend=backend)
        done = service.wait(view["run_id"], timeout=300)
        assert done["state"] == "completed", done["error"]
        assert done["backend"] == backend
        assert service.results(view["run_id"])["detections"] == reference


def test_admission_rejects_when_queue_full(tmp_path):
    service = ScanService(tmp_path, executors=1, max_queue=1)
    inner = service._execute
    started, release = threading.Event(), threading.Event()

    def gated(record):
        started.set()
        assert release.wait(30)
        inner(record)

    service._execute = gated
    try:
        with service:
            first, _ = service.submit(CONFIG)
            assert started.wait(30)  # executor busy; queue is empty again
            service.submit(WildScanConfig(scale=0.01, seed=11, shards=2))
            with pytest.raises(AdmissionError, match="queue is full"):
                service.submit(WildScanConfig(scale=0.01, seed=12, shards=2))
            assert service.counters["rejected"] == 1
            # duplicates of admitted runs still coalesce while the queue
            # is full — coalescing is not an admission.
            _, coalesced = service.submit(CONFIG)
            assert coalesced
            release.set()
            service.wait(first["run_id"], timeout=120)
    finally:
        release.set()


def test_draining_service_rejects_submissions(tmp_path):
    with ScanService(tmp_path) as service:
        assert service.drain(timeout=30)
        with pytest.raises(AdmissionError, match="draining"):
            service.submit(CONFIG)


def test_failed_run_reports_and_resubmits(tmp_path):
    service = ScanService(tmp_path, executors=1)
    inner = service._execute
    fail_once = {"armed": True}

    def flaky(record):
        if fail_once.pop("armed", False):
            raise RuntimeError("synthetic executor failure")
        inner(record)

    service._execute = flaky
    with service:
        view, _ = service.submit(CONFIG)
        failed = service.wait(view["run_id"], timeout=120)
        assert failed["state"] == "failed"
        assert "synthetic executor failure" in failed["error"]
        with pytest.raises(ServiceError, match="failed"):
            service.results(view["run_id"])
        # a failed run does not coalesce — resubmission re-queues it.
        again, coalesced = service.submit(CONFIG)
        assert not coalesced
        assert service.counters["resubmitted"] == 1
        done = service.wait(again["run_id"], timeout=120)
        assert done["state"] == "completed"
        assert done["error"] is None


def test_unknown_run_and_bad_paging_args(tmp_path):
    with ScanService(tmp_path) as service:
        with pytest.raises(UnknownRunError, match="unknown run"):
            service.status("run-does-not-exist")
        view, _ = service.submit(CONFIG)
        service.wait(view["run_id"], timeout=120)
        with pytest.raises(ServiceError, match="offset"):
            service.results(view["run_id"], offset=-1)
        with pytest.raises(ServiceError, match="limit"):
            service.results(view["run_id"], limit=0)
        with pytest.raises(ServiceError, match="backend"):
            service.submit(CONFIG, backend="quantum")


def test_restart_adopts_incomplete_ledger_byte_identically(tmp_path):
    """Kill mid-run, restart: the ledger resumes, the result is unchanged."""
    reference = standalone_wire(CONFIG)
    run_id = run_id_for(CONFIG)

    # simulate the killed service: a manifest stuck at ``running`` next
    # to a ledger holding the first of two shards.
    dead = ScanService(tmp_path)
    record = dead.registry.create(CONFIG)
    record.state = "running"
    dead.registry.save(record)
    parts = shard_schedule(build_schedule(CONFIG.scale, CONFIG.seed), 2)
    ledger = RunLedger.create(dead.registry.ledger_path(run_id), CONFIG, 2)
    ledger.record(run_shard((CONFIG, 0, 2, parts[0])))
    ledger.close()

    with ScanService(tmp_path) as service:
        adopted = service.status(run_id)
        assert adopted["adopted"]
        assert service.counters["adopted_resuming"] == 1
        done = service.wait(run_id, timeout=120)
        assert done["state"] == "completed"
        assert done["shards_resumed"] == 1  # the journaled shard
        assert done["shards_recorded"] == 1  # only the missing one ran
        assert service.results(run_id)["detections"] == reference


def test_restart_adopts_completed_ledger_without_rescanning(tmp_path):
    reference = standalone_wire(CONFIG)
    with ScanService(tmp_path) as first:
        view, _ = first.submit(CONFIG)
        first.wait(view["run_id"], timeout=120)
    ledger_path = first.registry.ledger_path(view["run_id"])
    ledger_bytes = ledger_path.read_bytes()

    # a cleanly completed manifest restarts straight to servable...
    with ScanService(tmp_path) as second:
        assert second.status(view["run_id"])["state"] == "completed"
        assert second.results(view["run_id"])["detections"] == reference

    # ...and one stuck at ``running`` beside a complete ledger (death in
    # the window between the last shard landing and the state flip) is
    # reclassified from the ledger bytes, without re-scanning.
    record = first.registry.load(view["run_id"])
    record.state = "running"
    record.finished_at = None
    first.registry.save(record)
    with ScanService(tmp_path) as third:
        assert third.counters["adopted_completed"] == 1
        done = third.status(view["run_id"])
        assert done["state"] == "completed"
        assert done["shards_resumed"] == 2  # every shard from the journal
        assert third.results(view["run_id"])["detections"] == reference
    # serving results never rewrites the journal.
    assert ledger_path.read_bytes() == ledger_bytes


def test_restart_requeues_never_started_run(tmp_path):
    dead = ScanService(tmp_path)
    dead.registry.create(CONFIG)  # manifest only, no ledger, state queued

    with ScanService(tmp_path) as service:
        done = service.wait(run_id_for(CONFIG), timeout=120)
        assert done["state"] == "completed"


def test_shutdown_leaves_queue_for_next_start(tmp_path):
    service = ScanService(tmp_path, executors=1)
    inner = service._execute
    started, release = threading.Event(), threading.Event()

    def gated(record):
        started.set()
        assert release.wait(30)
        inner(record)

    service._execute = gated
    other = WildScanConfig(scale=0.01, seed=11, shards=2)
    with service:
        active, _ = service.submit(CONFIG)
        assert started.wait(30)
        queued, _ = service.submit(other)
        release.set()
        # shutdown drains the active run; the queued one stays on disk.
    assert service.status(active["run_id"])["state"] == "completed"

    with ScanService(tmp_path) as revived:
        done = revived.wait(queued["run_id"], timeout=120)
        assert done["state"] == "completed"


def test_stats_shape(tmp_path):
    with ScanService(tmp_path) as service:
        view, _ = service.submit(CONFIG)
        service.wait(view["run_id"], timeout=120)
        stats = service.stats()
        assert stats["runs_by_state"] == {"completed": 1}
        assert stats["counters"]["completed"] == 1
        assert stats["warm_cache"]["entries"] == 2  # one per shard
        assert stats["queue_depth"] == 0
        assert not stats["draining"]


def test_wait_without_timeout_blocks_on_notify(tmp_path):
    """``wait(run_id)`` with no timeout parks on the condition and wakes
    promptly when the run completes.

    Regression: the no-timeout path used to compute a ``remaining`` of
    ``None`` and fall into ``Condition.wait`` with a bogus value instead
    of blocking outright — an indefinite wait must ride ``notify_all``,
    not a poll loop.
    """
    import time

    with ScanService(tmp_path) as service:
        view, _ = service.submit(CONFIG)
        woke: dict = {}

        def waiter():
            done = service.wait(view["run_id"])  # no timeout at all
            woke["view"] = done
            woke["at"] = time.monotonic()

        thread = threading.Thread(target=waiter)
        thread.start()
        done = service.wait(view["run_id"], timeout=120)
        completed_at = time.monotonic()
        assert done["state"] == "completed"
        thread.join(timeout=10)
        assert not thread.is_alive(), "no-timeout waiter never woke"
        assert woke["view"]["state"] == "completed"
        # promptness: the notify-driven wake lands within moments of the
        # state transition, not a poll interval later.
        assert woke["at"] - completed_at < 5.0


def test_wait_without_timeout_returns_immediately_when_done(tmp_path):
    with ScanService(tmp_path) as service:
        view, _ = service.submit(CONFIG)
        service.wait(view["run_id"], timeout=120)
        done = service.wait(view["run_id"])  # already terminal: no block
        assert done["state"] == "completed"
