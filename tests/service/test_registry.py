"""Run manifests: digest-derived ids, atomic persistence, strict decode."""

from __future__ import annotations

import json

import pytest

from repro.engine.wire import config_digest
from repro.service.registry import (
    MANIFEST_VERSION,
    RunRecord,
    RunRegistry,
    run_id_for,
)
from repro.workload.generator import WildScanConfig


def test_run_id_is_config_digest_prefix():
    config = WildScanConfig(scale=0.01, seed=7, shards=2)
    assert run_id_for(config) == f"run-{config_digest(config)[:16]}"
    # execution knobs never change the identity...
    assert run_id_for(WildScanConfig(scale=0.01, seed=7, shards=2, jobs=8)) == (
        run_id_for(config)
    )
    # ...but the scan parameters do.
    assert run_id_for(WildScanConfig(scale=0.01, seed=8, shards=2)) != (
        run_id_for(config)
    )


def test_create_save_load_roundtrip(tmp_path):
    registry = RunRegistry(tmp_path)
    config = WildScanConfig(scale=0.01, seed=7, shards=2)
    record = registry.create(config, backend="stream", jobs=3)
    loaded = registry.load(record.run_id)
    assert loaded == record
    record.state = "running"
    record.shard_count = 2
    registry.save(record)
    assert registry.load(record.run_id).state == "running"


def test_load_unknown_run_raises(tmp_path):
    with pytest.raises(KeyError, match="no run manifest"):
        RunRegistry(tmp_path).load("run-missing")


def test_manifest_rejects_version_and_field_drift(tmp_path):
    registry = RunRegistry(tmp_path)
    record = registry.create(WildScanConfig(scale=0.01, seed=7, shards=2))
    payload = json.loads(registry.manifest_path(record.run_id).read_text())

    newer = dict(payload, manifest_version=MANIFEST_VERSION + 1)
    with pytest.raises(ValueError, match="version mismatch"):
        RunRecord.from_dict(newer)

    with pytest.raises(ValueError, match="unknown field"):
        RunRecord.from_dict(dict(payload, surprise=True))

    trimmed = dict(payload)
    del trimmed["warm_hits"]
    with pytest.raises(ValueError, match="missing field"):
        RunRecord.from_dict(trimmed)

    with pytest.raises(ValueError, match="unknown state"):
        RunRecord.from_dict(dict(payload, state="paused"))


def test_load_all_skips_unreadable_manifests(tmp_path):
    registry = RunRegistry(tmp_path)
    good = registry.create(WildScanConfig(scale=0.01, seed=7, shards=2))
    # a kill between mkdir and the first manifest write leaves a shell...
    (registry.runs_dir / "run-empty-shell").mkdir()
    # ...and torn bytes must not take the whole registry down.
    torn = registry.runs_dir / "run-torn"
    torn.mkdir()
    (torn / "run.json").write_text("{not json")
    records = registry.load_all()
    assert set(records) == {good.run_id}


def test_save_is_atomic_no_tmp_left_behind(tmp_path):
    registry = RunRegistry(tmp_path)
    record = registry.create(WildScanConfig(scale=0.01, seed=7, shards=2))
    registry.save(record)
    leftovers = [
        p for p in registry.run_dir(record.run_id).iterdir()
        if p.name.endswith(".tmp")
    ]
    assert not leftovers
