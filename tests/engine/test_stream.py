"""Streaming pipeline: batch identity, ordering, backpressure, replay.

The contract under test mirrors the batch engine's: streaming changes
*when* detections become visible (block-ordered, as the watermark
passes), never *what* is detected — for a fixed ``(seed, scale, shards)``
the merged result is byte-identical to ``ScanEngine.run()``.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    StreamBlock,
    StreamEngine,
    blocks_from_explorer,
    build_schedule,
    schedule_block_stream,
    screen_blocks,
    shard_of,
    shard_schedule,
)
from repro.engine.stream import BlockStats, StreamResult
from repro.workload.generator import WildScanConfig, WildScanner
from repro.workload.timeline import STUDY_FIRST_BLOCK, STUDY_LAST_BLOCK

SCALE = 0.005
SEED = 7


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "table5": [(r.pattern, r.n, r.tp, r.fp) for r in result.table5()],
        "table6": result.table6(),
        "fig8": result.fig8_months(),
    }


@pytest.fixture(scope="module")
def batch_result():
    return WildScanner(WildScanConfig(scale=SCALE, seed=SEED, jobs=1, shards=4)).run()


@pytest.fixture(scope="module")
def streamed():
    config = WildScanConfig(scale=SCALE, seed=SEED, jobs=4, shards=4)
    return StreamEngine(config, queue_depth=16, block_size=16).run()


class TestStreamIdentity:
    def test_stream_equals_batch(self, batch_result, streamed):
        assert _snapshot(streamed.result) == _snapshot(batch_result)

    def test_stream_identical_across_jobs(self, streamed):
        config = WildScanConfig(scale=SCALE, seed=SEED, jobs=1, shards=4)
        single = StreamEngine(config, queue_depth=16, block_size=16).run()
        assert _snapshot(single.result) == _snapshot(streamed.result)


class TestStreamMechanics:
    def test_blocks_emitted_in_order(self, streamed):
        numbers = [stats.number for stats in streamed.blocks]
        assert numbers == sorted(numbers)
        assert len(numbers) == len(set(numbers))

    def test_blocks_cover_the_population(self, streamed):
        assert sum(stats.transactions for stats in streamed.blocks) == (
            streamed.total_transactions
        )
        assert sum(stats.detections for stats in streamed.blocks) == len(
            streamed.result.detections
        )

    def test_backpressure_bound_held(self, streamed):
        assert 0 < streamed.max_queue_depth <= streamed.queue_depth

    def test_on_block_sees_detections_live(self):
        config = WildScanConfig(scale=SCALE, seed=SEED, jobs=2, shards=4)
        seen: list[tuple[int, int]] = []

        def on_block(stats, detections):
            assert stats.detections == len(detections)
            seen.append((stats.number, len(detections)))

        result = StreamEngine(config, block_size=16).run(on_block=on_block)
        assert seen == [(s.number, s.detections) for s in result.blocks]
        assert sum(count for _, count in seen) == len(result.result.detections)

    def test_worker_error_propagates(self):
        config = WildScanConfig(scale=SCALE, seed=SEED, jobs=2, shards=4)
        bogus = StreamBlock(number=1, entries=((0, ("no-such-kind",)),))
        with pytest.raises(IndexError):
            StreamEngine(config).run(source=[bogus])

    def test_queue_depth_and_block_size_validated(self):
        config = WildScanConfig(scale=SCALE, seed=SEED)
        with pytest.raises(ValueError, match="queue_depth"):
            StreamEngine(config, queue_depth=0)
        with pytest.raises(ValueError, match="block_size"):
            StreamEngine(config, block_size=0)


class TestBlockStream:
    def test_covers_schedule_contiguously(self):
        tasks = build_schedule(SCALE, SEED)
        blocks = list(schedule_block_stream(tasks, block_size=16))
        positions = [p for block in blocks for p, _ in block.entries]
        assert positions == list(range(len(tasks)))
        assert all(len(block.entries) <= 16 for block in blocks)

    def test_heights_monotonic_within_study_window(self):
        tasks = build_schedule(SCALE, SEED)
        numbers = [b.number for b in schedule_block_stream(tasks, block_size=16)]
        assert numbers == sorted(numbers)
        assert all(
            STUDY_FIRST_BLOCK <= number <= STUDY_LAST_BLOCK for number in numbers
        )

    def test_shard_of_matches_round_robin_partition(self):
        tasks = build_schedule(SCALE, SEED)
        parts = shard_schedule(tasks, 4)
        for position, task in enumerate(tasks):
            shard = shard_of(position, 4)
            assert parts[shard][position // 4] == task


class TestLatencyPercentile:
    """Nearest-rank percentiles: ``ceil(fraction * n) - 1``, zero-based.

    The regression pinned here: ``int(fraction * n)`` mapped p95 of 20
    blocks to index 19 — the maximum, i.e. p100 — overstating tail
    latency by one whole rank."""

    @staticmethod
    def _result(latencies):
        blocks = [
            BlockStats(
                number=i, transactions=1, detections=0,
                latency_ms=value, detect_ms=0.0,
            )
            for i, value in enumerate(latencies)
        ]
        return StreamResult(
            result=None, blocks=blocks, elapsed_s=1.0, jobs=1,
            shard_count=1, queue_depth=1, block_size=1,
        )

    def test_known_list_p50_p95_p100(self):
        # 20 blocks with latencies 1..20 ms, shuffled to prove sorting
        latencies = [float(v) for v in range(1, 21)]
        latencies = latencies[10:] + latencies[:10]
        result = self._result(latencies)
        assert result.latency_percentile(0.50) == 10.0  # ceil(10) - 1 = rank 10
        assert result.latency_percentile(0.95) == 19.0  # NOT the 20.0 maximum
        assert result.latency_percentile(1.00) == 20.0  # p100 is the maximum

    def test_small_and_degenerate_lists(self):
        assert self._result([]).latency_percentile(0.95) == 0.0
        single = self._result([7.0])
        assert single.latency_percentile(0.0) == 7.0
        assert single.latency_percentile(0.5) == 7.0
        assert single.latency_percentile(1.0) == 7.0
        pair = self._result([1.0, 2.0])
        assert pair.latency_percentile(0.5) == 1.0
        assert pair.latency_percentile(0.51) == 2.0


class TestExplorerSource:
    """Replayed chain history through the sharded streaming pipeline."""

    def _record_flash_loan(self, world):
        from repro.study.scenarios.base import ScriptedAttackContract

        token = world.new_token("XS")
        solo = world.dydx(funding={token: 10**6 * token.unit})
        user = world.create_attacker("stream-replay-user")
        bot = world.chain.deploy(user, ScriptedAttackContract, lambda atk: None)
        token.mint(bot.address, 10)
        first = world.chain.block_number + 1
        world.chain.mine()
        world.chain.transact(
            user, bot.address, "run_dydx", solo.address, token.address,
            1_000 * token.unit,
        )
        return first, world.chain.block_number

    def test_blocks_from_explorer_shape(self, world):
        from repro.chain.explorer import ChainExplorer

        first, last = self._record_flash_loan(world)
        blocks = list(blocks_from_explorer(ChainExplorer(world.chain), first, last))
        assert blocks, "the recorded range should contain transactions"
        positions = [p for block in blocks for p, _ in block.entries]
        assert positions == list(range(len(positions)))  # globally increasing
        numbers = [block.number for block in blocks]
        assert numbers == sorted(numbers)
        assert all(kind == "replay" for block in blocks
                   for _, (kind, _trace) in block.entries)
        assert all(block.entries for block in blocks)  # empty blocks dropped

    def test_replay_through_stream_engine_matches_screen_blocks(self, world):
        from repro.chain.explorer import ChainExplorer

        first, last = self._record_flash_loan(world)
        explorer = ChainExplorer(world.chain)
        screened = list(
            screen_blocks(world.detector(), explorer.blocks_between(first, last))
        )
        config = WildScanConfig(scale=SCALE, seed=SEED, jobs=2, shards=2)
        streamed = StreamEngine(config, block_size=8).run(
            source=blocks_from_explorer(explorer, first, last),
            detector_factory=world.detector,
        )
        total = sum(
            len(traces) for _, traces in explorer.blocks_between(first, last)
        )
        assert streamed.result.total_transactions == total
        # the dydx round trip is a flash loan but not an attack: the
        # single-detector path screens it, the sharded path agrees.
        assert len(screened) == 1 and not screened[0].is_attack
        assert streamed.result.detected_count == sum(
            1 for s in screened if s.is_attack
        )

    def test_replay_detects_a_real_attack(self, bzx1_outcome):
        from repro.chain.explorer import ChainExplorer

        world = bzx1_outcome.world
        explorer = ChainExplorer(world.chain)
        first, last = 0, world.chain.block_number
        attacks_screened = [
            s
            for s in screen_blocks(world.detector(), explorer.blocks_between(first, last))
            if s.is_attack
        ]
        assert attacks_screened, "the bzx1 replay must screen as an attack"

        config = WildScanConfig(scale=SCALE, seed=SEED, jobs=2, shards=2)
        streamed = StreamEngine(config, block_size=4).run(
            source=blocks_from_explorer(explorer, first, last),
            detector_factory=world.detector,
        )
        assert streamed.result.detected_count == len(attacks_screened)
        detection = streamed.result.detections[0]
        assert detection.truth.profile == "replay"
        assert not detection.truth.is_attack  # recorded history has no ground truth
        assert detection.patterns  # but the patterns that fired are preserved


class TestReplayScreening:
    def test_screen_blocks_replays_recorded_history(self, world):
        from repro.study.scenarios.base import ScriptedAttackContract

        token = world.new_token("RP")
        solo = world.dydx(funding={token: 10**6 * token.unit})
        user = world.create_attacker("replay-user")
        bot = world.chain.deploy(user, ScriptedAttackContract, lambda atk: None)
        token.mint(bot.address, 10)
        first = world.chain.block_number + 1
        world.chain.mine()
        world.chain.transact(
            user, bot.address, "run_dydx", solo.address, token.address,
            1_000 * token.unit,
        )
        from repro.chain.explorer import ChainExplorer

        blocks = ChainExplorer(world.chain).blocks_between(
            first, world.chain.block_number
        )
        screened = list(screen_blocks(world.detector(), blocks))
        assert len(screened) == 1  # only the flash loan tx is yielded
        assert not screened[0].is_attack
        assert screened[0].latency_ms >= 0
