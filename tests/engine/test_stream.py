"""Streaming pipeline: batch identity, ordering, backpressure, replay.

The contract under test mirrors the batch engine's: streaming changes
*when* detections become visible (block-ordered, as the watermark
passes), never *what* is detected — for a fixed ``(seed, scale, shards)``
the merged result is byte-identical to ``ScanEngine.run()``.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    StreamBlock,
    StreamEngine,
    build_schedule,
    schedule_block_stream,
    screen_blocks,
    shard_of,
    shard_schedule,
)
from repro.workload.generator import WildScanConfig, WildScanner
from repro.workload.timeline import STUDY_FIRST_BLOCK, STUDY_LAST_BLOCK

SCALE = 0.005
SEED = 7


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "table5": [(r.pattern, r.n, r.tp, r.fp) for r in result.table5()],
        "table6": result.table6(),
        "fig8": result.fig8_months(),
    }


@pytest.fixture(scope="module")
def batch_result():
    return WildScanner(WildScanConfig(scale=SCALE, seed=SEED, jobs=1, shards=4)).run()


@pytest.fixture(scope="module")
def streamed():
    config = WildScanConfig(scale=SCALE, seed=SEED, jobs=4, shards=4)
    return StreamEngine(config, queue_depth=16, block_size=16).run()


class TestStreamIdentity:
    def test_stream_equals_batch(self, batch_result, streamed):
        assert _snapshot(streamed.result) == _snapshot(batch_result)

    def test_stream_identical_across_jobs(self, streamed):
        config = WildScanConfig(scale=SCALE, seed=SEED, jobs=1, shards=4)
        single = StreamEngine(config, queue_depth=16, block_size=16).run()
        assert _snapshot(single.result) == _snapshot(streamed.result)


class TestStreamMechanics:
    def test_blocks_emitted_in_order(self, streamed):
        numbers = [stats.number for stats in streamed.blocks]
        assert numbers == sorted(numbers)
        assert len(numbers) == len(set(numbers))

    def test_blocks_cover_the_population(self, streamed):
        assert sum(stats.transactions for stats in streamed.blocks) == (
            streamed.total_transactions
        )
        assert sum(stats.detections for stats in streamed.blocks) == len(
            streamed.result.detections
        )

    def test_backpressure_bound_held(self, streamed):
        assert 0 < streamed.max_queue_depth <= streamed.queue_depth

    def test_on_block_sees_detections_live(self):
        config = WildScanConfig(scale=SCALE, seed=SEED, jobs=2, shards=4)
        seen: list[tuple[int, int]] = []

        def on_block(stats, detections):
            assert stats.detections == len(detections)
            seen.append((stats.number, len(detections)))

        result = StreamEngine(config, block_size=16).run(on_block=on_block)
        assert seen == [(s.number, s.detections) for s in result.blocks]
        assert sum(count for _, count in seen) == len(result.result.detections)

    def test_worker_error_propagates(self):
        config = WildScanConfig(scale=SCALE, seed=SEED, jobs=2, shards=4)
        bogus = StreamBlock(number=1, entries=((0, ("no-such-kind",)),))
        with pytest.raises(IndexError):
            StreamEngine(config).run(source=[bogus])

    def test_queue_depth_and_block_size_validated(self):
        config = WildScanConfig(scale=SCALE, seed=SEED)
        with pytest.raises(ValueError, match="queue_depth"):
            StreamEngine(config, queue_depth=0)
        with pytest.raises(ValueError, match="block_size"):
            StreamEngine(config, block_size=0)


class TestBlockStream:
    def test_covers_schedule_contiguously(self):
        tasks = build_schedule(SCALE, SEED)
        blocks = list(schedule_block_stream(tasks, block_size=16))
        positions = [p for block in blocks for p, _ in block.entries]
        assert positions == list(range(len(tasks)))
        assert all(len(block.entries) <= 16 for block in blocks)

    def test_heights_monotonic_within_study_window(self):
        tasks = build_schedule(SCALE, SEED)
        numbers = [b.number for b in schedule_block_stream(tasks, block_size=16)]
        assert numbers == sorted(numbers)
        assert all(
            STUDY_FIRST_BLOCK <= number <= STUDY_LAST_BLOCK for number in numbers
        )

    def test_shard_of_matches_round_robin_partition(self):
        tasks = build_schedule(SCALE, SEED)
        parts = shard_schedule(tasks, 4)
        for position, task in enumerate(tasks):
            shard = shard_of(position, 4)
            assert parts[shard][position // 4] == task


class TestReplayScreening:
    def test_screen_blocks_replays_recorded_history(self, world):
        from repro.study.scenarios.base import ScriptedAttackContract

        token = world.new_token("RP")
        solo = world.dydx(funding={token: 10**6 * token.unit})
        user = world.create_attacker("replay-user")
        bot = world.chain.deploy(user, ScriptedAttackContract, lambda atk: None)
        token.mint(bot.address, 10)
        first = world.chain.block_number + 1
        world.chain.mine()
        world.chain.transact(
            user, bot.address, "run_dydx", solo.address, token.address,
            1_000 * token.unit,
        )
        from repro.chain.explorer import ChainExplorer

        blocks = ChainExplorer(world.chain).blocks_between(
            first, world.chain.block_number
        )
        screened = list(screen_blocks(world.detector(), blocks))
        assert len(screened) == 1  # only the flash loan tx is yielded
        assert not screened[0].is_attack
        assert screened[0].latency_ms >= 0
