"""Windowed streaming: per-tx identity, split-attack recall, bounded state.

The windowed matcher is strictly additive observability. These tests pin
the three sides of that contract end to end: (1) enabling the window
never changes a byte of the per-transaction result, for any jobs/shards;
(2) attacks split across transactions — invisible per-tx by construction
— are recovered by the window with the right contributing transactions;
(3) window state stays bounded over a long replay.
"""

from __future__ import annotations

import pytest

from repro.engine.stream import StreamEngine
from repro.leishen.window import windowed_recall
from repro.workload.attacks import SPLIT_ATTACK_SPECS, split_spec_of
from repro.workload.generator import WildScanConfig, WildScanner

SCALE = 0.005
SEED = 7
SPLITS = 2


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "table5": [(r.pattern, r.n, r.tp, r.fp) for r in result.table5()],
        "table6": result.table6(),
    }


def _config(jobs=1, shards=4, splits=SPLITS):
    return WildScanConfig(
        scale=SCALE, seed=SEED, jobs=jobs, shards=shards, split_attacks=splits
    )


@pytest.fixture(scope="module")
def batch_result():
    return WildScanner(_config(jobs=1)).run()


@pytest.fixture(scope="module")
def windowed_run():
    engine = StreamEngine(_config(jobs=2), block_size=16, windowed=True)
    return engine.run(), engine


class TestPerTxIdentity:
    def test_windowed_off_equals_batch(self, batch_result):
        streamed = StreamEngine(_config(jobs=2), block_size=16).run()
        assert _snapshot(streamed.result) == _snapshot(batch_result)
        assert streamed.windowed is None
        assert streamed.window_blocks == 0

    def test_windowed_on_leaves_per_tx_result_identical(
        self, batch_result, windowed_run
    ):
        streamed, _ = windowed_run
        assert _snapshot(streamed.result) == _snapshot(batch_result)

    def test_windowed_detections_identical_across_jobs(self, windowed_run):
        streamed, _ = windowed_run
        single = StreamEngine(_config(jobs=1), block_size=16, windowed=True).run()
        assert single.windowed == streamed.windowed
        assert _snapshot(single.result) == _snapshot(streamed.result)

    def test_windowed_detections_stable_under_smaller_blocks(self, windowed_run):
        streamed, _ = windowed_run
        # a smaller block size re-partitions the stream (so block spans
        # shift), but what is detected — pattern, token, tag, and the
        # contributing transactions — must not move.
        rerun = StreamEngine(_config(jobs=3), block_size=4, windowed=True).run()

        def identity(detection):
            return (
                detection.pattern,
                detection.target_token,
                detection.borrower_tag,
                detection.tx_hashes,
                detection.split_group,
            )

        assert sorted(map(identity, rerun.windowed)) == sorted(
            map(identity, streamed.windowed)
        )


class TestSplitAttackRecall:
    def test_split_rounds_are_missed_per_tx_and_recovered_windowed(
        self, batch_result, windowed_run
    ):
        streamed, _ = windowed_run
        assert windowed_recall(streamed.windowed, range(SPLITS)) == 1.0
        labelled = {
            d.split_group: d for d in streamed.windowed if d.split_group is not None
        }
        assert sorted(labelled) == list(range(SPLITS))
        per_tx_hashes = {d.tx_hash for d in batch_result.detections}
        for group, detection in labelled.items():
            spec = split_spec_of(group)
            assert detection.pattern in spec.truth_patterns
            # every split round contributed, and none of those rounds
            # was visible to the per-transaction detector.
            assert len(detection.tx_hashes) == spec.rounds
            assert len(set(detection.tx_hashes)) == spec.rounds
            assert not set(detection.tx_hashes) & per_tx_hashes
        # the two groups are distinct attacks with distinct transactions
        groups = list(labelled.values())
        assert not set(groups[0].tx_hashes) & set(groups[1].tx_hashes)

    def test_block_span_recorded(self, windowed_run):
        streamed, _ = windowed_run
        for detection in streamed.windowed:
            assert detection.first_block <= detection.last_block
            assert detection.borrower_tag

    def test_no_spurious_windowed_detections_without_splits(self):
        streamed = StreamEngine(
            _config(jobs=2, splits=0), block_size=16, windowed=True
        ).run()
        assert streamed.windowed == []

    def test_covers_both_split_shapes(self):
        # the fixture exercises one MBS and one KRP group — keep that
        # true if the spec table ever changes.
        shapes = {split_spec_of(g).shape for g in range(SPLITS)}
        assert shapes == {spec.shape for spec in SPLIT_ATTACK_SPECS[:SPLITS]}


class TestBoundedWindowState:
    def test_window_state_bounded_over_long_small_block_replay(self):
        engine = StreamEngine(
            _config(jobs=2), block_size=4, windowed=True, window_blocks=3
        )
        high_water = []

        def sample(stats, detections):
            matcher = engine.window_matcher
            high_water.append((matcher.block_count, matcher.observation_count))
            assert matcher.block_count <= 3

        streamed = engine.run(on_block=sample)
        assert len(high_water) == len(streamed.blocks)
        assert engine.window_matcher.block_count <= 3
        # the replay is much longer than the window, so the bound binds.
        assert len(streamed.blocks) > 3
        assert max(count for count, _ in high_water) == 3

    def test_window_blocks_validated(self):
        with pytest.raises(ValueError):
            StreamEngine(_config(), windowed=True, window_blocks=0)
