"""Wire schema versioning: explicit versions, strict field validation.

Every top-level wire payload (config, shard result) carries an explicit
``"v"`` schema version. Decoders reject a wrong version and any
unknown/missing field with a clear ``ValueError`` instead of merging a
payload written by a different build — the silent-wrong-merge bug class
this satellite closes.
"""

from __future__ import annotations

import pytest

from repro.engine.wire import (
    WIRE_VERSION,
    config_digest,
    config_from_wire,
    config_to_wire,
    shard_result_from_wire,
    shard_result_to_wire,
)
from repro.engine.scan import ShardResult
from repro.workload.generator import WildScanConfig


@pytest.fixture()
def config():
    return WildScanConfig(scale=0.01, seed=7, shards=4)


@pytest.fixture()
def shard_payload():
    return shard_result_to_wire(ShardResult(shard_index=2, total_transactions=5))


class TestVersionField:
    def test_config_payload_carries_version(self, config):
        assert config_to_wire(config)["v"] == WIRE_VERSION

    def test_shard_payload_carries_version(self, shard_payload):
        assert shard_payload["v"] == WIRE_VERSION

    def test_config_version_mismatch_rejected(self, config):
        payload = dict(config_to_wire(config), v=WIRE_VERSION + 1)
        with pytest.raises(ValueError, match="wire schema version"):
            config_from_wire(payload)

    def test_config_missing_version_rejected(self, config):
        payload = dict(config_to_wire(config))
        del payload["v"]
        with pytest.raises(ValueError):
            config_from_wire(payload)

    def test_shard_version_mismatch_rejected(self, shard_payload):
        payload = dict(shard_payload, v=WIRE_VERSION + 1)
        with pytest.raises(ValueError, match="wire schema version"):
            shard_result_from_wire(payload)


class TestStrictFields:
    def test_unknown_config_field_rejected(self, config):
        payload = dict(config_to_wire(config), surprise=1)
        with pytest.raises(ValueError, match="unknown"):
            config_from_wire(payload)

    def test_missing_config_field_rejected(self, config):
        payload = dict(config_to_wire(config))
        del payload["scale"]
        with pytest.raises(ValueError, match="missing"):
            config_from_wire(payload)

    def test_unknown_shard_field_rejected(self, shard_payload):
        payload = dict(shard_payload, surprise=1)
        with pytest.raises(ValueError, match="unknown"):
            shard_result_from_wire(payload)

    def test_missing_shard_field_rejected(self, shard_payload):
        payload = dict(shard_payload)
        del payload["row_counts"]
        with pytest.raises(ValueError, match="missing"):
            shard_result_from_wire(payload)


class TestConfigDigest:
    def test_digest_is_deterministic(self, config):
        assert config_digest(config) == config_digest(config)
        rebuilt = WildScanConfig(scale=0.01, seed=7, shards=4)
        assert config_digest(config) == config_digest(rebuilt)

    def test_digest_changes_with_scan_identity(self, config):
        other_seed = WildScanConfig(scale=0.01, seed=8, shards=4)
        other_scale = WildScanConfig(scale=0.02, seed=7, shards=4)
        digests = {
            config_digest(config),
            config_digest(other_seed),
            config_digest(other_scale),
        }
        assert len(digests) == 3

    def test_digest_ignores_jobs(self, config):
        more_jobs = WildScanConfig(scale=0.01, seed=7, shards=4, jobs=8)
        assert config_digest(config) == config_digest(more_jobs)
