"""Stream-engine ledger integration: journal at end of stream, skip on
resume, merge from the journal.

Resume granularity for the stream engine is the shard (contexts only
finalize at end of stream), so the contract here is: journaled shards
never re-enter the pipeline, fresh shards are journaled once the stream
drains, and a resumed merge is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import pytest

from repro.engine.plan import build_schedule, shard_schedule
from repro.engine.scan import ScanEngine, run_shard
from repro.engine.stream import StreamEngine
from repro.runtime import RunLedger
from repro.workload.generator import WildScanConfig

SCALE = 0.005
SEED = 7
SHARDS = 4


def _config(jobs: int = 2) -> WildScanConfig:
    return WildScanConfig(scale=SCALE, seed=SEED, jobs=jobs, shards=SHARDS)


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "rows": {name: (r.n, r.tp, r.fp) for name, r in result.rows.items()},
    }


@pytest.fixture(scope="module")
def cold_result():
    return ScanEngine(_config(jobs=1)).run()


class TestStreamLedger:
    def test_journaled_stream_matches_batch(self, tmp_path, cold_result):
        engine = StreamEngine(_config(), ledger=tmp_path / "s.ledger")
        streamed = engine.run()
        assert engine.ledger.recorded_count == SHARDS
        assert _snapshot(streamed.result) == _snapshot(cold_result)

    def test_partial_ledger_resumes_identical(self, tmp_path, cold_result):
        cfg = _config()
        path = tmp_path / "s.ledger"
        parts = shard_schedule(build_schedule(cfg.scale, cfg.seed), SHARDS)
        partial = RunLedger.create(path, cfg, SHARDS)
        for index in (0, 2):
            partial.record(run_shard((cfg, index, SHARDS, parts[index])))
        partial.close()

        engine = StreamEngine(cfg, ledger=path)
        streamed = engine.run()
        assert engine.ledger.resumed_count == 2
        assert engine.ledger.recorded_count == 2
        assert _snapshot(streamed.result) == _snapshot(cold_result)
        # journaled shards never entered the pipeline: every streamed
        # block only carries the two remaining shards' transactions.
        streamed_txs = sum(stats.transactions for stats in streamed.blocks)
        expected = sum(len(parts[index]) for index in (1, 3))
        assert streamed_txs == expected

    def test_complete_ledger_streams_nothing(self, tmp_path, cold_result):
        cfg = _config()
        path = tmp_path / "s.ledger"
        StreamEngine(cfg, ledger=path).run()

        engine = StreamEngine(cfg, ledger=path)
        streamed = engine.run()
        assert engine.ledger.resumed_count == SHARDS
        assert engine.ledger.recorded_count == 0
        assert streamed.blocks == []
        assert _snapshot(streamed.result) == _snapshot(cold_result)

    def test_ledger_rejected_with_custom_source(self, tmp_path):
        engine = StreamEngine(_config(), ledger=tmp_path / "s.ledger")
        with pytest.raises(ValueError, match="canonical schedule"):
            engine.run(source=iter(()))

    def test_ledger_rejected_with_detector_factory(self, tmp_path):
        engine = StreamEngine(_config(), ledger=tmp_path / "s.ledger")
        with pytest.raises(ValueError, match="cannot be journaled"):
            engine.run(detector_factory=lambda: None)
