"""The sharded scan engine's determinism contract and plumbing.

The load-bearing guarantee: ``jobs`` is an execution knob only. For a
fixed ``(seed, scale, shards)`` every published result — Table V rows,
Table VI rows, detections, the Fig. 8 histogram, even the rendered
experiment text — is byte-identical at ``jobs=1`` and ``jobs=4``.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    DEFAULT_SHARD_COUNT,
    MIN_SHARDED_POPULATION,
    build_schedule,
    population_size,
    resolve_shard_count,
    shard_schedule,
    shard_seed,
)
from repro.workload.generator import WildScanConfig, WildScanner

SCALE = 0.005
SEED = 7


def _snapshot(result):
    return {
        "total": result.total_transactions,
        "hashes": [d.tx_hash for d in result.detections],
        "table5": [(r.pattern, r.n, r.tp, r.fp) for r in result.table5()],
        "table6": result.table6(),
        "table7": result.table7(),
        "fig8": result.fig8_months(),
    }


@pytest.fixture(scope="module")
def sequential_result():
    return WildScanner(WildScanConfig(scale=SCALE, seed=SEED, jobs=1, shards=4)).run()


@pytest.fixture(scope="module")
def parallel_result():
    return WildScanner(WildScanConfig(scale=SCALE, seed=SEED, jobs=4, shards=4)).run()


class TestJobsDeterminism:
    def test_results_identical_across_jobs(self, sequential_result, parallel_result):
        assert _snapshot(sequential_result) == _snapshot(parallel_result)

    def test_detection_hashes_unique_across_shards(self, parallel_result):
        hashes = [d.tx_hash for d in parallel_result.detections]
        assert len(hashes) == len(set(hashes))

    def test_rendered_experiments_byte_identical(self):
        from repro.experiments import fig8, table5, table6

        kw = dict(scale=SCALE, shards=4)
        assert table5.render(jobs=1, **kw) == table5.render(jobs=4, **kw)
        assert table6.render(jobs=1, **kw) == table6.render(jobs=4, **kw)
        assert fig8.render(jobs=1, **kw) == fig8.render(jobs=4, **kw)

    def test_jobs_capped_by_shard_count(self):
        # more workers than shards is fine — still identical
        one = WildScanner(WildScanConfig(scale=SCALE, seed=SEED, jobs=1, shards=2)).run()
        many = WildScanner(WildScanConfig(scale=SCALE, seed=SEED, jobs=16, shards=2)).run()
        assert _snapshot(one) == _snapshot(many)


class TestShardPlumbing:
    def test_schedule_is_deterministic(self):
        assert build_schedule(SCALE, SEED) == build_schedule(SCALE, SEED)
        assert build_schedule(SCALE, SEED) != build_schedule(SCALE, SEED + 1)

    def test_schedule_covers_population(self):
        assert len(build_schedule(SCALE, SEED)) == population_size(SCALE)

    def test_partition_is_lossless(self):
        tasks = build_schedule(SCALE, SEED)
        parts = shard_schedule(tasks, 4)
        assert len(parts) == 4
        assert sorted(map(tuple, tasks)) == sorted(
            tuple(t) for part in parts for t in part
        )

    def test_partition_independent_of_jobs(self):
        # the partition is a pure function of the task list and shard count
        tasks = build_schedule(SCALE, SEED)
        assert shard_schedule(tasks, 4) == shard_schedule(list(tasks), 4)

    def test_resolve_shard_count_rules(self):
        assert resolve_shard_count(None, MIN_SHARDED_POPULATION - 1) == 1
        assert resolve_shard_count(None, MIN_SHARDED_POPULATION) == DEFAULT_SHARD_COUNT
        assert resolve_shard_count(6, 10_000) == 6
        assert resolve_shard_count(8, 3) == 3  # never more shards than tasks
        with pytest.raises(ValueError):
            resolve_shard_count(0, 100)

    def test_shard_seed_distinct_per_shard(self):
        seeds = {shard_seed(SEED, i) for i in range(8)}
        assert len(seeds) == 8
        assert shard_seed(SEED, 0) != shard_seed(SEED + 1, 0)


class TestBenchSmoke:
    def test_bench_artifact_roundtrip(self, tmp_path):
        import json

        from repro.engine.bench import run_wildscan_bench, write_artifact

        report = run_wildscan_bench(scale=0.002, seed=SEED, jobs_values=(1, 2), shards=2)
        path = write_artifact(report, tmp_path / "BENCH_wildscan.json")
        loaded = json.loads(path.read_text())
        assert loaded["benchmark"] == "wildscan_throughput"
        assert {run["jobs"] for run in loaded["runs"]} == {1, 2}
        totals = {run["total_transactions"] for run in loaded["runs"]}
        assert len(totals) == 1  # jobs never changes the population


class TestParallelRecovery:
    """Pool breakage re-runs only incomplete shards; worker bugs propagate."""

    @pytest.fixture()
    def payloads(self):
        from repro.engine.scan import run_shard

        cfg = WildScanConfig(scale=0.002, seed=SEED, jobs=2, shards=2)
        tasks = build_schedule(cfg.scale, cfg.seed)
        parts = shard_schedule(tasks, 2)
        payloads = [(cfg, index, 2, part) for index, part in enumerate(parts)]
        expected = [run_shard(payload) for payload in payloads]
        return payloads, expected

    @staticmethod
    def _result_snapshot(outcomes):
        return [
            (o.shard_index, o.total_transactions,
             [d.tx_hash for d in o.detections], o.row_counts)
            for o in outcomes
        ]

    @staticmethod
    def _fake_future(value=None, error=None):
        class _Future:
            def result(self):
                if error is not None:
                    raise error
                return value

        return _Future()

    def test_broken_pool_keeps_completed_shards(self, payloads, monkeypatch):
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine import scan

        payloads, expected = payloads
        executed: list[int] = []
        real_run_shard = scan.run_shard

        def counting_run_shard(payload):
            executed.append(payload[1])
            return real_run_shard(payload)

        monkeypatch.setattr(scan, "run_shard", counting_run_shard)
        make_future = self._fake_future

        class HalfBrokenPool:
            def __init__(self, *args, **kwargs):
                self.submitted = 0

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, payload):
                self.submitted += 1
                if self.submitted == 1:
                    return make_future(value=fn(payload))
                return make_future(error=BrokenProcessPool("worker died"))

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", HalfBrokenPool)
        outcomes = scan.ScanEngine._run_parallel(payloads, workers=2)
        assert self._result_snapshot(outcomes) == self._result_snapshot(expected)
        # shard 0 ran once in the "pool" and was kept; only shard 1 re-ran
        assert executed == [0, 1]

    def test_spawn_denied_runs_everything_in_process(self, payloads, monkeypatch):
        import concurrent.futures

        from repro.engine import scan

        payloads, expected = payloads

        class DeniedPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, payload):
                raise PermissionError("process spawning denied")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", DeniedPool)
        outcomes = scan.ScanEngine._run_parallel(payloads, workers=2)
        assert self._result_snapshot(outcomes) == self._result_snapshot(expected)

    def test_worker_exception_propagates(self, payloads, monkeypatch):
        import concurrent.futures

        from repro.engine import scan

        payloads, _ = payloads
        make_future = self._fake_future

        class BuggyWorkerPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, payload):
                return make_future(error=ValueError("bug in shard code"))

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", BuggyWorkerPool)
        with pytest.raises(ValueError, match="bug in shard code"):
            scan.ScanEngine._run_parallel(payloads, workers=2)


class TestAdversarialTail:
    """The adversarial schedule tail rides the same identity contract."""

    @pytest.fixture(scope="class")
    def adversarial_config(self):
        from repro.leishen.registry import ALL_PATTERN_KEYS, PatternSettings

        return WildScanConfig(
            scale=SCALE, seed=SEED, shards=4, adversarial=6,
            pattern_config=PatternSettings(enabled=ALL_PATTERN_KEYS),
        )

    @pytest.fixture(scope="class")
    def adversarial_batch(self, adversarial_config):
        return WildScanner(adversarial_config).run()

    def test_every_family_detected_with_full_registry(self, adversarial_batch):
        families = {
            d.truth.family
            for d in adversarial_batch.detections
            if d.truth.family is not None
        }
        assert families == {"SANDWICH", "MINT", "DONATION"}
        for detection in adversarial_batch.detections:
            if detection.truth.family is not None:
                assert detection.patterns == (detection.truth.family,)

    def test_stream_matches_batch_with_tail(self, adversarial_config, adversarial_batch):
        from repro.engine.stream import StreamEngine

        streamed = StreamEngine(adversarial_config, block_size=16).run()
        assert _snapshot(streamed.result) == _snapshot(adversarial_batch)

    def test_paper_default_scan_ignores_tail_families(self):
        config = WildScanConfig(scale=SCALE, seed=SEED, shards=4, adversarial=6)
        result = WildScanner(config).run()
        assert not [d for d in result.detections if d.truth.family is not None]
