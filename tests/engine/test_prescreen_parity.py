"""Pre-screen and warm-start parity: execution knobs never touch results.

The tentpole guarantee of the hot-path overhaul: for a fixed ``(seed,
scale, shards)`` the published scan result is byte-identical — via the
wire encoding, the strictest equality the repo has — whether or not the
pre-screen runs, at any ``jobs`` value, and whether shard contexts were
built cold or warm-started from a :class:`ShardContextSnapshot`.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import build_schedule, shard_schedule
from repro.engine.scan import (
    ScanEngine,
    ShardContextSnapshot,
    clear_context_snapshots,
    context_snapshot_for,
    run_shard,
)
from repro.engine.wire import detection_to_wire
from repro.workload.generator import WildScanConfig, WildScanner


def fingerprint(result) -> str:
    """The scan result's full wire identity as one comparable string."""
    return json.dumps(
        {
            "total": result.total_transactions,
            "detections": [detection_to_wire(d) for d in result.detections],
            "rows": {
                name: [row.n, row.tp, row.fp]
                for name, row in sorted(result.rows.items())
            },
        },
        sort_keys=True,
    )


def scan(**overrides) -> str:
    defaults = dict(scale=0.003, seed=7, jobs=1, shards=4)
    defaults.update(overrides)
    return fingerprint(WildScanner(WildScanConfig(**defaults)).run())


class TestPreScreenParity:
    @pytest.mark.parametrize("seed,scale", [(7, 0.003), (3, 0.005), (11, 0.002)])
    def test_byte_identical_across_seeds_and_scales(self, seed, scale):
        # property-style sweep: the screen may only skip work it can
        # prove irrelevant, so every (seed, scale) cell must agree.
        on = scan(seed=seed, scale=scale, prescreen=True)
        off = scan(seed=seed, scale=scale, prescreen=False)
        assert on == off

    def test_byte_identical_across_jobs(self):
        assert scan(jobs=1, prescreen=True) == scan(jobs=2, prescreen=True)
        assert scan(jobs=2, prescreen=True) == scan(jobs=2, prescreen=False)

    def test_prescreen_counters_surface_in_profile(self):
        clear_context_snapshots()
        engine = ScanEngine(
            WildScanConfig(scale=0.003, seed=7, jobs=1, shards=4, profile=True)
        )
        engine.run()
        counters = engine.profile["counters"]
        # the wild population is all flash-loan txs by construction, so
        # the screen's role here is fast-confirm: everything admitted.
        assert counters["prescreen_admitted"] == counters["transactions"]
        assert counters["prescreen_screened"] == 0


class TestWarmStartParity:
    def test_warm_rerun_is_byte_identical(self):
        clear_context_snapshots()
        cold = scan()
        assert context_snapshot_for(0, 4) is not None  # cache populated
        warm = scan()
        assert cold == warm

    def test_warm_start_actually_hits_the_cache(self):
        clear_context_snapshots()
        config = WildScanConfig(scale=0.003, seed=7, jobs=1, shards=4, profile=True)
        cold_engine = ScanEngine(config)
        cold_engine.run()
        assert cold_engine.profile["counters"].get("warm_starts", 0) == 0
        warm_engine = ScanEngine(config)
        warm_engine.run()
        assert warm_engine.profile["counters"]["warm_starts"] == 4

    def test_warm_start_crosses_seed_and_scale(self):
        # build identity is the chain *name* (the market build consumes
        # no rng), so a snapshot cached at one (seed, scale) warms any
        # other config with the same shard naming.
        clear_context_snapshots()
        WildScanner(WildScanConfig(scale=0.003, seed=7, jobs=1, shards=4)).run()
        engine = ScanEngine(
            WildScanConfig(scale=0.002, seed=11, jobs=1, shards=4, profile=True)
        )
        result = engine.run()
        assert engine.profile["counters"]["warm_starts"] == 4
        clear_context_snapshots()
        assert fingerprint(result) == scan(seed=11, scale=0.002)

    def test_run_shard_accepts_wire_snapshot(self):
        clear_context_snapshots()
        config = WildScanConfig(scale=0.003, seed=7, jobs=1, shards=4)
        tasks = shard_schedule(build_schedule(config.scale, config.seed), 4)
        cold = run_shard((config, 0, 4, tasks[0]))
        snapshot = context_snapshot_for(0, 4)
        assert isinstance(snapshot, ShardContextSnapshot)
        wire = snapshot.to_wire()
        assert wire["chain_name"] == "ethereum-s0"
        clear_context_snapshots()
        warm = run_shard((config, 0, 4, tasks[0], wire))
        assert [d.tx_hash for d in cold.detections] == [
            d.tx_hash for d in warm.detections
        ]
        assert cold.row_counts == warm.row_counts

    def test_malformed_snapshot_is_ignored(self):
        clear_context_snapshots()
        config = WildScanConfig(scale=0.003, seed=7, jobs=1, shards=4)
        tasks = shard_schedule(build_schedule(config.scale, config.seed), 4)
        cold = run_shard((config, 0, 4, tasks[0]))
        clear_context_snapshots()
        # wrong chain name: must rebuild cold rather than apply
        bogus = {"chain_name": "ethereum-s3", "tag_snapshot": {}}
        guarded = run_shard((config, 0, 4, tasks[0], bogus))
        assert [d.tx_hash for d in cold.detections] == [
            d.tx_hash for d in guarded.detections
        ]
        assert ShardContextSnapshot.from_wire({"nonsense": 1}) is None
