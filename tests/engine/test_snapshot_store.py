"""The bounded process-level snapshot store behind ``build_shard_context``."""

from __future__ import annotations

import pytest

from repro.engine.scan import (
    SnapshotStore,
    ScanEngine,
    clear_context_snapshots,
    context_snapshot_for,
    context_snapshot_stats,
    install_context_snapshot,
    set_context_snapshot_limit,
    shard_chain_name,
)
from repro.engine.wire import detection_to_wire
from repro.workload.generator import WildScanConfig


@pytest.fixture(autouse=True)
def _isolated_store():
    clear_context_snapshots()
    set_context_snapshot_limit(256)
    yield
    clear_context_snapshots()
    set_context_snapshot_limit(256)


class FakeSnapshot:
    """Stands in for ShardContextSnapshot — the store only reads keys."""

    def __init__(self, chain_name: str) -> None:
        self.chain_name = chain_name


def test_lru_eviction_and_counters():
    store = SnapshotStore(max_entries=2)
    store.put("a", FakeSnapshot("a"))
    store.put("b", FakeSnapshot("b"))
    assert store.get("a").chain_name == "a"  # refresh: b becomes LRU
    store.put("c", FakeSnapshot("c"))
    assert store.get("b") is None
    assert store.names() == ["a", "c"]
    assert store.stats() == {
        "entries": 2,
        "max_entries": 2,
        "hits": 1,
        "misses": 1,
        "evictions": 1,
    }


def test_set_max_entries_evicts_down():
    store = SnapshotStore(max_entries=4)
    for name in "abcd":
        store.put(name, FakeSnapshot(name))
    store.set_max_entries(2)
    assert store.names() == ["c", "d"]  # LRU-first eviction
    assert store.stats()["evictions"] == 2
    with pytest.raises(ValueError, match="max_entries"):
        store.set_max_entries(0)
    with pytest.raises(ValueError, match="max_entries"):
        SnapshotStore(max_entries=0)


def test_process_store_is_bounded_by_limit_api():
    set_context_snapshot_limit(1)
    install_context_snapshot(FakeSnapshot("ethereum-s0"))
    install_context_snapshot(FakeSnapshot("ethereum-s1"))
    stats = context_snapshot_stats()
    assert stats["entries"] == 1
    assert stats["max_entries"] == 1
    assert stats["evictions"] >= 1


def test_shard_chain_name_is_the_snapshot_identity():
    assert shard_chain_name(0, 1) == "ethereum"
    assert shard_chain_name(0, 2) != shard_chain_name(1, 2)
    snapshot = FakeSnapshot(shard_chain_name(1, 2))
    install_context_snapshot(snapshot)
    assert context_snapshot_for(1, 2) is snapshot
    assert context_snapshot_for(0, 2) is None


def test_eviction_never_changes_results():
    """A store too small to keep every shard warm still scans identically."""
    config = WildScanConfig(scale=0.01, seed=7, shards=4)
    reference = [detection_to_wire(d) for d in ScanEngine(config).run().detections]
    clear_context_snapshots()
    set_context_snapshot_limit(1)  # thrash: every shard evicts the last
    rerun = [detection_to_wire(d) for d in ScanEngine(config).run().detections]
    assert rerun == reference
    assert context_snapshot_stats()["entries"] == 1
