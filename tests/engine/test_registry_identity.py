"""Pattern-registry identity: digests, wire round-trips, compatibility.

The enabled-pattern set and every per-pattern threshold are part of a
scan's identity: two runs that would match different patterns must never
share a ``config_digest`` (the run ledger and the scan service both key
on it). Conversely the *default* selection must digest byte-identically
to what older builds wrote, or every existing ledger and artifact would
be orphaned by a refactor that changed no behaviour.
"""

from __future__ import annotations

import pytest

from repro.engine.wire import (
    config_digest,
    config_from_wire,
    config_to_wire,
    detection_from_wire,
    detection_to_wire,
)
from repro.leishen.patterns import PatternConfig
from repro.leishen.registry import ALL_PATTERN_KEYS, PatternSettings
from repro.workload.generator import Detection, WildScanConfig
from repro.workload.profiles import GroundTruth

#: the digest of the all-defaults config, pinned across PRs: a refactor
#: that shifts it silently orphans every ledger written before it.
DEFAULT_DIGEST = "de714eea7fd338ee534d3797436ab318f3e52654ba3bb252912d145abb05ed03"

#: same pin for the benchmark config every BENCH_*.json artifact uses.
BENCH_DIGEST = "cb02b363f73eaf3f0d1fed8946fedc76a279af943e8d60b41d0256f70869254a"


class TestDigestPins:
    def test_default_config_digest_is_stable(self):
        assert config_digest(WildScanConfig()) == DEFAULT_DIGEST

    def test_bench_config_digest_is_stable(self):
        assert config_digest(WildScanConfig(scale=0.01, seed=7)) == BENCH_DIGEST

    def test_jobs_is_not_identity(self):
        assert config_digest(WildScanConfig(jobs=8)) == DEFAULT_DIGEST


class TestDigestSensitivity:
    def test_enabled_set_changes_digest(self):
        base = WildScanConfig(pattern_config=PatternSettings())
        widened = WildScanConfig(
            pattern_config=PatternSettings(enabled=ALL_PATTERN_KEYS)
        )
        assert config_digest(base) != config_digest(widened)

    def test_threshold_changes_digest(self):
        base = WildScanConfig(pattern_config=PatternSettings())
        tuned = WildScanConfig(
            pattern_config=PatternSettings.make(
                params={"KRP": {"min_buys": 6}}
            )
        )
        assert config_digest(base) != config_digest(tuned)

    def test_legacy_threshold_changes_digest(self):
        base = WildScanConfig(pattern_config=PatternConfig())
        tuned = WildScanConfig(pattern_config=PatternConfig(krp_min_buys=6))
        assert config_digest(base) != config_digest(tuned)

    def test_registry_version_changes_digest(self):
        base = WildScanConfig(pattern_config=PatternSettings())
        bumped = WildScanConfig(
            pattern_config=PatternSettings(registry_version=99)
        )
        assert config_digest(base) != config_digest(bumped)

    def test_adversarial_tail_changes_digest(self):
        assert config_digest(WildScanConfig(adversarial=3)) != DEFAULT_DIGEST


class TestWireRoundTrips:
    def test_settings_round_trip(self):
        settings = PatternSettings.make(
            enabled=("KRP", "SANDWICH"),
            params={"KRP": {"min_buys": 7}, "SANDWICH": {"amount_tolerance": 0.02}},
        )
        config = WildScanConfig(pattern_config=settings, adversarial=4)
        decoded = config_from_wire(config_to_wire(config))
        assert decoded.pattern_config == settings
        assert decoded.adversarial == 4

    def test_legacy_flat_config_round_trip(self):
        config = WildScanConfig(pattern_config=PatternConfig(krp_min_buys=6))
        decoded = config_from_wire(config_to_wire(config))
        assert isinstance(decoded.pattern_config, PatternConfig)
        assert decoded.pattern_config == config.pattern_config

    def test_default_payload_omits_optional_fields(self):
        payload = config_to_wire(WildScanConfig())
        assert "adversarial" not in payload
        truth = detection_to_wire(
            Detection(tx_hash="0x1", patterns=("KRP",), truth=GroundTruth(is_attack=False, profile="benign"))
        )["truth"]
        assert "family" not in truth

    def test_truth_family_round_trips(self):
        detection = Detection(
            tx_hash="0x2",
            patterns=("SANDWICH",),
            truth=GroundTruth(is_attack=True, profile="sandwich", family="SANDWICH"),
        )
        decoded = detection_from_wire(detection_to_wire(detection))
        assert decoded.truth.family == "SANDWICH"

    def test_settings_payload_with_unknown_field_rejected(self):
        payload = config_to_wire(
            WildScanConfig(pattern_config=PatternSettings())
        )
        payload["pattern_config"]["surprise"] = 1
        with pytest.raises(ValueError, match="unknown field"):
            config_from_wire(payload)
