"""ERC20 semantics: transfers, allowances, mint/burn via BlackHole."""

import pytest

from repro.chain import BLACKHOLE, InsufficientAllowance, InsufficientBalance, Revert


@pytest.fixture()
def token(chain, registry):
    deployer = chain.create_eoa("deployer")
    return registry.deploy(chain, deployer, "TKN", 18)


@pytest.fixture()
def holders(chain):
    return chain.create_eoa("h1"), chain.create_eoa("h2")


class TestTransfer:
    def test_moves_balance(self, chain, token, holders):
        a, b = holders
        token.mint(a, 100)
        chain.transact(a, token.address, "transfer", b, 40)
        assert token.balance_of(a) == 60
        assert token.balance_of(b) == 40

    def test_insufficient_reverts(self, chain, token, holders):
        a, b = holders
        with pytest.raises(InsufficientBalance):
            chain.transact(a, token.address, "transfer", b, 1)

    def test_negative_reverts(self, chain, token, holders):
        a, b = holders
        token.mint(a, 10)
        with pytest.raises(Revert):
            chain.transact(a, token.address, "transfer", b, -5)

    def test_records_trace_transfer(self, chain, token, holders):
        a, b = holders
        token.mint(a, 10)
        trace = chain.transact(a, token.address, "transfer", b, 10)
        assert len(trace.transfers) == 1
        record = trace.transfers[0]
        assert (record.sender, record.receiver, record.amount) == (a, b, 10)
        assert record.token == token.address


class TestAllowances:
    def test_approve_and_transfer_from(self, chain, token, holders):
        a, b = holders
        token.mint(a, 100)
        chain.transact(a, token.address, "approve", b, 70)
        chain.transact(b, token.address, "transferFrom", a, b, 70)
        assert token.balance_of(b) == 70
        assert token.allowance(a, b) == 0

    def test_exceeding_allowance_reverts(self, chain, token, holders):
        a, b = holders
        token.mint(a, 100)
        chain.transact(a, token.address, "approve", b, 10)
        with pytest.raises(InsufficientAllowance):
            chain.transact(b, token.address, "transferFrom", a, b, 11)

    def test_allowance_decrements(self, chain, token, holders):
        a, b = holders
        token.mint(a, 100)
        chain.transact(a, token.address, "approve", b, 50)
        chain.transact(b, token.address, "transferFrom", a, b, 20)
        assert token.allowance(a, b) == 30


class TestSupply:
    def test_mint_from_blackhole(self, chain, token, holders):
        a, _ = holders
        trace = chain.transact(a, token.address, "approve", a, 0)  # open trace ctx
        token.mint(a, 5)  # outside tx: no trace, but balances/supply move
        assert token.total_supply() == 5
        assert trace.success

    def test_mint_inside_tx_records_blackhole_sender(self, chain, registry, holders):
        from repro.chain import Contract, Msg, external

        a, _ = holders
        deployer = chain.create_eoa()
        token = registry.deploy(chain, deployer, "M")

        class Minter(Contract):
            @external
            def go(self, msg: Msg):
                token.mint(msg.sender, 9)

        minter = chain.deploy(deployer, Minter)
        trace = chain.transact(a, minter.address, "go")
        assert trace.transfers[0].sender == BLACKHOLE

    def test_burn_reduces_supply(self, chain, token, holders):
        a, _ = holders
        token.mint(a, 10)
        token.burn(a, 4)
        assert token.total_supply() == 6
        assert token.balance_of(a) == 6

    def test_burn_more_than_balance_reverts(self, token, holders):
        a, _ = holders
        token.mint(a, 3)
        with pytest.raises(InsufficientBalance):
            token.burn(a, 4)

    def test_unit_property(self, token):
        assert token.unit == 10**18
