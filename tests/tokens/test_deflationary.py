"""Fee-on-transfer token (the Balancer attack's STA)."""

import pytest

from repro.chain import BLACKHOLE
from repro.tokens import DeflationaryERC20


@pytest.fixture()
def sta(chain):
    token = chain.deploy(chain.create_eoa("d"), DeflationaryERC20, "STA", 18, 100)
    return token


class TestBurnOnTransfer:
    def test_receiver_gets_99_percent(self, chain, sta):
        a, b = chain.create_eoa(), chain.create_eoa()
        sta.mint(a, 10_000)
        chain.transact(a, sta.address, "transfer", b, 10_000)
        assert sta.balance_of(b) == 9_900
        assert sta.balance_of(a) == 0

    def test_supply_shrinks(self, chain, sta):
        a, b = chain.create_eoa(), chain.create_eoa()
        sta.mint(a, 10_000)
        chain.transact(a, sta.address, "transfer", b, 10_000)
        assert sta.total_supply() == 9_900

    def test_burn_recorded_to_blackhole(self, chain, sta):
        a, b = chain.create_eoa(), chain.create_eoa()
        sta.mint(a, 10_000)
        trace = chain.transact(a, sta.address, "transfer", b, 10_000)
        burns = [t for t in trace.transfers if t.receiver == BLACKHOLE]
        assert len(burns) == 1 and burns[0].amount == 100

    def test_zero_fee_token_behaves_like_erc20(self, chain):
        token = chain.deploy(chain.create_eoa(), DeflationaryERC20, "T", 18, 0)
        a, b = chain.create_eoa(), chain.create_eoa()
        token.mint(a, 100)
        chain.transact(a, token.address, "transfer", b, 100)
        assert token.balance_of(b) == 100

    def test_invalid_fee_rejected(self, chain):
        with pytest.raises(ValueError):
            chain.deploy(chain.create_eoa(), DeflationaryERC20, "T", 18, 10_000)
