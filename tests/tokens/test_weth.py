"""WETH wrap/unwrap semantics."""

import pytest

from repro.chain import ETH, ETHER, Revert
from repro.tokens import WETH


@pytest.fixture()
def weth(chain):
    return chain.deploy(chain.create_eoa("d"), WETH, label="Wrapped Ether")


class TestDeposit:
    def test_mints_one_to_one(self, chain, weth, funded_accounts):
        a = funded_accounts[0]
        chain.transact(a, weth.address, "deposit", value=3 * ETH)
        assert weth.balance_of(a) == 3 * ETH
        assert chain.balance(a) == 997 * ETH

    def test_trace_shows_eth_in_weth_out(self, chain, weth, funded_accounts):
        a = funded_accounts[0]
        trace = chain.transact(a, weth.address, "deposit", value=1 * ETH)
        tokens = [t.token for t in trace.transfers]
        assert ETHER in tokens and weth.address in tokens

    def test_plain_send_autowraps(self, chain, weth, funded_accounts):
        a = funded_accounts[0]
        chain.send_ether(a, weth.address, 2 * ETH)
        assert weth.balance_of(a) == 2 * ETH


class TestWithdraw:
    def test_returns_ether(self, chain, weth, funded_accounts):
        a = funded_accounts[0]
        chain.transact(a, weth.address, "deposit", value=5 * ETH)
        chain.transact(a, weth.address, "withdraw", 2 * ETH)
        assert weth.balance_of(a) == 3 * ETH
        assert chain.balance(a) == 997 * ETH

    def test_cannot_withdraw_more_than_held(self, chain, weth, funded_accounts):
        a = funded_accounts[0]
        with pytest.raises(Revert):
            chain.transact(a, weth.address, "withdraw", 1)

    def test_round_trip_conserves_value(self, chain, weth, funded_accounts):
        a = funded_accounts[0]
        before = chain.balance(a)
        chain.transact(a, weth.address, "deposit", value=7 * ETH)
        chain.transact(a, weth.address, "withdraw", 7 * ETH)
        assert chain.balance(a) == before
        assert weth.total_supply() == 0

    def test_app_name_is_wrapped_ether(self, weth):
        assert weth.app_name == "Wrapped Ether"
