"""Token registry lookups and pair rendering."""

from repro.chain import ETHER


class TestRegistry:
    def test_deploy_and_lookup(self, chain, registry):
        token = registry.deploy(chain, chain.create_eoa(), "ABC", 6)
        assert registry.get(token.address) is token
        assert registry.by_symbol("ABC") is token
        assert registry.has_symbol("ABC")
        assert len(registry) == 1

    def test_symbol_of_native(self, registry):
        assert registry.symbol_of(ETHER) == "ETH"

    def test_symbol_of_unknown_address_is_short_form(self, registry, chain):
        stranger = chain.create_eoa()
        assert registry.symbol_of(stranger) == stranger.short

    def test_pair_name(self, chain, registry):
        a = registry.deploy(chain, chain.create_eoa(), "AAA")
        assert registry.pair_name(ETHER, a.address) == "ETH-AAA"

    def test_bsc_native_symbol(self, chain):
        from repro.tokens import TokenRegistry

        registry = TokenRegistry(native_symbol="BNB")
        assert registry.symbol_of(ETHER) == "BNB"

    def test_iteration(self, chain, registry):
        registry.deploy(chain, chain.create_eoa(), "X")
        registry.deploy(chain, chain.create_eoa(), "Y")
        assert {t.symbol for t in registry} == {"X", "Y"}
