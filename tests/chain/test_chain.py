"""Chain execution: calls, transactions, atomicity, traces, blocks."""

import pytest

from repro.chain import (
    Chain,
    ChainError,
    Contract,
    ETH,
    ETHER,
    Msg,
    NotAContract,
    Revert,
    UnknownFunction,
    external,
)


class Counter(Contract):
    @external
    def bump(self, msg: Msg, by: int = 1) -> int:
        return self.storage.add("count", by)

    @external
    def bump_then_fail(self, msg: Msg) -> None:
        self.storage.add("count", 1)
        raise Revert("nope")

    @external
    def bump_and_call(self, msg: Msg, other, fn) -> None:
        self.storage.add("count", 1)
        self.call(other, fn)

    @external
    def bump_catching(self, msg: Msg, other) -> None:
        self.storage.add("count", 1)
        try:
            self.call(other, "bump_then_fail")
        except Revert:
            pass  # tolerated, like Solidity try/catch

    def count(self) -> int:
        return self.storage.get("count", 0)


class TestAccounts:
    def test_create_eoa_unique(self, chain):
        a, b = chain.create_eoa(), chain.create_eoa()
        assert a != b and a in chain.eoas

    def test_labels_recorded(self, chain):
        account = chain.create_eoa(label="Uniswap: Deployer")
        assert chain.labels[account] == "Uniswap: Deployer"

    def test_is_contract(self, chain):
        eoa = chain.create_eoa()
        contract = chain.deploy(eoa, Counter)
        assert chain.is_contract(contract.address)
        assert not chain.is_contract(eoa)


class TestEther:
    def test_faucet_and_balance(self, chain):
        account = chain.create_eoa()
        chain.faucet(account, 5 * ETH)
        assert chain.balance(account) == 5 * ETH

    def test_send_records_transfer_in_trace(self, chain, funded_accounts):
        a, b, _ = funded_accounts
        counter = chain.deploy(a, Counter)
        trace = chain.transact(a, counter.address, "bump", value=2 * ETH)
        ether_moves = [t for t in trace.transfers if t.token == ETHER]
        assert len(ether_moves) == 1
        assert ether_moves[0].amount == 2 * ETH

    def test_insufficient_balance_reverts(self, chain):
        poor = chain.create_eoa()
        rich = chain.create_eoa()
        counter = chain.deploy(rich, Counter)
        with pytest.raises(Revert):
            chain.transact(poor, counter.address, "bump", value=1)


class TestDispatch:
    def test_external_function_callable(self, chain, funded_accounts):
        a = funded_accounts[0]
        counter = chain.deploy(a, Counter)
        chain.transact(a, counter.address, "bump", 3)
        assert counter.count() == 3

    def test_internal_method_not_dispatchable(self, chain, funded_accounts):
        a = funded_accounts[0]
        counter = chain.deploy(a, Counter)
        with pytest.raises(UnknownFunction):
            chain.transact(a, counter.address, "count")

    def test_call_to_eoa_fails(self, chain, funded_accounts):
        a, b, _ = funded_accounts
        with pytest.raises(ChainError):
            chain.transact(a, b, "bump")


class TestAtomicity:
    def test_revert_rolls_back_state(self, chain, funded_accounts):
        a = funded_accounts[0]
        counter = chain.deploy(a, Counter)
        chain.transact(a, counter.address, "bump")
        with pytest.raises(Revert):
            chain.transact(a, counter.address, "bump_then_fail")
        assert counter.count() == 1
        assert chain.state.depth == 0

    def test_failed_tx_trace_has_no_effects(self, chain, funded_accounts):
        a = funded_accounts[0]
        counter = chain.deploy(a, Counter)
        trace = chain.transact(
            a, counter.address, "bump_then_fail", allow_failure=True
        )
        assert not trace.success
        assert trace.revert_reason == "nope"
        assert trace.transfers == [] and trace.logs == []

    def test_nested_revert_can_be_caught(self, chain, funded_accounts):
        a = funded_accounts[0]
        counter = chain.deploy(a, Counter)
        other = chain.deploy(a, Counter)
        chain.transact(a, counter.address, "bump_catching", other.address)
        assert counter.count() == 1  # outer survived
        assert other.count() == 0  # inner rolled back

    def test_nested_revert_propagates_without_catch(self, chain, funded_accounts):
        a = funded_accounts[0]
        counter = chain.deploy(a, Counter)
        other = chain.deploy(a, Counter)
        with pytest.raises(Revert):
            chain.transact(a, counter.address, "bump_and_call", other.address, "bump_then_fail")
        assert counter.count() == 0 and other.count() == 0


class TestTraces:
    def test_happened_before_ordering(self, chain, funded_accounts):
        a = funded_accounts[0]
        counter = chain.deploy(a, Counter)
        other = chain.deploy(a, Counter)
        trace = chain.transact(a, counter.address, "bump_and_call", other.address, "bump")
        seqs = [event.seq for event in trace.ordered_events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_keep_history_flag(self, funded_accounts, chain):
        a = funded_accounts[0]
        counter = chain.deploy(a, Counter)
        chain.keep_history = False
        trace = chain.transact(a, counter.address, "bump")
        assert trace.success
        assert all(trace not in block.traces for block in chain.blocks)


class TestDeployment:
    def test_creation_relationship_recorded(self, chain):
        creator = chain.create_eoa()
        contract = chain.deploy(creator, Counter)
        assert chain.created_by[contract.address] == creator

    def test_nested_deployment_inside_tx(self, chain, funded_accounts):
        a = funded_accounts[0]

        class Deployer(Contract):
            @external
            def make(self, msg: Msg):
                child = self.chain.deploy(self.address, Counter)
                return child.address

        deployer = chain.deploy(a, Deployer)
        trace = chain.transact(a, deployer.address, "make")
        assert len(trace.creations) == 1
        assert chain.created_by[trace.creations[0].created] == deployer.address

    def test_selfdestruct_removes_code(self, chain):
        a = chain.create_eoa()
        contract = chain.deploy(a, Counter)
        chain.destroy(contract.address)
        with pytest.raises(NotAContract):
            chain.transact(a, contract.address, "bump")


class TestBlocks:
    def test_mine_advances_number_and_time(self, chain):
        block0 = chain.blocks[-1]
        block = chain.mine(3)
        assert block.number == block0.number + 3
        assert block.timestamp > block0.timestamp

    def test_mine_to_timestamp(self, chain):
        target = chain.timestamp + 86_400
        block = chain.mine_to_timestamp(target)
        assert block.timestamp == target
        with pytest.raises(ValueError):
            chain.mine_to_timestamp(0)
