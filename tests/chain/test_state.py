"""Journaled state: checkpoint/commit/rollback semantics."""

import pytest

from repro.chain import Address, StateJournal
from repro.chain.state import StorageView

A = Address("0x" + "aa" * 20)
B = Address("0x" + "bb" * 20)


class TestBasicOps:
    def test_get_default(self):
        state = StateJournal()
        assert state.get(A, "k") is None
        assert state.get(A, "k", 7) == 7

    def test_set_get(self):
        state = StateJournal()
        state.set(A, "k", 1)
        assert state.get(A, "k") == 1

    def test_keys_scoped_by_owner(self):
        state = StateJournal()
        state.set(A, "k", 1)
        assert state.get(B, "k") is None

    def test_add_accumulates(self):
        state = StateJournal()
        assert state.add(A, "n", 5) == 5
        assert state.add(A, "n", -2) == 3

    def test_delete(self):
        state = StateJournal()
        state.set(A, "k", 1)
        state.delete(A, "k")
        assert not state.contains(A, "k")

    def test_items_for(self):
        state = StateJournal()
        state.set(A, "x", 1)
        state.set(A, "y", 2)
        state.set(B, "z", 3)
        assert dict(state.items_for(A)) == {"x": 1, "y": 2}


class TestCheckpoints:
    def test_rollback_restores_overwrite(self):
        state = StateJournal()
        state.set(A, "k", 1)
        state.checkpoint()
        state.set(A, "k", 2)
        state.rollback()
        assert state.get(A, "k") == 1

    def test_rollback_removes_new_key(self):
        state = StateJournal()
        state.checkpoint()
        state.set(A, "k", 1)
        state.rollback()
        assert not state.contains(A, "k")

    def test_rollback_restores_delete(self):
        state = StateJournal()
        state.set(A, "k", 1)
        state.checkpoint()
        state.delete(A, "k")
        state.rollback()
        assert state.get(A, "k") == 1

    def test_commit_folds_into_parent(self):
        state = StateJournal()
        state.set(A, "k", 1)
        state.checkpoint()  # outer
        state.checkpoint()  # inner
        state.set(A, "k", 2)
        state.commit()  # inner commit
        state.rollback()  # outer rollback must still restore 1
        assert state.get(A, "k") == 1

    def test_nested_rollback_only_inner(self):
        state = StateJournal()
        state.checkpoint()
        state.set(A, "outer", 1)
        state.checkpoint()
        state.set(A, "inner", 2)
        state.rollback()
        assert state.get(A, "outer") == 1
        assert not state.contains(A, "inner")
        state.commit()
        assert state.get(A, "outer") == 1

    def test_first_write_wins_in_journal(self):
        state = StateJournal()
        state.set(A, "k", 1)
        state.checkpoint()
        state.set(A, "k", 2)
        state.set(A, "k", 3)
        state.rollback()
        assert state.get(A, "k") == 1

    def test_rollback_without_checkpoint_raises(self):
        with pytest.raises(RuntimeError):
            StateJournal().rollback()

    def test_commit_without_checkpoint_raises(self):
        with pytest.raises(RuntimeError):
            StateJournal().commit()

    def test_depth_tracking(self):
        state = StateJournal()
        assert state.depth == 0
        state.checkpoint()
        state.checkpoint()
        assert state.depth == 2
        state.commit()
        state.rollback()
        assert state.depth == 0


class TestStorageView:
    def test_scoped_to_owner(self):
        state = StateJournal()
        view_a = StorageView(state, A)
        view_b = StorageView(state, B)
        view_a.set("k", 1)
        assert view_a.get("k") == 1
        assert view_b.get("k") is None

    def test_add_and_delete(self):
        state = StateJournal()
        view = StorageView(state, A)
        view.add("n", 4)
        assert view.get("n") == 4
        view.delete("n")
        assert not view.contains("n")
