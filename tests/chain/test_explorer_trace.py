"""ChainExplorer queries and TransactionTrace utilities."""

import pytest

from repro.chain import ChainExplorer, Contract, ETH, ETHER


class Dummy(Contract):
    pass


class TestExplorer:
    def test_labels_roundtrip(self, chain):
        account = chain.create_eoa(label="Uniswap: Deployer")
        explorer = ChainExplorer(chain)
        assert explorer.label_of(account) == "Uniswap: Deployer"
        explorer.remove_label(account)
        assert explorer.label_of(account) is None

    def test_creation_graph(self, chain):
        root = chain.create_eoa()
        a = chain.deploy(root, Dummy)
        b = chain.deploy(a.address, Dummy)
        explorer = ChainExplorer(chain)
        assert explorer.creator_of(b.address) == a.address
        assert explorer.creations_of(root) == [a.address]
        assert explorer.creation_root(b.address) == root
        forest = explorer.creation_forest()
        assert forest[root] == [a.address]
        assert forest[a.address] == [b.address]

    def test_creation_root_of_eoa_is_itself(self, chain):
        eoa = chain.create_eoa()
        assert ChainExplorer(chain).creation_root(eoa) == eoa

    def test_transactions_iteration(self, chain, registry, funded_accounts):
        a, b, _ = funded_accounts
        token = registry.deploy(chain, a, "EXP")
        token.mint(a, 100)
        chain.transact(a, token.address, "transfer", b, 10)
        chain.mine()
        chain.transact(a, token.address, "transfer", b, 10)
        explorer = ChainExplorer(chain)
        assert len(list(explorer.transactions())) == 2
        first_block = chain.blocks[0].number
        assert len(list(explorer.transactions_between(first_block, first_block))) == 1


class TestTraceUtilities:
    def test_net_flows(self, chain, registry, funded_accounts):
        a, b, _ = funded_accounts
        token = registry.deploy(chain, a, "NTF")
        token.mint(a, 100)
        trace = chain.transact(a, token.address, "transfer", b, 30)
        assert trace.net_flows(a) == {token.address: -30}
        assert trace.net_flows(b) == {token.address: 30}

    def test_net_flows_omits_zero(self, bzx1_outcome):
        flows = bzx1_outcome.trace.net_flows(bzx1_outcome.attack_contracts[0])
        assert all(delta != 0 for delta in flows.values())

    def test_tokens_touched(self, bzx1_outcome):
        touched = bzx1_outcome.trace.tokens_touched()
        assert len(touched) >= 2  # WETH + WBTC at minimum

    def test_log_param_default(self, bzx1_outcome):
        log = bzx1_outcome.trace.logs[0]
        assert log.param("not-there", 42) == 42
