"""Address and unit primitives."""

import pytest

from repro.chain import Address, AddressFactory, BLACKHOLE, ETHER, ZERO_ADDRESS
from repro.chain.types import from_wei, keccak_address, to_wei


class TestAddress:
    def test_normalizes_to_lowercase(self):
        mixed = "0x" + "AbCd" * 10
        assert Address(mixed) == "0x" + "abcd" * 10

    def test_accepts_bare_hex(self):
        assert Address("ab" * 20).startswith("0x")

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Address("0x1234")

    def test_rejects_non_hex(self):
        with pytest.raises(ValueError):
            Address("0x" + "zz" * 20)

    def test_short_rendering(self):
        address = Address("0x" + "b017" + "0" * 36)
        assert address.short == "0xb017"

    def test_usable_as_dict_key(self):
        address = Address("0x" + "11" * 20)
        assert {address: 1}[str(address)] == 1

    def test_idempotent_construction(self):
        address = Address("0x" + "22" * 20)
        assert Address(address) is address

    def test_zero_address_is_blackhole(self):
        assert ZERO_ADDRESS == BLACKHOLE
        assert int(ZERO_ADDRESS, 16) == 0

    def test_ether_sentinel_distinct(self):
        assert ETHER != ZERO_ADDRESS


class TestUnits:
    def test_to_wei_round_trip(self):
        assert from_wei(to_wei(1.5)) == pytest.approx(1.5)

    def test_to_wei_integer(self):
        assert to_wei(2) == 2 * 10**18


class TestAddressFactory:
    def test_fresh_addresses_unique(self):
        factory = AddressFactory()
        seen = {factory.fresh() for _ in range(1000)}
        assert len(seen) == 1000

    def test_deterministic_across_instances(self):
        a = AddressFactory("ns")
        b = AddressFactory("ns")
        assert [a.fresh() for _ in range(5)] == [b.fresh() for _ in range(5)]

    def test_namespaces_disjoint(self):
        assert AddressFactory("x").fresh() != AddressFactory("y").fresh()


def test_keccak_address_deterministic():
    assert keccak_address("a", "b") == keccak_address("a", "b")
    assert keccak_address("a", "b") != keccak_address("a", "c")
