"""Cross-transaction windowed-detection benchmark: recall and latency.

Streams a schedule carrying labelled split attacks with the window off
and on, writes the ``BENCH_windowed.json`` artifact at the repo root,
and checks the contract the feature exists for: the split rounds are
invisible per transaction (per-tx identity with the batch engine holds
in both modes) yet the sliding-window matcher recovers every labelled
group. The identity and recall assertions are always on — only the
block-latency budget waits for ``REPRO_BENCH_STRICT=1``, like the other
latency benches, so shared CI runners record timings without flaking.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.bench import (
    DEFAULT_WINDOWED_ARTIFACT,
    run_windowed_bench,
    write_artifact,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: same budget as the plain stream bench — the window runs on the merger
#: thread, so per-block latency must stay inside one 13 s block time
#: even with matching enabled (generation dominates, not detection).
STRICT_BLOCK_P95_MS = 2_000.0


def test_bench_windowed_recall_and_identity():
    report = run_windowed_bench(
        scale=0.01, seed=7, jobs_values=(1, 4), split_attacks=2, block_size=16
    )
    write_artifact(report, REPO_ROOT / DEFAULT_WINDOWED_ARTIFACT)

    # run_windowed_bench already raised on any identity or recall
    # violation; re-check the recorded numbers tell the same story.
    assert report["split_attacks"] == 2
    for run in report["runs"]:
        assert run["per_tx_detected"] == report["batch_detected"]
        assert run["split_recall_per_tx"] == 0.0
        assert run["split_recall_windowed"] == 1.0
        assert run["labelled_detections"] >= report["split_attacks"]
        assert run["windowed_detections"] >= run["labelled_detections"]

    if not STRICT:
        return  # timings recorded; budget enforced only under REPRO_BENCH_STRICT=1
    for run in report["runs"]:
        assert run["on_block_latency_ms_p95"] < STRICT_BLOCK_P95_MS, (
            f"jobs={run['jobs']}: windowed p95 block latency "
            f"{run['on_block_latency_ms_p95']}ms exceeds {STRICT_BLOCK_P95_MS}ms"
        )


def test_bench_windowed_single_run(benchmark):
    """Wall-clock of one windowed streaming pass (pytest-benchmark timing)."""
    from repro.engine.stream import StreamEngine
    from repro.workload.generator import WildScanConfig

    config = WildScanConfig(scale=0.005, seed=7, jobs=2, shards=4, split_attacks=1)

    def run():
        return StreamEngine(config, block_size=16, windowed=True).run()

    streamed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert streamed.total_transactions > 0
    assert streamed.windowed is not None
