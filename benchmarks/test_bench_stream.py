"""Streaming-pipeline benchmark: block latency, throughput, identity.

Runs the streaming engine against the batch engine at a small scale,
writes the ``BENCH_stream.json`` artifact at the repo root and records
per-block latency percentiles. The hard latency budget only arms with
``REPRO_BENCH_STRICT=1``, like the detection-latency benches — shared CI
runners report timings without flaking the suite.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.bench import DEFAULT_STREAM_ARTIFACT, run_stream_bench, write_artifact

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: a 16-tx block must clear the pipeline well inside one 13 s block time;
#: the budget is generous because block latency includes workload
#: *generation*, not just detection.
STRICT_BLOCK_P95_MS = 2_000.0


def test_bench_stream_throughput_and_identity():
    report = run_stream_bench(
        scale=0.01, seed=7, jobs_values=(1, 4), block_size=16
    )
    write_artifact(report, REPO_ROOT / DEFAULT_STREAM_ARTIFACT)

    by_jobs = {run["jobs"]: run for run in report["runs"]}
    assert by_jobs[1]["total_transactions"] == by_jobs[4]["total_transactions"]
    # run_stream_bench already raised on any stream-vs-batch divergence;
    # double-check the recorded counts agree with the batch reference.
    assert all(run["detected"] == report["batch_detected"] for run in report["runs"])
    assert all(run["txs_per_s"] > 0 for run in report["runs"])
    assert all(run["blocks"] > 0 for run in report["runs"])

    if not STRICT:
        return  # timings recorded; budget enforced only under REPRO_BENCH_STRICT=1
    for run in report["runs"]:
        assert run["block_latency_ms_p95"] < STRICT_BLOCK_P95_MS, (
            f"jobs={run['jobs']}: p95 block latency "
            f"{run['block_latency_ms_p95']}ms exceeds {STRICT_BLOCK_P95_MS}ms"
        )


def test_bench_stream_single_run(benchmark):
    """Wall-clock of one streaming pass at jobs=2 (pytest-benchmark timing)."""
    from repro.engine.stream import StreamEngine
    from repro.workload.generator import WildScanConfig

    config = WildScanConfig(scale=0.005, seed=7, jobs=2, shards=4)

    def run():
        return StreamEngine(config, block_size=16).run()

    streamed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert streamed.total_transactions > 0
    assert streamed.max_queue_depth <= streamed.queue_depth
