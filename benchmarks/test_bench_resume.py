"""Run-ledger resume benchmark: shards skipped, wall-clock, identity.

Times a cold journaled scan against resuming an interrupted ledger and a
no-op resume of a complete one, writing ``BENCH_resume.json`` at the
repo root. The identity-vs-cold assertion is always on — every resumed
merge must match the uninterrupted run bit for bit — while the
wall-clock budget only arms with ``REPRO_BENCH_STRICT=1``, like the
other timing benches.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.bench import (
    DEFAULT_RESUME_ARTIFACT,
    run_resume_bench,
    write_artifact,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: resuming after half the shards skips half the work; with journal
#: decode overhead the resumed run must still land under this fraction
#: of the cold wall-clock when the strict budget is armed.
STRICT_MAX_RESUMED_FRACTION = 0.9

SHARDS = 8
INTERRUPT_AFTER = 4


def test_bench_resume_counters_and_identity():
    report = run_resume_bench(
        scale=0.01, seed=7, shards=SHARDS, interrupt_after=INTERRUPT_AFTER
    )
    write_artifact(report, REPO_ROOT / DEFAULT_RESUME_ARTIFACT)

    # run_resume_bench already raised on any resumed-vs-cold divergence;
    # double-check the recorded counts tell the same story.
    cold = report["cold_run"]
    assert cold["shards_resumed"] == 0
    assert cold["shards_recorded"] == SHARDS
    assert cold["total_transactions"] > 0

    resumed = report["resumed_run"]
    assert resumed["interrupted_after"] == INTERRUPT_AFTER
    assert resumed["shards_resumed"] == INTERRUPT_AFTER
    assert resumed["shards_recorded"] == SHARDS - INTERRUPT_AFTER
    assert resumed["detected"] == cold["detected"]

    noop = report["noop_resume"]
    assert noop["shards_resumed"] == SHARDS
    assert noop["shards_recorded"] == 0
    assert noop["detected"] == cold["detected"]

    if not STRICT:
        return  # timings recorded; budget enforced only under REPRO_BENCH_STRICT=1
    budget = cold["elapsed_s"] * STRICT_MAX_RESUMED_FRACTION
    assert resumed["elapsed_s"] < budget, (
        f"resumed run took {resumed['elapsed_s']}s, over the {budget:.2f}s "
        f"budget ({STRICT_MAX_RESUMED_FRACTION}x cold)"
    )
    assert noop["elapsed_s"] < budget, (
        f"no-op resume took {noop['elapsed_s']}s, over the {budget:.2f}s "
        f"budget ({STRICT_MAX_RESUMED_FRACTION}x cold)"
    )


def test_bench_resume_single_run(benchmark):
    """Wall-clock of one resumed scan (pytest-benchmark timing)."""
    import tempfile

    from repro.engine.plan import build_schedule, shard_schedule
    from repro.engine.scan import ScanEngine, run_shard
    from repro.runtime import RunLedger
    from repro.workload.generator import WildScanConfig

    config = WildScanConfig(scale=0.005, seed=7, shards=4)
    parts = shard_schedule(build_schedule(config.scale, config.seed), 4)

    with tempfile.TemporaryDirectory(prefix="repro-resume-bench-") as tmp:
        path = Path(tmp) / "run.ledger"
        seeded = RunLedger.create(path, config, 4)
        for index in (0, 1):
            seeded.record(run_shard((config, index, 4, parts[index])))
        seeded.close()

        def run():
            return ScanEngine(config, ledger=path).run()

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        assert result.total_transactions > 0
