"""Tiny-scale wild-scan bench smoke: regenerate ``BENCH_wildscan.json``.

Runs in a few seconds, so it doubles as the determinism check for the
sharded engine (it raises if ``jobs`` changes any detection)::

    PYTHONPATH=src python benchmarks/run_smoke.py
    PYTHONPATH=src python benchmarks/run_smoke.py --scale 0.02 --repeats 3

``--stream`` benches the streaming pipeline instead (and asserts its
batch-identity contract), regenerating ``BENCH_stream.json``::

    PYTHONPATH=src python benchmarks/run_smoke.py --stream

``--windowed`` benches cross-transaction windowed detection
(``BENCH_windowed.json``): a schedule carrying labelled split attacks is
streamed with the window off and on — per-transaction identity vs. the
batch engine always asserted both ways, the split rounds must be missed
per-tx and fully recovered by the windowed matcher::

    PYTHONPATH=src python benchmarks/run_smoke.py --windowed

``--cluster`` benches the distributed scan (coordinator + local workers,
identity-vs-batch always on, plus a killed-worker fault run that must
requeue and still merge identically), regenerating ``BENCH_cluster.json``::

    PYTHONPATH=src python benchmarks/run_smoke.py --cluster

``--elastic`` extends the cluster bench with an autoscaled run: scale
from zero to two workers against queue depth, kill one mid-shard, and
re-admit it on probation — identity still asserted, scaling counters
recorded under ``elastic_run``::

    PYTHONPATH=src python benchmarks/run_smoke.py --elastic

``--resume`` benches the durable run ledger (cold journaled scan vs.
resuming an interrupted one vs. a no-op resume of a complete journal,
identity always asserted), regenerating ``BENCH_resume.json``::

    PYTHONPATH=src python benchmarks/run_smoke.py --resume

``--service`` benches the resident scan service (one in-process server,
clients over TCP): cold vs. warm submit-to-result latency (the warm run
must hit the snapshot cache), queue wait under a concurrent burst, and
duplicate coalescing — identity vs. the standalone engine always
asserted — regenerating ``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/run_smoke.py --service

``--fullscale`` runs the end-to-end full-scale bench (sequential vs.
parallel vs. pre-screen-off vs. snapshot-warm-start, identity always
asserted via the wire encoding), regenerating ``BENCH_fullscale.json``
and ``PROFILE_wildscan.json``. The default ``--scale 1.0`` takes
minutes; pass a smaller scale for a quick pass::

    PYTHONPATH=src python benchmarks/run_smoke.py --fullscale
    PYTHONPATH=src python benchmarks/run_smoke.py --fullscale --scale 0.05

``--robustness`` runs the adversarial-robustness bench
(``BENCH_robustness.json``): the FlashSyn-style mutation sweep over one
representative attack per pattern family, scored as per-family ×
per-mutation recall — unmutated attacks must hit 1.0 recall per family,
every documented evasion cell must hit 0.0, and two sweeps must score
identically::

    PYTHONPATH=src python benchmarks/run_smoke.py --robustness

``--failover`` runs the survivability bench (SIGKILL the forked primary
coordinator mid-scan, hot standby adopts the journal, multi-address
workers reconnect, identity always asserted; plus compacted-vs-
uncompacted ledger open timings), regenerating ``BENCH_failover.json``::

    PYTHONPATH=src python benchmarks/run_smoke.py --failover
    PYTHONPATH=src python benchmarks/run_smoke.py --failover --autoscale

or via ``make bench-smoke`` / ``make stream-smoke`` / ``make
windowed-smoke`` / ``make cluster-smoke`` / ``make elastic-smoke`` /
``make resume-smoke`` / ``make service-smoke`` / ``make
fullscale-smoke`` / ``make failover-smoke`` / ``make
robustness-smoke`` / ``make profile``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.bench import (
    DEFAULT_ARTIFACT,
    DEFAULT_CLUSTER_ARTIFACT,
    DEFAULT_FAILOVER_ARTIFACT,
    DEFAULT_FULLSCALE_ARTIFACT,
    DEFAULT_RESUME_ARTIFACT,
    DEFAULT_ROBUSTNESS_ARTIFACT,
    DEFAULT_SERVICE_ARTIFACT,
    DEFAULT_STREAM_ARTIFACT,
    DEFAULT_WINDOWED_ARTIFACT,
    run_cluster_bench,
    run_failover_bench,
    run_fullscale_bench,
    run_resume_bench,
    run_robustness_bench,
    run_service_bench,
    run_stream_bench,
    run_wildscan_bench,
    run_windowed_bench,
    write_artifact,
)
from repro.runtime.profile import DEFAULT_PROFILE_ARTIFACT


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=None,
                        help="population scale (1.0 = the paper's 272,984 txs; "
                        "default 0.01, or 1.0 with --fullscale)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, nargs="+", default=None,
                        help="jobs values to time (default: 1 4, or "
                        "1 <cpu_count> with --fullscale)")
    parser.add_argument("--shards", type=int, default=None,
                        help="pin the shard count (default: automatic)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="repetitions per jobs value (best is kept)")
    parser.add_argument("--stream", action="store_true",
                        help="bench the streaming pipeline (BENCH_stream.json) "
                        "instead of the batch engine")
    parser.add_argument("--windowed", action="store_true",
                        help="bench cross-transaction windowed detection "
                        "(BENCH_windowed.json): split attacks missed per-tx, "
                        "recovered by the sliding-window matcher; per-tx "
                        "identity vs. the batch engine asserted with the "
                        "window off and on")
    parser.add_argument("--split-attacks", type=int, default=2,
                        help="windowed only: labelled split-attack groups "
                        "appended to the schedule (default 2)")
    parser.add_argument("--window-blocks", type=int, default=None,
                        help="windowed only: sliding window size in emitted "
                        "blocks (default: the engine's)")
    parser.add_argument("--cluster", action="store_true",
                        help="bench the distributed scan (BENCH_cluster.json): "
                        "1 vs 2 local workers plus a killed-worker fault run")
    parser.add_argument("--elastic", action="store_true",
                        help="cluster bench plus an autoscaled run (scale from "
                        "zero, kill, probation re-admission); implies --cluster")
    parser.add_argument("--resume", action="store_true",
                        help="bench the durable run ledger (BENCH_resume.json): "
                        "cold journaled scan vs. interrupted-and-resumed vs. "
                        "no-op resume of a complete journal")
    parser.add_argument("--interrupt-after", type=int, default=None,
                        help="resume only: shards pre-recorded before the "
                        "simulated kill (default: half the shard count)")
    parser.add_argument("--failover", action="store_true",
                        help="bench coordinator failover (BENCH_failover.json): "
                        "SIGKILL the forked primary mid-scan, standby adopts "
                        "the ledger, workers fail over; plus compacted-vs-"
                        "uncompacted ledger open timings")
    parser.add_argument("--autoscale", action="store_true",
                        help="failover only: run an ElasticPool on the adopted "
                        "coordinator as well")
    parser.add_argument("--robustness", action="store_true",
                        help="bench adversarial robustness "
                        "(BENCH_robustness.json): mutation sweep per attack "
                        "family with per-family recall/precision; baseline "
                        "recall 1.0 and documented evasions 0.0 asserted")
    parser.add_argument("--instances", type=int, default=2,
                        help="robustness only: attack instances per "
                        "(family, mutation) cell (default 2)")
    parser.add_argument("--benign", type=int, default=24,
                        help="robustness only: benign flash txs per family "
                        "in the precision pool (default 24)")
    parser.add_argument("--service", action="store_true",
                        help="bench the resident scan service "
                        "(BENCH_service.json): cold vs. warm submit-to-result "
                        "latency over TCP, queue wait under a concurrent "
                        "burst, duplicate coalescing; identity vs. the "
                        "standalone engine always asserted")
    parser.add_argument("--burst", type=int, default=4,
                        help="service only: concurrent distinct submissions "
                        "in the burst phase (default 4)")
    parser.add_argument("--executors", type=int, default=2,
                        help="service only: concurrent scan executors "
                        "(default 2)")
    parser.add_argument("--fullscale", action="store_true",
                        help="bench the end-to-end scan (BENCH_fullscale.json "
                        "+ PROFILE_wildscan.json): sequential vs. parallel "
                        "vs. pre-screen-off vs. warm-start, identity always "
                        "asserted; defaults to --scale 1.0")
    parser.add_argument("--profile-out", type=Path, default=None,
                        help="fullscale only: stage-profile artifact path "
                        "(default PROFILE_wildscan.json)")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2],
                        help="cluster only: worker counts to time (default: 1 2)")
    parser.add_argument("--queue-depth", type=int, default=None,
                        help="stream only: per-worker bounded queue size")
    parser.add_argument("--block-size", type=int, default=None,
                        help="stream only: transactions per simulated block")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    if args.elastic:
        args.cluster = True
    if sum(
        (args.stream, args.windowed, args.cluster, args.resume, args.fullscale,
         args.failover, args.service, args.robustness)
    ) > 1:
        parser.error(
            "--stream, --windowed, --cluster/--elastic, --resume, "
            "--fullscale, --failover, --service and --robustness are "
            "mutually exclusive"
        )
    if args.scale is None:
        args.scale = 1.0 if args.fullscale else (0.02 if args.service else 0.01)
    jobs_values = tuple(args.jobs) if args.jobs is not None else (1, 4)
    if args.fullscale:
        report = run_fullscale_bench(
            scale=args.scale,
            seed=args.seed,
            jobs_values=tuple(args.jobs) if args.jobs is not None else None,
            shards=args.shards,
            profile_path=args.profile_out or repo_root / DEFAULT_PROFILE_ARTIFACT,
        )
        output = args.output or repo_root / DEFAULT_FULLSCALE_ARTIFACT
    elif args.failover:
        report = run_failover_bench(
            scale=args.scale,
            seed=args.seed,
            shards=args.shards if args.shards is not None else 8,
            workers=max(args.workers) if args.workers else 2,
            autoscale=args.autoscale,
        )
        output = args.output or repo_root / DEFAULT_FAILOVER_ARTIFACT
    elif args.robustness:
        report = run_robustness_bench(
            seed=args.seed,
            instances=args.instances,
            benign=args.benign,
        )
        output = args.output or repo_root / DEFAULT_ROBUSTNESS_ARTIFACT
    elif args.service:
        report = run_service_bench(
            scale=args.scale,
            seed=args.seed,
            shards=args.shards if args.shards is not None else 4,
            executors=args.executors,
            burst=args.burst,
        )
        output = args.output or repo_root / DEFAULT_SERVICE_ARTIFACT
    elif args.resume:
        report = run_resume_bench(
            scale=args.scale,
            seed=args.seed,
            shards=args.shards if args.shards is not None else 8,
            interrupt_after=args.interrupt_after,
        )
        output = args.output or repo_root / DEFAULT_RESUME_ARTIFACT
    elif args.cluster:
        report = run_cluster_bench(
            scale=args.scale,
            seed=args.seed,
            workers_values=tuple(args.workers),
            shards=args.shards,
            elastic=args.elastic,
        )
        output = args.output or repo_root / DEFAULT_CLUSTER_ARTIFACT
    elif args.windowed:
        report = run_windowed_bench(
            scale=args.scale,
            seed=args.seed,
            jobs_values=jobs_values,
            shards=args.shards,
            split_attacks=args.split_attacks,
            window_blocks=args.window_blocks,
            queue_depth=args.queue_depth,
            block_size=args.block_size,
        )
        output = args.output or repo_root / DEFAULT_WINDOWED_ARTIFACT
    elif args.stream:
        report = run_stream_bench(
            scale=args.scale,
            seed=args.seed,
            jobs_values=jobs_values,
            shards=args.shards,
            queue_depth=args.queue_depth,
            block_size=args.block_size,
        )
        output = args.output or repo_root / DEFAULT_STREAM_ARTIFACT
    else:
        report = run_wildscan_bench(
            scale=args.scale,
            seed=args.seed,
            jobs_values=jobs_values,
            shards=args.shards,
            repeats=args.repeats,
        )
        output = args.output or repo_root / DEFAULT_ARTIFACT
    path = write_artifact(report, output)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
