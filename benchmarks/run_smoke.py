"""Tiny-scale wild-scan bench smoke: regenerate ``BENCH_wildscan.json``.

Runs in a few seconds, so it doubles as the determinism check for the
sharded engine (it raises if ``jobs`` changes any detection)::

    PYTHONPATH=src python benchmarks/run_smoke.py
    PYTHONPATH=src python benchmarks/run_smoke.py --scale 0.02 --repeats 3

or via ``make bench-smoke``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.bench import DEFAULT_ARTIFACT, run_wildscan_bench, write_artifact


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01,
                        help="population scale (1.0 = the paper's 272,984 txs)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 4],
                        help="jobs values to time (default: 1 4)")
    parser.add_argument("--shards", type=int, default=None,
                        help="pin the shard count (default: automatic)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="repetitions per jobs value (best is kept)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / DEFAULT_ARTIFACT)
    args = parser.parse_args(argv)

    report = run_wildscan_bench(
        scale=args.scale,
        seed=args.seed,
        jobs_values=tuple(args.jobs),
        shards=args.shards,
        repeats=args.repeats,
    )
    path = write_artifact(report, args.output)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
