"""Resident scan-service benchmark: latency, warm cache, coalescing.

Runs the whole service stack — in-process server, clients over real TCP
sockets — and writes ``BENCH_service.json`` at the repo root. Identity
assertions are always on (``run_service_bench`` raises if the service's
paged-out detections diverge from a standalone engine run, or if a
paged fetch differs from the unpaged one); the wall-clock budgets only
arm with ``REPRO_BENCH_STRICT=1``, like the other timing benches.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.bench import (
    DEFAULT_SERVICE_ARTIFACT,
    run_service_bench,
    write_artifact,
)
from repro.engine.scan import clear_context_snapshots

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: a warm submit skips every world rebuild, but it still pays scan,
#: journal and fetch costs — under the strict budget it must land at or
#: below the cold wall-clock (with headroom for scheduler noise).
STRICT_MAX_WARM_FRACTION = 1.0

SHARDS = 4
BURST = 4


def test_bench_service_latency_and_identity():
    clear_context_snapshots()
    report = run_service_bench(
        scale=0.02, seed=7, shards=SHARDS, executors=2, burst=BURST
    )
    write_artifact(report, REPO_ROOT / DEFAULT_SERVICE_ARTIFACT)

    # run_service_bench already raised on any service-vs-standalone
    # divergence; double-check the recorded counters tell the story.
    cold = report["cold_run"]
    assert cold["warm_hits"] == 0
    assert cold["warm_misses"] == SHARDS
    assert cold["detected"] > 0

    warm = report["warm_run"]
    assert warm["warm_hits"] == SHARDS
    assert warm["warm_misses"] == 0

    burst = report["burst"]
    assert burst["runs"] == BURST
    assert len(burst["queue_wait_s"]) == BURST
    assert burst["coalesced_duplicates"] >= 1
    assert all(wait >= 0 for wait in burst["queue_wait_s"])

    if not STRICT:
        return  # timings recorded; budget enforced only under REPRO_BENCH_STRICT=1
    budget = cold["submit_to_result_s"] * STRICT_MAX_WARM_FRACTION
    assert warm["submit_to_result_s"] <= budget, (
        f"warm submit took {warm['submit_to_result_s']}s, over the "
        f"{budget:.2f}s budget ({STRICT_MAX_WARM_FRACTION}x cold) — the "
        f"snapshot cache is not saving the world rebuilds"
    )


def test_bench_service_warm_submit(benchmark):
    """Wall-clock of one warm submit-to-result round trip (pytest-benchmark)."""
    import tempfile

    from repro.service import ScanService, ServiceClient, ServiceServer
    from repro.workload.generator import WildScanConfig

    clear_context_snapshots()
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        with ScanService(tmp, executors=1, warm_ttl=None) as service:
            with ServiceServer(service) as server:
                with ServiceClient(server.address) as client:
                    # populate the warm tier, then time a different seed.
                    first = client.submit(
                        WildScanConfig(scale=0.005, seed=7, shards=2)
                    )
                    client.wait(first["run_id"], timeout=300)

                    seeds = iter(range(100, 200))

                    def run():
                        cfg = WildScanConfig(
                            scale=0.005, seed=next(seeds), shards=2
                        )
                        view = client.submit(cfg)
                        done = client.wait(view["run_id"], timeout=300)
                        assert done["state"] == "completed"
                        return done

                    done = benchmark.pedantic(run, rounds=1, iterations=1)
                    assert done["warm_hits"] == 2
