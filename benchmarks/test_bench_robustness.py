"""Adversarial-robustness benchmark: mutation sweep recall contracts.

Runs the per-family × per-mutation sweep twice via
``run_robustness_bench`` (which itself raises on any determinism,
baseline-recall, documented-evasion or revert violation), writes the
``BENCH_robustness.json`` artifact at the repo root, and re-checks the
recorded numbers tell the same story. The recall/precision assertions
are always on — they are contracts, not timings — and only the
wall-clock budget waits for ``REPRO_BENCH_STRICT=1``, like the other
benches, so shared CI runners record timings without flaking.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.bench import (
    DEFAULT_ROBUSTNESS_ARTIFACT,
    run_robustness_bench,
    write_artifact,
)
from repro.workload.mutate import MUTATIONS

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: budget for the whole double sweep (two full sweeps, six families,
#: eight mutations, two instances per cell, plus the benign pools) —
#: a sweep takes well under a second on a laptop; 30 s is the flake
#: ceiling, not a throughput claim.
STRICT_DOUBLE_SWEEP_S = 30.0


def test_bench_robustness_recall_matrix():
    report = run_robustness_bench(seed=7, instances=2, benign=24)
    write_artifact(report, REPO_ROOT / DEFAULT_ROBUSTNESS_ARTIFACT)

    # run_robustness_bench already raised on any contract violation;
    # re-check the recorded matrix says the same thing.
    families = report["families"]
    assert families == ["KRP", "SBS", "MBS", "SANDWICH", "MINT", "DONATION"]

    # unmutated attacks: every family's own pattern fires on every
    # instance — the always-on acceptance contract.
    for family in families:
        cell = report["cells"][f"{family}/baseline"]
        assert cell["recall"] == 1.0, f"{family}/baseline: {cell}"
        assert cell["reverted"] == 0

    # every documented evasion cell evaded; nothing reverted anywhere.
    for mutation in MUTATIONS:
        for family in mutation.expect_evades:
            cell = report["cells"][f"{family}/{mutation.key}"]
            assert cell["recall"] == 0.0, f"{family}/{mutation.key}: {cell}"
    assert all(cell["reverted"] == 0 for cell in report["cells"].values())

    # each of the paper's patterns has at least one evading mutation —
    # the matrix demonstrates a real attack surface, not a vacuous one.
    evading = report["evading_cells"]
    for family in ("KRP", "SBS", "MBS"):
        assert any(key.startswith(f"{family}/") for key in evading), (
            f"no documented evasion for {family}: {evading}"
        )

    # precision: nothing benign (or cross-family) flagged in this sweep.
    assert report["benign_total"] > 0
    for family in families:
        assert report["precision"][family] == 1.0, report["precision"]
    assert not any(report["benign_flagged"].values()), report["benign_flagged"]

    if not STRICT:
        return  # timings recorded; budget enforced only under REPRO_BENCH_STRICT=1
    total = report["elapsed_s"] + report["repeat_elapsed_s"]
    assert total < STRICT_DOUBLE_SWEEP_S, (
        f"double sweep took {total}s, budget {STRICT_DOUBLE_SWEEP_S}s"
    )
