"""Substrate micro-benchmarks: the building blocks under the detector."""

from __future__ import annotations

from repro.chain import Chain, ETH
from repro.leishen.simplify import TransferSimplifier
from repro.leishen.tagging import AccountTagger
from repro.leishen.trades import TradeIdentifier
from repro.tokens import TokenRegistry
from repro.world import DeFiWorld


def test_bench_erc20_transfer(benchmark):
    chain = Chain()
    registry = TokenRegistry()
    deployer = chain.create_eoa("d")
    token = registry.deploy(chain, deployer, "TKN")
    alice = chain.create_eoa("alice")
    bob = chain.create_eoa("bob")
    token.mint(alice, 10**30)

    def run():
        chain.transact(alice, token.address, "transfer", bob, 1)

    benchmark(run)


def test_bench_amm_swap(benchmark):
    world = DeFiWorld()
    token = world.new_token("TKN")
    pair = world.dex_pair(token, world.weth, 10**9 * token.unit, 10**6 * ETH)
    trader = world.create_attacker("trader")
    token.mint(trader, 10**28)
    world.approve(trader, token, world.dex_router().address)
    router = world.dex_router()

    def run():
        chain = world.chain
        chain.transact(
            trader, router.address, "swapExactTokensForTokens",
            10**18, 0, (pair.address,), token.address,
        )

    benchmark(run)


def test_bench_tagging(benchmark, bzx1_outcome):
    """Account tagging over one attack's transfer set (cold cache)."""
    world = bzx1_outcome.world
    transfers = bzx1_outcome.trace.transfers

    def run():
        tagger = AccountTagger(world.chain)
        return tagger.tag_transfers(transfers)

    tagged = benchmark(run)
    assert len(tagged) == len(transfers)


def test_bench_simplify_and_trades(benchmark, bzx1_outcome):
    world = bzx1_outcome.world
    tagger = AccountTagger(world.chain)
    tagged = tagger.tag_transfers(bzx1_outcome.trace.transfers)
    simplifier = TransferSimplifier(world.simplifier_config())
    identifier = TradeIdentifier()

    def run():
        return identifier.identify(simplifier.simplify(tagged))

    trades = benchmark(run)
    assert len(trades) == 3  # the bZx-1 SBS triple
