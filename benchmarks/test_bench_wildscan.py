"""Wild-scan throughput benchmark: sequential vs. sharded engine.

Measures end-to-end wild-scan txs/sec (generate + execute + detect) at
``jobs=1`` and ``jobs=4`` and writes the ``BENCH_wildscan.json``
artifact at the repo root. The ≥2x speedup assertion only applies on
machines with at least 4 CPUs — on smaller runners the numbers are still
recorded, but process-pool overhead makes a speedup impossible.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.bench import run_wildscan_bench, write_artifact

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_bench_wildscan_throughput():
    report = run_wildscan_bench(scale=0.01, seed=7, jobs_values=(1, 4))
    write_artifact(report, REPO_ROOT / "BENCH_wildscan.json")

    by_jobs = {run["jobs"]: run for run in report["runs"]}
    assert by_jobs[1]["total_transactions"] == by_jobs[4]["total_transactions"]
    assert by_jobs[1]["detected"] == by_jobs[4]["detected"]
    assert all(run["txs_per_s"] > 0 for run in report["runs"])

    if (os.cpu_count() or 1) >= 4:
        speedup = report["speedup_best_parallel_vs_sequential"]
        assert speedup is not None and speedup >= 2.0, (
            f"expected >=2x speedup at jobs=4 on a {os.cpu_count()}-core "
            f"runner, measured {speedup}x"
        )


def test_bench_wildscan_sequential(benchmark):
    """Baseline txs/sec for the classic single-process scan."""
    from repro.workload.generator import WildScanConfig, WildScanner

    result = benchmark(WildScanner(WildScanConfig(scale=0.005, seed=7, jobs=1)).run)
    assert result.total_transactions > 0
