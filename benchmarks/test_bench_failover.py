"""Coordinator-failover survivability bench: adoption, identity, timings.

Kills a forked primary coordinator mid-scan (SIGKILL, no cleanup), lets
the hot standby adopt the journal and the multi-address workers fail
over, and writes ``BENCH_failover.json`` at the repo root — including
compacted-vs-uncompacted ledger open timings. The identity assertions
are always on (``run_failover_bench`` raises on any divergence); the
recovery-time budget only arms with ``REPRO_BENCH_STRICT=1``, like the
other timing benches.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.bench import (
    DEFAULT_FAILOVER_ARTIFACT,
    run_failover_bench,
    write_artifact,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: with the bench's probe settings (0.05s interval, 3 strikes) death
#: detection is sub-second; the full recovery — detect, adopt (journal
#: replay), re-serve the remaining shards of a scale-0.01 scan — must
#: land under this many seconds when the strict budget is armed.
STRICT_MAX_RECOVERY_S = 60.0

SHARDS = 8


def test_bench_failover_identity_and_counters():
    report = run_failover_bench(scale=0.01, seed=7, shards=SHARDS)
    write_artifact(report, REPO_ROOT / DEFAULT_FAILOVER_ARTIFACT)

    # run_failover_bench already raised on any divergence; double-check
    # the recorded counters tell the same story.
    failover = report["failover_run"]
    assert failover["identical"] is True
    assert failover["resumed_shards"] >= 1
    assert failover["journaled_at_kill"] >= 1
    assert failover["resumed_shards"] >= failover["journaled_at_kill"]
    assert failover["recovery_s"] >= failover["detect_s"]

    # compaction: every shard count merged identically, and the
    # compacted file is always the smaller replay (1 record vs N).
    assert len(report["compaction_runs"]) >= 2
    for run in report["compaction_runs"]:
        assert run["identical"] is True
        assert run["compacted_records"] < run["uncompacted_records"]
    # open() cost is sublinear in journaled-shard count: the compacted
    # open at the LARGEST shard count must undercut the uncompacted open
    # at that same count (record count no longer scales with shards).
    largest = max(report["compaction_runs"], key=lambda run: run["shards"])
    assert largest["compacted_open_ms"] < largest["uncompacted_open_ms"], (
        f"compacted open ({largest['compacted_open_ms']}ms) did not beat "
        f"uncompacted ({largest['uncompacted_open_ms']}ms) at "
        f"{largest['shards']} shards"
    )

    if not STRICT:
        return  # timings recorded; budget enforced only under REPRO_BENCH_STRICT=1
    assert failover["recovery_s"] < STRICT_MAX_RECOVERY_S, (
        f"recovery took {failover['recovery_s']}s, over the "
        f"{STRICT_MAX_RECOVERY_S}s budget"
    )


def test_bench_failover_single_adoption(benchmark):
    """Wall-clock of one standby adoption (pytest-benchmark timing):
    pre-seeded journal, never-alive primary, local fallback finishes."""
    import socket
    import tempfile

    from repro.cluster import StandbyCoordinator
    from repro.engine.plan import build_schedule, shard_schedule
    from repro.engine.scan import run_shard
    from repro.runtime import RunLedger
    from repro.workload.generator import WildScanConfig

    config = WildScanConfig(scale=0.005, seed=7, shards=4)
    parts = shard_schedule(build_schedule(config.scale, config.seed), 4)

    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    dead_primary = probe.getsockname()[:2]
    probe.close()

    with tempfile.TemporaryDirectory(prefix="repro-failover-bench-") as tmp:
        path = Path(tmp) / "run.ledger"
        seeded = RunLedger.create(path, config, 4)
        for index in (0, 1):
            seeded.record(run_shard((config, index, 4, parts[index])))
        seeded.close()

        def adopt():
            standby = StandbyCoordinator(
                config,
                primary=dead_primary,
                ledger=path,
                probe_interval=0.02,
                probe_failures=1,
                coordinator_options={"local_fallback": True},
            )
            standby.start()
            assert standby.wait_for_primary_death(timeout=30.0)
            try:
                return standby.adopt_and_run(timeout=1.0)
            finally:
                standby.shutdown()

        result = benchmark.pedantic(adopt, rounds=1, iterations=1)
        assert result.total_transactions > 0
