"""Benchmarks regenerating each paper table/figure.

Each bench times the regeneration of one experiment and asserts the
result keeps the paper's shape (who wins, what precision band).
"""

from __future__ import annotations

from repro.baselines import DeFiRanger, ExplorerLeiShen
from repro.experiments import fig1, table1
from repro.study.catalog import FLP_ATTACKS
from repro.study.scenarios import SCENARIO_BUILDERS
from repro.workload.generator import WildScanConfig, WildScanner


def test_bench_fig1_series(benchmark):
    points = benchmark(fig1.run)
    totals = {p: sum(pt.counts[p] for pt in points) for p in points[0].counts}
    assert totals == {"Uniswap": 208_342, "dYdX": 41_741, "AAVE": 22_959}


def test_bench_table1_single_scenario(benchmark):
    """Table I cost per attack: replay + measure one scenario (Harvest)."""
    from repro.study.analysis import analyze_scenario

    def run():
        outcome = SCENARIO_BUILDERS["harvest"]()
        return analyze_scenario(outcome)

    row = benchmark.pedantic(run, rounds=3, iterations=1)
    assert 0.1 < row.max_volatility_pct < 5.0  # paper: 0.5%


def test_bench_table4_three_detectors(benchmark, bzx1_outcome):
    """Table IV cost per attack: three detectors on one replay."""
    world = bzx1_outcome.world
    leishen = world.detector()
    ranger = DeFiRanger(world.chain)
    explorer = ExplorerLeiShen(world.chain)

    def run():
        return (
            leishen.detect(bzx1_outcome.trace),
            ranger.detect(bzx1_outcome.trace),
            explorer.detect(bzx1_outcome.trace),
        )

    ls, dr, ex = benchmark(run)
    assert (ls, dr, ex) == (True, False, False)


def test_bench_table5_wild_scan(benchmark):
    """Table V: generate + scan a 0.5% population end to end."""

    def run():
        return WildScanner(WildScanConfig(scale=0.005, seed=11)).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.true_positives > 0
    krp = result.rows["KRP"]
    assert krp.fp == 0  # KRP precision is 100% at every scale


def test_bench_table6_7_fig8_tabulation(benchmark, wild_result_small):
    """Post-scan tabulation cost for Tables VI/VII and Fig 8."""

    def run():
        return (
            wild_result_small.table6(),
            wild_result_small.table7(),
            wild_result_small.fig8_months(),
        )

    table6_rows, table7_stats, fig8_months = benchmark(run)
    assert table7_stats["total_profit_usd"] > 0
    assert len(table6_rows) >= 1


def test_bench_all_known_scenarios_replay(benchmark):
    """Full empirical-study replay cost (22 scenario builds)."""

    def run():
        return [SCENARIO_BUILDERS[m.key]() for m in FLP_ATTACKS]

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(outcomes) == 22
    assert all(outcome.trace.success for outcome in outcomes)
