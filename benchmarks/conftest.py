"""Shared fixtures for the benchmark harness.

Heavy inputs (scenario replays, wild-scan populations) are built once per
session so the benchmark loop times only the piece under measurement.
"""

from __future__ import annotations

import random

import pytest

from repro.study.scenarios import SCENARIO_BUILDERS
from repro.workload.generator import WildScanConfig, WildScanner


@pytest.fixture(scope="session")
def bzx1_outcome():
    return SCENARIO_BUILDERS["bzx1"]()


@pytest.fixture(scope="session")
def harvest_outcome():
    return SCENARIO_BUILDERS["harvest"]()


@pytest.fixture(scope="session")
def balancer_outcome():
    return SCENARIO_BUILDERS["balancer"]()


@pytest.fixture(scope="session")
def wild_result_small():
    """A small, seeded wild scan shared by the table5/6/7/fig8 benches."""
    return WildScanner(WildScanConfig(scale=0.01, seed=7)).run()


@pytest.fixture(scope="session")
def rng():
    return random.Random(1234)
