"""Distributed-scan benchmark: wall-clock, requeue counters, identity.

Runs the cluster (coordinator + local workers) against the batch engine
at a small scale and writes the ``BENCH_cluster.json`` artifact at the
repo root. The identity-vs-batch assertion is always on — including for
the killed-worker fault run — while the wall-clock budget only arms with
``REPRO_BENCH_STRICT=1``, like the other timing benches.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.engine.bench import (
    DEFAULT_CLUSTER_ARTIFACT,
    run_cluster_bench,
    write_artifact,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: the cluster adds worker spawn + wire overhead on top of the scan; at
#: smoke scale the whole coordinated run must still land well inside
#: this multiple of the single-process batch wall-clock.
STRICT_MAX_OVERHEAD = 5.0


def test_bench_cluster_throughput_identity_and_faults():
    report = run_cluster_bench(
        scale=0.01, seed=7, workers_values=(1, 2), elastic=True
    )
    write_artifact(report, REPO_ROOT / DEFAULT_CLUSTER_ARTIFACT)

    # run_cluster_bench already raised on any cluster-vs-batch divergence;
    # double-check the recorded counts agree with the batch reference.
    assert all(run["detected"] == report["batch_detected"] for run in report["runs"])
    assert all(run["txs_per_s"] > 0 for run in report["runs"])
    by_workers = {run["workers"]: run for run in report["runs"]}
    assert by_workers[1]["total_transactions"] == by_workers[2]["total_transactions"]

    # the fault run killed a worker, saw the loss, requeued, and matched
    fault = report["fault_run"]
    assert fault["killed_workers"] == 1
    assert fault["worker_losses"] >= 1
    assert fault["requeues"] >= 1
    assert fault["detected"] == report["batch_detected"]

    # the elastic run scaled from zero, survived the kill (immediate
    # exclusion at one strike), and still matched the batch result; the
    # probation counters are timing-dependent and only recorded, not
    # asserted.
    elastic = report["elastic_run"]
    assert elastic["initial_workers"] == 0
    assert elastic["killed_workers"] == 1
    assert elastic["workers_spawned"] >= 2
    assert elastic["workers_excluded"] >= 1
    assert elastic["worker_losses"] >= 1
    assert elastic["detected"] == report["batch_detected"]

    if not STRICT:
        return  # timings recorded; budget enforced only under REPRO_BENCH_STRICT=1
    budget = report["batch_elapsed_s"] * STRICT_MAX_OVERHEAD
    for run in report["runs"]:
        assert run["elapsed_s"] < budget, (
            f"workers={run['workers']}: cluster run took {run['elapsed_s']}s, "
            f"over the {budget:.2f}s budget ({STRICT_MAX_OVERHEAD}x batch)"
        )


def test_bench_cluster_single_run(benchmark):
    """Wall-clock of one 2-worker cluster pass (pytest-benchmark timing)."""
    from repro.cluster import run_cluster_scan
    from repro.workload.generator import WildScanConfig

    config = WildScanConfig(scale=0.005, seed=7, shards=4)

    def run():
        return run_cluster_scan(config, workers=2)

    result, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total_transactions > 0
    assert stats.workers_seen == 2
