"""Perf benchmark (paper Sec. VI-A): per-transaction detection latency.

The paper reports a mean of 10 ms and a 75th percentile of 16 ms per
flash loan transaction on the authors' Go implementation; these benches
measure the same end-to-end ``LeiShen.analyze`` path.
"""

from __future__ import annotations

import os

#: the hard 10 ms / 16 ms asserts only run with ``REPRO_BENCH_STRICT=1``
#: so noisy shared CI runners report timings without flaking the suite.
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"


def test_bench_detect_bzx1(benchmark, bzx1_outcome):
    detector = bzx1_outcome.world.detector()
    detector.analyze(bzx1_outcome.trace)  # warm tag caches
    report = benchmark(detector.analyze, bzx1_outcome.trace)
    assert report is not None and report.is_attack


def test_bench_detect_harvest(benchmark, harvest_outcome):
    detector = harvest_outcome.world.detector()
    detector.analyze(harvest_outcome.trace)
    report = benchmark(detector.analyze, harvest_outcome.trace)
    assert report is not None and report.is_attack


def test_bench_detect_balancer_cold_tagger(benchmark, balancer_outcome):
    """Cold path: rebuild the tagger each round (first-tx latency)."""

    def run():
        detector = balancer_outcome.world.detector()
        return detector.analyze(balancer_outcome.trace)

    report = benchmark(run)
    assert report is not None and report.is_attack


def test_bench_meets_paper_latency_budget(benchmark, bzx1_outcome):
    """Mean analysis latency must stay within the paper's 10 ms budget."""
    detector = bzx1_outcome.world.detector()
    detector.analyze(bzx1_outcome.trace)
    benchmark(detector.analyze, bzx1_outcome.trace)
    if not STRICT:
        return  # timings recorded; budget enforced only under REPRO_BENCH_STRICT=1
    assert benchmark.stats["mean"] < 10e-3, "mean latency exceeds the paper's 10ms"
    assert benchmark.stats["max"] < 16e-3 or benchmark.stats["mean"] < 16e-3
