PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-smoke stream-smoke

## tier-1 test suite (what CI gates on)
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## full benchmark suite (pytest-benchmark timings + wild-scan throughput)
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

## tiny-scale wild-scan bench; regenerates BENCH_wildscan.json in seconds
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py

## tiny-scale streaming scan bench; regenerates BENCH_stream.json and
## asserts stream == batch detections (the identity contract)
stream-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --stream
