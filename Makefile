PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-smoke

## tier-1 test suite (what CI gates on)
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## full benchmark suite (pytest-benchmark timings + wild-scan throughput)
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

## tiny-scale wild-scan bench; regenerates BENCH_wildscan.json in seconds
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py
