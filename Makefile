PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-smoke stream-smoke windowed-smoke cluster-smoke elastic-smoke resume-smoke service-smoke failover-smoke fullscale-smoke robustness-smoke profile

## tier-1 test suite (what CI gates on); the windowed and robustness
## benches ride along because their recall/identity assertions are
## contracts, not timings
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q tests benchmarks/test_bench_windowed.py benchmarks/test_bench_robustness.py

## full benchmark suite (pytest-benchmark timings + wild-scan throughput)
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

## tiny-scale wild-scan bench; regenerates BENCH_wildscan.json in seconds
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py

## tiny-scale streaming scan bench; regenerates BENCH_stream.json and
## asserts stream == batch detections (the identity contract)
stream-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --stream

## cross-transaction windowed detection bench; regenerates
## BENCH_windowed.json — labelled split attacks are missed per-tx and
## recovered by the sliding-window matcher, per-tx identity vs. the
## batch engine asserted with the window off and on
windowed-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --windowed

## tiny-scale distributed scan bench; regenerates BENCH_cluster.json,
## asserts cluster == batch detections (1 and 2 workers) and that a
## killed worker is requeued without changing the merged result
cluster-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --cluster

## cluster-smoke plus an elastic autoscaling run: scale from zero to two
## workers against queue depth, kill one mid-shard, re-admit it on
## probation — identity still asserted, counters land in BENCH_cluster.json
elastic-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --elastic

## durable run-ledger bench; regenerates BENCH_resume.json, asserts a
## resumed run merges byte-identically to an uninterrupted one and
## records resumed-vs-cold wall-clock plus shards-skipped counters
resume-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --resume

## resident scan-service bench; regenerates BENCH_service.json — cold
## vs. warm submit-to-result latency over the TCP protocol (the warm
## run must hit the snapshot cache), queue wait under a concurrent
## burst, duplicate coalescing; identity vs. the standalone engine
## always asserted
service-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --service

## coordinator-failover survivability bench; regenerates
## BENCH_failover.json — SIGKILLs the forked primary mid-scan, the hot
## standby adopts the journal and multi-address workers reconnect
## (identity always asserted), plus compacted-vs-uncompacted ledger
## open timings
failover-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --failover

## end-to-end full-scale bench (sequential vs. parallel vs. pre-screen
## off vs. snapshot warm-start, identity always asserted); regenerates
## BENCH_fullscale.json and PROFILE_wildscan.json. Scale 1.0 takes
## minutes — override with e.g. `make fullscale-smoke SCALE=0.05`
SCALE ?= 1.0
fullscale-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --fullscale --scale $(SCALE)

## adversarial-robustness bench; regenerates BENCH_robustness.json —
## FlashSyn-style mutation sweep per attack family: unmutated attacks
## at 1.0 recall per family, every documented evasion cell at 0.0,
## two sweeps byte-identical
robustness-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --robustness

## per-stage profile of the batch wild scan at a moderate scale; prints
## the stage table and writes PROFILE_wildscan.json
profile:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.experiments.runner scan --scale 0.1 --profile
