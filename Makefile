PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-smoke stream-smoke cluster-smoke elastic-smoke resume-smoke

## tier-1 test suite (what CI gates on)
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## full benchmark suite (pytest-benchmark timings + wild-scan throughput)
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

## tiny-scale wild-scan bench; regenerates BENCH_wildscan.json in seconds
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py

## tiny-scale streaming scan bench; regenerates BENCH_stream.json and
## asserts stream == batch detections (the identity contract)
stream-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --stream

## tiny-scale distributed scan bench; regenerates BENCH_cluster.json,
## asserts cluster == batch detections (1 and 2 workers) and that a
## killed worker is requeued without changing the merged result
cluster-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --cluster

## cluster-smoke plus an elastic autoscaling run: scale from zero to two
## workers against queue depth, kill one mid-shard, re-admit it on
## probation — identity still asserted, counters land in BENCH_cluster.json
elastic-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --elastic

## durable run-ledger bench; regenerates BENCH_resume.json, asserts a
## resumed run merges byte-identically to an uninterrupted one and
## records resumed-vs-cold wall-clock plus shards-skipped counters
resume-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_smoke.py --resume
