"""Experiment CLI: regenerate every table and figure of the paper.

Usage::

    python -m repro.experiments.runner all
    python -m repro.experiments.runner table5 --scale 0.1
    leishen table4            # via the installed console script
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ablations, fig1, fig8, perf, table1, table4, table5, table6, table7

__all__ = ["main"]

_EXPERIMENTS = ("fig1", "table1", "table4", "table5", "table6", "table7", "fig8",
                "perf", "ablations")


def _run_one(name: str, scale: float) -> str:
    if name == "fig1":
        return fig1.render()
    if name == "table1":
        return table1.render()
    if name == "table4":
        return table4.render()
    if name == "table5":
        return table5.render(scale=scale)
    if name == "table6":
        return table6.render(scale=scale)
    if name == "table7":
        return table7.render(scale=scale)
    if name == "fig8":
        return fig8.render(scale=scale)
    if name == "perf":
        return perf.render()
    if name == "ablations":
        return ablations.render()
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="leishen",
        description="Regenerate the paper's tables and figures from the reproduction.",
    )
    parser.add_argument(
        "experiment",
        choices=(*_EXPERIMENTS, "all"),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="wild-scan population scale (1.0 = the paper's 272,984 txs)",
    )
    parser.add_argument("--full", action="store_true", help="shorthand for --scale 1.0")
    args = parser.parse_args(argv)
    scale = 1.0 if args.full else args.scale

    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        output = _run_one(name, scale)
        elapsed = time.perf_counter() - start
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(output)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
