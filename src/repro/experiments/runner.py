"""Experiment CLI: regenerate every table and figure of the paper.

Usage::

    python -m repro.experiments.runner all
    python -m repro.experiments.runner table5 --scale 0.1
    leishen table4            # via the installed console script
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ablations, cluster, fig1, fig8, perf, robustness, scan, service, stream, table1, table4, table5, table6, table7

__all__ = ["main"]

_EXPERIMENTS = ("fig1", "table1", "table4", "table5", "table6", "table7", "fig8",
                "perf", "ablations")

#: the scan-service front (repro.experiments.service / repro.service).
_SERVICE_COMMANDS = ("serve", "submit", "status", "results")


def _run_one(
    name: str,
    scale: float,
    jobs: int = 1,
    shards: int | None = None,
    queue_depth: int | None = None,
    block_size: int | None = None,
    ledger: str | None = None,
    compact_every: int | None = None,
    prescreen: bool = True,
    profile: bool = False,
    profile_out: str | None = None,
    windowed: bool = False,
    window_blocks: int | None = None,
    split_attacks: int = 0,
    seed: int = 7,
    instances: int | None = None,
) -> str:
    if name == "fig1":
        return fig1.render()
    if name == "table1":
        return table1.render()
    if name == "table4":
        return table4.render()
    if name == "table5":
        return table5.render(scale=scale, jobs=jobs, shards=shards)
    if name == "table6":
        return table6.render(scale=scale, jobs=jobs, shards=shards)
    if name == "table7":
        return table7.render(scale=scale, jobs=jobs, shards=shards)
    if name == "fig8":
        return fig8.render(scale=scale, jobs=jobs, shards=shards)
    if name == "perf":
        return perf.render()
    if name == "ablations":
        return ablations.render()
    if name == "robustness":
        return robustness.render(
            seed=seed,
            instances=instances if instances is not None
            else robustness.DEFAULT_INSTANCES,
        )
    if name == "scan":
        return scan.render(
            scale=scale, jobs=jobs, shards=shards, ledger=ledger,
            compact_every=compact_every,
            prescreen=prescreen, profile=profile, profile_out=profile_out,
        )
    if name == "stream":
        return stream.render(
            scale=scale, jobs=jobs, shards=shards,
            queue_depth=queue_depth, block_size=block_size, ledger=ledger,
            compact_every=compact_every,
            prescreen=prescreen, profile=profile, profile_out=profile_out,
            windowed=windowed, window_blocks=window_blocks,
            split_attacks=split_attacks,
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="leishen",
        description="Regenerate the paper's tables and figures from the reproduction.",
    )
    parser.add_argument(
        "experiment",
        choices=(*_EXPERIMENTS, "robustness", "scan", "stream", "cluster",
                 *_SERVICE_COMMANDS, "all"),
        help="which table/figure to regenerate ('robustness' sweeps the "
        "adversarial mutation matrix and prints per-family "
        "precision/recall, 'scan' runs the batch wild scan, 'stream' "
        "the live streaming-detection pipeline, 'cluster' the "
        "distributed scan; 'serve' starts the resident scan service "
        "and 'submit'/'status'/'results' talk to it; none of these is "
        "part of 'all')",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="wild-scan population scale (1.0 = the paper's 272,984 txs)",
    )
    parser.add_argument("--full", action="store_true", help="shorthand for --scale 1.0")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the wild-scan experiments (table5/6/7, fig8); "
        "results are byte-identical for any value",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="pin the wild-scan shard count (default: automatic; the shard "
        "count, not --jobs, defines the deterministic partition)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="stream only: per-worker bounded queue size (backpressure knob)",
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="stream only: transactions per simulated block",
    )
    parser.add_argument(
        "--windowed",
        action="store_true",
        help="stream only: also run the cross-transaction windowed matcher "
        "over a sliding block window (per-transaction results are "
        "byte-identical with or without it)",
    )
    parser.add_argument(
        "--window-blocks",
        type=int,
        default=None,
        help="stream --windowed: sliding window size in emitted blocks "
        f"(default {stream.DEFAULT_WINDOW_BLOCKS})",
    )
    parser.add_argument(
        "--split-attacks",
        type=int,
        default=0,
        help="stream only: append N labelled split-attack groups to the "
        "schedule, each spreading one attack across several transactions "
        "(invisible per-tx, detectable with --windowed)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="cluster only: local worker processes to spawn (default 2)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="cluster only: coordinator mode — listen for remote workers "
        "on --host/--port instead of spawning local ones",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT[,HOST:PORT...]",
        default=None,
        help="cluster only: worker mode — serve a coordinator from the "
        "comma-separated address list (primary first, failover standbys "
        "after) until drained; a dead address rotates to the next",
    )
    parser.add_argument(
        "--standby",
        metavar="HOST:PORT",
        default=None,
        help="cluster only: hot-standby mode — follow the primary "
        "coordinator at HOST:PORT, probe its liveness, and adopt the "
        "shared --ledger journal when it dies, finishing the scan on "
        "this process's own --host/--port socket",
    )
    parser.add_argument(
        "--host",
        default="0.0.0.0",
        help="cluster --serve: interface to listen on (default 0.0.0.0)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=9733,
        help="cluster --serve: port to listen on (default 9733; 0 = ephemeral)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        help="cluster only: seconds without a heartbeat before a worker's "
        "shards are requeued",
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help="cluster only: elastic worker pool — --workers becomes the "
        "initial pool size (0 scales from zero against queue depth), "
        "bounded by --min-workers/--max-workers, with idle drain and "
        "probation re-admission of excluded workers",
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        default=0,
        help="cluster --autoscale: floor the pool never drains below "
        "(default 0)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="cluster --autoscale: pool size cap (default max(--workers, 2))",
    )
    parser.add_argument(
        "--data-dir",
        metavar="DIR",
        default=".leishen-service",
        help="serve only: service data directory — one subdirectory per "
        "run holding its manifest and run ledger (default "
        ".leishen-service); a restarted service re-adopts what it finds",
    )
    parser.add_argument(
        "--executors",
        type=int,
        default=2,
        help="serve only: concurrent scan executors (default 2)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="serve only: admission queue bound — submissions beyond this "
        "are rejected loudly instead of piling up (default 16)",
    )
    parser.add_argument(
        "--backend",
        choices=("batch", "stream", "cluster"),
        default=None,
        help="serve: default execution backend for admitted runs; "
        "submit: backend for this run (default: the server's)",
    )
    parser.add_argument(
        "--address",
        metavar="HOST:PORT",
        default="127.0.0.1:9744",
        help="submit/status/results: the serving scan service "
        "(default 127.0.0.1:9744)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="submit/robustness: wild-scan or sweep seed (default 7; for "
        "submit it is part of the run's identity, so a re-submit with "
        "the same seed/scale/shards coalesces)",
    )
    parser.add_argument(
        "--instances",
        type=int,
        default=None,
        help="robustness only: attack instances per (family, mutation) "
        f"cell (default {robustness.DEFAULT_INSTANCES})",
    )
    parser.add_argument(
        "--run-id",
        metavar="RUN",
        default=None,
        help="status/results: the run to query (status without it lists "
        "every run)",
    )
    parser.add_argument(
        "--offset",
        type=int,
        default=0,
        help="results only: first detection index of the page (default 0)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="results only: page size (default: everything from --offset)",
    )
    parser.add_argument(
        "--wait",
        action="store_true",
        help="submit only: block until the run completes and print its "
        "summary",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="submit --wait: give up after this many seconds",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="cluster only: skip the batch-engine identity check "
        "(halves the runtime at large scales)",
    )
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="scan/stream/cluster: journal completed shards to PATH "
        "(append-only JSONL run ledger); an existing ledger for the same "
        "config is resumed, a config mismatch is an error",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="scan/stream/cluster: resume an existing run ledger at PATH "
        "(like --ledger, but the file must already exist)",
    )
    parser.add_argument(
        "--compact-every",
        type=int,
        metavar="N",
        default=None,
        help="scan/stream/cluster with --ledger/--resume: fold the "
        "journal into a single snapshot record every N appended shards "
        "(crash-safe rotation; replay cost stays flat instead of "
        "growing with the shard count)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="scan/stream/cluster: collect per-stage timers/counters and "
        "print the merged stage profile (results are unchanged)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="scan/stream/cluster: also write the stage profile as a JSON "
        "artifact at PATH (implies --profile; default "
        "PROFILE_wildscan.json when --profile is given alone)",
    )
    parser.add_argument(
        "--no-prescreen",
        action="store_true",
        help="scan/stream/cluster: disable the flash-loan pre-screen fast "
        "path (results are byte-identical either way; for A/B timing)",
    )
    args = parser.parse_args(argv)
    if args.experiment in _SERVICE_COMMANDS:
        if args.executors < 1:
            parser.error(f"--executors must be >= 1, got {args.executors}")
        if args.max_queue < 1:
            parser.error(f"--max-queue must be >= 1, got {args.max_queue}")
        if args.offset < 0:
            parser.error(f"--offset must be >= 0, got {args.offset}")
        if args.limit is not None and args.limit < 1:
            parser.error(f"--limit must be >= 1, got {args.limit}")
        if args.experiment == "results" and args.run_id is None:
            parser.error("results requires --run-id (see 'status' for the list)")
        try:
            service.parse_address(args.address)
        except ValueError as exc:
            parser.error(f"--address: {exc}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.shards is not None and args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.queue_depth is not None and args.queue_depth < 1:
        parser.error(f"--queue-depth must be >= 1, got {args.queue_depth}")
    if args.block_size is not None and args.block_size < 1:
        parser.error(f"--block-size must be >= 1, got {args.block_size}")
    if args.window_blocks is not None and args.window_blocks < 1:
        parser.error(f"--window-blocks must be >= 1, got {args.window_blocks}")
    if args.split_attacks < 0:
        parser.error(f"--split-attacks must be >= 0, got {args.split_attacks}")
    if args.window_blocks is not None and not args.windowed:
        parser.error("--window-blocks requires --windowed")
    if args.instances is not None:
        if args.instances < 1:
            parser.error(f"--instances must be >= 1, got {args.instances}")
        if args.experiment != "robustness":
            parser.error("--instances only applies to robustness")
    if (args.windowed or args.split_attacks) and args.experiment != "stream":
        parser.error("--windowed/--window-blocks/--split-attacks only apply to stream")
    if args.autoscale:
        if args.workers < 0:
            parser.error(f"--workers must be >= 0 with --autoscale, got {args.workers}")
        if args.min_workers < 0:
            parser.error(f"--min-workers must be >= 0, got {args.min_workers}")
        if args.max_workers is not None and args.max_workers < 1:
            parser.error(f"--max-workers must be >= 1, got {args.max_workers}")
    elif args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if sum(map(bool, (args.serve, args.connect, args.standby))) > 1:
        parser.error("--serve, --connect and --standby are mutually exclusive")
    if args.autoscale and (args.serve or args.connect or args.standby):
        parser.error("--autoscale only applies to local cluster runs")
    if (args.serve or args.connect or args.standby) and args.experiment != "cluster":
        parser.error("--serve/--connect/--standby only apply to cluster")
    if args.ledger and args.resume:
        parser.error("--ledger and --resume are mutually exclusive")
    ledger = args.ledger or args.resume
    if ledger is not None and args.experiment not in ("scan", "stream", "cluster"):
        parser.error("--ledger/--resume only apply to scan, stream and cluster")
    if args.standby and ledger is None:
        parser.error("--standby requires --ledger/--resume (the shared journal)")
    if args.compact_every is not None:
        if args.compact_every < 1:
            parser.error(
                f"--compact-every must be >= 1, got {args.compact_every}"
            )
        if ledger is None:
            parser.error("--compact-every requires --ledger/--resume")
        if args.standby:
            parser.error(
                "--compact-every does not apply to --standby (give it to "
                "the primary; the standby adopts the journal as-is)"
            )
    if args.resume:
        import os

        if not os.path.exists(args.resume):
            parser.error(f"--resume: no ledger at {args.resume!r}")
    if ledger is not None and args.connect:
        parser.error("--ledger/--resume apply to the coordinator, not --connect")
    if args.profile_out is not None:
        args.profile = True
    elif args.profile:
        from ..runtime.profile import DEFAULT_PROFILE_ARTIFACT

        args.profile_out = DEFAULT_PROFILE_ARTIFACT
    if (args.profile or args.no_prescreen) and args.experiment not in (
        "scan", "stream", "cluster",
    ):
        parser.error("--profile/--no-prescreen only apply to scan, stream and cluster")
    scale = 1.0 if args.full else args.scale

    if args.experiment in _SERVICE_COMMANDS:
        start = time.perf_counter()
        if args.experiment == "serve":
            host, port = service.parse_address(args.address)
            output = service.render_serve(
                args.data_dir, host, port,
                executors=args.executors, max_queue=args.max_queue,
                backend=args.backend or "batch", cluster_workers=args.workers,
            )
        elif args.experiment == "submit":
            output = service.render_submit(
                args.address, scale=scale, seed=args.seed, shards=args.shards,
                backend=args.backend, jobs=args.jobs,
                wait=args.wait, timeout=args.timeout,
            )
        elif args.experiment == "status":
            output = service.render_status(args.address, run_id=args.run_id)
        else:
            output = service.render_results(
                args.address, args.run_id,
                offset=args.offset, limit=args.limit,
            )
        print(f"=== {args.experiment} ({time.perf_counter() - start:.1f}s) ===")
        print(output)
        print()
        return 0

    if args.experiment == "cluster":
        start = time.perf_counter()
        if args.connect:
            output = cluster.render_worker(args.connect)
        elif args.standby:
            output = cluster.render_standby(
                scale=scale, shards=args.shards, primary=args.standby,
                host=args.host, port=args.port,
                heartbeat_timeout=args.heartbeat_timeout, ledger=ledger,
                prescreen=not args.no_prescreen, profile=args.profile,
            )
        elif args.serve:
            output = cluster.render_serve(
                scale=scale, shards=args.shards, host=args.host, port=args.port,
                heartbeat_timeout=args.heartbeat_timeout, ledger=ledger,
                compact_every=args.compact_every,
                prescreen=not args.no_prescreen, profile=args.profile,
                profile_out=args.profile_out,
            )
        else:
            output = cluster.render_local(
                scale=scale, workers=args.workers, shards=args.shards,
                heartbeat_timeout=args.heartbeat_timeout,
                autoscale=args.autoscale, min_workers=args.min_workers,
                max_workers=args.max_workers,
                verify=not args.no_verify,
                ledger=ledger, compact_every=args.compact_every,
                prescreen=not args.no_prescreen, profile=args.profile,
                profile_out=args.profile_out,
            )
        print(f"=== cluster ({time.perf_counter() - start:.1f}s) ===")
        print(output)
        print()
        return 0

    names = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        output = _run_one(
            name, scale, jobs=args.jobs, shards=args.shards,
            queue_depth=args.queue_depth, block_size=args.block_size,
            ledger=ledger, compact_every=args.compact_every,
            prescreen=not args.no_prescreen, profile=args.profile,
            profile_out=args.profile_out,
            windowed=args.windowed, window_blocks=args.window_blocks,
            split_attacks=args.split_attacks,
            seed=args.seed, instances=args.instances,
        )
        elapsed = time.perf_counter() - start
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(output)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
