"""Scan-service CLI: run, submit to, and query the resident service.

Four subcommands front :mod:`repro.service`::

    leishen serve --data-dir svc --address 127.0.0.1:9744   # resident
    leishen submit --address 127.0.0.1:9744 --scale 0.05 --wait
    leishen status --address 127.0.0.1:9744 [--run-id run-...]
    leishen results --address 127.0.0.1:9744 --run-id run-... --limit 20

``serve`` owns the data dir: it adopts whatever ledgers a previous
process left (complete ones become servable, incomplete ones resume),
then listens for framed-JSON clients. ``submit`` names runs by config
digest, so re-submitting the same scan prints the *same* run id with
``coalesced`` set — nothing scans twice. ``results`` pages detections
out of the completed ledger; it never re-scans.
"""

from __future__ import annotations

import time

from ..workload.generator import WildScanConfig

__all__ = [
    "parse_address",
    "render_results",
    "render_serve",
    "render_status",
    "render_submit",
]


def parse_address(text: str) -> tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` (raises ValueError loudly)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def render_serve(
    data_dir: str,
    host: str = "127.0.0.1",
    port: int = 9744,
    *,
    executors: int = 2,
    max_queue: int = 16,
    backend: str = "batch",
    cluster_workers: int = 2,
    run_seconds: float | None = None,
    stop_event=None,
) -> str:
    """Run the service until interrupted (or ``run_seconds``/``stop_event``,
    both for tests driving the server from another thread).

    Prints the bound address up front so clients/scripts can connect,
    then blocks. Ctrl-C drains gracefully: active runs finish (their
    shards are journaled either way), queued runs stay queued on disk
    for the next start.
    """
    from ..service import ScanService, ServiceServer

    service = ScanService(
        data_dir,
        executors=executors,
        max_queue=max_queue,
        default_backend=backend,
        cluster_workers=cluster_workers,
    )
    lines = []
    with service:
        adopted = service.counters["adopted_resuming"]
        readopted = service.counters["adopted_completed"]
        with ServiceServer(service, host, port) as server:
            bound_host, bound_port = server.address
            print(
                f"scan service on {bound_host}:{bound_port} "
                f"(data dir {service.registry.data_dir}, "
                f"{executors} executor(s), backend {backend})",
                flush=True,
            )
            if adopted or readopted:
                print(
                    f"adopted from previous run: {readopted} completed, "
                    f"{adopted} resuming",
                    flush=True,
                )
            try:
                if stop_event is not None:
                    stop_event.wait(run_seconds)
                elif run_seconds is None:
                    while True:  # pragma: no cover - interactive loop
                        time.sleep(3600)
                else:
                    time.sleep(run_seconds)
            except KeyboardInterrupt:
                pass
        stats = service.stats()
        lines.append(
            f"drained: {stats['counters']['completed']} completed, "
            f"{stats['counters']['failed']} failed, "
            f"{stats['queue_depth']} still queued (kept for next start)"
        )
    return "\n".join(lines)


def render_submit(
    address: str,
    scale: float = 0.1,
    seed: int = 7,
    shards: int | None = None,
    *,
    backend: str | None = None,
    jobs: int = 1,
    wait: bool = False,
    timeout: float | None = None,
) -> str:
    """Submit one scan job; with ``wait``, poll to completion and report."""
    from ..service import ServiceClient

    config = WildScanConfig(scale=scale, seed=seed, shards=shards)
    with ServiceClient(parse_address(address)) as client:
        run = client.submit(config, backend=backend, jobs=jobs)
        lines = [_run_line(run)]
        if run["coalesced"]:
            lines.append(
                "coalesced onto an existing run (same config digest) — "
                "nothing was re-queued"
            )
        if wait and run["state"] != "completed":
            run = client.wait(run["run_id"], timeout=timeout)
            lines.append(_run_line(run))
        if run["state"] == "completed" and run["summary"]:
            summary = run["summary"]
            lines.append(
                f"summary: {summary['detected']} detections over "
                f"{summary['total_transactions']} transactions "
                f"(precision {summary['precision']:.4f}); fetch with "
                f"'results --run-id {run['run_id']}'"
            )
        if run["state"] == "failed":
            lines.append(f"error: {run['error']}")
    return "\n".join(lines)


def render_status(address: str, run_id: str | None = None) -> str:
    """One run's status, or — without ``run_id`` — every known run."""
    from ..service import ServiceClient

    with ServiceClient(parse_address(address)) as client:
        if run_id is not None:
            return _run_line(client.status(run_id))
        views = client.runs()
        stats = client.stats()
    if not views:
        return "no runs submitted yet"
    lines = [_run_line(view) for view in views]
    counters = stats["counters"]
    lines.append(
        f"totals: {counters['submitted']} submitted, "
        f"{counters['coalesced']} coalesced, {counters['completed']} "
        f"completed, {counters['failed']} failed; queue depth "
        f"{stats['queue_depth']}"
    )
    return "\n".join(lines)


def render_results(
    address: str,
    run_id: str,
    offset: int = 0,
    limit: int | None = None,
) -> str:
    """One page of a completed run's detections, straight from the ledger."""
    from ..service import ServiceClient

    with ServiceClient(parse_address(address)) as client:
        page = client.results(run_id, offset=offset, limit=limit)
    summary = page["summary"]
    lines = [
        f"{page['run_id']}: {page['count']} of {page['total_detections']} "
        f"detections (offset {page['offset']}"
        + (
            f", next --offset {page['next_offset']})"
            if page["next_offset"] is not None
            else ", last page)"
        ),
        f"summary: {summary['detected']} detected / "
        f"{summary['total_transactions']} transactions, precision "
        f"{summary['precision']:.4f}",
    ]
    for det in page["detections"]:
        lines.append(
            f"  {det['tx_hash']}  {'+'.join(det['patterns'])}  "
            f"profit=${det['profit_usd']:,.0f}"
        )
    return "\n".join(lines)


def _run_line(view: dict) -> str:
    parts = [f"{view['run_id']}  {view['state']:<9}  backend={view['backend']}"]
    if view.get("queue_position"):
        parts.append(f"queue#{view['queue_position']}")
    if view.get("adopted"):
        parts.append("adopted")
    if view.get("shard_count") is not None:
        parts.append(
            f"shards={view['shard_count']} "
            f"(resumed {view['shards_resumed']}, ran {view['shards_recorded']})"
        )
    if view["state"] == "completed" and view.get("summary"):
        parts.append(f"detections={view['summary']['detected']}")
    if view.get("warm_hits") or view.get("warm_misses"):
        parts.append(f"warm={view['warm_hits']}/{view['warm_hits'] + view['warm_misses']}")
    return "  ".join(parts)
