"""Detection latency (paper Sec. VI-A: mean 10 ms, p75 16 ms per tx)."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from ..study.scenarios import SCENARIO_BUILDERS

__all__ = ["LatencyStats", "run", "render"]

#: a representative mix: one light, one medium, one heavy transaction.
SAMPLE_SCENARIOS = ("harvest", "bzx1", "balancer")


@dataclass(frozen=True, slots=True)
class LatencyStats:
    samples: int
    mean_ms: float
    p50_ms: float
    p75_ms: float
    p99_ms: float


def run(iterations: int = 50) -> LatencyStats:
    """Measure end-to-end LeiShen analysis latency over replayed attacks."""
    prepared = []
    for key in SAMPLE_SCENARIOS:
        outcome = SCENARIO_BUILDERS[key]()
        prepared.append((outcome.world.detector(), outcome.trace))
    # warm caches (tagging trees) once, like a long-running scanner would
    for detector, trace in prepared:
        detector.analyze(trace)
    durations_ms: list[float] = []
    for _ in range(iterations):
        for detector, trace in prepared:
            start = time.perf_counter()
            detector.analyze(trace)
            durations_ms.append((time.perf_counter() - start) * 1e3)
    durations_ms.sort()
    quantiles = statistics.quantiles(durations_ms, n=100)
    return LatencyStats(
        samples=len(durations_ms),
        mean_ms=statistics.fmean(durations_ms),
        p50_ms=quantiles[49],
        p75_ms=quantiles[74],
        p99_ms=quantiles[98],
    )


def render(stats: LatencyStats | None = None) -> str:
    stats = stats if stats is not None else run()
    return (
        "Detection latency per flash loan transaction\n"
        f"samples={stats.samples} mean={stats.mean_ms:.2f}ms p50={stats.p50_ms:.2f}ms "
        f"p75={stats.p75_ms:.2f}ms p99={stats.p99_ms:.2f}ms\n"
        "paper: mean 10 ms, 75% within 16 ms (Go implementation, Xeon E5-2683)"
    )
