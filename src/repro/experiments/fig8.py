"""Fig. 8 — monthly flpAttacks in Ethereum (detected unknown attacks)."""

from __future__ import annotations

from ..workload.generator import WildScanResult
from ..workload.timeline import month_label, monthly_attack_weights
from .table5 import run as run_scan

__all__ = ["run", "render"]


def run(
    scale: float = 0.1, seed: int = 7, jobs: int = 1, shards: int | None = None
) -> WildScanResult:
    return run_scan(scale=scale, seed=seed, jobs=jobs, shards=shards)


def render(
    result: WildScanResult | None = None,
    scale: float = 0.1,
    jobs: int = 1,
    shards: int | None = None,
) -> str:
    result = result if result is not None else run(scale=scale, jobs=jobs, shards=shards)
    months = result.fig8_months()
    calibration = monthly_attack_weights()
    lines = [
        "Fig. 8 — monthly unknown flpAttacks (measured | calibrated full scale)",
    ]
    for month, full in enumerate(calibration):
        measured = months.get(month, 0)
        if full == 0 and measured == 0:
            continue
        bar = "#" * measured + "." * max(0, full - measured)
        lines.append(f"{month_label(month):<10}{measured:>3} | {full:>3}  {bar}")
    avg_2020 = sum(calibration[5:12]) / 7
    avg_2021 = sum(calibration[12:24]) / 12
    lines.append(
        f"calibrated averages: {avg_2020:.1f}/mo in 2020, {avg_2021:.1f}/mo in 2021 "
        "(paper: 6.5 and 4.3)"
    )
    return "\n".join(lines)
