"""Experiment harness: one module per paper table/figure, plus ablations."""

from . import ablations, fig1, fig8, perf, table1, table4, table5, table6, table7
from .runner import main

__all__ = [
    "ablations",
    "fig1",
    "fig8",
    "main",
    "perf",
    "table1",
    "table4",
    "table5",
    "table6",
    "table7",
]
