"""Batch wild scan — the Sec. VI-C evaluation as a standalone experiment.

Not a paper table: ``experiments scan`` runs the sharded batch engine
directly and reports totals, wall-clock and — when journaling to a run
ledger (``--ledger``/``--resume``) — how many shards were loaded from
the journal versus freshly executed. It is the smallest surface for the
durable-run workflow::

    experiments scan --scale 0.1 --ledger run.ledger   # journal as you go
    # ... SIGKILL mid-run ...
    experiments scan --scale 0.1 --resume run.ledger   # finish the rest
"""

from __future__ import annotations

import time

from ..workload.generator import WildScanConfig

__all__ = ["run", "render"]


def _maybe_compacting(ledger, config, compact_every: int | None):
    """Wrap a path-``ledger`` in a compacting :class:`RunLedger`."""
    if compact_every is None:
        return ledger
    from ..runtime import RunLedger

    if ledger is None:
        raise ValueError("--compact-every requires --ledger/--resume")
    if isinstance(ledger, RunLedger):
        return ledger
    return RunLedger.for_config(ledger, config, compact_every=compact_every)


def run(
    scale: float = 0.1,
    seed: int = 7,
    jobs: int = 1,
    shards: int | None = None,
    ledger=None,
    compact_every: int | None = None,
    prescreen: bool = True,
    profile: bool = False,
):
    """Run the batch scan; returns ``(result, engine, elapsed_s)``.

    ``ledger`` is a path (or an open :class:`repro.runtime.RunLedger`):
    completed shards are journaled as they finish and already-journaled
    shards are skipped, so a killed run resumes where it left off.
    ``compact_every`` folds the journal into a snapshot record every N
    appended shards (``--compact-every``), keeping replay cost flat.
    ``prescreen``/``profile`` are execution knobs only — neither changes
    a result byte; a profiled run leaves the merged stage profile on
    ``engine.profile``.
    """
    from ..engine import ScanEngine

    config = WildScanConfig(
        scale=scale, seed=seed, jobs=jobs, shards=shards,
        prescreen=prescreen, profile=profile,
    )
    ledger = _maybe_compacting(ledger, config, compact_every)
    engine = ScanEngine(config, ledger=ledger)
    start = time.perf_counter()
    result = engine.run()
    return result, engine, time.perf_counter() - start


def render(
    scale: float = 0.1,
    seed: int = 7,
    jobs: int = 1,
    shards: int | None = None,
    ledger=None,
    compact_every: int | None = None,
    prescreen: bool = True,
    profile: bool = False,
    profile_out=None,
) -> str:
    result, engine, elapsed = run(
        scale=scale, seed=seed, jobs=jobs, shards=shards, ledger=ledger,
        compact_every=compact_every, prescreen=prescreen, profile=profile,
    )
    txs_per_s = result.total_transactions / elapsed if elapsed else 0.0
    lines = [
        f"Wild scan at scale {scale} — {result.total_transactions} txs "
        f"in {elapsed:.2f}s ({txs_per_s:,.0f} txs/s, jobs={jobs})",
        f"detections: {result.detected_count} ({result.true_positives} true, "
        f"precision {result.precision:.1%})",
    ]
    if engine.ledger is not None:
        lines.append(
            f"ledger: {engine.ledger.path} — "
            f"{engine.ledger.resumed_count} shard(s) resumed from the journal, "
            f"{engine.ledger.recorded_count} freshly executed and recorded"
        )
    if engine.profile is not None:
        from ..runtime.profile import render_profile, write_profile

        lines.append(render_profile(engine.profile))
        if profile_out is not None:
            lines.append(f"profile written to {write_profile(engine.profile, profile_out)}")
    return "\n".join(lines)
