"""Distributed wild scan — the cluster deployment mode as an experiment.

Not a paper table: this surface runs the paper's Sec. VI-C evaluation
across cluster workers (:mod:`repro.cluster`) and reports wall-clock,
fault counters and the identity check against the batch engine. Three
modes, selected by the CLI flags:

- ``--workers N`` (default): coordinator plus ``N`` locally spawned
  workers — the single-machine path;
- ``--serve``: coordinator only, listening for remote workers on
  ``--host``/``--port``;
- ``--connect HOST:PORT[,HOST:PORT...]``: worker only, serving whichever
  listed coordinator answers (primary first, failover standby next)
  until drained;
- ``--standby HOST:PORT``: hot-standby coordinator — follow the primary
  at that address, probe its liveness, and adopt the shared
  ``--ledger`` journal when it dies, finishing the scan.

``--autoscale`` turns the fixed local spawn into an elastic pool
(:mod:`repro.cluster.autoscale`): ``--workers`` becomes the initial pool
size (0 scales from zero against queue depth), bounded by
``--min-workers``/``--max-workers``, with idle drain and probation
re-admission of excluded workers.
"""

from __future__ import annotations

import time

from ..workload.generator import WildScanConfig, WildScanner

__all__ = [
    "run_local", "render_local", "render_serve", "render_standby",
    "render_worker",
]


def _parse_address(text: str, flag: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"{flag} expects HOST:PORT, got {text!r}")
    return host, int(port)


def run_local(
    scale: float = 0.1,
    seed: int = 7,
    workers: int = 2,
    shards: int | None = None,
    heartbeat_timeout: float | None = None,
    autoscale: bool = False,
    min_workers: int = 0,
    max_workers: int | None = None,
    ledger=None,
    compact_every: int | None = None,
    prescreen: bool = True,
    profile: bool = False,
):
    """Coordinator + ``workers`` local workers; returns
    ``(result, stats, elapsed_s, profile_payload)``.

    ``ledger`` (a path or an open :class:`repro.runtime.RunLedger`)
    journals every completed shard; a killed coordinator resumes from
    the same path, scheduling only the shards the journal is missing.
    ``compact_every`` folds the journal into a snapshot record every N
    appended shards. ``profile=True`` asks every worker for its
    per-shard stage profile (protocol v4); the coordinator's merged
    payload is returned last.
    """
    from ..cluster import run_cluster_scan
    from .scan import _maybe_compacting

    config = WildScanConfig(
        scale=scale, seed=seed, shards=shards, prescreen=prescreen, profile=profile
    )
    ledger = _maybe_compacting(ledger, config, compact_every)
    options = {}
    if heartbeat_timeout is not None:
        options["heartbeat_timeout"] = heartbeat_timeout
    if ledger is not None:
        options["ledger"] = ledger
    if autoscale:
        options.update(
            autoscale=True, min_workers=min_workers, max_workers=max_workers
        )
    start = time.perf_counter()
    result, stats = run_cluster_scan(config, workers=workers, **options)
    return result, stats, time.perf_counter() - start, getattr(stats, "profile", None)


def _summary_lines(result, stats, elapsed: float, workers_label: str) -> list[str]:
    txs_per_s = result.total_transactions / elapsed if elapsed else 0.0
    lines = [
        f"Cluster scan — {result.total_transactions} txs across "
        f"{workers_label} in {elapsed:.2f}s ({txs_per_s:,.0f} txs/s)",
        f"detections: {result.detected_count} ({result.true_positives} true, "
        f"precision {result.precision:.1%})",
        "faults: "
        f"{stats.requeues} requeue(s) ({stats.heartbeat_requeues} via heartbeat "
        f"timeout), {stats.worker_losses} worker loss(es), "
        f"{stats.duplicates_suppressed} duplicate(s) suppressed, "
        f"{stats.workers_excluded} worker(s) excluded, "
        f"{stats.local_fallback_shards} shard(s) via local fallback",
    ]
    if stats.workers_spawned or stats.workers_drained or stats.workers_readmitted:
        lines.append(
            "elastic: "
            f"{stats.workers_spawned} worker(s) spawned, "
            f"{stats.workers_drained} drained, "
            f"{stats.workers_readmitted} readmitted on probation "
            f"({stats.probation_passes} passed, {stats.probation_failures} failed)"
        )
    if stats.resumed_shards:
        lines.append(
            f"ledger: {stats.resumed_shards} shard(s) resumed from the journal"
        )
    return lines


def render_local(
    scale: float = 0.1,
    seed: int = 7,
    workers: int = 2,
    shards: int | None = None,
    heartbeat_timeout: float | None = None,
    autoscale: bool = False,
    min_workers: int = 0,
    max_workers: int | None = None,
    verify: bool = True,
    ledger=None,
    compact_every: int | None = None,
    prescreen: bool = True,
    profile: bool = False,
    profile_out=None,
) -> str:
    """Single-machine cluster run; optionally verify against the batch
    engine (doubles the work — skip with ``--no-verify`` at full scale)."""
    result, stats, elapsed, profile_payload = run_local(
        scale=scale, seed=seed, workers=workers, shards=shards,
        heartbeat_timeout=heartbeat_timeout,
        autoscale=autoscale, min_workers=min_workers, max_workers=max_workers,
        ledger=ledger, compact_every=compact_every,
        prescreen=prescreen, profile=profile,
    )
    lines = _summary_lines(
        result, stats, elapsed, f"{stats.workers_seen} local worker(s)"
    )
    if verify:
        batch = WildScanner(
            WildScanConfig(scale=scale, seed=seed, shards=shards)
        ).run()
        identical = (
            [d.tx_hash for d in batch.detections]
            == [d.tx_hash for d in result.detections]
            and batch.total_transactions == result.total_transactions
        )
        if not identical:
            raise AssertionError(
                "identity violation: cluster scan diverged from ScanEngine.run()"
            )
        lines.append("identity: merged result byte-identical to the batch engine")
    if profile_payload is not None:
        from ..runtime.profile import render_profile, write_profile

        lines.append(render_profile(profile_payload))
        if profile_out is not None:
            lines.append(
                f"profile written to {write_profile(profile_payload, profile_out)}"
            )
    return "\n".join(lines)


def render_serve(
    scale: float = 0.1,
    seed: int = 7,
    shards: int | None = None,
    host: str = "0.0.0.0",
    port: int = 9733,
    heartbeat_timeout: float | None = None,
    ledger=None,
    compact_every: int | None = None,
    prescreen: bool = True,
    profile: bool = False,
    profile_out=None,
) -> str:
    """Coordinator-only mode: wait for remote workers, then merge."""
    from ..cluster import Coordinator
    from .scan import _maybe_compacting

    config = WildScanConfig(
        scale=scale, seed=seed, shards=shards, prescreen=prescreen, profile=profile
    )
    ledger = _maybe_compacting(ledger, config, compact_every)
    options = {}
    if heartbeat_timeout is not None:
        options["heartbeat_timeout"] = heartbeat_timeout
    if ledger is not None:
        options["ledger"] = ledger
    coordinator = Coordinator(config, host=host, port=port, **options)
    bound_host, bound_port = coordinator.address
    print(
        f"coordinator serving {coordinator.shard_count} shard(s) on "
        f"{bound_host}:{bound_port} — connect workers with: "
        f"experiments cluster --connect {bound_host}:{bound_port}",
        flush=True,
    )
    start = time.perf_counter()
    with coordinator:
        result = coordinator.run()
    elapsed = time.perf_counter() - start
    lines = _summary_lines(
        result, coordinator.stats, elapsed,
        f"{coordinator.stats.workers_seen} remote worker(s)",
    )
    if coordinator.profile is not None:
        from ..runtime.profile import render_profile, write_profile

        lines.append(render_profile(coordinator.profile))
        if profile_out is not None:
            lines.append(
                f"profile written to {write_profile(coordinator.profile, profile_out)}"
            )
    return "\n".join(lines)


def render_standby(
    scale: float = 0.1,
    seed: int = 7,
    shards: int | None = None,
    primary: str = "",
    host: str = "0.0.0.0",
    port: int = 0,
    heartbeat_timeout: float | None = None,
    ledger=None,
    prescreen: bool = True,
    profile: bool = False,
) -> str:
    """Hot-standby mode: follow the primary coordinator at ``primary``
    (``HOST:PORT``), adopt the shared ``ledger`` journal when the
    liveness probe declares it dead, and finish the scan on this
    standby's own serve socket. Workers should list both addresses:
    ``--connect PRIMARY,STANDBY``."""
    from ..cluster import StandbyCoordinator

    if ledger is None:
        raise ValueError("--standby requires --ledger/--resume (the shared journal)")
    config = WildScanConfig(
        scale=scale, seed=seed, shards=shards, prescreen=prescreen, profile=profile
    )
    options = {}
    if heartbeat_timeout is not None:
        options["heartbeat_timeout"] = heartbeat_timeout
    standby = StandbyCoordinator(
        config,
        primary=_parse_address(primary, "--standby"),
        ledger=ledger,
        host=host,
        port=port,
        coordinator_options=options or None,
    )
    standby.start()
    bound_host, bound_port = standby.address
    primary_host, primary_port = standby.primary
    print(
        f"standby following {primary_host}:{primary_port}, adoption address "
        f"{bound_host}:{bound_port} — point workers at both: --connect "
        f"{primary_host}:{primary_port},{bound_host}:{bound_port}",
        flush=True,
    )
    try:
        standby.wait_for_primary_death()
        detect_s = standby.death_detected_at - standby.started_at
        print(
            f"primary dead after {detect_s:.2f}s of following "
            f"({standby.probe_count} probe(s)) — adopting the journal",
            flush=True,
        )
        start = time.perf_counter()
        result = standby.adopt_and_run()
        elapsed = time.perf_counter() - start
        stats = standby.stats
    finally:
        standby.shutdown()
    lines = _summary_lines(
        result, stats, elapsed, f"{stats.workers_seen} failed-over worker(s)"
    )
    lines.append(
        f"failover: {stats.resumed_shards} shard(s) adopted from the dead "
        f"primary's journal, {stats.assignments} reassigned"
    )
    return "\n".join(lines)


def render_worker(connect: str) -> str:
    """Worker mode: serve a coordinator from the comma-separated
    ``HOST:PORT[,HOST:PORT...]`` list (primary first, standbys after)
    until drained; a dead address rotates to the next."""
    from ..cluster import ClusterWorker

    addresses = [
        _parse_address(entry.strip(), "--connect")
        for entry in connect.split(",") if entry.strip()
    ]
    if not addresses:
        raise ValueError(f"--connect expects HOST:PORT[,HOST:PORT...], got {connect!r}")
    summary = ClusterWorker(addresses).run()
    state = (
        "killed" if summary.killed
        else "coordinator vanished" if summary.disconnected
        else "drained"
    )
    failed_over = (
        f", {summary.failovers} coordinator failover(s)" if summary.failovers else ""
    )
    return (
        f"worker {summary.name}: {summary.shards_completed} shard(s) completed, "
        f"{summary.shard_errors} shard error(s), {summary.tasks_executed} task(s) "
        f"executed{failed_over} — {state}"
    )
