"""``python -m repro.experiments`` — experiment runner entry point."""

import sys

from .runner import main

sys.exit(main())
