"""Table I — real-world flpAttacks: measured volatility and patterns."""

from __future__ import annotations

from ..study.analysis import StudyRow, run_study

__all__ = ["run", "render"]


def run(keys: list[str] | None = None) -> list[StudyRow]:
    return run_study(keys)


def render(rows: list[StudyRow] | None = None) -> str:
    rows = rows if rows is not None else run()
    lines = [
        "Table I — real-world flpAttacks (measured from scenario replays)",
        f"{'ID':<4}{'Attack':<18}{'GT patterns':<14}{'Detected':<14}"
        f"{'Max volatility':>16}  top pair",
    ]
    for row in rows:
        gt = ",".join(sorted(p.name for p in row.meta.patterns)) or "-"
        det = ",".join(row.patterns_detected) or "-"
        top_pair = row.volatility_by_pair[0][0] if row.volatility_by_pair else "-"
        lines.append(
            f"{row.meta.attack_id:<4}{row.meta.name:<18}{gt:<14}{det:<14}"
            f"{row.max_volatility_pct:>15.2f}%  {top_pair}"
        )
    return "\n".join(lines)
