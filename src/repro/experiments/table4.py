"""Table IV — detection results on known flpAttacks: three detectors."""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import DeFiRanger, ExplorerLeiShen
from ..study.catalog import AttackMeta, FLP_ATTACKS
from ..study.scenarios import SCENARIO_BUILDERS

__all__ = ["Table4Row", "run", "render"]


@dataclass(frozen=True, slots=True)
class Table4Row:
    meta: AttackMeta
    defiranger: bool
    explorer_leishen: bool
    leishen: bool
    leishen_patterns: tuple[str, ...]

    @property
    def matches_paper(self) -> bool:
        return (
            self.leishen == self.meta.expect_leishen
            and self.defiranger == self.meta.expect_defiranger
            and self.explorer_leishen == self.meta.expect_explorer
        )


def run(keys: list[str] | None = None) -> list[Table4Row]:
    rows: list[Table4Row] = []
    for meta in FLP_ATTACKS:
        if keys is not None and meta.key not in keys:
            continue
        outcome = SCENARIO_BUILDERS[meta.key]()
        world = outcome.world
        report = world.detector().analyze(outcome.trace)
        leishen = report is not None and report.is_attack
        patterns = tuple(sorted(report.patterns)) if report else ()
        rows.append(
            Table4Row(
                meta=meta,
                defiranger=DeFiRanger(world.chain).detect(outcome.trace),
                explorer_leishen=ExplorerLeiShen(world.chain).detect(outcome.trace),
                leishen=leishen,
                leishen_patterns=patterns,
            )
        )
    return rows


def render(rows: list[Table4Row] | None = None) -> str:
    rows = rows if rows is not None else run()
    mark = lambda flag: "Y" if flag else "-"  # noqa: E731
    lines = [
        "Table IV — detection results on known flpAttacks",
        f"{'ID':<4}{'Attack':<18}{'DeFiRanger':<12}{'Explorer+LS':<13}{'LeiShen':<9}"
        f"{'patterns':<12}{'vs paper'}",
    ]
    for row in rows:
        lines.append(
            f"{row.meta.attack_id:<4}{row.meta.name:<18}{mark(row.defiranger):<12}"
            f"{mark(row.explorer_leishen):<13}{mark(row.leishen):<9}"
            f"{','.join(row.leishen_patterns) or '-':<12}"
            f"{'OK' if row.matches_paper else 'DIFFERS'}"
        )
    totals = (
        sum(r.defiranger for r in rows),
        sum(r.explorer_leishen for r in rows),
        sum(r.leishen for r in rows),
    )
    lines.append(
        f"detected: DeFiRanger {totals[0]}, Explorer+LeiShen {totals[1]}, "
        f"LeiShen {totals[2]} (paper: 9 / 4 / 14-15 of 17 patterned)"
    )
    return "\n".join(lines)
