"""Table VII — attack profit analysis on detected flpAttacks."""

from __future__ import annotations

from ..workload.generator import WildScanResult
from .table5 import run as run_scan

__all__ = ["run", "render", "PAPER_STATS"]

#: the paper's Table VII values (yield rate as a fraction; profit in USD).
PAPER_STATS = {
    "min_profit_usd": 23.0,
    "max_profit_usd": 6_102_198.0,
    "mean_profit_usd": 3_509.0,
    "top10_profit_usd": 257_078.0,
    "top20_profit_usd": 135_522.0,
    "total_profit_usd": 21_800_000.0,
}


def run(
    scale: float = 0.1, seed: int = 7, jobs: int = 1, shards: int | None = None
) -> WildScanResult:
    return run_scan(scale=scale, seed=seed, jobs=jobs, shards=shards)


def render(
    result: WildScanResult | None = None,
    scale: float = 0.1,
    jobs: int = 1,
    shards: int | None = None,
) -> str:
    result = result if result is not None else run(scale=scale, jobs=jobs, shards=shards)
    stats = result.table7()
    lines = [
        "Table VII — attack profit analysis (measured vs paper)",
        f"{'metric':<22}{'measured':>16}{'paper':>16}",
    ]
    for key in ("mean_profit_usd", "min_profit_usd", "max_profit_usd",
                "top10_profit_usd", "top20_profit_usd", "total_profit_usd"):
        measured = stats.get(key, 0.0)
        paper = PAPER_STATS[key]
        lines.append(f"{key:<22}{measured:>16,.0f}{paper:>16,.0f}")
    lines.append(
        f"yield rate: mean {stats.get('mean_yield_rate', 0):.2%}, "
        f"max {stats.get('max_yield_rate', 0):.2%}"
    )
    lines.append(
        "note: the paper's mean (3,509) is inconsistent with its own max/total; "
        "we report the measured heavy-tailed distribution."
    )
    return "\n".join(lines)
