"""Table VI — the most attacked applications among unknown attacks."""

from __future__ import annotations

from ..workload.generator import WildScanResult
from .table5 import run as run_scan

__all__ = ["run", "render", "PAPER_ROWS"]

PAPER_ROWS = (
    ("Balancer", 31, 5, 14, 13),
    ("Uniswap", 16, 6, 8, 5),
    ("Yearn", 11, 1, 1, 1),
)


def run(
    scale: float = 0.1, seed: int = 7, jobs: int = 1, shards: int | None = None
) -> WildScanResult:
    return run_scan(scale=scale, seed=seed, jobs=jobs, shards=shards)


def render(
    result: WildScanResult | None = None,
    scale: float = 0.1,
    jobs: int = 1,
    shards: int | None = None,
) -> str:
    result = result if result is not None else run(scale=scale, jobs=jobs, shards=shards)
    lines = [
        "Table VI — top attacked applications (unknown attacks)",
        f"{'App':<18}{'Attacks':>8}{'Attackers':>10}{'Contracts':>10}{'Assets':>8}",
    ]
    for app, attacks, attackers, contracts, assets in result.table6()[:5]:
        lines.append(f"{app:<18}{attacks:>8}{attackers:>10}{contracts:>10}{assets:>8}")
    lines.append("paper (full scale):")
    for app, attacks, attackers, contracts, assets in PAPER_ROWS:
        lines.append(f"{app:<18}{attacks:>8}{attackers:>10}{contracts:>10}{assets:>8}")
    return "\n".join(lines)
