"""Table V — wild-scan detection results per pattern (+ heuristic variant)."""

from __future__ import annotations

from ..workload.generator import WildScanConfig, WildScanResult, WildScanner

__all__ = ["run", "render", "PAPER_ROWS"]

#: the paper's Table V for reference in rendering.
PAPER_ROWS = {"KRP": (21, 21, 0), "SBS": (79, 68, 11), "MBS": (107, 60, 47)}


def run(
    scale: float = 0.1,
    seed: int = 7,
    with_heuristic: bool = False,
    jobs: int = 1,
    shards: int | None = None,
) -> WildScanResult:
    return WildScanner(
        WildScanConfig(
            scale=scale, seed=seed, with_heuristic=with_heuristic,
            jobs=jobs, shards=shards,
        )
    ).run()


def render(
    result: WildScanResult | None = None,
    scale: float = 0.1,
    jobs: int = 1,
    shards: int | None = None,
) -> str:
    result = result if result is not None else run(scale=scale, jobs=jobs, shards=shards)
    cfg = result.config
    lines = [
        f"Table V — wild scan at scale {cfg.scale} "
        f"({result.total_transactions} flash loan txs; paper: 272,984)",
        f"{'Pattern':<9}{'N':>5}{'TP':>5}{'FP':>5}{'P':>9}    paper N/TP/FP/P",
    ]
    for row in result.table5():
        paper_n, paper_tp, paper_fp = PAPER_ROWS[row.pattern]
        paper_p = paper_tp / paper_n
        lines.append(
            f"{row.pattern:<9}{row.n:>5}{row.tp:>5}{row.fp:>5}{row.precision:>8.1%}"
            f"    {paper_n}/{paper_tp}/{paper_fp}/{paper_p:.1%}"
        )
    lines.append(
        f"overall: detected {result.detected_count}, true {result.true_positives}, "
        f"precision {result.precision:.1%} (paper: 180 / 142 / 78.9%)"
    )
    return "\n".join(lines)
