"""Fig. 1 — weekly flash loan transactions from three DeFi applications."""

from __future__ import annotations

from ..workload.timeline import PROVIDER_TOTALS, WeekPoint, weekly_flash_loan_series

__all__ = ["run", "render"]


def run() -> list[WeekPoint]:
    return weekly_flash_loan_series()


def render(points: list[WeekPoint] | None = None, width: int = 60) -> str:
    """ASCII rendering of the weekly series (one row per 4-week bucket)."""
    points = points if points is not None else run()
    lines = ["Fig. 1 — weekly flash loan transactions (4-week buckets)"]
    lines.append(f"{'weeks':<10}{'total':>8}  " + " / ".join(PROVIDER_TOTALS))
    buckets: list[tuple[int, dict[str, int]]] = []
    for start in range(0, len(points), 4):
        chunk = points[start : start + 4]
        counts = {p: sum(pt.counts[p] for pt in chunk) for p in PROVIDER_TOTALS}
        buckets.append((start, counts))
    peak = max(sum(c.values()) for _, c in buckets) or 1
    for start, counts in buckets:
        total = sum(counts.values())
        bar = "#" * max(1 if total else 0, round(total / peak * width))
        detail = "/".join(str(counts[p]) for p in PROVIDER_TOTALS)
        lines.append(f"w{start:<4}-{start + 3:<4}{total:>8}  {detail:<24} {bar}")
    totals = {p: sum(pt.counts[p] for pt in points) for p in PROVIDER_TOTALS}
    lines.append(f"totals: {totals} (paper: {dict(PROVIDER_TOTALS)})")
    return "\n".join(lines)
