"""Streaming wild scan — the live-monitor deployment mode as an experiment.

Not a paper table: this surface demonstrates the Sec. VII deployment
claim (detection keeps up with the block stream) on the reproduction's
own workload, reporting per-block latency and end-to-end throughput for
the streaming pipeline of :mod:`repro.engine.stream`.
"""

from __future__ import annotations

from ..engine.stream import DEFAULT_WINDOW_BLOCKS, StreamEngine, StreamResult
from ..workload.generator import WildScanConfig

__all__ = ["DEFAULT_WINDOW_BLOCKS", "run", "run_with_engine", "render"]


def run(
    scale: float = 0.1,
    seed: int = 7,
    jobs: int = 1,
    shards: int | None = None,
    queue_depth: int | None = None,
    block_size: int | None = None,
    ledger=None,
    compact_every: int | None = None,
    prescreen: bool = True,
    profile: bool = False,
    windowed: bool = False,
    window_blocks: int | None = None,
    split_attacks: int = 0,
) -> StreamResult:
    """``ledger`` (path or open RunLedger) journals shard results at end
    of stream and skips already-journaled shards on resume; use
    :func:`run_with_engine` when the resume/record counters are needed."""
    return run_with_engine(
        scale=scale, seed=seed, jobs=jobs, shards=shards,
        queue_depth=queue_depth, block_size=block_size, ledger=ledger,
        compact_every=compact_every, prescreen=prescreen, profile=profile,
        windowed=windowed, window_blocks=window_blocks,
        split_attacks=split_attacks,
    )[0]


def run_with_engine(
    scale: float = 0.1,
    seed: int = 7,
    jobs: int = 1,
    shards: int | None = None,
    queue_depth: int | None = None,
    block_size: int | None = None,
    ledger=None,
    compact_every: int | None = None,
    prescreen: bool = True,
    profile: bool = False,
    windowed: bool = False,
    window_blocks: int | None = None,
    split_attacks: int = 0,
) -> tuple[StreamResult, StreamEngine]:
    config = WildScanConfig(
        scale=scale, seed=seed, jobs=jobs, shards=shards,
        prescreen=prescreen, profile=profile, split_attacks=split_attacks,
    )
    from .scan import _maybe_compacting

    ledger = _maybe_compacting(ledger, config, compact_every)
    kwargs = {}
    if queue_depth is not None:
        kwargs["queue_depth"] = queue_depth
    if block_size is not None:
        kwargs["block_size"] = block_size
    if window_blocks is not None:
        kwargs["window_blocks"] = window_blocks
    engine = StreamEngine(config, ledger=ledger, windowed=windowed, **kwargs)
    return engine.run(), engine


def render(
    scale: float = 0.1,
    jobs: int = 1,
    shards: int | None = None,
    queue_depth: int | None = None,
    block_size: int | None = None,
    ledger=None,
    compact_every: int | None = None,
    prescreen: bool = True,
    profile: bool = False,
    profile_out=None,
    windowed: bool = False,
    window_blocks: int | None = None,
    split_attacks: int = 0,
) -> str:
    streamed, engine = run_with_engine(
        scale=scale, jobs=jobs, shards=shards,
        queue_depth=queue_depth, block_size=block_size, ledger=ledger,
        compact_every=compact_every, prescreen=prescreen, profile=profile,
        windowed=windowed, window_blocks=window_blocks,
        split_attacks=split_attacks,
    )
    result = streamed.result
    alert_blocks = [stats for stats in streamed.blocks if stats.detections]
    lines = [
        f"Streaming scan at scale {scale} — {streamed.total_transactions} txs in "
        f"{len(streamed.blocks)} blocks ({streamed.shard_count} shards, "
        f"{streamed.jobs} workers, queue depth {streamed.queue_depth}, "
        f"{streamed.block_size} txs/block)",
        f"throughput: {streamed.txs_per_s:,.0f} txs/s "
        f"({streamed.elapsed_s:.2f}s wall); "
        f"block latency p50 {streamed.latency_percentile(0.5):.1f} ms, "
        f"p95 {streamed.latency_percentile(0.95):.1f} ms; "
        f"queue high-watermark {streamed.max_queue_depth}",
        f"detections: {result.detected_count} "
        f"({result.true_positives} true, precision {result.precision:.1%}) "
        f"across {len(alert_blocks)} alerting blocks",
    ]
    for stats in alert_blocks[:10]:
        lines.append(
            f"  block {stats.number:>9}: {stats.detections} detection(s) "
            f"in {stats.transactions} txs ({stats.latency_ms:.1f} ms)"
        )
    if len(alert_blocks) > 10:
        lines.append(f"  ... {len(alert_blocks) - 10} more alerting blocks")
    if streamed.windowed is not None:
        from ..leishen.window import windowed_recall

        lines.append(
            f"windowed: {len(streamed.windowed)} cross-transaction "
            f"detection(s) over a {streamed.window_blocks}-block window"
        )
        for detection in streamed.windowed[:10]:
            lines.append(
                f"  {detection.pattern} across {len(detection.tx_hashes)} txs "
                f"(blocks {detection.first_block}..{detection.last_block}"
                + (
                    f", split group {detection.split_group})"
                    if detection.split_group is not None
                    else ")"
                )
            )
        if split_attacks:
            recall = windowed_recall(streamed.windowed, range(split_attacks))
            lines.append(
                f"windowed recall on {split_attacks} labelled split "
                f"attack(s): {recall:.0%}"
            )
    if engine.ledger is not None:
        lines.append(
            f"ledger: {engine.ledger.path} — "
            f"{engine.ledger.resumed_count} shard(s) resumed from the journal, "
            f"{engine.ledger.recorded_count} freshly executed and recorded"
        )
    if streamed.profile is not None:
        from ..runtime.profile import render_profile, write_profile

        lines.append(render_profile(streamed.profile))
        if profile_out is not None:
            lines.append(
                f"profile written to {write_profile(streamed.profile, profile_out)}"
            )
    return "\n".join(lines)
