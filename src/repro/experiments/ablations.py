"""Ablation studies for the design choices DESIGN.md calls out.

1. app-level vs account-level transfers (the paper's Table IV argument);
2. each simplification rule disabled individually;
3. pattern-threshold sweeps (Sec. VII: relaxed thresholds raise both
   detections and false positives);
4. inter-app merge tolerance sweep;
5. the yield-aggregator heuristic (Sec. VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..leishen.detector import LeiShen, LeiShenConfig
from ..leishen.patterns import PatternConfig
from ..leishen.simplify import SimplifierConfig
from ..study.catalog import FLP_ATTACKS
from ..study.scenarios import SCENARIO_BUILDERS, ScenarioOutcome
from ..workload.generator import WildScanConfig, WildScanner

__all__ = ["AblationRow", "run_pipeline_ablation", "run_threshold_sweep", "render"]


@dataclass(frozen=True, slots=True)
class AblationRow:
    name: str
    detected: int
    total: int

    @property
    def recall(self) -> float:
        return self.detected / self.total if self.total else 0.0


def _detect_with(outcome: ScenarioOutcome, config: LeiShenConfig) -> bool:
    detector = LeiShen(outcome.world.chain, config)
    report = detector.analyze(outcome.trace)
    return report is not None and report.is_attack


def run_pipeline_ablation(keys: list[str] | None = None) -> list[AblationRow]:
    """Detection count over the known attacks for each pipeline variant."""
    metas = [m for m in FLP_ATTACKS if m.patterns and (keys is None or m.key in keys)]
    outcomes = [(m, SCENARIO_BUILDERS[m.key]()) for m in metas]

    def simplifier_for(outcome: ScenarioOutcome, **overrides) -> SimplifierConfig:
        return outcome.world.simplifier_config(**overrides)

    variants: list[tuple[str, object]] = [
        ("full pipeline", lambda o: LeiShenConfig(simplifier=simplifier_for(o))),
        (
            "account-level transfers",
            lambda o: LeiShenConfig(
                simplifier=simplifier_for(o), use_app_level_transfers=False
            ),
        ),
        (
            "no intra-app removal",
            lambda o: LeiShenConfig(simplifier=simplifier_for(o, remove_intra_app=False)),
        ),
        (
            "no WETH removal",
            lambda o: LeiShenConfig(simplifier=simplifier_for(o, remove_weth=False)),
        ),
        (
            "no inter-app merge",
            lambda o: LeiShenConfig(simplifier=simplifier_for(o, merge_inter_app=False)),
        ),
    ]
    rows: list[AblationRow] = []
    for name, make_config in variants:
        detected = sum(
            1 for _, outcome in outcomes if _detect_with(outcome, make_config(outcome))
        )
        rows.append(AblationRow(name=name, detected=detected, total=len(outcomes)))
    return rows


def run_threshold_sweep(scale: float = 0.02, seed: int = 7) -> list[tuple[str, int, int, float]]:
    """Sweep pattern thresholds on the wild scan: (variant, detected, TP, precision).

    Reproduces the paper's Sec. VII remark: relaxing thresholds (KRP buys
    5 -> 3, SBS volatility 28% -> 10%, MBS rounds 3 -> 2) increases
    detections and decreases precision.
    """
    sweeps = [
        ("paper thresholds", PatternConfig()),
        ("relaxed KRP (3 buys)", PatternConfig(krp_min_buys=3)),
        ("relaxed SBS (10% vol)", PatternConfig(sbs_min_volatility=0.10)),
        ("relaxed MBS (2 rounds)", PatternConfig(mbs_min_rounds=2)),
        (
            "all relaxed",
            PatternConfig(krp_min_buys=3, sbs_min_volatility=0.10, mbs_min_rounds=2),
        ),
    ]
    results = []
    for name, pattern_config in sweeps:
        result = WildScanner(
            WildScanConfig(scale=scale, seed=seed, pattern_config=pattern_config)
        ).run()
        results.append(
            (name, result.detected_count, result.true_positives, result.precision)
        )
    return results


def render() -> str:
    lines = ["Ablation 1 — pipeline variants over the 17 patterned known attacks"]
    for row in run_pipeline_ablation():
        lines.append(f"  {row.name:<26}{row.detected:>3}/{row.total} ({row.recall:.0%})")
    lines.append("Ablation 2 — pattern-threshold sweep on the wild scan (scale 0.02)")
    for name, detected, tp, precision in run_threshold_sweep():
        lines.append(f"  {name:<26}detected={detected:<5}TP={tp:<5}precision={precision:.1%}")
    return "\n".join(lines)
