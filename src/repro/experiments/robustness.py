"""Robustness study: per-family × per-mutation precision/recall.

FlashSyn-style attack synthesis shows that small, deterministic
perturbations of a known attack can silently defeat fixed-threshold
detectors. This experiment sweeps the mutation matrix of
:mod:`repro.workload.mutate` over one representative attack family per
registry pattern — the paper's KRP/SBS/MBS plus the adversarial
SANDWICH/MINT/DONATION families — and scores, per (family, mutation)
cell, whether the family's pattern still fires.

Measurement semantics:

- every run enables the **full** pattern registry, so a mutated KRP
  attack that morphs into something SBS-shaped is still visible in the
  per-cell ``patterns`` breakdown;
- mutated attacks are fee-subsidized (a pre-transaction cushion mint)
  so a mutation that destroys the attack's *profit* still executes —
  an evaded detection, never a reverted transaction;
- **recall** of a cell is the fraction of that cell's attack instances
  whose ground-truth family pattern matched;
- **precision** of a family is measured across the whole sweep plus a
  deterministic pool of benign flash transactions: of everything the
  family's pattern flagged, how much truly was that family.

Everything is seeded: world construction, attack instances and the
benign mix derive from ``seed`` alone, so the emitted table — and the
``BENCH_robustness.json`` artifact built on it — is reproducible
byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..chain.errors import ChainError
from ..leishen.detector import LeiShen, LeiShenConfig
from ..leishen.registry import ALL_PATTERN_KEYS, PatternSettings
from ..workload.attacks import (
    ADVERSARIAL_CLUSTERS,
    ATTACK_CLUSTERS,
    AttackCluster,
    WildAttackInjector,
)
from ..workload.mutate import MUTATIONS, Mutation
from ..workload.profiles import BENIGN_PROFILES, WildMarket
from ..world import DeFiWorld

__all__ = [
    "CellResult",
    "RobustnessResult",
    "family_clusters",
    "run",
    "render",
]

#: attack instances per (family, mutation) cell.
DEFAULT_INSTANCES = 2
#: benign flash transactions in the shared precision pool.
DEFAULT_BENIGN = 24


def family_clusters() -> dict[str, AttackCluster]:
    """One representative attack cluster per scored family.

    Paper families use the first single-pattern cluster of the matching
    shape from the historical catalog; adversarial families use their
    dedicated clusters. Insertion order is the report's row order.
    """
    families: dict[str, AttackCluster] = {}
    for key, shape in (("KRP", "krp"), ("SBS", "sbs"), ("MBS", "mbs")):
        for cluster in ATTACK_CLUSTERS:
            if cluster.shape == shape and cluster.truth_patterns == (key,):
                families[key] = cluster
                break
    for cluster in ADVERSARIAL_CLUSTERS:
        families[cluster.family] = cluster
    return families


@dataclass(slots=True)
class CellResult:
    """One (family, mutation) cell of the sweep."""

    family: str
    mutation: str
    instances: int = 0
    #: instances whose ground-truth family pattern matched.
    hits: int = 0
    #: every pattern that fired on this cell's traces, with counts —
    #: shows what a mutated attack morphs *into*, not just what it evades.
    patterns: dict[str, int] = field(default_factory=dict)
    #: instances that reverted despite the fee subsidy (should be 0).
    reverted: int = 0

    @property
    def recall(self) -> float:
        return self.hits / self.instances if self.instances else 0.0


@dataclass(slots=True)
class RobustnessResult:
    seed: int
    instances: int
    cells: list[CellResult] = field(default_factory=list)
    #: family -> [true positives, false positives] over the shared pool
    #: (sweep traces + benign transactions).
    precision_counts: dict[str, list[int]] = field(default_factory=dict)
    benign_total: int = 0
    benign_flagged: dict[str, int] = field(default_factory=dict)

    def cell(self, family: str, mutation: str) -> CellResult:
        for cell in self.cells:
            if cell.family == family and cell.mutation == mutation:
                return cell
        raise KeyError(f"no cell ({family!r}, {mutation!r})")

    def precision(self, family: str) -> float:
        tp, fp = self.precision_counts.get(family, [0, 0])
        return tp / (tp + fp) if tp + fp else 0.0

    def families(self) -> list[str]:
        ordered: list[str] = []
        for cell in self.cells:
            if cell.family not in ordered:
                ordered.append(cell.family)
        return ordered


def _mutation_asset_id(mutation_index: int, instance: int, instances: int) -> int:
    """A fresh mini market per (mutation, instance): mutated runs must not
    trade against pools a previous mutation already moved."""
    return mutation_index * instances + instance


def run(
    seed: int = 7,
    instances: int = DEFAULT_INSTANCES,
    benign: int = DEFAULT_BENIGN,
    mutations: tuple[Mutation, ...] = MUTATIONS,
) -> RobustnessResult:
    """Execute the full sweep and return the scored matrix."""
    result = RobustnessResult(seed=seed, instances=instances)
    settings = PatternSettings(enabled=ALL_PATTERN_KEYS)
    families = family_clusters()
    result.precision_counts = {key: [0, 0] for key in families}
    result.benign_flagged = {key: 0 for key in families}
    for family, cluster in families.items():
        # One world per family: mutated instances of one family share
        # venues (via distinct asset ids) but families never interact.
        rng = random.Random(f"robustness:{seed}:{family}")
        world = DeFiWorld()
        market = WildMarket(world, rng)
        injector = WildAttackInjector(market, rng, scale=1.0)
        detector = LeiShen(world.chain, LeiShenConfig(patterns=settings))
        for mutation_index, mutation in enumerate(mutations):
            cell = CellResult(family=family, mutation=mutation.key)
            result.cells.append(cell)
            for instance in range(instances):
                cell.instances += 1
                asset_id = _mutation_asset_id(mutation_index, instance, instances)
                try:
                    labeled = injector.execute(
                        cluster, instance, instance, asset_id, None,
                        mutation=mutation, subsidize=True,
                    )
                except ChainError:
                    cell.reverted += 1
                    continue
                report = detector.analyze(labeled.trace)
                matched = report.patterns if report is not None else set()
                for key in matched:
                    cell.patterns[key] = cell.patterns.get(key, 0) + 1
                if family in matched:
                    cell.hits += 1
                for key in families:
                    if key not in matched:
                        continue
                    counts = result.precision_counts[key]
                    if key == family:
                        counts[0] += 1
                    else:
                        counts[1] += 1
        # benign pool: deterministic slice of the benign profile mix,
        # detected with the same full-registry settings.
        for i in range(benign):
            result.benign_total += 1
            _, _, runner = BENIGN_PROFILES[i % len(BENIGN_PROFILES)]
            try:
                labeled = runner(market)
            except ChainError:
                continue
            report = detector.analyze(labeled.trace)
            matched = report.patterns if report is not None else set()
            for key in families:
                if key in matched:
                    result.benign_flagged[key] += 1
                    result.precision_counts[key][1] += 1
    return result


def render(
    result: RobustnessResult | None = None,
    seed: int = 7,
    instances: int = DEFAULT_INSTANCES,
) -> str:
    """The per-family × per-mutation recall table, plus precision."""
    result = result if result is not None else run(seed=seed, instances=instances)
    families = result.families()
    mutation_keys = []
    for cell in result.cells:
        if cell.mutation not in mutation_keys:
            mutation_keys.append(cell.mutation)
    width = max(len(key) for key in mutation_keys) + 2
    lines = [
        f"Robustness sweep — per-family recall under attack mutation "
        f"(seed {result.seed}, {result.instances} instances/cell)",
        f"{'mutation':<{width}}" + "".join(f"{f:>10}" for f in families),
    ]
    for key in mutation_keys:
        row = f"{key:<{width}}"
        for family in families:
            cell = result.cell(family, key)
            note = "!" if cell.reverted else ""
            row += f"{cell.recall:>9.0%}{note or ' '}"
        lines.append(row)
    lines.append(
        f"{'precision':<{width}}"
        + "".join(f"{result.precision(f):>9.0%} " for f in families)
    )
    lines.append(
        f"benign pool: {result.benign_total} txs, flagged: "
        + (", ".join(
            f"{key}={count}" for key, count in result.benign_flagged.items() if count
        ) or "none")
    )
    evaded = [
        f"{cell.family}/{cell.mutation}"
        for cell in result.cells
        if cell.mutation != "baseline" and cell.recall == 0.0
    ]
    lines.append("evading cells: " + (", ".join(evaded) or "none"))
    return "\n".join(lines)
