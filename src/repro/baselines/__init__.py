"""Comparison detectors: DeFiRanger, Explorer+LeiShen, volatility threshold."""

from .defiranger import DeFiRanger, DeFiRangerReport
from .explorer_trades import ExplorerLeiShen
from .volatility import VolatilityDetector, VolatilityReport

__all__ = [
    "DeFiRanger",
    "DeFiRangerReport",
    "ExplorerLeiShen",
    "VolatilityDetector",
    "VolatilityReport",
]
