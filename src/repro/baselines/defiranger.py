"""DeFiRanger-style baseline detector (Wu et al., arXiv:2104.15068).

The paper compares LeiShen against DeFiRanger on the 22 known attacks
(Table IV). Two structural limitations drive DeFiRanger's misses, both
called out in the paper:

1. it works on **account-level** transfers — it never groups the accounts
   of one application (or one attacker) under a common tag, so a trade
   executed through a different account of the same app, or split across
   two attacker contracts, falls outside its patterns;
2. its price-manipulation patterns consider **two trades** — a buy of a
   token followed by a profitable sell with the *same* counterparty
   account. Batch buying (KRP) and trades whose price-raising leg is
   executed by the victim (bZx-1's margin trade) cannot be depicted.

This reimplementation reproduces exactly that behaviour: trade actions
are lifted from raw account-level transfers (addresses as tags), and the
detection rule is the two-trade buy-low/sell-high round against one
counterparty account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..chain.trace import TransactionTrace
from ..chain.types import Address, ZERO_ADDRESS
from ..leishen.identify import FlashLoanIdentifier
from ..leishen.simplify import AppTransfer
from ..leishen.tagging import BLACKHOLE_TAG
from ..leishen.trades import Trade, TradeIdentifier

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["DeFiRanger", "DeFiRangerReport"]


@dataclass(slots=True)
class DeFiRangerReport:
    """DeFiRanger's verdict for one transaction."""

    tx_hash: str
    is_attack: bool
    trades: list[Trade]
    evidence: list[tuple[Trade, Trade]]


class DeFiRanger:
    """Account-level two-trade price-manipulation detector."""

    #: the buy and sell legs of a manipulation round must move (nearly)
    #: the same quantity — DeFiRanger matches round-trips, not batches.
    AMOUNT_TOLERANCE = 0.002

    def __init__(self, chain: "Chain") -> None:
        self.chain = chain
        self.identifier = FlashLoanIdentifier()
        self.trade_identifier = TradeIdentifier()

    def analyze(self, trace: TransactionTrace) -> DeFiRangerReport | None:
        """``None`` when the transaction takes no flash loan."""
        if not trace.success:
            return None
        flash_loans = self.identifier.identify(trace)
        if not flash_loans:
            return None
        borrower = str(flash_loans[0].borrower)
        transfers = [
            AppTransfer(
                seq=t.seq,
                sender=self._tag(t.sender),
                receiver=self._tag(t.receiver),
                amount=t.amount,
                token=t.token,
            )
            for t in trace.transfers
        ]
        trades = self.trade_identifier.identify(transfers)
        evidence = self._profitable_rounds(trades, borrower)
        return DeFiRangerReport(
            tx_hash=trace.tx_hash,
            is_attack=bool(evidence),
            trades=trades,
            evidence=evidence,
        )

    def detect(self, trace: TransactionTrace) -> bool:
        report = self.analyze(trace)
        return report is not None and report.is_attack

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _tag(address: Address) -> str:
        return BLACKHOLE_TAG if address == ZERO_ADDRESS else str(address)

    @classmethod
    def _profitable_rounds(cls, trades: list[Trade], borrower: str) -> list[tuple[Trade, Trade]]:
        """Buy token X, later sell (nearly) the same amount of X to the
        *same counterparty account* at a better rate — DeFiRanger's
        two-trade manipulation shape."""
        rounds: list[tuple[Trade, Trade]] = []
        for i, buy in enumerate(trades):
            if buy.buyer != borrower:
                continue
            token = buy.token_buy
            for sell in trades[i + 1 :]:
                if sell.buyer != borrower or sell.token_sell != token:
                    continue
                if sell.seller != buy.seller:
                    continue  # account-level: must be the same account
                if sell.token_buy != buy.token_sell:
                    continue  # quote currency must match for rate comparison
                big = max(buy.amount_buy, sell.amount_sell)
                if big == 0 or abs(buy.amount_buy - sell.amount_sell) / big > cls.AMOUNT_TOLERANCE:
                    continue  # batches and partial exits are not a round
                if buy.sell_rate < sell.buy_rate:
                    rounds.append((buy, sell))
        return rounds
