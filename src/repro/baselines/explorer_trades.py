"""Explorer(+LeiShen) baseline (paper Sec. VI-B, Table IV column 4).

Etherscan and BscScan expose "transaction actions" — trades recovered
from the *event logs* DeFi contracts choose to emit. The paper feeds
those explorer trades into LeiShen's pattern matching and finds only four
of the known attacks: many protocols (margin venues, lending markets,
several forks' vaults) simply do not implement trade events, so the trade
stream the explorer sees is incomplete.

This baseline mirrors that: it rebuilds trades exclusively from emitted
trade-shaped events (Uniswap ``Swap``/``Mint``/``Burn``, Balancer
``LOG_SWAP``, Curve ``TokenExchange``, vault ``Deposit``/``Withdraw``),
lifts the parties with the same account tagger LeiShen uses, and then
runs the unchanged KRP/SBS/MBS matchers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chain.trace import LogRecord, TransactionTrace
from ..defi.curve import StableSwapPool
from ..defi.uniswap import UniswapV2Pair
from ..defi.vault import Vault
from ..leishen.identify import FlashLoanIdentifier
from ..leishen.patterns import PatternConfig, PatternMatch, PatternMatcher
from ..leishen.registry import PatternSettings
from ..leishen.tagging import AccountTagger
from ..leishen.trades import Trade, TradeKind

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["ExplorerLeiShen"]


class ExplorerLeiShen:
    """LeiShen's patterns over explorer-style event-derived trades."""

    def __init__(
        self,
        chain: "Chain",
        config: PatternConfig | PatternSettings | None = None,
    ) -> None:
        self.chain = chain
        self.identifier = FlashLoanIdentifier()
        self.tagger = AccountTagger(chain)
        self.matcher = PatternMatcher(config)

    def detect(self, trace: TransactionTrace) -> bool:
        matches = self.analyze(trace)
        return matches is not None and bool(matches)

    def analyze(self, trace: TransactionTrace) -> list[PatternMatch] | None:
        if not trace.success:
            return None
        flash_loans = self.identifier.identify(trace)
        if not flash_loans:
            return None
        trades = self.extract_trades(trace)
        borrower_tag = self.tagger.tag_of(flash_loans[0].borrower)
        return self.matcher.match(trades, borrower_tag)

    # -- event -> trade lifting ----------------------------------------------

    def extract_trades(self, trace: TransactionTrace) -> list[Trade]:
        trades: list[Trade] = []
        for log in trace.logs:
            trade = self._trade_of(log)
            if trade is not None:
                trades.append(trade)
        return trades

    def _trade_of(self, log: LogRecord) -> Trade | None:
        handler = getattr(self, f"_on_{log.event.lower()}", None)
        if handler is None:
            return None
        return handler(log)

    # Uniswap V2 Swap(sender, amount0In, amount1In, amount0Out, amount1Out, to)
    def _on_swap(self, log: LogRecord) -> Trade | None:
        pair = self.chain.contracts.get(log.emitter)
        if not isinstance(pair, UniswapV2Pair):
            return None
        amount0_in = log.param("amount0In", 0)
        amount1_in = log.param("amount1In", 0)
        amount0_out = log.param("amount0Out", 0)
        amount1_out = log.param("amount1Out", 0)
        if amount0_in and amount1_out:
            sell_amt, sell_tok, buy_amt, buy_tok = amount0_in, pair.token0, amount1_out, pair.token1
        elif amount1_in and amount0_out:
            sell_amt, sell_tok, buy_amt, buy_tok = amount1_in, pair.token1, amount0_out, pair.token0
        else:
            return None
        return Trade(
            seq=log.seq,
            kind=TradeKind.SWAP,
            buyer=self.tagger.tag_of(log.param("to", log.param("sender"))),
            seller=self.tagger.tag_of(log.emitter),
            amount_sell=sell_amt,
            token_sell=sell_tok,
            amount_buy=buy_amt,
            token_buy=buy_tok,
        )

    # Balancer LOG_SWAP(caller, tokenIn, tokenOut, tokenAmountIn, tokenAmountOut)
    def _on_log_swap(self, log: LogRecord) -> Trade | None:
        return Trade(
            seq=log.seq,
            kind=TradeKind.SWAP,
            buyer=self.tagger.tag_of(log.param("caller")),
            seller=self.tagger.tag_of(log.emitter),
            amount_sell=log.param("tokenAmountIn", 0),
            token_sell=log.param("tokenIn"),
            amount_buy=log.param("tokenAmountOut", 0),
            token_buy=log.param("tokenOut"),
        )

    # Curve TokenExchange(buyer, sold_id, tokens_sold, bought_id, tokens_bought)
    def _on_tokenexchange(self, log: LogRecord) -> Trade | None:
        pool = self.chain.contracts.get(log.emitter)
        if not isinstance(pool, StableSwapPool):
            return None
        sold_id = log.param("sold_id", 0)
        bought_id = log.param("bought_id", 0)
        return Trade(
            seq=log.seq,
            kind=TradeKind.SWAP,
            buyer=self.tagger.tag_of(log.param("buyer")),
            seller=self.tagger.tag_of(log.emitter),
            amount_sell=log.param("tokens_sold", 0),
            token_sell=pool.coins[sold_id],
            amount_buy=log.param("tokens_bought", 0),
            token_buy=pool.coins[bought_id],
        )

    # Vault Deposit(account, amount, shares) -> mint-liquidity trade
    def _on_deposit(self, log: LogRecord) -> Trade | None:
        vault = self.chain.contracts.get(log.emitter)
        if not isinstance(vault, Vault):
            return None
        return Trade(
            seq=log.seq,
            kind=TradeKind.MINT_LIQUIDITY,
            buyer=self.tagger.tag_of(log.param("account")),
            seller=self.tagger.tag_of(log.emitter),
            amount_sell=log.param("amount", 0),
            token_sell=vault.underlying,
            amount_buy=log.param("shares", 0),
            token_buy=vault.address,
        )

    # Vault Withdraw(account, amount, shares) -> remove-liquidity trade
    def _on_withdraw(self, log: LogRecord) -> Trade | None:
        vault = self.chain.contracts.get(log.emitter)
        if not isinstance(vault, Vault):
            return None
        return Trade(
            seq=log.seq,
            kind=TradeKind.REMOVE_LIQUIDITY,
            buyer=self.tagger.tag_of(log.param("account")),
            seller=self.tagger.tag_of(log.emitter),
            amount_sell=log.param("shares", 0),
            token_sell=vault.address,
            amount_buy=log.param("amount", 0),
            token_buy=vault.underlying,
        )

