"""Price-volatility threshold baseline (Xue et al., ICAIS 2022).

The related work the paper contrasts with monitors the price volatility a
transaction causes via the DEX's price-inquiry methods: a transaction
that moves a tracked price by more than a fixed threshold (they use 99%)
is flagged. LeiShen's empirical study shows why this misses attacks —
several real flpAttacks (e.g. Harvest Finance at 0.5%) barely move the
price at all.

Our reimplementation computes per-pair volatility over the transaction's
identified trades (the same metric as Table I) and flags the transaction
when any pair exceeds the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..chain.trace import TransactionTrace
from ..leishen.detector import LeiShen
from ..leishen.identify import FlashLoanIdentifier
from ..leishen.report import pair_volatilities

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["VolatilityDetector", "VolatilityReport"]


@dataclass(frozen=True, slots=True)
class VolatilityReport:
    tx_hash: str
    max_volatility: float
    is_attack: bool


class VolatilityDetector:
    """Flags flash loan transactions whose max pair volatility >= threshold."""

    def __init__(self, leishen: LeiShen, threshold: float = 0.99) -> None:
        """Reuses a LeiShen instance's transfer/trade pipeline to observe
        prices; only the decision rule differs."""
        self._leishen = leishen
        self.threshold = threshold
        self._identifier = FlashLoanIdentifier()

    def analyze(self, trace: TransactionTrace) -> VolatilityReport | None:
        if not trace.success or not self._identifier.identify(trace):
            return None
        report = self._leishen.analyze(trace)
        if report is None:
            return None
        volatility = max(pair_volatilities(report.trades).values(), default=0.0)
        return VolatilityReport(
            tx_hash=trace.tx_hash,
            max_volatility=volatility,
            is_attack=volatility >= self.threshold,
        )

    def detect(self, trace: TransactionTrace) -> bool:
        report = self.analyze(trace)
        return report is not None and report.is_attack
