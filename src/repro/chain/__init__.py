"""Simulated Ethereum substrate: accounts, state, contracts, traces.

This package replaces the paper's archive Geth node and replay
instrumentation. See DESIGN.md for the substitution argument.
"""

from .chain import Block, Chain, GENESIS_TIMESTAMP, SECONDS_PER_BLOCK
from .contract import Contract, Msg, external
from .errors import (
    ChainError,
    InsufficientAllowance,
    InsufficientBalance,
    InsufficientLiquidity,
    NotAContract,
    Revert,
    UnknownAccount,
    UnknownFunction,
)
from .explorer import ChainExplorer
from .state import StateJournal, StorageView
from .trace import CallRecord, CreationRecord, LogRecord, TransactionTrace, TransferRecord
from .types import (
    Address,
    AddressFactory,
    BLACKHOLE,
    ETH,
    ETHER,
    GWEI,
    WEI,
    ZERO_ADDRESS,
    from_wei,
    keccak_address,
    to_wei,
)

__all__ = [
    "Address",
    "AddressFactory",
    "BLACKHOLE",
    "Block",
    "CallRecord",
    "Chain",
    "ChainError",
    "ChainExplorer",
    "Contract",
    "CreationRecord",
    "ETH",
    "ETHER",
    "GENESIS_TIMESTAMP",
    "GWEI",
    "InsufficientAllowance",
    "InsufficientBalance",
    "InsufficientLiquidity",
    "LogRecord",
    "Msg",
    "NotAContract",
    "Revert",
    "SECONDS_PER_BLOCK",
    "StateJournal",
    "StorageView",
    "TransactionTrace",
    "TransferRecord",
    "UnknownAccount",
    "UnknownFunction",
    "WEI",
    "ZERO_ADDRESS",
    "external",
    "from_wei",
    "keccak_address",
    "to_wei",
]
