"""Journaled world state.

All mutable chain state (Ether balances, ERC20 ledgers, AMM reserves, vault
shares, ...) lives in one flat key/value store with write-ahead journaling.
A transaction opens a checkpoint before executing; a :class:`Revert` rolls
the journal back to that checkpoint, which is how the substrate implements
Ethereum's transaction atomicity — the property flash loans rely on.

Keys are ``(owner_address, slot)`` tuples where ``slot`` is any hashable
(usually a string or a ``(name, subkey)`` tuple), mirroring contract storage
slots without the 256-bit encoding noise.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

from .types import Address

__all__ = ["StateJournal", "StorageView"]

_MISSING = object()


class StateJournal:
    """A flat key/value store with nested checkpoints.

    The journal records, for every write since the innermost open
    checkpoint, the key's *previous* value (or a tombstone if it was
    absent). ``rollback`` replays the journal in reverse; ``commit`` folds
    the journal entries into the parent checkpoint so outer rollbacks still
    restore correctly.
    """

    def __init__(self) -> None:
        self._data: dict[tuple[Address, Hashable], Any] = {}
        self._journals: list[dict[tuple[Address, Hashable], Any]] = []

    # -- reads ---------------------------------------------------------

    def get(self, owner: Address, slot: Hashable, default: Any = None) -> Any:
        return self._data.get((owner, slot), default)

    def contains(self, owner: Address, slot: Hashable) -> bool:
        return (owner, slot) in self._data

    def items_for(self, owner: Address) -> Iterator[tuple[Hashable, Any]]:
        """Iterate ``(slot, value)`` pairs owned by one address (for debugging
        and explorer views; O(total state), not used on hot paths)."""
        for (addr, slot), value in self._data.items():
            if addr == owner:
                yield slot, value

    # -- writes --------------------------------------------------------

    def set(self, owner: Address, slot: Hashable, value: Any) -> None:
        key = (owner, slot)
        if self._journals:
            journal = self._journals[-1]
            if key not in journal:
                journal[key] = self._data.get(key, _MISSING)
        self._data[key] = value

    def delete(self, owner: Address, slot: Hashable) -> None:
        key = (owner, slot)
        if key not in self._data:
            return
        if self._journals:
            journal = self._journals[-1]
            if key not in journal:
                journal[key] = self._data[key]
        del self._data[key]

    def add(self, owner: Address, slot: Hashable, delta: int) -> int:
        """Numeric read-modify-write helper; returns the new value."""
        new = self.get(owner, slot, 0) + delta
        self.set(owner, slot, new)
        return new

    # -- checkpoints ----------------------------------------------------

    def checkpoint(self) -> int:
        """Open a nested checkpoint; returns its depth (for assertions)."""
        self._journals.append({})
        return len(self._journals)

    def commit(self) -> None:
        """Fold the innermost checkpoint into its parent."""
        if not self._journals:
            raise RuntimeError("commit without checkpoint")
        journal = self._journals.pop()
        if self._journals:
            parent = self._journals[-1]
            for key, old in journal.items():
                if key not in parent:
                    parent[key] = old

    def rollback(self) -> None:
        """Undo every write since the innermost checkpoint."""
        if not self._journals:
            raise RuntimeError("rollback without checkpoint")
        journal = self._journals.pop()
        for key, old in journal.items():
            if old is _MISSING:
                self._data.pop(key, None)
            else:
                self._data[key] = old

    @property
    def depth(self) -> int:
        return len(self._journals)

    def __len__(self) -> int:
        return len(self._data)


class StorageView:
    """A contract-scoped facade over the shared :class:`StateJournal`.

    Contracts read and write their own storage through this view so all
    mutations stay journaled (and therefore revertible) without each
    contract knowing about checkpoints.
    """

    __slots__ = ("_state", "_owner")

    def __init__(self, state: StateJournal, owner: Address) -> None:
        self._state = state
        self._owner = owner

    def get(self, slot: Hashable, default: Any = None) -> Any:
        return self._state.get(self._owner, slot, default)

    def set(self, slot: Hashable, value: Any) -> None:
        self._state.set(self._owner, slot, value)

    def add(self, slot: Hashable, delta: int) -> int:
        return self._state.add(self._owner, slot, delta)

    def delete(self, slot: Hashable) -> None:
        self._state.delete(self._owner, slot)

    def contains(self, slot: Hashable) -> bool:
        return self._state.contains(self._owner, slot)
