"""Exception hierarchy of the chain substrate.

A :class:`Revert` raised anywhere inside a transaction unwinds the whole
transaction and rolls back every state change — this is the atomicity
property that makes flash loans safe for the lender (paper Sec. I).
"""

from __future__ import annotations

__all__ = [
    "ChainError",
    "Revert",
    "InsufficientBalance",
    "InsufficientAllowance",
    "InsufficientLiquidity",
    "UnknownAccount",
    "NotAContract",
    "UnknownFunction",
]


class ChainError(Exception):
    """Base class for all substrate errors."""


class Revert(ChainError):
    """EVM-style revert: the enclosing transaction is aborted atomically."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "execution reverted")
        self.reason = reason


class InsufficientBalance(Revert):
    """An account tried to move more of an asset than it holds."""


class InsufficientAllowance(Revert):
    """``transferFrom`` exceeded the spender's ERC20 allowance."""


class InsufficientLiquidity(Revert):
    """A pool cannot satisfy the requested output amount."""


class UnknownAccount(ChainError):
    """Lookup of an address the chain has never seen."""


class NotAContract(ChainError):
    """A call targeted an externally-owned account."""


class UnknownFunction(Revert):
    """Call to a function selector the contract does not implement."""
