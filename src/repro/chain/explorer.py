"""Etherscan-like chain explorer facade.

LeiShen consumes two external datasets in the paper: the Etherscan label
cloud (52,500 tagged accounts of 119 DeFi applications) and the XBlock-ETH
contract-creation dataset. Both are views over chain history, so this
module derives them from the simulated chain.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from .chain import Chain
from .trace import TransactionTrace
from .types import Address

__all__ = ["ChainExplorer"]


class ChainExplorer:
    """Read-only queries over a chain's labels, creations and transactions."""

    def __init__(self, chain: Chain) -> None:
        self._chain = chain

    # -- labels ----------------------------------------------------------

    def label_of(self, address: Address) -> str | None:
        return self._chain.labels.get(address)

    def labelled_accounts(self) -> dict[Address, str]:
        return dict(self._chain.labels)

    def remove_label(self, address: Address) -> None:
        """Drop a label (the paper removes attacker tags before detection)."""
        self._chain.labels.pop(address, None)

    # -- creation graph ---------------------------------------------------

    def creator_of(self, address: Address) -> Address | None:
        return self._chain.created_by.get(address)

    def creations_of(self, creator: Address) -> list[Address]:
        return [rec.created for rec in self._chain.creations if rec.creator == creator]

    def creation_forest(self) -> dict[Address, list[Address]]:
        """Creator -> directly created contracts, over all history."""
        forest: dict[Address, list[Address]] = defaultdict(list)
        for record in self._chain.creations:
            forest[record.creator].append(record.created)
        return dict(forest)

    def creation_root(self, address: Address) -> Address:
        """Walk creator edges up to the root (an externally-owned account)."""
        current = address
        seen = {current}
        while True:
            parent = self._chain.created_by.get(current)
            if parent is None or parent in seen:
                return current
            seen.add(parent)
            current = parent

    # -- transactions -------------------------------------------------------

    def transactions(self) -> Iterator[TransactionTrace]:
        for block in self._chain.blocks:
            yield from block.traces

    def transactions_between(self, first_block: int, last_block: int) -> Iterator[TransactionTrace]:
        for block in self._chain.blocks:
            if first_block <= block.number <= last_block:
                yield from block.traces

    def blocks_between(
        self, first_block: int, last_block: int
    ) -> Iterator[tuple[int, list[TransactionTrace]]]:
        """Blocks in the range as ``(number, traces)`` pairs, in chain order.

        The block-granular view :mod:`repro.engine.stream` consumes when
        replaying recorded history through a detector.
        """
        for block in self._chain.blocks:
            if first_block <= block.number <= last_block:
                yield block.number, list(block.traces)
