"""Execution traces.

The paper's key instrumentation (Sec. V-A) is a modified Geth that records
the *happened-before* relationship between internal transactions (Ether
transfers) and ERC20 ``Transfer`` event logs. We reproduce that directly:
every observable effect of a transaction — asset transfer, message call,
event log, contract creation — is stamped with one global sequence number,
so the merged stream is totally ordered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from .types import Address, ETHER

__all__ = [
    "TransferRecord",
    "CallRecord",
    "LogRecord",
    "CreationRecord",
    "TransactionTrace",
]


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One account-level asset transfer T_i = (sender, receiver, amount, token).

    ``token == ETHER`` marks a native Ether movement (an internal
    transaction in real Ethereum); any other token address marks an ERC20
    ``Transfer`` log.
    """

    seq: int
    sender: Address
    receiver: Address
    amount: int
    token: Address

    @property
    def is_ether(self) -> bool:
        return self.token == ETHER

    def __str__(self) -> str:  # pragma: no cover - rendering helper
        return (
            f"T{self.seq}: {self.sender.short} -> {self.receiver.short} "
            f"{self.amount} {self.token.short}"
        )


@dataclass(frozen=True, slots=True)
class CallRecord:
    """A message call (external or internal) observed during execution."""

    seq: int
    caller: Address
    callee: Address
    function: str
    depth: int
    value: int = 0


@dataclass(frozen=True, slots=True)
class LogRecord:
    """An event log emitted by a contract."""

    seq: int
    emitter: Address
    event: str
    params: tuple[tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default


@dataclass(frozen=True, slots=True)
class CreationRecord:
    """A contract creation: ``creator`` deployed ``created``.

    The account tagging step (Sec. V-B-1) builds its creation trees from
    these records.
    """

    seq: int
    creator: Address
    created: Address


@dataclass(slots=True)
class TransactionTrace:
    """Everything LeiShen observes about one executed transaction."""

    tx_hash: str
    sender: Address
    to: Address | None
    function: str
    block_number: int
    timestamp: int
    success: bool = True
    revert_reason: str | None = None
    transfers: list[TransferRecord] = field(default_factory=list)
    calls: list[CallRecord] = field(default_factory=list)
    logs: list[LogRecord] = field(default_factory=list)
    creations: list[CreationRecord] = field(default_factory=list)

    def ordered_events(self) -> Iterator[TransferRecord | CallRecord | LogRecord | CreationRecord]:
        """Merge every record stream in happened-before (sequence) order."""
        merged: list[Any] = [*self.transfers, *self.calls, *self.logs, *self.creations]
        merged.sort(key=lambda record: record.seq)
        return iter(merged)

    def called_functions(self) -> set[str]:
        return {call.function for call in self.calls}

    def emitted_events(self) -> set[str]:
        return {log.event for log in self.logs}

    def tokens_touched(self) -> set[Address]:
        return {transfer.token for transfer in self.transfers}

    def net_flows(self, account: Address) -> dict[Address, int]:
        """Net asset delta of ``account`` over the transaction, per token."""
        flows: dict[Address, int] = {}
        for transfer in self.transfers:
            if transfer.receiver == account:
                flows[transfer.token] = flows.get(transfer.token, 0) + transfer.amount
            if transfer.sender == account:
                flows[transfer.token] = flows.get(transfer.token, 0) - transfer.amount
        return {token: delta for token, delta in flows.items() if delta != 0}
