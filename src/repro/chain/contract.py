"""Contract programming model.

Protocols (and attack contracts) are Python classes deriving from
:class:`Contract`. Externally callable entry points are marked with the
:func:`external` decorator and receive a :class:`Msg` carrying the caller
and attached Ether value — the moral equivalent of Solidity's ``msg``.

All persistent contract state must go through ``self.storage`` (a
:class:`~repro.chain.state.StorageView`) so that reverts roll it back;
plain Python attributes are treated as immutable configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, TypeVar

from .errors import UnknownFunction
from .state import StorageView
from .types import Address

if TYPE_CHECKING:  # pragma: no cover
    from .chain import Chain

__all__ = ["Msg", "Contract", "external"]

F = TypeVar("F", bound=Callable[..., Any])


@dataclass(frozen=True, slots=True)
class Msg:
    """Call context handed to every external function."""

    sender: Address
    value: int = 0


def external(func: F) -> F:
    """Mark a contract method as an externally callable entry point."""
    func.__external__ = True  # type: ignore[attr-defined]
    return func


class Contract:
    """Base class for every deployed contract.

    Attributes
    ----------
    chain:
        The chain this contract lives on; used for nested calls, event
        emission and asset movement.
    address:
        The contract's account address.
    storage:
        Journaled persistent storage scoped to this contract.
    app_name:
        Optional DeFi application name. Deployments carrying an app name
        seed the Etherscan-style label database used by account tagging.
    """

    #: Default application name for instances of this contract class.
    APP_NAME: str | None = None

    def __init__(self, chain: "Chain", address: Address) -> None:
        self.chain = chain
        self.address = address
        self.storage = StorageView(chain.state, address)
        self.app_name: str | None = self.APP_NAME
        #: whether this contract implements trade events. Some real DeFi
        #: apps never emit Swap/Deposit-style events, which is why the
        #: explorer baseline misses their trades (paper Sec. VI-B);
        #: scenarios flip this to reproduce that.
        self.emits_trade_events: bool = True

    # -- dispatch --------------------------------------------------------

    def dispatch(self, function: str, msg: Msg, /, *args: Any, **kwargs: Any) -> Any:
        """Invoke an external entry point by name (used by the chain).

        A method is dispatchable if *any* definition of that name in the
        class hierarchy is marked ``@external`` — so interface base classes
        (e.g. flash-loan receiver callbacks) can declare the entry point
        once and subclasses can override without re-decorating.
        """
        handler = getattr(self, function, None)
        if handler is None or not self._is_external(function):
            raise UnknownFunction(f"{type(self).__name__} has no external fn {function!r}")
        return handler(msg, *args, **kwargs)

    @classmethod
    def _is_external(cls, function: str) -> bool:
        for klass in cls.__mro__:
            candidate = klass.__dict__.get(function)
            if candidate is not None and getattr(candidate, "__external__", False):
                return True
        return False

    # -- convenience wrappers used by subclasses --------------------------

    def call(self, target: Address, function: str, /, *args: Any, value: int = 0, **kwargs: Any) -> Any:
        """Make a nested message call with this contract as ``msg.sender``."""
        return self.chain.call(self.address, target, function, *args, value=value, **kwargs)

    def emit(self, event: str, **params: Any) -> None:
        """Emit an event log from this contract."""
        self.chain.emit_log(self.address, event, **params)

    def emit_trade(self, event: str, **params: Any) -> None:
        """Emit a *trade* event, unless this deployment doesn't implement
        trade events (``emits_trade_events = False``)."""
        if self.emits_trade_events:
            self.chain.emit_log(self.address, event, **params)

    def receive_ether(self, msg: Msg) -> None:
        """Hook invoked when plain Ether is sent to the contract.

        Default accepts silently (like an empty ``receive()``); WETH
        overrides this to mint on deposit.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} at {self.address.short}>"
