"""The chain: accounts, atomic transaction execution and trace capture.

This is the reproduction's stand-in for an archive Geth node plus the
paper's replay instrumentation. It executes message calls against Python
contract objects, journals every state write so a revert unwinds the whole
transaction, and stamps every observable effect (Ether transfer, ERC20
transfer, call, log, creation) with a global sequence number — giving
LeiShen the totally ordered transfer history Sec. V-A requires.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Type, TypeVar

from .contract import Contract, Msg
from .errors import (
    ChainError,
    InsufficientBalance,
    NotAContract,
    Revert,
    UnknownAccount,
)
from .state import StateJournal
from .trace import (
    CallRecord,
    CreationRecord,
    LogRecord,
    TransactionTrace,
    TransferRecord,
)
from .types import Address, AddressFactory, ETHER, keccak_address

__all__ = ["Chain", "Block", "GENESIS_TIMESTAMP", "SECONDS_PER_BLOCK"]

C = TypeVar("C", bound=Contract)

#: Block 0 timestamp; chosen so block 9,484,688 lands on 2020-02-15,
#: the day of the first flpAttack (bZx-1).
GENESIS_TIMESTAMP = 1_455_300_000
SECONDS_PER_BLOCK = 13

_ETH_BALANCE = "eth_balance"
_CHAIN_OWNER = Address("0x" + "c" * 40)


class _LabelMap(dict):
    """Label store that bumps the owning chain's generation counters.

    Tests and callers mutate ``chain.labels`` directly, so the dict itself
    must advance the counters consumers (``AccountTagger``) key their
    cache invalidation on.
    """

    __slots__ = ("_chain",)

    def __init__(self, chain: "Chain") -> None:
        super().__init__()
        self._chain = chain

    def _bump(self) -> None:
        chain = self._chain
        chain.version += 1
        chain.labels_version += 1

    def __setitem__(self, key: Address, value: str) -> None:
        super().__setitem__(key, value)
        self._bump()

    def __delitem__(self, key: Address) -> None:
        super().__delitem__(key)
        self._bump()

    def pop(self, *args):
        result = super().pop(*args)
        self._bump()
        return result

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self._bump()

    def clear(self) -> None:
        super().clear()
        self._bump()


@dataclass(slots=True)
class Block:
    """A mined block: a number, a timestamp and the included traces."""

    number: int
    timestamp: int
    traces: list[TransactionTrace] = field(default_factory=list)


class Chain:
    """A single simulated blockchain instance.

    Parameters
    ----------
    name:
        Chain profile name (``"ethereum"`` or ``"bsc"``); only affects
        labelling and the native-asset symbol used in reports.
    """

    def __init__(self, name: str = "ethereum", keep_history: bool = True) -> None:
        self.name = name
        #: when False, executed traces are returned to the caller but not
        #: retained in blocks — used by the full-scale wild scan to keep
        #: memory bounded across hundreds of thousands of transactions.
        self.keep_history = keep_history
        self.state = StateJournal()
        self.addresses = AddressFactory(namespace=name)
        self.contracts: dict[Address, Contract] = {}
        self.eoas: set[Address] = set()
        #: creator -> list of created contracts, and the reverse edge.
        self.created_by: dict[Address, Address] = {}
        self.creations: list[CreationRecord] = []
        #: generation counters: ``version`` advances on any creation-graph
        #: or label change, ``labels_version`` on label changes only.
        #: Consumers (account tagging) compare one int instead of
        #: re-scanning the creation/label stores on every lookup.
        self.version = 0
        self.labels_version = 0
        #: Etherscan-style labels seeded at deployment time.
        self.labels: dict[Address, str] = _LabelMap(self)
        self.blocks: list[Block] = [Block(number=0, timestamp=GENESIS_TIMESTAMP)]
        self._seq = itertools.count(1)
        self._tx_counter = itertools.count(1)
        self._depth = 0
        self._trace: TransactionTrace | None = None

    # ------------------------------------------------------------------
    # accounts
    # ------------------------------------------------------------------

    def create_eoa(
        self,
        hint: str = "eoa",
        label: str | None = None,
        address: Address | None = None,
    ) -> Address:
        """Create a fresh externally-owned account.

        ``address`` pins the account to a caller-chosen deterministic
        address (the sharded wild scan uses this so the same logical
        actor resolves to the same address in every shard).
        """
        if address is None:
            address = self.addresses.fresh(hint)
        self.eoas.add(address)
        if label is not None:
            self.labels[address] = label
        return address

    def is_contract(self, address: Address) -> bool:
        return address in self.contracts

    def contract_at(self, address: Address) -> Contract:
        try:
            return self.contracts[address]
        except KeyError:
            raise UnknownAccount(f"no contract at {address}") from None

    def contract_of(self, address: Address, cls: Type[C]) -> C:
        contract = self.contract_at(address)
        if not isinstance(contract, cls):
            raise NotAContract(f"{address} is a {type(contract).__name__}, not {cls.__name__}")
        return contract

    # ------------------------------------------------------------------
    # Ether accounting
    # ------------------------------------------------------------------

    def balance(self, address: Address) -> int:
        return self.state.get(address, _ETH_BALANCE, 0)

    def faucet(self, address: Address, amount: int) -> None:
        """Mint Ether out of thin air (genesis allocation / test funding)."""
        if amount < 0:
            raise ValueError("faucet amount must be non-negative")
        self.state.add(address, _ETH_BALANCE, amount)

    def _move_ether(self, sender: Address, receiver: Address, amount: int) -> None:
        if amount == 0:
            return
        if amount < 0:
            raise Revert("negative ether transfer")
        if self.balance(sender) < amount:
            raise InsufficientBalance(
                f"{sender.short} has {self.balance(sender)} wei, needs {amount}"
            )
        self.state.add(sender, _ETH_BALANCE, -amount)
        self.state.add(receiver, _ETH_BALANCE, amount)
        self._record_transfer(sender, receiver, amount, ETHER)

    def send_ether(self, sender: Address, receiver: Address, amount: int) -> None:
        """Plain Ether send; triggers the receiver's ``receive_ether`` hook."""
        self._move_ether(sender, receiver, amount)
        contract = self.contracts.get(receiver)
        if contract is not None:
            contract.receive_ether(Msg(sender=sender, value=amount))

    # ------------------------------------------------------------------
    # trace recording
    # ------------------------------------------------------------------

    def _next_seq(self) -> int:
        return next(self._seq)

    def _record_transfer(self, sender: Address, receiver: Address, amount: int, token: Address) -> None:
        if self._trace is not None:
            self._trace.transfers.append(
                TransferRecord(self._next_seq(), sender, receiver, amount, token)
            )

    def record_token_transfer(self, sender: Address, receiver: Address, amount: int, token: Address) -> None:
        """Record an ERC20 ``Transfer`` log (called by token contracts)."""
        self._record_transfer(sender, receiver, amount, token)

    def emit_log(self, emitter: Address, event: str, **params: Any) -> None:
        if self._trace is not None:
            self._trace.logs.append(
                LogRecord(self._next_seq(), emitter, event, tuple(params.items()))
            )

    # ------------------------------------------------------------------
    # calls and transactions
    # ------------------------------------------------------------------

    def call(
        self,
        caller: Address,
        target: Address,
        function: str,
        /,
        *args: Any,
        value: int = 0,
        **kwargs: Any,
    ) -> Any:
        """Execute a (possibly nested) message call with EVM semantics.

        State changes and trace records made by the subtree are rolled
        back if it raises, so callers may catch :class:`Revert` like a
        Solidity ``try/catch``.
        """
        contract = self.contracts.get(target)
        if contract is None:
            raise NotAContract(f"call target {target} is not a contract")
        self.state.checkpoint()
        marks = self._trace_marks()
        self._depth += 1
        if self._trace is not None:
            self._trace.calls.append(
                CallRecord(self._next_seq(), caller, target, function, self._depth, value)
            )
        try:
            if value:
                self._move_ether(caller, target, value)
            result = contract.dispatch(function, Msg(sender=caller, value=value), *args, **kwargs)
        except Revert:
            self.state.rollback()
            self._truncate_trace(marks)
            raise
        except ChainError:
            self.state.rollback()
            self._truncate_trace(marks)
            raise
        else:
            self.state.commit()
            return result
        finally:
            self._depth -= 1

    def _trace_marks(self) -> tuple[int, int, int, int] | None:
        if self._trace is None:
            return None
        return (
            len(self._trace.transfers),
            len(self._trace.calls),
            len(self._trace.logs),
            len(self._trace.creations),
        )

    def _truncate_trace(self, marks: tuple[int, int, int, int] | None) -> None:
        if marks is None or self._trace is None:
            return
        transfers, calls, logs, creations = marks
        del self._trace.transfers[transfers:]
        del self._trace.calls[calls:]
        del self._trace.logs[logs:]
        del self._trace.creations[creations:]

    def transact(
        self,
        sender: Address,
        target: Address,
        function: str,
        /,
        *args: Any,
        value: int = 0,
        allow_failure: bool = False,
        **kwargs: Any,
    ) -> TransactionTrace:
        """Execute one top-level transaction atomically and return its trace.

        A reverted transaction leaves no state changes and (matching real
        receipts) no logs; the returned trace carries ``success=False``
        and the revert reason.
        """
        if self._trace is not None:
            raise ChainError("re-entrant transact(); use call() for nested invocations")
        block = self.blocks[-1]
        trace = TransactionTrace(
            tx_hash=self._tx_hash(sender, target, function),
            sender=sender,
            to=target,
            function=function,
            block_number=block.number,
            timestamp=block.timestamp,
        )
        self._trace = trace
        self.state.checkpoint()
        try:
            self.call(sender, target, function, *args, value=value, **kwargs)
        except Revert as exc:
            self.state.rollback()
            trace.success = False
            trace.revert_reason = exc.reason
            trace.transfers.clear()
            trace.calls.clear()
            trace.logs.clear()
            trace.creations.clear()
            if not allow_failure:
                self._trace = None
                raise
        except ChainError:
            # Programming error (bad target, unknown account): unwind the
            # outer checkpoint too so the chain stays usable, then surface.
            self.state.rollback()
            self._trace = None
            raise
        else:
            self.state.commit()
        finally:
            self._trace = None
        if self.keep_history:
            block.traces.append(trace)
        return trace

    def _tx_hash(self, sender: Address, target: Address, function: str) -> str:
        nonce = next(self._tx_counter)
        return "0x" + keccak_address(self.name, sender, target, function, str(nonce))[2:].ljust(64, "0")

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------

    def deploy(
        self,
        creator: Address,
        contract_cls: Type[C],
        /,
        *args: Any,
        label: str | None = None,
        hint: str | None = None,
        address: Address | None = None,
        **kwargs: Any,
    ) -> C:
        """Deploy a contract, recording the creation relationship.

        ``label`` seeds the Etherscan-style label database. Creation
        relationships are recorded globally (the XBlock-ETH dataset the
        paper imports) and also in the current trace if one is open.
        ``address`` pins the contract to a caller-chosen deterministic
        address (see :meth:`create_eoa`).
        """
        if address is None:
            address = self.addresses.fresh(hint or contract_cls.__name__)
        contract = contract_cls(self, address, *args, **kwargs)
        self.contracts[address] = contract
        self.created_by[address] = creator
        record = CreationRecord(self._next_seq(), creator, address)
        self.creations.append(record)
        self.version += 1
        if self._trace is not None:
            self._trace.creations.append(record)
        if label is not None:
            self.labels[address] = label
        return contract

    def destroy(self, address: Address) -> None:
        """``selfdestruct``: drop the code, keep the history (Sec. VI-D2)."""
        self.contracts.pop(address, None)

    # ------------------------------------------------------------------
    # blocks
    # ------------------------------------------------------------------

    @property
    def block_number(self) -> int:
        return self.blocks[-1].number

    @property
    def timestamp(self) -> int:
        return self.blocks[-1].timestamp

    def mine(self, count: int = 1) -> Block:
        """Advance the chain by ``count`` blocks."""
        for _ in range(count):
            last = self.blocks[-1]
            self.blocks.append(Block(last.number + 1, last.timestamp + SECONDS_PER_BLOCK))
        return self.blocks[-1]

    def mine_to_timestamp(self, timestamp: int) -> Block:
        """Mine a block whose timestamp is exactly ``timestamp``."""
        last = self.blocks[-1]
        if timestamp < last.timestamp:
            raise ValueError("cannot mine into the past")
        number = last.number + max(1, (timestamp - last.timestamp) // SECONDS_PER_BLOCK)
        block = Block(number=number, timestamp=timestamp)
        self.blocks.append(block)
        return block

    def all_traces(self) -> list[TransactionTrace]:
        return [trace for block in self.blocks for trace in block.traces]
