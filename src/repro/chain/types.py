"""Fundamental value types of the simulated Ethereum substrate.

The real system replays transactions in a modified Geth client; this
reproduction models Ethereum at the level LeiShen observes it: 160-bit
account addresses, wei-denominated integer amounts, and a native-asset
sentinel used to represent Ether in asset transfers.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

__all__ = [
    "Address",
    "ZERO_ADDRESS",
    "BLACKHOLE",
    "ETHER",
    "WEI",
    "GWEI",
    "ETH",
    "to_wei",
    "from_wei",
    "keccak_address",
    "AddressFactory",
]


class Address(str):
    """A 160-bit Ethereum account address, rendered as ``0x`` + 40 hex chars.

    ``Address`` subclasses :class:`str` so it can be used directly as a
    dictionary key and compared with plain strings. Creation normalizes to
    lowercase and validates the format.
    """

    __slots__ = ()

    def __new__(cls, value: str) -> "Address":
        if isinstance(value, Address):
            return value  # already normalized
        text = value.lower()
        if text.startswith("0x"):
            body = text[2:]
        else:
            body = text
        if len(body) != 40:
            raise ValueError(f"address must be 40 hex chars, got {value!r}")
        try:
            int(body, 16)
        except ValueError as exc:
            raise ValueError(f"address is not hex: {value!r}") from exc
        return super().__new__(cls, "0x" + body)

    @property
    def short(self) -> str:
        """First 16 bits of the address (paper Fig. 6 uses this rendering)."""
        return "0x" + self[2:6]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Address({str.__repr__(self)})"


#: The zero address. Token mints originate here and burns terminate here;
#: the paper calls it the *BlackHole* address in Table III.
ZERO_ADDRESS = Address("0x" + "0" * 40)
BLACKHOLE = ZERO_ADDRESS

#: Sentinel "token" used to represent the native asset (Ether) in asset
#: transfers. Real Ether moves through internal transactions rather than
#: ERC20 logs, but LeiShen unifies both into one transfer stream.
ETHER = Address("0x" + "e" * 40)

WEI = 1
GWEI = 10**9
ETH = 10**18


def to_wei(amount: float | int, unit: int = ETH) -> int:
    """Convert a human-readable amount into integer wei-style units."""
    return int(round(amount * unit))


def from_wei(amount: int, unit: int = ETH) -> float:
    """Convert integer wei-style units back to a float for reporting."""
    return amount / unit


def keccak_address(*parts: str) -> Address:
    """Derive a deterministic pseudo-address from arbitrary string parts.

    Real Ethereum derives contract addresses from ``keccak256(rlp(sender,
    nonce))``; we keep the determinism (same inputs -> same address) with
    sha3-256 over the joined parts.
    """
    digest = hashlib.sha3_256("|".join(parts).encode()).hexdigest()
    return Address("0x" + digest[:40])


class AddressFactory:
    """Deterministic generator of fresh, unique addresses.

    Each :class:`~repro.chain.chain.Chain` owns one factory so scenario
    replays are reproducible run to run.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self._namespace = namespace
        self._counter = 0

    def fresh(self, hint: str = "acct") -> Address:
        """Return a new address never handed out by this factory before."""
        self._counter += 1
        return keccak_address(self._namespace, hint, str(self._counter))

    def __iter__(self) -> Iterator[Address]:  # pragma: no cover - convenience
        while True:
            yield self.fresh()
