"""Synthetic wild attacks for the Table V/VI/VII evaluation.

The paper detects 180 transactions over 14.5M blocks: 142 true attacks
(33 known including 11 repeats, 109 previously unknown) plus 38 false
positives. This module injects the attack side with a composition
calibrated to every aggregate the paper reports:

- per-pattern true positives: KRP 21, SBS 68, MBS 60 (7 dual-pattern);
- 15 SBS attacks whose trades also trip MBS spuriously and 5 MBS attacks
  that trip SBS spuriously (pattern-level FPs inside true-attack
  transactions — the arithmetic the paper's Table V implies);
- Table VI's most-attacked apps among the unknown attacks: Balancer
  31 attacks / 5 attackers / 14 contracts / 13 assets; Uniswap 16/6/8/5;
  Yearn 11/1/1/1;
- a heavy-tailed profit distribution with a ~6.1M USD severest attack
  and >21M USD total (Table VII);
- unknown-attack months following Fig. 8's calibrated series.

Attack shapes reuse the study's validated KRP/SBS/MBS/dual bodies on
lazily-created mini-markets inside the shared wild world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..chain.contract import Msg, external
from ..chain.types import Address, ETH, keccak_address
from ..study.scenarios.base import ScriptedAttackContract
from ..tokens.erc20 import ERC20
from .mutate import BASELINE, Mutation
from .profiles import GroundTruth, LabeledTrace, WildMarket
from .timeline import monthly_attack_weights

__all__ = [
    "AttackCluster",
    "ATTACK_CLUSTERS",
    "ADVERSARIAL_CLUSTERS",
    "MintableToken",
    "plan_adversarial",
    "WildAttackInjector",
    "FULL_SCALE_ATTACKS",
    "FULL_SCALE_MIGRATIONS",
    "FULL_SCALE_STRATEGIES",
    "AttackPlan",
    "plan_attacks",
    "SplitAttackSpec",
    "SPLIT_ATTACK_SPECS",
    "split_spec_of",
]


@dataclass(frozen=True, slots=True)
class AttackCluster:
    """A group of related wild attacks against one application."""

    app: str
    shape: str  # "krp" | "sbs" | "mbs" | "dual" | "sandwich" | "mint" | "donation"
    #: ground-truth patterns ("dual" shape with sbs-only truth models the
    #: paper's pattern-level false positives inside true attacks).
    truth_patterns: tuple[str, ...]
    n_attacks: int
    n_attackers: int
    n_contracts: int
    n_assets: int
    known: bool = False
    #: approximate per-attack profit in USD (sizes the mini-market).
    profit_usd: float = 20_000.0
    #: scales only the trade amounts (not the market) — used for the
    #: dust-profit attacks at the bottom of Table VII's distribution.
    amount_factor: float = 1.0
    #: vault mark sensitivity for mbs/donation-shaped clusters.
    sensitivity: float = 0.05
    #: attack family (a registry pattern key) recorded on the ground
    #: truth for labelled per-family scoring. ``None`` on the paper's
    #: historical clusters keeps their ground-truth wire bytes (and the
    #: wild-scan bench identity) unchanged.
    family: "str | None" = None


#: full-scale composition; the sums reproduce every Table V/VI aggregate:
#: KRP/SBS/MBS true positives 21/68/60, 15 attacks whose trades also trip
#: MBS spuriously, 5 tripping SBS spuriously, Table VI's top-three apps,
#: 33 known vs 109 unknown. Tests assert these sums.
ATTACK_CLUSTERS: tuple[AttackCluster, ...] = (
    # --- unknown attacks (109) — Table VI top three first -------------
    AttackCluster("Balancer", "sbs", ("SBS",), 23, 5, 14, 13, profit_usd=40_000),
    AttackCluster("Balancer", "dual", ("SBS",), 8, 5, 14, 13, profit_usd=150_000),
    AttackCluster("Uniswap", "krp", ("KRP",), 16, 6, 8, 5, profit_usd=60_000),
    AttackCluster("Yearn", "mbs", ("MBS",), 11, 1, 1, 1, profit_usd=30_000),
    AttackCluster("SushiSwap", "krp", ("KRP",), 3, 1, 2, 2, profit_usd=15_000),
    AttackCluster("CreamFinance", "sbs", ("SBS",), 5, 2, 3, 3, profit_usd=250_000),
    AttackCluster("GrimFinance", "sbs", ("SBS",), 1, 1, 1, 1, profit_usd=6_102_198),
    AttackCluster("IndexedFinance", "dual", ("SBS",), 7, 1, 2, 2, profit_usd=120_000),
    AttackCluster("PunkProtocol", "mbs", ("MBS",), 6, 2, 2, 2, profit_usd=8_000),
    AttackCluster("BT.Finance", "mbs", ("MBS",), 7, 1, 1, 1, profit_usd=2_000),
    AttackCluster("DODO", "mbs", ("MBS",), 5, 1, 2, 2, profit_usd=600),
    AttackCluster("AlphaFinance", "sbs", ("SBS",), 5, 1, 1, 1, profit_usd=1_000),
    AttackCluster("SaddleFi", "dual", ("SBS", "MBS"), 4, 1, 1, 1, profit_usd=90_000),
    AttackCluster("RariCapital", "dual", ("MBS",), 5, 1, 1, 1, profit_usd=300),
    AttackCluster("DustFarm", "mbs", ("MBS",), 3, 1, 1, 1, profit_usd=25,
                  amount_factor=8e-6, sensitivity=400.0),
    # --- known attacks and their identical repeats (33) ----------------
    AttackCluster("bZx", "sbs", ("SBS",), 6, 2, 2, 2, known=True, profit_usd=350_000),
    AttackCluster("Harvest", "mbs", ("MBS",), 10, 1, 2, 2, known=True, profit_usd=300_000),
    AttackCluster("Eminence", "mbs", ("MBS",), 6, 1, 1, 1, known=True, profit_usd=100_000),
    AttackCluster("BalancerSTA", "krp", ("KRP",), 2, 1, 1, 1, known=True, profit_usd=80_000),
    AttackCluster("YearnDAI", "sbs", ("SBS",), 6, 1, 1, 1, known=True, profit_usd=200_000),
    AttackCluster("Saddle", "dual", ("SBS", "MBS"), 3, 1, 1, 1, known=True, profit_usd=50_000),
)

FULL_SCALE_ATTACKS = sum(c.n_attacks for c in ATTACK_CLUSTERS)

#: full-scale counts of the two false-positive sources (see the module
#: docstring for the Table V arithmetic these reproduce). Kept next to
#: the attack composition so the scan engine's scheduler and the
#: sequential generator share one source of truth.
FULL_SCALE_MIGRATIONS = 6
FULL_SCALE_STRATEGIES = 32

#: Adversarial attack families beyond the paper's three patterns:
#: sandwich/frontrunning, unprotected-mint supply dumps and
#: donation-style single-round share inflation. Kept OUT of
#: ``ATTACK_CLUSTERS`` so the historical schedule (and every identity
#: digest built on it) is untouched; ``WildScanConfig.adversarial``
#: appends them as a schedule tail, and the robustness harness injects
#: them directly. The paper-default pattern set does not detect these —
#: their plugins must be enabled via ``PatternSettings``.
ADVERSARIAL_CLUSTERS: tuple[AttackCluster, ...] = (
    AttackCluster("MevBooster", "sandwich", ("SANDWICH",), 6, 2, 2, 2,
                  profit_usd=30_000, family="SANDWICH"),
    AttackCluster("CoverMint", "mint", ("MINT",), 5, 1, 2, 2,
                  profit_usd=150_000, family="MINT"),
    AttackCluster("BeanVault", "donation", ("DONATION",), 4, 1, 1, 1,
                  profit_usd=120_000, sensitivity=2.5, family="DONATION"),
)


def plan_adversarial(count: int) -> list["AttackPlan"]:
    """Deterministic plan of ``count`` adversarial attacks.

    Cycles the adversarial clusters round-robin; like
    :func:`plan_attacks` it is pure data depending on nothing but its
    argument, so every backend computes the identical tail.
    """
    plans: list[AttackPlan] = []
    for i in range(count):
        cluster = ADVERSARIAL_CLUSTERS[i % len(ADVERSARIAL_CLUSTERS)]
        instance = i // len(ADVERSARIAL_CLUSTERS)
        plans.append((
            cluster,
            instance % cluster.n_attackers,
            instance % cluster.n_contracts,
            instance % cluster.n_assets,
            None,
        ))
    return plans

#: One planned wild attack: (cluster, attacker_id, contract_id, asset_id,
#: month). Pure data — the scan engine ships plans to worker processes.
AttackPlan = tuple[AttackCluster, int, int, int, "int | None"]


def _expand_months() -> list[int]:
    months: list[int] = []
    for month, weight in enumerate(monthly_attack_weights()):
        months.extend([month] * weight)
    return months


def plan_attacks(scale: float) -> list[AttackPlan]:
    """Scaled, deterministic attack schedule (market-independent).

    The plan depends only on ``scale`` — no chain, market or RNG state —
    which is what lets the scan engine compute one canonical schedule and
    shard it across worker processes.
    """
    unknown_months = _expand_months()
    plans: list[AttackPlan] = []
    unknown_index = 0
    for cluster in ATTACK_CLUSTERS:
        count = max(1, round(cluster.n_attacks * scale)) if scale < 1 else cluster.n_attacks
        for i in range(count):
            attacker_id = i % cluster.n_attackers
            contract_id = i % cluster.n_contracts
            asset_id = i % cluster.n_assets
            month: int | None = None
            if not cluster.known:
                # jump through the chronological month list with a stride
                # coprime to its length, so scaled-down runs still sample
                # the whole Fig. 8 shape rather than its first months.
                slot = (unknown_index * 37) % len(unknown_months)
                month = unknown_months[slot]
                unknown_index += 1
            plans.append((cluster, attacker_id, contract_id, asset_id, month))
    return plans


class MintableToken(ERC20):
    """An ERC20 with an unprotected supply-expansion entry point.

    Models the access-control bugs behind Cover-style infinite-mint
    incidents: anyone can call ``exploit_mint`` and credit themselves
    fresh supply, which shows up in the transfer history as a BlackHole
    mint with no matching acquisition trade.
    """

    @external
    def exploit_mint(self, msg: Msg, amount: int) -> None:
        self.mint(msg.sender, amount)


#: ceiling on ``amount_scale`` for the vault-based shapes (mbs/donation):
#: their flash pair and vault are sized to the baseline amounts, so an
#: unbounded scale-up would exceed lendable reserves and revert instead
#: of testing detection.
_VAULT_SCALE_CAP = 1.5


def _scaled(value: int, factor: float) -> int:
    """Integer amount scaling that is *exact* at factor 1.0.

    The baseline mutation must reproduce the unmutated attack bytes, and
    ``int(value * 1.0)`` is lossy above 2**53 — so the identity factor
    bypasses float math entirely.
    """
    return value if factor == 1.0 else int(value * factor)


class _MiniMarket:
    """One (app, asset) attack surface inside the shared wild world."""

    def __init__(
        self,
        market: WildMarket,
        app: str,
        asset: str,
        shape: str,
        size: float,
        amount_factor: float = 1.0,
        sensitivity: float = 0.05,
    ) -> None:
        world = market.world
        self.market = market
        self.app = app
        self.shape = shape
        self.quote = market.weth
        scale = max(0.05, min(size, 20.0))
        if shape in ("krp", "sbs", "dual"):
            self.target = world.new_token(asset)
            pool_target = int(1_000_000 * scale) * self.target.unit
            pool_quote = int(10_000 * scale) * ETH
            self.pool = world.dex_pair(self.target, self.quote, pool_target, pool_quote)
            self.venue = world.margin_venue(
                [self.pool],
                funding={
                    world.registry.by_symbol(self.quote.symbol): int(500_000 * scale) * ETH,
                    self.target: 4 * pool_target,
                },
                app=app,
            )
            self.venue.emits_trade_events = False
            self.base_quote = int(1_000 * scale) * ETH
            self.flash_pair = market.flash_pair_weth
            self.flash_token = world.registry.by_symbol(self.quote.symbol)
        elif shape == "sandwich":
            from .profiles import _plan_body

            self.target = world.new_token(asset)
            pool_target = int(1_000_000 * scale) * self.target.unit
            pool_quote = int(10_000 * scale) * ETH
            self.pool = world.dex_pair(self.target, self.quote, pool_target, pool_quote)
            self.front_amount = pool_quote // 50
            self.victim_amount = pool_quote // 20
            self.base_quote = self.front_amount
            self.flash_pair = market.flash_pair_weth
            self.flash_token = world.registry.by_symbol(self.quote.symbol)
            # An independent user whose scripted bot the attacker's tx
            # sandwiches; its own funds, its own creation root, so the
            # victim buy is not attributed to the borrower tag.
            victim_eoa = world.chain.create_eoa(
                f"victim-{app}-{asset}",
                address=keccak_address("sandwich-victim", app, asset),
            )
            self.victim = world.chain.deploy(
                victim_eoa, ScriptedAttackContract, _plan_body,
                hint=f"victim-bot-{app}-{asset}",
                address=keccak_address("sandwich-victim-bot", app, asset),
            )
            self.flash_token.mint(self.victim.address, pool_quote * 8)
        elif shape == "mint":
            deployer = world.chain.create_eoa(
                f"mint-dev-{app}-{asset}",
                address=keccak_address("mint-deployer", app, asset),
            )
            self.token = world.chain.deploy(
                deployer, MintableToken, asset, 18,
                hint=f"mintable-{asset}",
                address=keccak_address("mintable-token", app, asset),
            )
            world.registry.register(self.token)
            unit = self.token.unit
            # legitimate circulating supply so the dump pools can be seeded
            self.token.mint(world.whale, 10_000_000_000 * unit)
            pool_tokens = int(1_000_000 * scale) * unit
            self.pool_a = world.dex_pair(
                self.token, self.quote, pool_tokens, int(10_000 * scale) * ETH
            )
            self.pool_b = world.dex_pair(
                self.token, market.usdc, pool_tokens,
                int(15_000_000 * scale) * market.usdc.unit,
            )
            self.mint_amount = int(50_000 * scale) * unit
            self.base_quote = int(100 * scale) * ETH
            self.flash_pair = market.flash_pair_weth
            self.flash_token = world.registry.by_symbol(self.quote.symbol)
        else:  # mbs / donation: vault + curve mini market
            from ..study.scenarios.common import imbalance_mark

            self.underlying = world.new_token(asset)
            self.alt = world.new_token(asset + "q")
            size_units = int(100_000_000 * scale) * self.underlying.unit
            self.curve = world.curve_pool(
                {self.underlying: size_units, self.alt: size_units}, app=app + "Swap"
            )
            self.vault = world.vault(
                self.underlying,
                "v" + asset,
                app=app,
                value_per_underlying=imbalance_mark(self.curve, sensitivity),
                seed_amount=size_units * 2,
            )
            self.vault.emits_trade_events = False
            self.deposit = max(500, int(25_000_000 * scale * amount_factor)) * self.underlying.unit
            self.manipulation = max(200, int(20_000_000 * scale * amount_factor)) * self.underlying.unit
            borrow = self.deposit + self.manipulation
            self.flash_pair = world.dex_pair(self.underlying, market.weth, borrow * 2, 10_000 * ETH)
            self.flash_token = self.underlying
            world.dydx(funding={self.underlying: borrow * 4})
            world.aave(funding={self.underlying: borrow * 4})

    # -- attack bodies ----------------------------------------------------

    def body(self, mutation: Mutation | None = None):
        fn = {
            "krp": self._krp_body,
            "sbs": self._sbs_body,
            "dual": self._dual_body,
            "mbs": self._mbs_body,
            "sandwich": self._sandwich_body,
            "mint": self._mint_body,
            "donation": self._donation_body,
        }[self.shape]
        m = mutation or BASELINE

        def scripted(atk: ScriptedAttackContract) -> None:
            fn(atk, m)

        return scripted

    def borrow_spec(self, mutation: Mutation | None = None) -> tuple[ERC20, int, "Address"]:
        m = mutation or BASELINE
        # extra headroom for scaled-up mutants; identity (1.0) for baseline
        headroom = max(1.0, m.amount_scale) * (1.0 + max(0, m.round_delta) / 4)
        if self.shape in ("mbs", "donation"):
            # vault shapes borrow from a pair sized to the baseline amounts,
            # so amount mutations are capped at what it can actually lend
            # (the bodies apply the same cap to their spend)
            headroom = min(headroom, _VAULT_SCALE_CAP)
            # cushion for per-round pool fees so dust-sized deposits do not
            # starve the later rounds
            cushion = self.manipulation // 25
            return (
                self.flash_token,
                _scaled(self.deposit + self.manipulation + cushion, headroom),
                self.flash_pair.address,
            )
        multiplier = {"krp": 8, "sbs": 8, "dual": 8, "sandwich": 2, "mint": 1}[self.shape]
        return (
            self.flash_token,
            _scaled(self.base_quote * multiplier, headroom),
            self.flash_pair.address,
        )

    def _sbs_body(self, atk: ScriptedAttackContract, m: Mutation) -> None:
        quote, target, pool, venue = self.quote, self.target, self.pool, self.venue
        amount = _scaled(self.base_quote, m.amount_scale)
        bought = atk.oracle_swap(venue.address, quote.address, amount, target.address)
        if m.round_delta >= 0:
            pumped = atk.swap_pool(
                pool.address, quote.address, _scaled(amount * 6, m.pump_scale)
            )
            atk.swap_pool(pool.address, target.address, pumped * 55 // 100)
        if m.interleave:
            atk.swap_pool(pool.address, quote.address, amount // 20)
        exit_amount = _scaled(bought, m.exit_fraction)
        atk.oracle_swap(venue.address, target.address, exit_amount, quote.address)
        rest = atk.balance(target.address)
        if rest:
            atk.swap_pool(pool.address, target.address, rest)

    def _krp_body(self, atk: ScriptedAttackContract, m: Mutation) -> None:
        quote, target, pool, venue = self.quote, self.target, self.pool, self.venue
        step = _scaled(self.base_quote // 2, m.amount_scale)
        n = max(1, 6 + m.round_delta)
        dip_at = n // 2 if m.interleave else -1
        for i in range(n):
            atk.swap_pool(pool.address, quote.address, step)
            if i == dip_at:
                # benign-looking counter-sell: breaks the monotone rise
                atk.swap_pool(pool.address, target.address, atk.balance(target.address) // 3)
        amount = atk.balance(target.address)
        atk.oracle_swap(venue.address, target.address, amount, quote.address)

    def _dual_body(self, atk: ScriptedAttackContract, m: Mutation) -> None:
        """Saddle-shape: three profitable symmetric venue rounds plus an
        SBS triple — matches both patterns. Not part of the mutation
        matrix; only the baseline is exercised."""
        quote, target, pool, venue = self.quote, self.target, self.pool, self.venue
        unit_q = self.base_quote // 10
        got1 = atk.oracle_swap(venue.address, quote.address, unit_q * 10, target.address)
        atk.swap_pool(pool.address, quote.address, unit_q * 30)
        atk.swap_pool(pool.address, target.address, atk.balance(target.address) - got1 - got1 // 3)
        atk.oracle_swap(venue.address, target.address, got1, quote.address)
        got2 = atk.oracle_swap(venue.address, quote.address, unit_q * 3, target.address)
        atk.swap_pool(pool.address, quote.address, unit_q * 4)
        atk.oracle_swap(venue.address, target.address, got2, quote.address)
        atk.swap_pool(pool.address, target.address, atk.balance(target.address))
        got3 = atk.oracle_swap(venue.address, quote.address, unit_q * 6, target.address)
        atk.swap_pool(pool.address, quote.address, unit_q * 6)
        atk.oracle_swap(venue.address, target.address, got3, quote.address)
        rest = atk.balance(target.address)
        if rest:
            atk.swap_pool(pool.address, target.address, rest)

    def _mbs_body(self, atk: ScriptedAttackContract, m: Mutation) -> None:
        curve, vault = self.curve, self.vault
        amount_scale = min(m.amount_scale, _VAULT_SCALE_CAP)
        manipulation = _scaled(self.manipulation, amount_scale * m.pump_scale)
        deposit = _scaled(self.deposit, amount_scale)
        for _ in range(max(1, 3 + m.round_delta)):
            got = atk.curve_swap(curve.address, 0, 1, manipulation)
            shares = atk.vault_deposit(vault.address, deposit)
            atk.curve_swap(curve.address, 1, 0, got)
            atk.vault_withdraw(vault.address, _scaled(shares, m.exit_fraction))
            if m.interleave:
                probe = atk.vault_deposit(vault.address, deposit // 100)
                atk.vault_withdraw(vault.address, probe)

    def _sandwich_body(self, atk: ScriptedAttackContract, m: Mutation) -> None:
        quote, target, pool = self.quote, self.target, self.pool
        amount = _scaled(self.front_amount, m.amount_scale)
        bought = atk.swap_pool(pool.address, quote.address, amount)
        if m.round_delta >= 0:
            victim_amount = _scaled(self.victim_amount, m.pump_scale)
            self.victim.plan = lambda v: v.swap_pool(
                pool.address, quote.address, victim_amount
            )
            atk.call(self.victim.address, "run")
        if m.interleave:
            atk.swap_pool(pool.address, quote.address, amount // 20)
        atk.swap_pool(pool.address, target.address, _scaled(bought, m.exit_fraction))

    def _mint_body(self, atk: ScriptedAttackContract, m: Mutation) -> None:
        token, pools = self.token, (self.pool_a, self.pool_b)
        if m.interleave:
            # small legitimate acquisition *before* the exploit mint (after
            # it, the mint transfer would pair with the buy's deposit leg
            # and lift as a phantom liquidity trade)
            atk.swap_pool(self.pool_a.address, self.quote.address, self.base_quote // 10)
        atk.call(token.address, "exploit_mint", _scaled(self.mint_amount, m.amount_scale))
        n = max(1, 2 + m.round_delta)
        remaining = atk.balance(token.address)
        if n == 1:
            atk.swap_pool(self.pool_a.address, token.address, remaining - 1)
            return
        for i in range(n - 1):
            # tranches deliberately differ from the minted amount so the
            # mint transfer never fuses with a dump leg in simplification
            tranche = remaining * 3 // 5
            atk.swap_pool(pools[i % 2].address, token.address, tranche)
            remaining -= tranche
        atk.swap_pool(
            pools[(n - 1) % 2].address, token.address, _scaled(remaining, m.exit_fraction)
        )

    def _donation_body(self, atk: ScriptedAttackContract, m: Mutation) -> None:
        curve, vault = self.curve, self.vault
        amount_scale = min(m.amount_scale, _VAULT_SCALE_CAP)
        manipulation = _scaled(self.manipulation, amount_scale * m.pump_scale)
        deposit = _scaled(self.deposit, amount_scale)
        for _ in range(1 + max(0, m.round_delta)):
            got = 0
            if m.round_delta >= 0:
                got = atk.curve_swap(curve.address, 0, 1, manipulation)
            shares = atk.vault_deposit(vault.address, deposit)
            if got:
                atk.curve_swap(curve.address, 1, 0, got)
            atk.vault_withdraw(vault.address, _scaled(shares, m.exit_fraction))
            if m.interleave:
                probe = atk.vault_deposit(vault.address, deposit // 100)
                atk.vault_withdraw(vault.address, probe)


@dataclass(frozen=True, slots=True)
class SplitAttackSpec:
    """One cross-transaction split-attack shape (windowed ground truth).

    A split attack spreads a single KRP/MBS action sequence over
    ``rounds`` consecutive transactions so each transaction alone never
    matches a pattern — only a matcher that accumulates trades across
    transactions (``repro.leishen.window``) sees the full sequence.
    """

    shape: str  # "mbs" | "krp"
    #: consecutive transactions the action sequence spans.
    rounds: int
    truth_patterns: tuple[str, ...]


#: the split shapes cycled over requested groups (group ``g`` uses spec
#: ``g % len(SPLIT_ATTACK_SPECS)``): an MBS attack whose three profitable
#: rounds land in three consecutive transactions, and a KRP buy series
#: split mid-buy (two rising buys per transaction, the dump in the last).
SPLIT_ATTACK_SPECS: tuple[SplitAttackSpec, ...] = (
    SplitAttackSpec("mbs", 3, ("MBS",)),
    SplitAttackSpec("krp", 3, ("KRP",)),
)


def split_spec_of(group: int) -> SplitAttackSpec:
    """The split-attack shape executed by group ``group``."""
    return SPLIT_ATTACK_SPECS[group % len(SPLIT_ATTACK_SPECS)]


class _SplitSurface:
    """Attack surface for one split-attack group.

    Built like a ``_MiniMarket``, but the body executes ONE round per
    transaction so the full action sequence only exists across the
    window. Every round transaction still takes (and repays) a flash
    loan: LeiShen's identification gate only surfaces flash-loan
    transactions, and an attacker splitting rounds while borrowing per
    round is exactly the adversary windowed detection targets. The KRP
    buy legs are paid from the contract's own pre-seeded capital because
    borrowed funds cannot outlive their transaction — the loan is repaid
    from the held balance each round and the dump round recoups it.
    """

    def __init__(self, market: WildMarket, spec: SplitAttackSpec, group: int) -> None:
        world = market.world
        self.market = market
        self.shape = spec.shape
        self.app = f"SplitTarget{group}"
        if spec.shape == "krp":
            self.asset = f"SPT{group}"
            self.quote = world.new_token(f"SPQ{group}")
            self.target = world.new_token(self.asset)
            pool_target = 1_000_000 * self.target.unit
            pool_quote = 10_000 * self.quote.unit
            self.pool = world.dex_pair(self.target, self.quote, pool_target, pool_quote)
            self.venue = world.margin_venue(
                [self.pool],
                funding={self.quote: 500_000 * self.quote.unit,
                         self.target: 4 * pool_target},
                app=self.app,
            )
            self.venue.emits_trade_events = False
            self.base_quote = 1_000 * self.quote.unit
            #: own capital covering the buy legs + per-round flash fees.
            self.capital = 4 * self.base_quote
            self.flash_pair = world.dex_pair(
                self.quote, market.weth, self.base_quote * 64, 10_000 * ETH
            )
            self.flash_token = self.quote
            self.borrow = self.base_quote * 8
        else:  # mbs: vault + curve mini market, one manipulation round per tx
            from ..study.scenarios.common import imbalance_mark

            self.asset = f"SPM{group}"
            self.underlying = world.new_token(self.asset)
            self.alt = world.new_token(self.asset + "q")
            size_units = 50_000_000 * self.underlying.unit
            self.curve = world.curve_pool(
                {self.underlying: size_units, self.alt: size_units},
                app=self.app + "Swap",
            )
            self.vault = world.vault(
                self.underlying,
                "v" + self.asset,
                app=self.app,
                value_per_underlying=imbalance_mark(self.curve, 0.05),
                seed_amount=size_units * 2,
            )
            self.vault.emits_trade_events = False
            self.deposit = 12_000_000 * self.underlying.unit
            self.manipulation = 10_000_000 * self.underlying.unit
            self.capital = 0
            borrow = self.deposit + self.manipulation
            self.flash_pair = world.dex_pair(
                self.underlying, market.weth, borrow * 2, 10_000 * ETH
            )
            self.flash_token = self.underlying
            # cushion for per-round pool fees, as in the one-shot shape
            self.borrow = borrow + self.manipulation // 25

    def fund(self, contract: Address) -> None:
        """Seed the attack contract's working capital (KRP buy legs)."""
        if self.capital:
            self.flash_token.mint(contract, self.capital)

    def round(self, atk: ScriptedAttackContract, round_index: int, n_rounds: int) -> None:
        """One transaction's slice of the split action sequence."""
        if self.shape == "krp":
            step = self.base_quote // 2
            atk.swap_pool(self.pool.address, self.quote.address, step)
            atk.swap_pool(self.pool.address, self.quote.address, step)
            if round_index == n_rounds - 1:
                amount = atk.balance(self.target.address)
                atk.oracle_swap(
                    self.venue.address, self.target.address, amount, self.quote.address
                )
        else:
            got = atk.curve_swap(self.curve.address, 0, 1, self.manipulation)
            shares = atk.vault_deposit(self.vault.address, self.deposit)
            atk.curve_swap(self.curve.address, 1, 0, got)
            atk.vault_withdraw(self.vault.address, shares)


class WildAttackInjector:
    """Plans and executes the scaled attack population."""

    def __init__(self, market: WildMarket, rng: random.Random, scale: float) -> None:
        self.market = market
        self.rng = rng
        self.scale = scale
        self._mini_markets: dict[tuple[str, str, int], _MiniMarket] = {}
        self._attackers: dict[tuple[str, int], Address] = {}
        self._contracts: dict[tuple[str, int], ScriptedAttackContract] = {}
        self._split_surfaces: dict[int, _SplitSurface] = {}
        self._split_attackers: dict[int, Address] = {}
        self._split_contracts: dict[int, ScriptedAttackContract] = {}

    def plan(self) -> list[AttackPlan]:
        """Scaled list of (cluster, attacker_id, contract_id, asset_id, month)."""
        return plan_attacks(self.scale)

    def execute(self, cluster: AttackCluster, attacker_id: int, contract_id: int,
                asset_id: int, month: int | None,
                mutation: "Mutation | None" = None,
                subsidize: bool = False) -> LabeledTrace:
        mini = self._mini_market(cluster, asset_id)
        attacker = self._attacker(cluster, attacker_id)
        contract = self._contract(cluster, contract_id, attacker)
        token, amount, flash_pair = mini.borrow_spec(mutation)
        # Always consume the provider draw so a mutated run never shifts
        # the shard's RNG stream relative to the baseline schedule.
        provider = self.market.pick_provider()
        if mutation is not None and mutation.provider is not None:
            provider = mutation.provider
        if subsidize:
            # pre-tx fee cushion: mutations that destroy the attack's
            # profit must still *execute* (an evaded detection, not a
            # reverted transaction) for the robustness measurement
            token.mint(contract.address, amount // 3 + 1)
        trace = self.market.run_flash(attacker, contract, mini.body(mutation),
                                      provider, token, amount,
                                      flash_pair=flash_pair)
        if mini.shape in ("mbs", "donation"):
            asset_symbol = mini.underlying.symbol
        elif mini.shape == "mint":
            asset_symbol = mini.token.symbol
        else:
            asset_symbol = mini.target.symbol
        return LabeledTrace(
            trace,
            GroundTruth(
                is_attack=True,
                profile=f"attack:{cluster.shape}",
                net_profit=True,
                source_disclosed=False,
                attacked_app=cluster.app,
                attacker=attacker,
                attack_contract=contract.address,
                asset=asset_symbol,
                month=month,
                patterns=cluster.truth_patterns,
                known=cluster.known,
                family=cluster.family,
            ),
        )

    def execute_split(self, group: int, round_index: int, n_rounds: int) -> LabeledTrace:
        """Execute one round transaction of a cross-transaction split attack.

        The round's trades never match a pattern on their own; the
        ground truth carries ``split_group`` so the windowed evaluation
        can score recall per group rather than per transaction. The
        provider is pinned (no RNG draw) so split tasks never perturb
        the shard's RNG stream.
        """
        spec = split_spec_of(group)
        surface = self._split_surface(spec, group)
        attacker = self._split_attacker(group)
        contract = self._split_contract(group, attacker)
        if round_index == 0:
            surface.fund(contract.address)

        def body(atk: ScriptedAttackContract) -> None:
            surface.round(atk, round_index, n_rounds)

        trace = self.market.run_flash(
            attacker, contract, body, "Uniswap",
            surface.flash_token, surface.borrow,
            flash_pair=surface.flash_pair.address,
        )
        return LabeledTrace(
            trace,
            GroundTruth(
                is_attack=True,
                profile=f"attack-split:{spec.shape}",
                net_profit=round_index == n_rounds - 1,
                source_disclosed=False,
                attacked_app=surface.app,
                attacker=attacker,
                attack_contract=contract.address,
                asset=surface.asset,
                month=None,
                patterns=spec.truth_patterns,
                known=False,
                split_group=group,
            ),
        )

    # -- lazily built pieces ------------------------------------------------

    def _mini_market(self, cluster: AttackCluster, asset_id: int) -> _MiniMarket:
        key = (cluster.app, cluster.shape, asset_id)
        if key not in self._mini_markets:
            size = cluster.profit_usd / 600_000.0  # calibrated per REF profits
            if cluster.amount_factor != 1.0:
                size = 0.05  # dust attacks run on a floor-size market
            asset = f"{cluster.app[:3].upper()}{asset_id}"
            self._mini_markets[key] = _MiniMarket(
                self.market, cluster.app, asset, cluster.shape, size,
                amount_factor=cluster.amount_factor,
                sensitivity=cluster.sensitivity,
            )
        return self._mini_markets[key]

    def _split_surface(self, spec: SplitAttackSpec, group: int) -> _SplitSurface:
        if group not in self._split_surfaces:
            self._split_surfaces[group] = _SplitSurface(self.market, spec, group)
        return self._split_surfaces[group]

    def _split_attacker(self, group: int) -> Address:
        if group not in self._split_attackers:
            # canonical address, like _attacker: the same split group
            # resolves to the same attacker in every shard.
            self._split_attackers[group] = self.market.world.chain.create_eoa(
                f"split-attacker-{group}",
                address=keccak_address("split-attacker", str(group)),
            )
        return self._split_attackers[group]

    def _split_contract(self, group: int, attacker: Address) -> ScriptedAttackContract:
        if group not in self._split_contracts:
            from .profiles import _plan_body

            self._split_contracts[group] = self.market.world.chain.deploy(
                attacker, ScriptedAttackContract, _plan_body,
                hint=f"split-attack-{group}",
                address=keccak_address("split-attack-contract", str(group)),
            )
        return self._split_contracts[group]

    def _attacker(self, cluster: AttackCluster, attacker_id: int) -> Address:
        key = (cluster.app, attacker_id)
        if key not in self._attackers:
            # canonical address: the same logical attacker resolves to the
            # same address in every shard of a sharded scan, keeping the
            # Table VI attacker/contract counts partition-invariant.
            self._attackers[key] = self.market.world.chain.create_eoa(
                f"wild-attacker-{cluster.app}-{attacker_id}",
                address=keccak_address("wild-attacker", cluster.app, str(attacker_id)),
            )
        return self._attackers[key]

    def _contract(self, cluster: AttackCluster, contract_id: int, attacker: Address) -> ScriptedAttackContract:
        key = (cluster.app, contract_id)
        if key not in self._contracts:
            from .profiles import _plan_body

            self._contracts[key] = self.market.world.chain.deploy(
                attacker, ScriptedAttackContract, _plan_body,
                hint=f"wild-attack-{cluster.app}-{contract_id}",
                address=keccak_address("wild-attack-contract", cluster.app, str(contract_id)),
            )
        return self._contracts[key]
