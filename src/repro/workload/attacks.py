"""Synthetic wild attacks for the Table V/VI/VII evaluation.

The paper detects 180 transactions over 14.5M blocks: 142 true attacks
(33 known including 11 repeats, 109 previously unknown) plus 38 false
positives. This module injects the attack side with a composition
calibrated to every aggregate the paper reports:

- per-pattern true positives: KRP 21, SBS 68, MBS 60 (7 dual-pattern);
- 15 SBS attacks whose trades also trip MBS spuriously and 5 MBS attacks
  that trip SBS spuriously (pattern-level FPs inside true-attack
  transactions — the arithmetic the paper's Table V implies);
- Table VI's most-attacked apps among the unknown attacks: Balancer
  31 attacks / 5 attackers / 14 contracts / 13 assets; Uniswap 16/6/8/5;
  Yearn 11/1/1/1;
- a heavy-tailed profit distribution with a ~6.1M USD severest attack
  and >21M USD total (Table VII);
- unknown-attack months following Fig. 8's calibrated series.

Attack shapes reuse the study's validated KRP/SBS/MBS/dual bodies on
lazily-created mini-markets inside the shared wild world.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..chain.types import Address, ETH, keccak_address
from ..study.scenarios.base import ScriptedAttackContract
from ..tokens.erc20 import ERC20
from .profiles import GroundTruth, LabeledTrace, WildMarket
from .timeline import monthly_attack_weights

__all__ = [
    "AttackCluster",
    "ATTACK_CLUSTERS",
    "WildAttackInjector",
    "FULL_SCALE_ATTACKS",
    "FULL_SCALE_MIGRATIONS",
    "FULL_SCALE_STRATEGIES",
    "AttackPlan",
    "plan_attacks",
    "SplitAttackSpec",
    "SPLIT_ATTACK_SPECS",
    "split_spec_of",
]


@dataclass(frozen=True, slots=True)
class AttackCluster:
    """A group of related wild attacks against one application."""

    app: str
    shape: str  # "krp" | "sbs" | "mbs" | "dual"
    #: ground-truth patterns ("dual" shape with sbs-only truth models the
    #: paper's pattern-level false positives inside true attacks).
    truth_patterns: tuple[str, ...]
    n_attacks: int
    n_attackers: int
    n_contracts: int
    n_assets: int
    known: bool = False
    #: approximate per-attack profit in USD (sizes the mini-market).
    profit_usd: float = 20_000.0
    #: scales only the trade amounts (not the market) — used for the
    #: dust-profit attacks at the bottom of Table VII's distribution.
    amount_factor: float = 1.0
    #: vault mark sensitivity for mbs-shaped clusters.
    sensitivity: float = 0.05


#: full-scale composition; the sums reproduce every Table V/VI aggregate:
#: KRP/SBS/MBS true positives 21/68/60, 15 attacks whose trades also trip
#: MBS spuriously, 5 tripping SBS spuriously, Table VI's top-three apps,
#: 33 known vs 109 unknown. Tests assert these sums.
ATTACK_CLUSTERS: tuple[AttackCluster, ...] = (
    # --- unknown attacks (109) — Table VI top three first -------------
    AttackCluster("Balancer", "sbs", ("SBS",), 23, 5, 14, 13, profit_usd=40_000),
    AttackCluster("Balancer", "dual", ("SBS",), 8, 5, 14, 13, profit_usd=150_000),
    AttackCluster("Uniswap", "krp", ("KRP",), 16, 6, 8, 5, profit_usd=60_000),
    AttackCluster("Yearn", "mbs", ("MBS",), 11, 1, 1, 1, profit_usd=30_000),
    AttackCluster("SushiSwap", "krp", ("KRP",), 3, 1, 2, 2, profit_usd=15_000),
    AttackCluster("CreamFinance", "sbs", ("SBS",), 5, 2, 3, 3, profit_usd=250_000),
    AttackCluster("GrimFinance", "sbs", ("SBS",), 1, 1, 1, 1, profit_usd=6_102_198),
    AttackCluster("IndexedFinance", "dual", ("SBS",), 7, 1, 2, 2, profit_usd=120_000),
    AttackCluster("PunkProtocol", "mbs", ("MBS",), 6, 2, 2, 2, profit_usd=8_000),
    AttackCluster("BT.Finance", "mbs", ("MBS",), 7, 1, 1, 1, profit_usd=2_000),
    AttackCluster("DODO", "mbs", ("MBS",), 5, 1, 2, 2, profit_usd=600),
    AttackCluster("AlphaFinance", "sbs", ("SBS",), 5, 1, 1, 1, profit_usd=1_000),
    AttackCluster("SaddleFi", "dual", ("SBS", "MBS"), 4, 1, 1, 1, profit_usd=90_000),
    AttackCluster("RariCapital", "dual", ("MBS",), 5, 1, 1, 1, profit_usd=300),
    AttackCluster("DustFarm", "mbs", ("MBS",), 3, 1, 1, 1, profit_usd=25,
                  amount_factor=8e-6, sensitivity=400.0),
    # --- known attacks and their identical repeats (33) ----------------
    AttackCluster("bZx", "sbs", ("SBS",), 6, 2, 2, 2, known=True, profit_usd=350_000),
    AttackCluster("Harvest", "mbs", ("MBS",), 10, 1, 2, 2, known=True, profit_usd=300_000),
    AttackCluster("Eminence", "mbs", ("MBS",), 6, 1, 1, 1, known=True, profit_usd=100_000),
    AttackCluster("BalancerSTA", "krp", ("KRP",), 2, 1, 1, 1, known=True, profit_usd=80_000),
    AttackCluster("YearnDAI", "sbs", ("SBS",), 6, 1, 1, 1, known=True, profit_usd=200_000),
    AttackCluster("Saddle", "dual", ("SBS", "MBS"), 3, 1, 1, 1, known=True, profit_usd=50_000),
)

FULL_SCALE_ATTACKS = sum(c.n_attacks for c in ATTACK_CLUSTERS)

#: full-scale counts of the two false-positive sources (see the module
#: docstring for the Table V arithmetic these reproduce). Kept next to
#: the attack composition so the scan engine's scheduler and the
#: sequential generator share one source of truth.
FULL_SCALE_MIGRATIONS = 6
FULL_SCALE_STRATEGIES = 32

#: One planned wild attack: (cluster, attacker_id, contract_id, asset_id,
#: month). Pure data — the scan engine ships plans to worker processes.
AttackPlan = tuple[AttackCluster, int, int, int, "int | None"]


def _expand_months() -> list[int]:
    months: list[int] = []
    for month, weight in enumerate(monthly_attack_weights()):
        months.extend([month] * weight)
    return months


def plan_attacks(scale: float) -> list[AttackPlan]:
    """Scaled, deterministic attack schedule (market-independent).

    The plan depends only on ``scale`` — no chain, market or RNG state —
    which is what lets the scan engine compute one canonical schedule and
    shard it across worker processes.
    """
    unknown_months = _expand_months()
    plans: list[AttackPlan] = []
    unknown_index = 0
    for cluster in ATTACK_CLUSTERS:
        count = max(1, round(cluster.n_attacks * scale)) if scale < 1 else cluster.n_attacks
        for i in range(count):
            attacker_id = i % cluster.n_attackers
            contract_id = i % cluster.n_contracts
            asset_id = i % cluster.n_assets
            month: int | None = None
            if not cluster.known:
                # jump through the chronological month list with a stride
                # coprime to its length, so scaled-down runs still sample
                # the whole Fig. 8 shape rather than its first months.
                slot = (unknown_index * 37) % len(unknown_months)
                month = unknown_months[slot]
                unknown_index += 1
            plans.append((cluster, attacker_id, contract_id, asset_id, month))
    return plans


class _MiniMarket:
    """One (app, asset) attack surface inside the shared wild world."""

    def __init__(
        self,
        market: WildMarket,
        app: str,
        asset: str,
        shape: str,
        size: float,
        amount_factor: float = 1.0,
        sensitivity: float = 0.05,
    ) -> None:
        world = market.world
        self.market = market
        self.app = app
        self.shape = shape
        self.quote = market.weth
        scale = max(0.05, min(size, 20.0))
        if shape in ("krp", "sbs", "dual"):
            self.target = world.new_token(asset)
            pool_target = int(1_000_000 * scale) * self.target.unit
            pool_quote = int(10_000 * scale) * ETH
            self.pool = world.dex_pair(self.target, self.quote, pool_target, pool_quote)
            self.venue = world.margin_venue(
                [self.pool],
                funding={
                    world.registry.by_symbol(self.quote.symbol): int(500_000 * scale) * ETH,
                    self.target: 4 * pool_target,
                },
                app=app,
            )
            self.venue.emits_trade_events = False
            self.base_quote = int(1_000 * scale) * ETH
            self.flash_pair = market.flash_pair_weth
            self.flash_token = world.registry.by_symbol(self.quote.symbol)
        else:  # mbs: vault + curve mini market
            from ..study.scenarios.common import imbalance_mark

            self.underlying = world.new_token(asset)
            self.alt = world.new_token(asset + "q")
            size_units = int(100_000_000 * scale) * self.underlying.unit
            self.curve = world.curve_pool(
                {self.underlying: size_units, self.alt: size_units}, app=app + "Swap"
            )
            self.vault = world.vault(
                self.underlying,
                "v" + asset,
                app=app,
                value_per_underlying=imbalance_mark(self.curve, sensitivity),
                seed_amount=size_units * 2,
            )
            self.vault.emits_trade_events = False
            self.deposit = max(500, int(25_000_000 * scale * amount_factor)) * self.underlying.unit
            self.manipulation = max(200, int(20_000_000 * scale * amount_factor)) * self.underlying.unit
            borrow = self.deposit + self.manipulation
            self.flash_pair = world.dex_pair(self.underlying, market.weth, borrow * 2, 10_000 * ETH)
            self.flash_token = self.underlying
            world.dydx(funding={self.underlying: borrow * 4})
            world.aave(funding={self.underlying: borrow * 4})

    # -- attack bodies ----------------------------------------------------

    def body(self):
        return {
            "krp": self._krp_body,
            "sbs": self._sbs_body,
            "dual": self._dual_body,
            "mbs": self._mbs_body,
        }[self.shape]

    def borrow_spec(self) -> tuple[ERC20, int, "Address"]:
        if self.shape == "mbs":
            # cushion for per-round pool fees so dust-sized deposits do not
            # starve the later rounds
            cushion = self.manipulation // 25
            return (
                self.flash_token,
                self.deposit + self.manipulation + cushion,
                self.flash_pair.address,
            )
        multiplier = {"krp": 8, "sbs": 8, "dual": 8}[self.shape]
        return self.flash_token, self.base_quote * multiplier, self.flash_pair.address

    def _sbs_body(self, atk: ScriptedAttackContract) -> None:
        quote, target, pool, venue = self.quote, self.target, self.pool, self.venue
        amount = self.base_quote
        bought = atk.oracle_swap(venue.address, quote.address, amount, target.address)
        pumped = atk.swap_pool(pool.address, quote.address, amount * 6)
        atk.swap_pool(pool.address, target.address, pumped * 55 // 100)
        atk.oracle_swap(venue.address, target.address, bought, quote.address)
        rest = atk.balance(target.address)
        if rest:
            atk.swap_pool(pool.address, target.address, rest)

    def _krp_body(self, atk: ScriptedAttackContract) -> None:
        quote, target, pool, venue = self.quote, self.target, self.pool, self.venue
        step = self.base_quote // 2
        for _ in range(6):
            atk.swap_pool(pool.address, quote.address, step)
        amount = atk.balance(target.address)
        atk.oracle_swap(venue.address, target.address, amount, quote.address)

    def _dual_body(self, atk: ScriptedAttackContract) -> None:
        """Saddle-shape: three profitable symmetric venue rounds plus an
        SBS triple — matches both patterns."""
        quote, target, pool, venue = self.quote, self.target, self.pool, self.venue
        unit_q = self.base_quote // 10
        got1 = atk.oracle_swap(venue.address, quote.address, unit_q * 10, target.address)
        atk.swap_pool(pool.address, quote.address, unit_q * 30)
        atk.swap_pool(pool.address, target.address, atk.balance(target.address) - got1 - got1 // 3)
        atk.oracle_swap(venue.address, target.address, got1, quote.address)
        got2 = atk.oracle_swap(venue.address, quote.address, unit_q * 3, target.address)
        atk.swap_pool(pool.address, quote.address, unit_q * 4)
        atk.oracle_swap(venue.address, target.address, got2, quote.address)
        atk.swap_pool(pool.address, target.address, atk.balance(target.address))
        got3 = atk.oracle_swap(venue.address, quote.address, unit_q * 6, target.address)
        atk.swap_pool(pool.address, quote.address, unit_q * 6)
        atk.oracle_swap(venue.address, target.address, got3, quote.address)
        rest = atk.balance(target.address)
        if rest:
            atk.swap_pool(pool.address, target.address, rest)

    def _mbs_body(self, atk: ScriptedAttackContract) -> None:
        curve, vault = self.curve, self.vault
        for _ in range(3):
            got = atk.curve_swap(curve.address, 0, 1, self.manipulation)
            shares = atk.vault_deposit(vault.address, self.deposit)
            atk.curve_swap(curve.address, 1, 0, got)
            atk.vault_withdraw(vault.address, shares)


@dataclass(frozen=True, slots=True)
class SplitAttackSpec:
    """One cross-transaction split-attack shape (windowed ground truth).

    A split attack spreads a single KRP/MBS action sequence over
    ``rounds`` consecutive transactions so each transaction alone never
    matches a pattern — only a matcher that accumulates trades across
    transactions (``repro.leishen.window``) sees the full sequence.
    """

    shape: str  # "mbs" | "krp"
    #: consecutive transactions the action sequence spans.
    rounds: int
    truth_patterns: tuple[str, ...]


#: the split shapes cycled over requested groups (group ``g`` uses spec
#: ``g % len(SPLIT_ATTACK_SPECS)``): an MBS attack whose three profitable
#: rounds land in three consecutive transactions, and a KRP buy series
#: split mid-buy (two rising buys per transaction, the dump in the last).
SPLIT_ATTACK_SPECS: tuple[SplitAttackSpec, ...] = (
    SplitAttackSpec("mbs", 3, ("MBS",)),
    SplitAttackSpec("krp", 3, ("KRP",)),
)


def split_spec_of(group: int) -> SplitAttackSpec:
    """The split-attack shape executed by group ``group``."""
    return SPLIT_ATTACK_SPECS[group % len(SPLIT_ATTACK_SPECS)]


class _SplitSurface:
    """Attack surface for one split-attack group.

    Built like a ``_MiniMarket``, but the body executes ONE round per
    transaction so the full action sequence only exists across the
    window. Every round transaction still takes (and repays) a flash
    loan: LeiShen's identification gate only surfaces flash-loan
    transactions, and an attacker splitting rounds while borrowing per
    round is exactly the adversary windowed detection targets. The KRP
    buy legs are paid from the contract's own pre-seeded capital because
    borrowed funds cannot outlive their transaction — the loan is repaid
    from the held balance each round and the dump round recoups it.
    """

    def __init__(self, market: WildMarket, spec: SplitAttackSpec, group: int) -> None:
        world = market.world
        self.market = market
        self.shape = spec.shape
        self.app = f"SplitTarget{group}"
        if spec.shape == "krp":
            self.asset = f"SPT{group}"
            self.quote = world.new_token(f"SPQ{group}")
            self.target = world.new_token(self.asset)
            pool_target = 1_000_000 * self.target.unit
            pool_quote = 10_000 * self.quote.unit
            self.pool = world.dex_pair(self.target, self.quote, pool_target, pool_quote)
            self.venue = world.margin_venue(
                [self.pool],
                funding={self.quote: 500_000 * self.quote.unit,
                         self.target: 4 * pool_target},
                app=self.app,
            )
            self.venue.emits_trade_events = False
            self.base_quote = 1_000 * self.quote.unit
            #: own capital covering the buy legs + per-round flash fees.
            self.capital = 4 * self.base_quote
            self.flash_pair = world.dex_pair(
                self.quote, market.weth, self.base_quote * 64, 10_000 * ETH
            )
            self.flash_token = self.quote
            self.borrow = self.base_quote * 8
        else:  # mbs: vault + curve mini market, one manipulation round per tx
            from ..study.scenarios.common import imbalance_mark

            self.asset = f"SPM{group}"
            self.underlying = world.new_token(self.asset)
            self.alt = world.new_token(self.asset + "q")
            size_units = 50_000_000 * self.underlying.unit
            self.curve = world.curve_pool(
                {self.underlying: size_units, self.alt: size_units},
                app=self.app + "Swap",
            )
            self.vault = world.vault(
                self.underlying,
                "v" + self.asset,
                app=self.app,
                value_per_underlying=imbalance_mark(self.curve, 0.05),
                seed_amount=size_units * 2,
            )
            self.vault.emits_trade_events = False
            self.deposit = 12_000_000 * self.underlying.unit
            self.manipulation = 10_000_000 * self.underlying.unit
            self.capital = 0
            borrow = self.deposit + self.manipulation
            self.flash_pair = world.dex_pair(
                self.underlying, market.weth, borrow * 2, 10_000 * ETH
            )
            self.flash_token = self.underlying
            # cushion for per-round pool fees, as in the one-shot shape
            self.borrow = borrow + self.manipulation // 25

    def fund(self, contract: Address) -> None:
        """Seed the attack contract's working capital (KRP buy legs)."""
        if self.capital:
            self.flash_token.mint(contract, self.capital)

    def round(self, atk: ScriptedAttackContract, round_index: int, n_rounds: int) -> None:
        """One transaction's slice of the split action sequence."""
        if self.shape == "krp":
            step = self.base_quote // 2
            atk.swap_pool(self.pool.address, self.quote.address, step)
            atk.swap_pool(self.pool.address, self.quote.address, step)
            if round_index == n_rounds - 1:
                amount = atk.balance(self.target.address)
                atk.oracle_swap(
                    self.venue.address, self.target.address, amount, self.quote.address
                )
        else:
            got = atk.curve_swap(self.curve.address, 0, 1, self.manipulation)
            shares = atk.vault_deposit(self.vault.address, self.deposit)
            atk.curve_swap(self.curve.address, 1, 0, got)
            atk.vault_withdraw(self.vault.address, shares)


class WildAttackInjector:
    """Plans and executes the scaled attack population."""

    def __init__(self, market: WildMarket, rng: random.Random, scale: float) -> None:
        self.market = market
        self.rng = rng
        self.scale = scale
        self._mini_markets: dict[tuple[str, str, int], _MiniMarket] = {}
        self._attackers: dict[tuple[str, int], Address] = {}
        self._contracts: dict[tuple[str, int], ScriptedAttackContract] = {}
        self._split_surfaces: dict[int, _SplitSurface] = {}
        self._split_attackers: dict[int, Address] = {}
        self._split_contracts: dict[int, ScriptedAttackContract] = {}

    def plan(self) -> list[AttackPlan]:
        """Scaled list of (cluster, attacker_id, contract_id, asset_id, month)."""
        return plan_attacks(self.scale)

    def execute(self, cluster: AttackCluster, attacker_id: int, contract_id: int,
                asset_id: int, month: int | None) -> LabeledTrace:
        mini = self._mini_market(cluster, asset_id)
        attacker = self._attacker(cluster, attacker_id)
        contract = self._contract(cluster, contract_id, attacker)
        token, amount, flash_pair = mini.borrow_spec()
        trace = self.market.run_flash(attacker, contract, mini.body(),
                                      self.market.pick_provider(), token, amount,
                                      flash_pair=flash_pair)
        asset_symbol = (mini.target.symbol if mini.shape != "mbs" else mini.underlying.symbol)
        return LabeledTrace(
            trace,
            GroundTruth(
                is_attack=True,
                profile=f"attack:{cluster.shape}",
                net_profit=True,
                source_disclosed=False,
                attacked_app=cluster.app,
                attacker=attacker,
                attack_contract=contract.address,
                asset=asset_symbol,
                month=month,
                patterns=cluster.truth_patterns,
                known=cluster.known,
            ),
        )

    def execute_split(self, group: int, round_index: int, n_rounds: int) -> LabeledTrace:
        """Execute one round transaction of a cross-transaction split attack.

        The round's trades never match a pattern on their own; the
        ground truth carries ``split_group`` so the windowed evaluation
        can score recall per group rather than per transaction. The
        provider is pinned (no RNG draw) so split tasks never perturb
        the shard's RNG stream.
        """
        spec = split_spec_of(group)
        surface = self._split_surface(spec, group)
        attacker = self._split_attacker(group)
        contract = self._split_contract(group, attacker)
        if round_index == 0:
            surface.fund(contract.address)

        def body(atk: ScriptedAttackContract) -> None:
            surface.round(atk, round_index, n_rounds)

        trace = self.market.run_flash(
            attacker, contract, body, "Uniswap",
            surface.flash_token, surface.borrow,
            flash_pair=surface.flash_pair.address,
        )
        return LabeledTrace(
            trace,
            GroundTruth(
                is_attack=True,
                profile=f"attack-split:{spec.shape}",
                net_profit=round_index == n_rounds - 1,
                source_disclosed=False,
                attacked_app=surface.app,
                attacker=attacker,
                attack_contract=contract.address,
                asset=surface.asset,
                month=None,
                patterns=spec.truth_patterns,
                known=False,
                split_group=group,
            ),
        )

    # -- lazily built pieces ------------------------------------------------

    def _mini_market(self, cluster: AttackCluster, asset_id: int) -> _MiniMarket:
        key = (cluster.app, cluster.shape, asset_id)
        if key not in self._mini_markets:
            size = cluster.profit_usd / 600_000.0  # calibrated per REF profits
            if cluster.amount_factor != 1.0:
                size = 0.05  # dust attacks run on a floor-size market
            asset = f"{cluster.app[:3].upper()}{asset_id}"
            self._mini_markets[key] = _MiniMarket(
                self.market, cluster.app, asset, cluster.shape, size,
                amount_factor=cluster.amount_factor,
                sensitivity=cluster.sensitivity,
            )
        return self._mini_markets[key]

    def _split_surface(self, spec: SplitAttackSpec, group: int) -> _SplitSurface:
        if group not in self._split_surfaces:
            self._split_surfaces[group] = _SplitSurface(self.market, spec, group)
        return self._split_surfaces[group]

    def _split_attacker(self, group: int) -> Address:
        if group not in self._split_attackers:
            # canonical address, like _attacker: the same split group
            # resolves to the same attacker in every shard.
            self._split_attackers[group] = self.market.world.chain.create_eoa(
                f"split-attacker-{group}",
                address=keccak_address("split-attacker", str(group)),
            )
        return self._split_attackers[group]

    def _split_contract(self, group: int, attacker: Address) -> ScriptedAttackContract:
        if group not in self._split_contracts:
            from .profiles import _plan_body

            self._split_contracts[group] = self.market.world.chain.deploy(
                attacker, ScriptedAttackContract, _plan_body,
                hint=f"split-attack-{group}",
                address=keccak_address("split-attack-contract", str(group)),
            )
        return self._split_contracts[group]

    def _attacker(self, cluster: AttackCluster, attacker_id: int) -> Address:
        key = (cluster.app, attacker_id)
        if key not in self._attackers:
            # canonical address: the same logical attacker resolves to the
            # same address in every shard of a sharded scan, keeping the
            # Table VI attacker/contract counts partition-invariant.
            self._attackers[key] = self.market.world.chain.create_eoa(
                f"wild-attacker-{cluster.app}-{attacker_id}",
                address=keccak_address("wild-attacker", cluster.app, str(attacker_id)),
            )
        return self._attackers[key]

    def _contract(self, cluster: AttackCluster, contract_id: int, attacker: Address) -> ScriptedAttackContract:
        key = (cluster.app, contract_id)
        if key not in self._contracts:
            from .profiles import _plan_body

            self._contracts[key] = self.market.world.chain.deploy(
                attacker, ScriptedAttackContract, _plan_body,
                hint=f"wild-attack-{cluster.app}-{contract_id}",
                address=keccak_address("wild-attack-contract", cluster.app, str(contract_id)),
            )
        return self._contracts[key]
