"""The wild scan: generate the flash-loan population and run detection.

Reproduces the paper's Sec. VI-C/VI-D evaluation end to end: a seeded
population of flash-loan transactions (benign profiles + calibrated
attacks + the two false-positive sources) is executed on the substrate,
every transaction runs through LeiShen, and detections are verified
against ground truth the way the paper's manual inspection verified them.

``scale`` controls population size: 1.0 means the paper's full 272,984
transactions (minutes of runtime); the default 0.02 keeps benches fast
while preserving every ratio.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..chain.errors import ChainError
from ..leishen.patterns import PatternConfig

from ..leishen.heuristics import YieldAggregatorHeuristic
from ..leishen.profit import ProfitAnalyzer
from ..world import DeFiWorld, ETHEREUM_PROFILE
from .attacks import WildAttackInjector
from .profiles import (
    BENIGN_PROFILES,
    GroundTruth,
    LabeledTrace,
    WildMarket,
    profile_migration,
    profile_yield_strategy,
)
from .timeline import TOTAL_FLASH_LOAN_TXS

__all__ = ["WildScanConfig", "PatternRow", "Detection", "WildScanResult", "WildScanner"]

#: full-scale counts of the false-positive sources (see attacks.py for the
#: Table V arithmetic these reproduce).
FULL_SCALE_MIGRATIONS = 6
FULL_SCALE_STRATEGIES = 32


@dataclass(frozen=True, slots=True)
class WildScanConfig:
    scale: float = 0.02
    seed: int = 7
    #: apply the Sec. VI-C yield-aggregator heuristic to MBS detections.
    with_heuristic: bool = False
    #: drop per-trace history to bound memory on full-scale runs.
    keep_history: bool = False
    #: pattern thresholds (ablation sweeps override the paper defaults).
    pattern_config: PatternConfig | None = None


@dataclass(slots=True)
class PatternRow:
    """One Table V row."""

    pattern: str
    n: int = 0
    tp: int = 0
    fp: int = 0

    @property
    def precision(self) -> float:
        return self.tp / self.n if self.n else 0.0


@dataclass(slots=True)
class Detection:
    """One detected transaction with its verification outcome."""

    tx_hash: str
    patterns: tuple[str, ...]
    truth: GroundTruth
    profit_usd: float = 0.0
    borrowed_usd: float = 0.0

    @property
    def is_true_attack(self) -> bool:
        return self.truth.is_attack


@dataclass(slots=True)
class WildScanResult:
    config: WildScanConfig
    total_transactions: int = 0
    detections: list[Detection] = field(default_factory=list)
    rows: dict[str, PatternRow] = field(default_factory=dict)

    @property
    def detected_count(self) -> int:
        return len(self.detections)

    @property
    def true_positives(self) -> int:
        return sum(1 for d in self.detections if d.is_true_attack)

    @property
    def precision(self) -> float:
        return self.true_positives / self.detected_count if self.detections else 0.0

    def unknown_attacks(self) -> list[Detection]:
        return [d for d in self.detections if d.is_true_attack and not d.truth.known]

    def table5(self) -> list[PatternRow]:
        return [self.rows[p] for p in ("KRP", "SBS", "MBS")]

    def table6(self) -> list[tuple[str, int, int, int, int]]:
        """Top attacked apps among unknown attacks:
        (app, attacks, attackers, contracts, assets)."""
        by_app: dict[str, list[Detection]] = {}
        for det in self.unknown_attacks():
            by_app.setdefault(det.truth.attacked_app or "?", []).append(det)
        rows = []
        for app, dets in by_app.items():
            rows.append(
                (
                    app,
                    len(dets),
                    len({d.truth.attacker for d in dets}),
                    len({d.truth.attack_contract for d in dets}),
                    len({d.truth.asset for d in dets}),
                )
            )
        rows.sort(key=lambda r: -r[1])
        return rows

    def table7(self) -> dict[str, float]:
        from ..leishen.profit import ProfitBreakdown, profit_statistics

        breakdowns = [
            ProfitBreakdown(d.tx_hash, d.profit_usd, d.borrowed_usd)
            for d in self.detections
            if d.is_true_attack
        ]
        return profit_statistics(breakdowns)

    def fig8_months(self) -> dict[int, int]:
        """Detected unknown attacks per month (month 0 = Jan 2020)."""
        months: dict[int, int] = {}
        for det in self.unknown_attacks():
            if det.truth.month is not None:
                months[det.truth.month] = months.get(det.truth.month, 0) + 1
        return dict(sorted(months.items()))


class WildScanner:
    """Builds the wild world and runs the scan."""

    def __init__(self, config: WildScanConfig | None = None) -> None:
        self.config = config or WildScanConfig()

    def run(self) -> WildScanResult:
        cfg = self.config
        rng = random.Random(cfg.seed)
        world = DeFiWorld(profile=ETHEREUM_PROFILE)
        world.chain.keep_history = cfg.keep_history
        market = WildMarket(world, rng)
        injector = WildAttackInjector(market, rng, cfg.scale)
        if cfg.pattern_config is not None:
            detector = world.detector(patterns=cfg.pattern_config)
        else:
            detector = world.detector()
        heuristic = YieldAggregatorHeuristic(detector.tagger)
        analyzer = ProfitAnalyzer(world.registry)

        schedule = self._schedule(market, injector, rng)
        result = WildScanResult(config=cfg, rows={
            "KRP": PatternRow("KRP"), "SBS": PatternRow("SBS"), "MBS": PatternRow("MBS"),
        })
        for produce in schedule:
            try:
                labeled = produce()
            except ChainError:
                # a reverted transaction still counts toward the population;
                # LeiShen skips failed transactions, as on the real chain.
                result.total_transactions += 1
                continue
            result.total_transactions += 1
            self._detect(labeled, detector, heuristic, analyzer, result)
        return result

    # ------------------------------------------------------------------

    def _schedule(self, market: WildMarket, injector: WildAttackInjector, rng: random.Random):
        cfg = self.config
        total = max(50, round(TOTAL_FLASH_LOAN_TXS * cfg.scale))
        thunks = []
        attack_plans = injector.plan()
        for plan in attack_plans:
            thunks.append(lambda p=plan: injector.execute(*p))
        n_migrations = max(1, round(FULL_SCALE_MIGRATIONS * cfg.scale))
        for _ in range(n_migrations):
            thunks.append(lambda: profile_migration(market))
        n_strategies = max(1, round(FULL_SCALE_STRATEGIES * cfg.scale))
        for _ in range(n_strategies):
            thunks.append(lambda: profile_yield_strategy(market, aggregator_initiated=True))
        n_benign = max(0, total - len(thunks))
        runners = [runner for _, _, runner in BENIGN_PROFILES]
        weights = [weight for _, weight, _ in BENIGN_PROFILES]
        for _ in range(n_benign):
            runner = rng.choices(runners, weights)[0]
            thunks.append(lambda r=runner: r(market))
        rng.shuffle(thunks)
        return thunks

    def _detect(self, labeled: LabeledTrace, detector, heuristic, analyzer, result: WildScanResult) -> None:
        report = detector.analyze(labeled.trace)
        if report is None:
            return  # not identified as a flash loan transaction
        if self.config.with_heuristic:
            report = heuristic.apply(labeled.trace, report)
        if not report.is_attack:
            return
        patterns = tuple(sorted(p.name for p in report.patterns))
        truth = labeled.truth
        profit_usd = borrowed_usd = 0.0
        if truth.is_attack:
            accounts = [a for a in (truth.attacker, truth.attack_contract) if a is not None]
            breakdown = analyzer.breakdown(labeled.trace, report.flash_loans, accounts)
            profit_usd, borrowed_usd = breakdown.profit_usd, breakdown.borrowed_usd
        result.detections.append(
            Detection(
                tx_hash=labeled.trace.tx_hash,
                patterns=patterns,
                truth=truth,
                profit_usd=profit_usd,
                borrowed_usd=borrowed_usd,
            )
        )
        for name in patterns:
            row = result.rows[name]
            row.n += 1
            if truth.is_attack and name in truth.patterns:
                row.tp += 1
            else:
                row.fp += 1

