"""The wild scan: generate the flash-loan population and run detection.

Reproduces the paper's Sec. VI-C/VI-D evaluation end to end: a seeded
population of flash-loan transactions (benign profiles + calibrated
attacks + the two false-positive sources) is executed on the substrate,
every transaction runs through LeiShen, and detections are verified
against ground truth the way the paper's manual inspection verified them.

``scale`` controls population size: 1.0 means the paper's full 272,984
transactions (minutes of runtime); the default 0.02 keeps benches fast
while preserving every ratio. ``jobs`` fans the scan out over worker
processes via the sharded engine (:mod:`repro.engine`) without changing
any result byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..leishen.patterns import PatternConfig
from ..leishen.registry import PatternSettings
from .attacks import FULL_SCALE_MIGRATIONS, FULL_SCALE_STRATEGIES  # noqa: F401 (re-export)
from .profiles import GroundTruth

__all__ = ["WildScanConfig", "PatternRow", "Detection", "WildScanResult", "WildScanner"]


@dataclass(frozen=True, slots=True)
class WildScanConfig:
    scale: float = 0.02
    seed: int = 7
    #: apply the Sec. VI-C yield-aggregator heuristic to MBS detections.
    with_heuristic: bool = False
    #: drop per-trace history to bound memory on full-scale runs.
    keep_history: bool = False
    #: pattern selection + thresholds: a legacy flat ``PatternConfig``
    #: (ablation sweeps override the paper defaults) or a namespaced
    #: :class:`~repro.leishen.registry.PatternSettings` (which can also
    #: change the *enabled* pattern set). Identity-relevant either way —
    #: it rides the config wire and the digest.
    pattern_config: PatternConfig | PatternSettings | None = None
    #: worker processes consuming the shards. Purely an execution knob:
    #: the result is byte-identical for any value (the schedule partition
    #: is a function of seed/scale/shards only, never of jobs).
    jobs: int = 1
    #: shard count for the scan engine. ``None`` resolves automatically
    #: (1 shard for tiny populations, 8 beyond ~512 transactions); set
    #: explicitly to pin the partition (and therefore the exact result)
    #: across scales.
    shards: int | None = None
    #: consult the flash-loan pre-screen before full detection
    #: (:mod:`repro.leishen.prescreen`). Execution knob only: screening
    #: rejects on provable necessary conditions, so results are
    #: byte-identical either way (and the flag stays out of the config
    #: wire/digest, like ``jobs``).
    prescreen: bool = True
    #: collect per-stage timers/counters into shard profiles
    #: (:mod:`repro.runtime.profile`). Execution knob only; profiles are
    #: observability output, never part of the result.
    profile: bool = False
    #: number of cross-transaction split-attack groups appended to the
    #: schedule (windowed-detection ground truth). Identity-relevant:
    #: it changes the canonical schedule, so it rides the config wire
    #: and the digest. ``0`` keeps the schedule exactly as before.
    split_attacks: int = 0
    #: number of adversarial-family attacks (sandwich / infinite-mint /
    #: donation clusters) appended to the schedule. Identity-relevant:
    #: it changes the canonical schedule, so it rides the config wire
    #: and the digest. ``0`` keeps the schedule exactly as before. The
    #: paper-default pattern set will not detect these — enable the
    #: matching plugins via ``pattern_config=PatternSettings(...)``.
    adversarial: int = 0

    def __post_init__(self) -> None:
        # Programmatic callers get the same errors the CLI raises instead
        # of a silent clamp inside the engine.
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.split_attacks < 0:
            raise ValueError(
                f"split_attacks must be >= 0, got {self.split_attacks}"
            )
        if self.adversarial < 0:
            raise ValueError(
                f"adversarial must be >= 0, got {self.adversarial}"
            )


@dataclass(slots=True)
class PatternRow:
    """One Table V row."""

    pattern: str
    n: int = 0
    tp: int = 0
    fp: int = 0

    @property
    def precision(self) -> float:
        return self.tp / self.n if self.n else 0.0


@dataclass(slots=True)
class Detection:
    """One detected transaction with its verification outcome."""

    tx_hash: str
    patterns: tuple[str, ...]
    truth: GroundTruth
    profit_usd: float = 0.0
    borrowed_usd: float = 0.0

    @property
    def is_true_attack(self) -> bool:
        return self.truth.is_attack


@dataclass(slots=True)
class WildScanResult:
    config: WildScanConfig
    total_transactions: int = 0
    detections: list[Detection] = field(default_factory=list)
    rows: dict[str, PatternRow] = field(default_factory=dict)

    @property
    def detected_count(self) -> int:
        return len(self.detections)

    @property
    def true_positives(self) -> int:
        return sum(1 for d in self.detections if d.is_true_attack)

    @property
    def precision(self) -> float:
        return self.true_positives / self.detected_count if self.detections else 0.0

    def unknown_attacks(self) -> list[Detection]:
        return [d for d in self.detections if d.is_true_attack and not d.truth.known]

    def table5(self) -> list[PatternRow]:
        return [self.rows[p] for p in ("KRP", "SBS", "MBS") if p in self.rows]

    def table6(self) -> list[tuple[str, int, int, int, int]]:
        """Top attacked apps among unknown attacks:
        (app, attacks, attackers, contracts, assets)."""
        by_app: dict[str, list[Detection]] = {}
        for det in self.unknown_attacks():
            by_app.setdefault(det.truth.attacked_app or "?", []).append(det)
        rows = []
        for app, dets in by_app.items():
            rows.append(
                (
                    app,
                    len(dets),
                    len({d.truth.attacker for d in dets}),
                    len({d.truth.attack_contract for d in dets}),
                    len({d.truth.asset for d in dets}),
                )
            )
        rows.sort(key=lambda r: -r[1])
        return rows

    def table7(self) -> dict[str, float]:
        from ..leishen.profit import ProfitBreakdown, profit_statistics

        breakdowns = [
            ProfitBreakdown(d.tx_hash, d.profit_usd, d.borrowed_usd)
            for d in self.detections
            if d.is_true_attack
        ]
        return profit_statistics(breakdowns)

    def fig8_months(self) -> dict[int, int]:
        """Detected unknown attacks per month (month 0 = Jan 2020)."""
        months: dict[int, int] = {}
        for det in self.unknown_attacks():
            if det.truth.month is not None:
                months[det.truth.month] = months.get(det.truth.month, 0) + 1
        return dict(sorted(months.items()))


class WildScanner:
    """Builds the wild world and runs the scan.

    Execution is delegated to :class:`repro.engine.scan.ScanEngine`, which
    shards the deterministic schedule across ``config.jobs`` worker
    processes. The result is byte-identical for any ``jobs`` value.
    """

    def __init__(self, config: WildScanConfig | None = None, *, ledger=None) -> None:
        self.config = config or WildScanConfig()
        self.ledger = ledger

    def run(self) -> WildScanResult:
        from ..engine import ScanEngine  # lazy: engine imports this module

        return ScanEngine(self.config, ledger=self.ledger).run()

