"""Wild-scan workload: population generator, attacks, timelines."""

from .attacks import ATTACK_CLUSTERS, AttackCluster, FULL_SCALE_ATTACKS, WildAttackInjector
from .generator import (
    Detection,
    PatternRow,
    WildScanConfig,
    WildScanResult,
    WildScanner,
)
from .profiles import BENIGN_PROFILES, GroundTruth, LabeledTrace, WildMarket
from .timeline import (
    PROVIDER_TOTALS,
    TOTAL_FLASH_LOAN_TXS,
    UNKNOWN_ATTACK_TOTAL,
    WeekPoint,
    month_label,
    monthly_attack_weights,
    weekly_flash_loan_series,
)

__all__ = [
    "ATTACK_CLUSTERS",
    "AttackCluster",
    "BENIGN_PROFILES",
    "Detection",
    "FULL_SCALE_ATTACKS",
    "GroundTruth",
    "LabeledTrace",
    "PROVIDER_TOTALS",
    "PatternRow",
    "TOTAL_FLASH_LOAN_TXS",
    "UNKNOWN_ATTACK_TOTAL",
    "WeekPoint",
    "WildAttackInjector",
    "WildMarket",
    "WildScanConfig",
    "WildScanResult",
    "WildScanner",
    "month_label",
    "monthly_attack_weights",
    "weekly_flash_loan_series",
]
