"""Benign flash-loan transaction profiles for the wild scan.

The 272,984 flash loan transactions of the paper's evaluation are
overwhelmingly legitimate: arbitrage, liquidations, collateral swaps and
strategy rebalancing (paper Sec. I cites these as the main uses). This
module builds a shared wild-scan market once, plus a cast of reusable bot
contracts, and exposes one generator function per profile — including the
two false-positive sources the paper's manual verification identified:
yield-aggregator strategies (MBS look-alikes) and operator "migration"
transactions (SBS look-alikes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..chain.trace import TransactionTrace
from ..chain.types import Address, ETH
from ..study.scenarios.base import ScriptedAttackContract
from ..tokens.erc20 import ERC20
from ..world import DeFiWorld

__all__ = ["WildMarket", "GroundTruth", "LabeledTrace", "BENIGN_PROFILES"]


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """What the manual-verification step (paper Sec. VI-C) would conclude."""

    is_attack: bool
    profile: str
    #: criteria the paper used: a net profit and an undisclosed source.
    net_profit: bool = False
    source_disclosed: bool = True
    #: true when the transaction is initiated by a yield-aggregator app.
    aggregator_initiated: bool = False
    attacked_app: str | None = None
    attacker: Address | None = None
    attack_contract: Address | None = None
    asset: str | None = None
    month: int | None = None
    #: ground-truth patterns for true attacks (pattern-level TP/FP).
    patterns: tuple[str, ...] = ()
    #: attack family (a registry pattern key) for labelled scenario
    #: scoring — the primary pattern the injected shape embodies.
    #: ``None`` for benign traffic and pre-registry labels.
    family: str | None = None
    #: whether this is one of the 33 previously-known attacks/repeats.
    known: bool = False
    #: split-attack group id when this transaction is one round of an
    #: attack deliberately split across consecutive transactions (the
    #: cross-transaction windowed-detection ground truth); ``None`` for
    #: everything else. Per-transaction detection must miss these — only
    #: the windowed matcher sees the whole action sequence.
    split_group: int | None = None


@dataclass(slots=True)
class LabeledTrace:
    trace: TransactionTrace
    truth: GroundTruth


def _plan_body(atk: ScriptedAttackContract) -> None:
    """Bot body: execute the plan injected by the generator."""
    plan: Callable[[ScriptedAttackContract], None] | None = getattr(atk, "plan", None)
    if plan is not None:
        plan(atk)


@dataclass
class WildMarket:
    """The shared venue set every benign profile trades against."""

    world: DeFiWorld
    rng: random.Random

    def __post_init__(self) -> None:
        w = self.world
        self.weth = w.weth
        self.usdc = w.new_token("USDC", 6)
        self.dai = w.new_token("DAI")
        self.usdt = w.new_token("USDT", 6)
        self.wbtc = w.new_token("WBTC", 8)
        u, e = self.usdc.unit, ETH
        self.pool_weth_usdc = w.dex_pair(self.weth, self.usdc, 50_000 * e, 75_000_000 * u)
        self.pool_weth_dai = w.dex_pair(self.weth, self.dai, 50_000 * e, 75_000_000 * self.dai.unit)
        self.pool_weth_wbtc = w.dex_pair(self.weth, self.wbtc, 38_500 * e, 1_000 * self.wbtc.unit)
        self.sushi_weth_usdc = w.dex_pair(
            self.weth, self.usdc, 30_000 * e, 45_200_000 * u, app="SushiSwap"
        )
        self.sushi_weth_dai = w.dex_pair(
            self.weth, self.dai, 30_000 * e, 45_100_000 * self.dai.unit, app="SushiSwap"
        )
        self.curve = w.curve_pool(
            {self.usdc: 80_000_000 * u, self.usdt: 80_000_000 * self.usdt.unit}
        )
        self.vault = w.vault(self.usdc, "fUSDC", app="Harvest", seed_amount=200_000_000 * u)
        self.aggregator = w.aggregator("1inch", fee_bps=5)
        self.market = w.lending_market(
            prices={
                self.weth.address: 1.0,
                self.usdc.address: 1 / 1500 * 10**18 / 10**6,
                self.dai.address: 1 / 1500,
                self.wbtc.address: 25.6 * 10**18 / 10**8,
            },
            funding={
                self.weth: 100_000 * e,
                self.usdc: 100_000_000 * u,
                self.dai: 100_000_000 * self.dai.unit,
            },
        )
        # a standing underwater borrower for liquidation profiles
        self.victim = w.chain.create_eoa("victim-whale")
        self.dai.mint(self.victim, 50_000_000 * self.dai.unit)
        w.approve(self.victim, self.dai, self.market.address)
        w.chain.transact(
            self.victim,
            self.market.address,
            "borrow",
            self.dai.address,
            40_000_000 * self.dai.unit,
            self.usdc.address,
            20_000_000 * u,
        )
        # flash loan providers
        self.aave = w.aave(
            funding={self.usdc: 200_000_000 * u, self.weth: 200_000 * e,
                     self.dai: 200_000_000 * self.dai.unit}
        )
        self.dydx = w.dydx(
            funding={self.usdc: 200_000_000 * u, self.weth: 200_000 * e,
                     self.dai: 200_000_000 * self.dai.unit}
        )
        # dedicated deep flash-swap pairs so borrowing does not disturb
        # the priced markets above
        self.flash_pair_usdc = w.dex_pair(self.usdc, self.dai, 400_000_000 * u,
                                          400_000_000 * self.dai.unit)
        self.flash_pair_weth = w.dex_pair(self.weth, self.usdt, 2_000_000 * e,
                                          3_000_000_000 * self.usdt.unit)
        self.bots = [self._new_bot(f"bot-{i}") for i in range(12)]
        # labeled keeper EOAs for aggregator-initiated strategies
        self.keepers = [
            w.chain.create_eoa("keeper-agg", label="Harvest Strategy: Keeper"),
            w.chain.create_eoa("keeper-agg2", label="Yearn Strategy: Keeper"),
        ]
        self.plain_keeper = w.chain.create_eoa("keeper-plain")
        # operator market for migration (SBS look-alike) transactions
        self.ops_token = w.new_token("OPS")
        self.ops_pool = w.dex_pair(self.ops_token, self.weth, 600_000 * ETH, 6_000 * e)
        self.ops_venue = w.margin_venue(
            [self.ops_pool],
            funding={self.weth: 200_000 * e, self.ops_token: 2_000_000 * ETH},
            app="ProtocolOps",
        )
        self.ops_venue.emits_trade_events = False
        self.ops_operator = w.chain.create_eoa("ops-operator", label="ProtocolOps: Operator")
        # strategy mini-market: the MBS false-positive surface. The vault
        # rebalance dance is structurally identical to an MBS attack —
        # which is exactly why the paper's MBS precision is 56.1%.
        from ..study.scenarios.common import imbalance_mark

        self.strategy_usd = w.new_token("sUSD0")
        self.strategy_alt = w.new_token("sALT0")
        su = self.strategy_usd.unit
        self.strategy_curve = w.curve_pool(
            {self.strategy_usd: 50_000_000 * su, self.strategy_alt: 50_000_000 * su},
            app="StrategySwap",
        )
        self.strategy_vault = w.vault(
            self.strategy_usd,
            "stUSD",
            app="Harvest",
            value_per_underlying=imbalance_mark(self.strategy_curve, 0.04),
            seed_amount=80_000_000 * su,
        )
        self.strategy_vault.emits_trade_events = False
        self.strategy_flash_pair = w.dex_pair(
            self.strategy_usd, self.weth, 100_000_000 * su, 10_000 * e
        )
        w.dydx(funding={self.strategy_usd: 100_000_000 * su})
        w.aave(funding={self.strategy_usd: 100_000_000 * su})
        self._float_bots()

    def _new_bot(self, hint: str) -> ScriptedAttackContract:
        owner = self.world.chain.create_eoa(f"{hint}-owner")
        return self.world.chain.deploy(owner, ScriptedAttackContract, _plan_body, hint=hint)

    def _float_bots(self) -> None:
        """Give every bot a working float so fees and repayments clear."""
        for bot in [*self.bots]:
            for token in (self.usdc, self.dai, self.usdt, self.weth, self.wbtc,
                          self.strategy_usd):
                token.mint(bot.address, 1_000_000 * token.unit)

    def top_up(self, bot: ScriptedAttackContract) -> None:
        """Refill a bot whose float ran low (fees bleed over thousands of
        transactions; a real operator would do the same)."""
        for token in (self.usdc, self.dai, self.weth, self.strategy_usd):
            if token.balance_of(bot.address) < 500_000 * token.unit:
                token.mint(bot.address, 1_000_000 * token.unit)

    # ------------------------------------------------------------------
    # execution helper
    # ------------------------------------------------------------------

    def run_flash(
        self,
        sender: Address,
        bot: ScriptedAttackContract,
        plan: Callable[[ScriptedAttackContract], None],
        provider: str,
        token: ERC20,
        amount: int,
        flash_pair: Address | None = None,
    ) -> TransactionTrace:
        bot.plan = plan
        chain = self.world.chain
        if provider == "AAVE":
            return chain.transact(sender, bot.address, "run_aave", self.aave.address,
                                  token.address, amount)
        if provider == "dYdX":
            return chain.transact(sender, bot.address, "run_dydx", self.dydx.address,
                                  token.address, amount)
        if flash_pair is None:
            if token is self.weth:
                flash_pair = self.flash_pair_weth.address
            else:
                flash_pair = self.flash_pair_usdc.address
        return chain.transact(sender, bot.address, "run_uniswap", flash_pair,
                              token.address, amount)

    def pick_bot(self) -> ScriptedAttackContract:
        bot = self.rng.choice(self.bots)
        self.top_up(bot)
        return bot

    def pick_provider(self) -> str:
        # Uniswap 208,342 : dYdX 41,741 : AAVE 22,959 (paper Sec. VI-A)
        return self.rng.choices(
            ["Uniswap", "dYdX", "AAVE"], weights=[208_342, 41_741, 22_959]
        )[0]


# ---------------------------------------------------------------------------
# benign profiles: each returns a LabeledTrace
# ---------------------------------------------------------------------------


def profile_idle(market: WildMarket) -> LabeledTrace:
    """Borrow and repay, nothing else — probe/test transactions."""
    bot = market.pick_bot()
    amount = market.rng.randint(1_000, 500_000) * market.usdc.unit
    trace = market.run_flash(
        bot.chain.created_by[bot.address], bot, lambda atk: None,
        market.pick_provider(), market.usdc, amount,
    )
    return LabeledTrace(trace, GroundTruth(is_attack=False, profile="idle"))


def profile_two_pool_arb(market: WildMarket) -> LabeledTrace:
    """Classic cross-DEX arbitrage: buy WETH on the cheaper pool, sell on
    the dearer one — real arbitrage is price-aware and convergent."""
    bot = market.pick_bot()
    amount = market.rng.randint(10_000, 300_000) * market.usdc.unit
    pool_a, pool_b = market.pool_weth_usdc, market.sushi_weth_usdc
    # buy WETH where it is cheap (fewer USDC per WETH)
    if pool_a.spot_price(market.weth.address, market.usdc.address) > pool_b.spot_price(
        market.weth.address, market.usdc.address
    ):
        pool_a, pool_b = pool_b, pool_a

    def plan(atk: ScriptedAttackContract) -> None:
        got = atk.swap_pool(pool_a.address, market.usdc.address, amount)
        atk.swap_pool(pool_b.address, market.weth.address, got)

    trace = market.run_flash(
        bot.chain.created_by[bot.address], bot, plan,
        market.pick_provider(), market.usdc, amount + 1000,
    )
    return LabeledTrace(trace, GroundTruth(is_attack=False, profile="arbitrage"))


def profile_aggregator_hop(market: WildMarket) -> LabeledTrace:
    """Routed swap through the 1inch-style aggregator (inter-app merges)."""
    bot = market.pick_bot()
    amount = market.rng.randint(5_000, 500_000) * market.dai.unit

    def plan(atk: ScriptedAttackContract) -> None:
        got = atk.aggregator_trade(
            market.aggregator.address, market.pool_weth_dai.address,
            market.dai.address, amount, market.weth.address,
        )
        atk.swap_pool(market.sushi_weth_dai.address, market.weth.address, got)

    trace = market.run_flash(
        bot.chain.created_by[bot.address], bot, plan,
        market.pick_provider(), market.dai, amount + 1000,
    )
    return LabeledTrace(trace, GroundTruth(is_attack=False, profile="aggregator_hop"))


def profile_collateral_swap(market: WildMarket) -> LabeledTrace:
    """Flash-funded collateral management on the lending market."""
    bot = market.pick_bot()
    amount = market.rng.randint(100, 2_000) * ETH

    def plan(atk: ScriptedAttackContract) -> None:
        atk.approve(market.weth.address, market.market.address)
        # borrow USDC worth half the ETH collateral (1 ETH ~ 1500 USDC)
        borrow = max(amount * 1500 // ETH * market.usdc.unit // 2, market.usdc.unit)
        atk.call(market.market.address, "borrow", market.weth.address, amount,
                 market.usdc.address, borrow)
        atk.approve(market.usdc.address, market.market.address)
        atk.call(market.market.address, "repay", market.usdc.address, borrow)
        atk.call(market.market.address, "withdraw_collateral", market.weth.address, amount)

    trace = market.run_flash(
        bot.chain.created_by[bot.address], bot, plan,
        market.pick_provider(), market.weth, amount,
    )
    return LabeledTrace(trace, GroundTruth(is_attack=False, profile="collateral_swap"))


def profile_liquidation(market: WildMarket) -> LabeledTrace:
    """Flash-funded liquidation: repay USDC debt, seize DAI collateral."""
    bot = market.pick_bot()
    amount = market.rng.randint(1_000, 50_000) * market.usdc.unit
    # keep the standing victim position deep enough to liquidate against
    if market.market.debt_of(market.victim, market.usdc.address) < amount * 2:
        market.dai.mint(market.victim, 40_000_000 * market.dai.unit)
        market.world.chain.transact(
            market.victim, market.market.address, "borrow",
            market.dai.address, 40_000_000 * market.dai.unit,
            market.usdc.address, 20_000_000 * market.usdc.unit,
        )

    def plan(atk: ScriptedAttackContract) -> None:
        atk.approve(market.usdc.address, market.market.address)
        atk.call(market.market.address, "liquidate", market.victim,
                 market.usdc.address, amount, market.dai.address)

    trace = market.run_flash(
        bot.chain.created_by[bot.address], bot, plan,
        market.pick_provider(), market.usdc, amount,
    )
    return LabeledTrace(trace, GroundTruth(is_attack=False, profile="liquidation"))


def profile_lp_cycle(market: WildMarket) -> LabeledTrace:
    """Add and remove liquidity in one transaction (LP management)."""
    bot = market.pick_bot()
    router = market.world.dex_router()
    pair = market.pool_weth_usdc
    eth_amount = market.rng.randint(10, 200) * ETH

    def plan(atk: ScriptedAttackContract) -> None:
        usdc_amount = int(eth_amount * pair.reserve_of(market.usdc.address)
                          / pair.reserve_of(market.weth.address))
        atk.approve(market.weth.address, router.address)
        atk.approve(market.usdc.address, router.address)
        amount0, amount1 = (
            (eth_amount, usdc_amount)
            if pair.token0 == market.weth.address
            else (usdc_amount, eth_amount)
        )
        liquidity = atk.call(router.address, "addLiquidity", pair.address, amount0, amount1)
        atk.approve(pair.address, router.address)
        atk.call(router.address, "removeLiquidity", pair.address, liquidity)

    trace = market.run_flash(
        bot.chain.created_by[bot.address], bot, plan,
        market.pick_provider(), market.weth, eth_amount,
    )
    return LabeledTrace(trace, GroundTruth(is_attack=False, profile="lp_cycle"))


# -- false-positive sources ---------------------------------------------------


def profile_yield_strategy(market: WildMarket, aggregator_initiated: bool) -> LabeledTrace:
    """Yield-strategy rebalance: >= 3 profitable vault rounds.

    Structurally indistinguishable from MBS — the paper's dominant
    false-positive source (Sec. VI-C). When ``aggregator_initiated`` the
    transaction sender carries a yield-aggregator label, which is what the
    paper's precision-lifting heuristic keys on.
    """
    bot = market.pick_bot()
    usd = market.strategy_usd
    deposit = market.rng.randint(5_000_000, 10_000_000) * usd.unit
    manipulation = market.rng.randint(8_000_000, 12_000_000) * usd.unit
    vault, curve = market.strategy_vault, market.strategy_curve

    def plan(atk: ScriptedAttackContract) -> None:
        for _ in range(3):
            got = atk.curve_swap(curve.address, 0, 1, manipulation)
            shares = atk.vault_deposit(vault.address, deposit)
            atk.curve_swap(curve.address, 1, 0, got)
            atk.vault_withdraw(vault.address, shares)

    sender = market.rng.choice(market.keepers) if aggregator_initiated else market.plain_keeper
    trace = market.run_flash(sender, bot, plan, market.pick_provider(),
                             usd, deposit + manipulation,
                             flash_pair=market.strategy_flash_pair.address)
    return LabeledTrace(
        trace,
        GroundTruth(
            is_attack=False,
            profile="yield_strategy",
            net_profit=True,
            aggregator_initiated=aggregator_initiated,
        ),
    )


def profile_migration(market: WildMarket) -> LabeledTrace:
    """Operator liquidity migration shaped exactly like SBS.

    The operator moves treasury inventory between its own venue and pool;
    the transfers conform to SBS, but the 'profit' is an internal wash and
    the operator is a disclosed, labelled party — a manual-inspection FP.
    """
    bot = market.pick_bot()
    quote, target = market.weth, market.ops_token
    pool, venue = market.ops_pool, market.ops_venue
    base = market.rng.randint(300, 500) * ETH

    def plan(atk: ScriptedAttackContract) -> None:
        bought = atk.oracle_swap(venue.address, quote.address, base, target.address)
        pumped = atk.swap_pool(pool.address, quote.address, base * 6)
        atk.swap_pool(pool.address, target.address, pumped * 55 // 100)
        atk.oracle_swap(venue.address, target.address, bought, quote.address)
        rest = atk.balance(target.address)
        if rest:
            atk.swap_pool(pool.address, target.address, rest)

    trace = market.run_flash(market.ops_operator, bot, plan, "AAVE",
                             market.weth, base * 7 + ETH)
    return LabeledTrace(
        trace,
        GroundTruth(is_attack=False, profile="migration", net_profit=False,
                    source_disclosed=True),
    )


#: benign mix (name, weight at full scale, runner). Weights approximate the
#: composition of real flash-loan traffic; FP profiles are counted
#: separately by the generator.
BENIGN_PROFILES: tuple[tuple[str, float, Callable[[WildMarket], LabeledTrace]], ...] = (
    ("arbitrage", 0.42, profile_two_pool_arb),
    ("aggregator_hop", 0.16, profile_aggregator_hop),
    ("idle", 0.14, profile_idle),
    ("collateral_swap", 0.10, profile_collateral_swap),
    ("liquidation", 0.10, profile_liquidation),
    ("lp_cycle", 0.08, profile_lp_cycle),
)

