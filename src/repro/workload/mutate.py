"""FlashSyn-style mutation engine for scripted attacks.

Small perturbations of known attacks silently defeat fixed-threshold
detectors: scale the amounts, drop a round below the pattern's count
threshold, weaken the price push below the volatility bound, exit
asymmetrically outside the symmetry tolerance, swap the flash-loan
provider, interleave a benign counter-trade. This module defines those
perturbations as pure data (:class:`Mutation`) that the attack bodies
in :mod:`repro.workload.attacks` interpret; the robustness harness
(:mod:`repro.experiments.robustness`) sweeps the matrix and scores
per-family precision/recall.

Everything here is deterministic: a mutation is a frozen value, the
sweep order is the declaration order of :data:`MUTATIONS`, and any
randomness (e.g. which benign trade interleaves) derives from the run
seed inside the harness, never from global state.

``expect_evades`` documents — and the robustness bench *asserts* — the
families each mutation class demonstrably pushes below the matching
pattern's thresholds. Cells not listed are measured and reported but
not pinned (they sit near threshold boundaries by design).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Mutation", "BASELINE", "MUTATIONS", "mutation_by_key"]


@dataclass(frozen=True, slots=True)
class Mutation:
    """One deterministic perturbation of a scripted attack body.

    The fields are interpreted by each attack shape:

    - ``amount_scale`` multiplies the principal trade amounts;
    - ``round_delta`` adds/removes repetitions (buy legs for KRP,
      vault rounds for MBS, dump tranches for MINT) — negative values
      also drop the one-shot "raise" action of SBS / SANDWICH /
      DONATION (the pump, the victim call, the donation swap);
    - ``pump_scale`` multiplies only the price-raising action (SBS
      pump, sandwich victim buy, donation manipulation swap);
    - ``exit_fraction`` sells/withdraws only this fraction of the
      acquired position (breaking amount symmetry);
    - ``provider`` overrides the flash-loan provider draw;
    - ``interleave`` inserts a benign-looking counter-trade mid-attack.
    """

    key: str
    description: str
    amount_scale: float = 1.0
    round_delta: int = 0
    pump_scale: float = 1.0
    exit_fraction: float = 1.0
    provider: str | None = None
    interleave: bool = False
    #: families whose primary pattern this mutation provably evades
    #: (asserted at recall == 0 by the robustness bench).
    expect_evades: tuple[str, ...] = ()


BASELINE = Mutation("baseline", "unmutated scripted attack")

#: The sweep matrix, in report order.
MUTATIONS: tuple[Mutation, ...] = (
    BASELINE,
    Mutation(
        "scale_amounts",
        "triple every principal amount (control: thresholds are "
        "count/ratio based, so detection must survive)",
        amount_scale=3.0,
    ),
    Mutation(
        "add_round",
        "one extra repetition (control: thresholds are minima)",
        round_delta=1,
    ),
    Mutation(
        "drop_rounds",
        "two fewer repetitions / drop the raising action: KRP falls to "
        "4 buys (< 5), MBS to 1 round (< 3), SBS loses its pump, "
        "SANDWICH its victim, MINT a dump tranche, DONATION its swap",
        round_delta=-2,
        expect_evades=("KRP", "SBS", "MBS", "SANDWICH", "MINT", "DONATION"),
    ),
    Mutation(
        "weak_pump",
        "price-raising action at 10% size: SBS volatility falls below "
        "the 28% bound, DONATION gain below the inflation bound",
        pump_scale=0.1,
        expect_evades=("SBS", "DONATION"),
    ),
    Mutation(
        "asymmetric_exit",
        "exit only 90% of the position: breaks the amount symmetry "
        "SBS/SANDWICH/DONATION require",
        exit_fraction=0.9,
        expect_evades=("SBS", "SANDWICH", "DONATION"),
    ),
    Mutation(
        "dip_interleave",
        "benign counter-trade mid-attack: breaks KRP's consecutive "
        "price rise; round-pairing patterns must survive",
        interleave=True,
        expect_evades=("KRP",),
    ),
    Mutation(
        "provider_swap",
        "borrow from AAVE instead of the drawn provider (control: "
        "patterns match trades, not providers — must survive "
        "for every family)",
        provider="AAVE",
    ),
)

_BY_KEY = {m.key: m for m in MUTATIONS}


def mutation_by_key(key: str) -> Mutation:
    try:
        return _BY_KEY[key]
    except KeyError:
        raise KeyError(
            f"unknown mutation {key!r}; known: {sorted(_BY_KEY)}"
        ) from None
