"""Calibrated time series for the wild scan (paper Fig. 1 and Fig. 8).

The reproduction cannot recover real block timestamps, so these series
are *calibrated generators*: deterministic shapes matching every fact the
paper states, with seeded noise for texture.

Fig. 1 facts: AAVE's first flash loan lands on 2020-01-18; volumes grow
sharply once Uniswap adds flash swaps (May 2020) and Uniswap dominates
thereafter; counts decline after Oct 2021. Totals over the first
14,500,000 blocks: Uniswap 208,342, dYdX 41,741, AAVE 22,959 — 272,984
distinct transactions (the overlap is borrowers using several providers
in one transaction).

Fig. 8 facts: the first previously-unknown attack appears in June 2020;
attacks surge between Aug 2020 and Feb 2021; monthly averages are 6.5
(2020) and 4.3 (2021); 109 unknown attacks in total through Apr 2022.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

__all__ = [
    "PROVIDER_TOTALS",
    "TOTAL_FLASH_LOAN_TXS",
    "UNKNOWN_ATTACK_TOTAL",
    "STUDY_FIRST_BLOCK",
    "STUDY_LAST_BLOCK",
    "WeekPoint",
    "weekly_flash_loan_series",
    "monthly_attack_weights",
    "month_label",
    "study_block_height",
]

#: paper Sec. VI-A: flash loan transactions per provider, first 14.5M blocks.
PROVIDER_TOTALS = {"Uniswap": 208_342, "dYdX": 41_741, "AAVE": 22_959}
TOTAL_FLASH_LOAN_TXS = 272_984
UNKNOWN_ATTACK_TOTAL = 109

#: the study window in block heights: flash loan activity starts around
#: mainnet height ~9.3M (AAVE's first flash loan, 2020-01-18) and the
#: dataset covers the first 14,500,000 blocks (paper Sec. VI-A).
STUDY_FIRST_BLOCK = 9_300_000
STUDY_LAST_BLOCK = 14_500_000


def study_block_height(position: int, total: int) -> int:
    """Simulated mainnet height for schedule position ``position`` of
    ``total``, spread linearly across the study's block window. Gives the
    streaming engine realistic, monotonic block numbers to stamp on its
    emitted blocks."""
    if total <= 1:
        return STUDY_FIRST_BLOCK
    span = STUDY_LAST_BLOCK - STUDY_FIRST_BLOCK
    return STUDY_FIRST_BLOCK + (position * span) // (total - 1)

#: Jan 2020 .. Apr 2022 inclusive.
N_MONTHS = 28
WEEKS = 121  # ~28 months of weeks

_PROVIDER_START_WEEK = {"AAVE": 2, "dYdX": 6, "Uniswap": 19}  # mid-May 2020
_DECLINE_WEEK = 92  # ~Oct 2021


@dataclass(frozen=True, slots=True)
class WeekPoint:
    """One weekly sample of Fig. 1."""

    week: int
    counts: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def _noise(seed: str, idx: int) -> float:
    digest = hashlib.sha256(f"{seed}|{idx}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2**64
    return 0.75 + 0.5 * unit  # multiplicative noise in [0.75, 1.25)


def _raw_weekly_shape(provider: str, week: int) -> float:
    start = _PROVIDER_START_WEEK[provider]
    if week < start:
        return 0.0
    age = week - start
    ramp = 1.0 - math.exp(-age / 16.0)
    if week > _DECLINE_WEEK:
        decline = math.exp(-(week - _DECLINE_WEEK) / 26.0)
    else:
        decline = 1.0
    return ramp * decline * _noise(f"fig1-{provider}", week)


def weekly_flash_loan_series() -> list[WeekPoint]:
    """Fig. 1: weekly flash loan transaction counts per provider.

    Each provider's shaped series is normalized so its sum equals the
    paper's per-provider total exactly.
    """
    points: list[WeekPoint] = []
    shapes = {
        provider: [_raw_weekly_shape(provider, w) for w in range(WEEKS)]
        for provider in PROVIDER_TOTALS
    }
    counts_by_provider: dict[str, list[int]] = {}
    for provider, series in shapes.items():
        total_shape = sum(series) or 1.0
        target = PROVIDER_TOTALS[provider]
        scaled = [value * target / total_shape for value in series]
        counts = [int(value) for value in scaled]
        # distribute the rounding residue onto the largest weeks
        residue = target - sum(counts)
        order = sorted(range(WEEKS), key=lambda w: -scaled[w])
        for w in order[:residue]:
            counts[w] += 1
        counts_by_provider[provider] = counts
    for week in range(WEEKS):
        points.append(
            WeekPoint(
                week=week,
                counts={p: counts_by_provider[p][week] for p in PROVIDER_TOTALS},
            )
        )
    return points


# -- Fig. 8: monthly unknown attacks ----------------------------------------

#: month 0 = Jan 2020. Calibrated to: first unknown attack Jun 2020 (m=5);
#: surge Aug 2020 (m=7) .. Feb 2021 (m=13); 6.5/mo avg over Jun-Dec 2020;
#: 4.3/mo avg over 2021; 109 total through Apr 2022 (m=27).
_MONTH_WEIGHTS = (
    0, 0, 0, 0, 0,          # Jan-May 2020
    2, 4, 8, 9, 8, 7, 8,    # Jun-Dec 2020  (46 in 2020)
    9, 8, 6, 5, 4, 4, 4,    # Jan-Jul 2021
    3, 3, 2, 2, 2,          # Aug-Dec 2021  (52 in 2021)
    4, 3, 2, 2,             # Jan-Apr 2022  (11 in 2022)
)

assert len(_MONTH_WEIGHTS) == N_MONTHS
assert sum(_MONTH_WEIGHTS) == UNKNOWN_ATTACK_TOTAL


def monthly_attack_weights() -> tuple[int, ...]:
    """Fig. 8: unknown flpAttacks per month (month 0 = Jan 2020)."""
    return _MONTH_WEIGHTS


_MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)


def month_label(month_index: int) -> str:
    year = 2020 + month_index // 12
    return f"{_MONTH_NAMES[month_index % 12]} {year}"
