"""LeiShen reproduction: detecting flash-loan based price manipulation attacks.

Reproduction of *Detecting Flash Loan Based Attacks in Ethereum*
(Xia et al., ICDCS 2023). See README.md for the architecture overview and
DESIGN.md for the system inventory and per-experiment index.

Public API highlights
---------------------
- :mod:`repro.chain` — simulated Ethereum substrate (accounts, atomic
  transactions, ordered transfer traces).
- :mod:`repro.defi` — DeFi protocol substrate (AMMs, lending, flash loan
  providers, vaults, aggregators).
- :mod:`repro.leishen` — the paper's detector: transfer extraction,
  account tagging, simplification, trade identification, KRP/SBS/MBS
  pattern matching.
- :mod:`repro.baselines` — DeFiRanger-, Explorer- and volatility-style
  comparison detectors.
- :mod:`repro.study` — the empirical study's 22 real-world flpAttack
  scenarios.
- :mod:`repro.workload` — wild-scan population generator.
- :mod:`repro.experiments` — one module per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
