"""Non-price manipulation flash loan attacks (paper Sec. III-C).

Half of the 44 collected attacks exploit contract vulnerabilities rather
than prices: "in the Akropolis attack, the attacker exploits [a]
reentrancy bug to withdraw twice the assets borrowed from flash loans.
And in the Beanstalk attack, the attacker borrows governance tokens ...
to launch governance attacks."

These attacks take flash loans but perform no price-manipulating trade
sequence, so LeiShen must *not* flag them — they are the negative
controls of the detection evaluation and are out of the paper's scope by
design ("studied by many researchers with ... symbolic execution,
abstract interpretation, formal verification and fuzzing").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..chain.contract import Contract, Msg, external
from ..chain.types import Address
from ..defi.base import DeFiProtocol
from .scenarios.base import ScenarioOutcome, ScriptedAttackContract, run_flash_loan_attack
from .scenarios.common import world_for

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["ReentrantBank", "GovernanceTreasury", "build_reentrancy", "build_governance"]


class ReentrantBank(DeFiProtocol):
    """An Akropolis-style savings bank with a classic reentrancy bug:
    ``withdraw`` pays out *before* updating the depositor's balance and
    notifies the recipient in between."""

    APP_NAME = "Akropolis"

    @external
    def deposit(self, msg: Msg, token: Address, amount: int) -> None:
        self.pull_token(token, msg.sender, amount)
        self.storage.add(("deposit", msg.sender, token), amount)

    @external
    def withdraw(self, msg: Msg, token: Address, amount: int) -> None:
        deposited = self.storage.get(("deposit", msg.sender, token), 0)
        self.require(amount <= deposited, "over-withdraw")
        # BUG: interaction before effect — the recipient hook can re-enter.
        self.push_token(token, msg.sender, amount)
        if self.chain.is_contract(msg.sender):
            try:
                self.call(msg.sender, "on_withdrawal", token, amount)
            except Exception:  # notification failures are not our problem
                pass
        self.storage.add(("deposit", msg.sender, token), -amount)

    def deposit_of(self, account: Address, token: Address) -> int:
        return self.storage.get(("deposit", account, token), 0)


class GovernanceTreasury(DeFiProtocol):
    """A Beanstalk-style DAO treasury with same-block emergency execution:
    voting power is the *current* governance-token balance, so a flash
    loan of the token passes any proposal within one transaction."""

    APP_NAME = "Beanstalk"

    def __init__(self, chain: "Chain", address: Address, gov_token: Address) -> None:
        super().__init__(chain, address)
        self.gov_token = gov_token

    @external
    def propose_drain(self, msg: Msg, token: Address, recipient: Address) -> int:
        proposal_id = self.storage.add("proposal_count", 1)
        self.storage.set(("proposal", proposal_id), (token, recipient))
        return proposal_id

    @external
    def emergency_execute(self, msg: Msg, proposal_id: int) -> None:
        """Execute immediately if the caller holds a supermajority *right
        now* — the flaw the real attack exploited."""
        held = self.token(self.gov_token).balance_of(msg.sender)
        supply = self.token(self.gov_token).total_supply()
        self.require(held * 2 >= supply, "needs a majority")
        payload = self.storage.get(("proposal", proposal_id))
        self.require(payload is not None, "unknown proposal")
        token, recipient = payload
        balance = self.token_balance(token)
        self.push_token(token, recipient, balance)
        self.emit("EmergencyCommit", proposal=proposal_id)


class _ReentrantThief(ScriptedAttackContract):
    """Attack contract that re-enters the bank's withdraw once."""

    @external
    def on_withdrawal(self, msg: Msg, token: Address, amount: int) -> None:
        if not getattr(self, "_reentered", False):
            self._reentered = True
            self.call(msg.sender, "withdraw", token, amount)


def build_reentrancy() -> ScenarioOutcome:
    """Flash-funded reentrancy drain: borrow, deposit, withdraw twice."""
    world = world_for("ethereum")
    dai = world.new_token("DAI")
    bank = world.chain.deploy(
        world.deployer_of("Akropolis"), ReentrantBank, label="Akropolis: SavingsModule"
    )
    # honest TVL the reentrancy steals from
    world.approve(world.whale, dai, bank.address)
    world.chain.transact(world.whale, bank.address, "deposit", dai.address, 10**7 * dai.unit)
    solo = world.dydx(funding={dai: 10**7 * dai.unit})

    def body(atk: ScriptedAttackContract) -> None:
        atk._reentered = False
        amount = 2 * 10**6 * dai.unit
        atk.approve(dai.address, bank.address)
        atk.call(bank.address, "deposit", dai.address, amount)
        atk.call(bank.address, "withdraw", dai.address, amount)  # pays out twice

    attacker = world.create_attacker("akro-eoa")
    contract = world.chain.deploy(attacker, _ReentrantThief, body, hint="akro-contract")
    trace = world.chain.transact(
        attacker, contract.address, "run_dydx", solo.address, dai.address, 2 * 10**6 * dai.unit
    )
    return ScenarioOutcome(
        name="akropolis", world=world, trace=trace,
        attacker=attacker, attack_contracts=[contract.address],
    )


def build_governance() -> ScenarioOutcome:
    """Flash-borrowed governance majority drains the DAO treasury."""
    world = world_for("ethereum")
    gov = world.new_token("STALK", supply_to_whale=15 * 10**8 * 10**18)
    bean = world.new_token("BEAN")
    treasury = world.chain.deploy(
        world.deployer_of("Beanstalk"), GovernanceTreasury, gov.address,
        label="Beanstalk: Silo",
    )
    bean.mint(treasury.address, 5 * 10**7 * bean.unit)  # the treasury
    aave = world.aave(funding={gov: 9 * 10**8 * gov.unit})
    # a market to convert a sliver of loot into the flash-loan premium
    pool = world.dex_pair(gov, bean, 10**8 * gov.unit, 10**8 * bean.unit)

    def body(atk: ScriptedAttackContract) -> None:
        proposal = atk.call(treasury.address, "propose_drain", bean.address, atk.address)
        atk.call(treasury.address, "emergency_execute", proposal)
        # cover the 0.09% AAVE premium out of the loot
        atk.swap_pool(pool.address, bean.address, 10**6 * bean.unit)

    return run_flash_loan_attack(
        world, body, "aave", aave.address, gov.address, 8 * 10**8 * gov.unit,
        name="beanstalk",
    )
