"""Catalog of the real-world flash loan based attacks (paper Sec. III).

The empirical study collected 44 attacks (Feb 2020 - Jun 2022): 22 price
manipulation attacks (flpAttacks, Table I) and 22 non-price manipulation
attacks (reentrancy, governance, ... — paper Table I row 23-44). This
module records the study's metadata: pattern ground truth (4 KRP, 8 SBS,
6 MBS with Saddle in both, 5 with no clear pattern), chains, providers
and the expected per-detector outcome used to regenerate Table IV.

Ground-truth notes: the paper's Table I scan is partially illegible in
our source; the assignment below satisfies every aggregate constraint the
text states (pattern counts, Saddle's dual pattern, LeiShen's two misses
being JulSwap and PancakeHunny, DeFiRanger detecting nine attacks,
Explorer+LeiShen detecting four).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..leishen.patterns import AttackPattern

__all__ = ["AttackMeta", "FLP_ATTACKS", "NON_PRICE_ATTACKS", "flp_attack", "patterned_attacks"]

KRP = AttackPattern.KRP
SBS = AttackPattern.SBS
MBS = AttackPattern.MBS


@dataclass(frozen=True, slots=True)
class AttackMeta:
    """Study metadata for one real-world attack."""

    attack_id: int
    key: str
    name: str
    chain: str  # "ethereum" | "bsc"
    year: int
    month: int
    providers: tuple[str, ...]
    attacked_app: str
    patterns: frozenset[AttackPattern] = frozenset()
    #: expected detections (Table IV ground truth used by tests/benches).
    expect_leishen: bool = False
    expect_defiranger: bool = False
    expect_explorer: bool = False
    #: price-volatility rows the paper reports, pair -> percent.
    paper_volatility: tuple[tuple[str, float], ...] = ()
    #: why LeiShen misses, when it does.
    miss_reason: str | None = None
    notes: str = ""


FLP_ATTACKS: tuple[AttackMeta, ...] = (
    AttackMeta(1, "bzx1", "bZx-1", "ethereum", 2020, 2, ("dYdX",), "bZx",
               frozenset({SBS}), True, False, False,
               (("ETH-WBTC", 125.0),)),
    AttackMeta(2, "bzx2", "bZx-2", "ethereum", 2020, 2, ("dYdX",), "bZx",
               frozenset({KRP}), True, False, True,
               (("ETH-sUSD", 136.0),),
               notes="paper: borrowed from bZx itself; we substitute dYdX, "
                     "one of the three providers Table II fingerprints"),
    AttackMeta(3, "balancer", "Balancer", "ethereum", 2020, 6, ("dYdX",), "Balancer",
               frozenset({KRP}), True, False, True,
               (("ETH-STA", 6.5e28), ("WBTC-STA", 3.3e6), ("SNX-STA", 8.2e5), ("LINK-STA", 8.2e5))),
    AttackMeta(4, "eminence", "Eminence", "ethereum", 2020, 9, ("Uniswap",), "Eminence",
               frozenset({MBS}), True, False, False,
               (("DAI-EMN", 124.0), ("EAAVE-EMN", 18.6))),
    AttackMeta(5, "harvest", "Harvest Finance", "ethereum", 2020, 10, ("Uniswap",), "Harvest",
               frozenset({MBS}), True, True, True,
               (("fUSDC-USDC", 0.5),)),
    AttackMeta(6, "cheesebank", "Cheese Bank", "ethereum", 2020, 11, ("dYdX",), "CheeseBank",
               frozenset({SBS}), True, True, False,
               (("ETH-CHEESE", 1.5e4),)),
    AttackMeta(7, "valuedefi", "Value DeFi", "ethereum", 2020, 11, ("AAVE",), "ValueDeFi",
               frozenset(), False, True, False,
               (("3Crv-mvUSD", 27.6),),
               notes="one-round manipulation: below every LeiShen threshold, "
                     "caught by DeFiRanger's two-trade round"),
    AttackMeta(8, "yearn", "Yearn Finance", "ethereum", 2021, 2, ("dYdX",), "Yearn",
               frozenset({SBS}), True, True, False,
               (("DAI-3Crv", 402.3),)),
    AttackMeta(9, "spartan", "Spartan Protocol", "bsc", 2021, 5, ("PancakeSwap",), "Spartan",
               frozenset({KRP}), True, False, False,
               (("SPARTA-WBNB", 1.6e4),)),
    AttackMeta(10, "xtoken1", "XToken-1", "bsc", 2021, 5, ("PancakeSwap",), "xToken",
               frozenset(), False, False, False,
               (("WETH-xSNXa", 2.8e6), ("SNX-xSNXa", 4.9e5)),
               notes="mint-and-dump: no repeated same-token round"),
    AttackMeta(11, "pancakebunny", "PancakeBunny", "bsc", 2021, 5, ("PancakeSwap",), "PancakeBunny",
               frozenset(), False, False, False,
               (("WBNB-Bunny", 5.1e3),)),
    AttackMeta(12, "julswap", "JulSwap", "bsc", 2021, 5, ("PancakeSwap",), "JulSwap",
               frozenset({SBS}), False, False, False,
               (("WBNB-JULb", 288.2),),
               miss_reason="asset transfers involve accounts with conflicting "
                           "creation-tree tags that cannot be tagged"),
    AttackMeta(13, "belt", "Belt Finance", "bsc", 2021, 5, ("PancakeSwap",), "Belt",
               frozenset({MBS}), True, True, False,
               (("BUSD-beltBU", 3.1),)),
    AttackMeta(14, "xwin", "xWin Finance", "bsc", 2021, 6, ("PancakeSwap",), "xWin",
               frozenset({MBS}), True, True, True,
               (("BNB-XWIN", 2.5e3),)),
    AttackMeta(15, "wault", "Wault Finance", "bsc", 2021, 8, ("PancakeSwap",), "Wault",
               frozenset({MBS}), True, False, False),
    AttackMeta(16, "twindex", "Twindex", "bsc", 2021, 7, ("PancakeSwap",), "Twindex",
               frozenset(), False, False, False,
               (("TWX-KUSD", 514.8),)),
    AttackMeta(17, "autoshark2", "AutoShark-2", "bsc", 2021, 7, ("PancakeSwap",), "AutoShark",
               frozenset({SBS}), True, False, False,
               (("BNB-USDC", 7.0),)),
    AttackMeta(18, "myfarmpet", "MY FARM PET", "bsc", 2021, 7, ("PancakeSwap",), "MyFarmPet",
               frozenset(), False, False, False,
               (("BUSD-MyFarmPET", 1.9e3),)),
    AttackMeta(19, "pancakehunny", "PancakeHunny", "bsc", 2021, 6, ("PancakeSwap",), "PancakeHunny",
               frozenset({KRP}), False, False, False,
               miss_reason="asset transfers involve accounts with conflicting "
                           "creation-tree tags that cannot be tagged"),
    AttackMeta(20, "autoshark3", "AutoShark-3", "bsc", 2021, 10, ("PancakeSwap",), "AutoShark",
               frozenset({SBS}), True, True, False,
               (("WBNB-JAWS", 4.7e3),)),
    AttackMeta(21, "ploutoz", "Ploutoz Finance", "bsc", 2021, 10, ("PancakeSwap",), "Ploutoz",
               frozenset({SBS}), True, True, False,
               (("BUSD-DOP", 3.8e3),)),
    AttackMeta(22, "saddle", "Saddle Finance", "ethereum", 2022, 1, ("Uniswap",), "Saddle",
               frozenset({SBS, MBS}), True, True, False,
               (("saddleUSD-sUSD", 86.5),)),
)

#: The 22 non-price manipulation attacks (paper Table I rows 23-44);
#: studied for flash-loan statistics (Sec. III-B) but out of LeiShen's scope.
NON_PRICE_ATTACKS: tuple[str, ...] = (
    "Akropolis", "OriginProtocol", "WarpFinance", "RariCapital", "bEarnFi",
    "BoggedFinance", "Autoshark", "BurgerSwap", "ElevenFinance", "AlphaFinance",
    "ImpossibleFinance", "DeFiPie", "ApeRocket", "ArrayFinance", "PopsiclePinance",
    "XSURGE", "DotFinance", "CreamFinance", "XToken-2", "SashimiSwap",
    "Beanstalk", "RariCapital-2",
)

_BY_KEY = {meta.key: meta for meta in FLP_ATTACKS}


def flp_attack(key: str) -> AttackMeta:
    return _BY_KEY[key]


def patterned_attacks() -> list[AttackMeta]:
    """The 17 attacks conforming to at least one pattern."""
    return [meta for meta in FLP_ATTACKS if meta.patterns]
