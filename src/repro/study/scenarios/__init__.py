"""Scripted reproductions of the 22 real-world flpAttacks (paper Table I).

``SCENARIO_BUILDERS`` maps each catalog key to a zero-argument builder
returning a :class:`~repro.study.scenarios.base.ScenarioOutcome`. Builders
construct a fresh world each call, so scenarios are independent and
reproducible.
"""

from __future__ import annotations

from typing import Callable

from .balancer_attack import build_balancer
from .base import ScenarioOutcome, ScriptedAttackContract, run_flash_loan_attack
from .bzx import build_bzx1, build_bzx2
from .common import (
    build_krp,
    build_mint_dump,
    build_oracle_sbs,
    build_vault_mbs,
    conflict_tag,
    flash_source,
    imbalance_mark,
    world_for,
)
from .krp_attacks import build_pancakehunny, build_spartan
from .mint_dump_attacks import (
    build_myfarmpet,
    build_pancakebunny,
    build_twindex,
    build_xtoken1,
)
from .oracle_attacks import (
    build_autoshark2,
    build_autoshark3,
    build_cheesebank,
    build_julswap,
    build_ploutoz,
)
from .saddle_attack import build_saddle
from .vault_attacks import (
    build_belt,
    build_eminence,
    build_harvest,
    build_valuedefi,
    build_wault,
    build_xwin,
)
from .yearn_attack import build_yearn

__all__ = [
    "SCENARIO_BUILDERS",
    "ScenarioOutcome",
    "ScriptedAttackContract",
    "build_scenario",
    "run_flash_loan_attack",
    "build_krp",
    "build_mint_dump",
    "build_oracle_sbs",
    "build_vault_mbs",
    "conflict_tag",
    "flash_source",
    "imbalance_mark",
    "world_for",
]

SCENARIO_BUILDERS: dict[str, Callable[[], ScenarioOutcome]] = {
    "bzx1": build_bzx1,
    "bzx2": build_bzx2,
    "balancer": build_balancer,
    "eminence": build_eminence,
    "harvest": build_harvest,
    "cheesebank": build_cheesebank,
    "valuedefi": build_valuedefi,
    "yearn": build_yearn,
    "spartan": build_spartan,
    "xtoken1": build_xtoken1,
    "pancakebunny": build_pancakebunny,
    "julswap": build_julswap,
    "belt": build_belt,
    "xwin": build_xwin,
    "wault": build_wault,
    "twindex": build_twindex,
    "autoshark2": build_autoshark2,
    "myfarmpet": build_myfarmpet,
    "pancakehunny": build_pancakehunny,
    "autoshark3": build_autoshark3,
    "ploutoz": build_ploutoz,
    "saddle": build_saddle,
}


def build_scenario(key: str) -> ScenarioOutcome:
    """Build and execute one named scenario."""
    return SCENARIO_BUILDERS[key]()
