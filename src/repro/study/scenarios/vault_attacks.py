"""Vault share-price attacks: Eminence, Harvest, Value DeFi, Belt, xWin, Wault.

All six instantiate :func:`~repro.study.scenarios.common.build_vault_mbs`
with per-attack parameters. Sensitivities are tuned so the measured
fUSDC-style price volatility roughly matches the paper's Table I rows
(Harvest 0.5%, Belt 3.1%, Value DeFi 27.6%, Eminence ~124%, xWin ~2500%).
"""

from __future__ import annotations

from .base import ScenarioOutcome
from .common import build_vault_mbs

__all__ = [
    "build_eminence",
    "build_harvest",
    "build_valuedefi",
    "build_belt",
    "build_xwin",
    "build_wault",
]


def build_eminence() -> ScenarioOutcome:
    """MBS; withdrawals split into unequal chunks (the attacker cashed out
    EMN in stages), which is what pushes it outside DeFiRanger's
    symmetric two-trade rule."""
    return build_vault_mbs(
        name="eminence",
        chain="ethereum",
        provider="Uniswap",
        app="Eminence",
        underlying_symbol="DAI",
        quote_symbol="USDT",
        share_symbol="EMN",
        sensitivity=2.5,
        split_withdraw=True,
    )


def build_harvest() -> ScenarioOutcome:
    """The canonical MBS attack: three symmetric fUSDC rounds, ~0.5%
    volatility — small enough to slip under Harvest's later 3% guard."""
    return build_vault_mbs(
        name="harvest",
        chain="ethereum",
        provider="Uniswap",
        app="Harvest",
        underlying_symbol="USDC",
        quote_symbol="USDT",
        share_symbol="fUSDC",
        decimals=6,
        sensitivity=0.025,
        vault_events=True,  # Harvest's vault emits Deposit/Withdraw
    )


def build_valuedefi() -> ScenarioOutcome:
    """A single manipulation round: profitable, but below every LeiShen
    pattern threshold (MBS needs >= 3 rounds; there is no second buy for
    SBS). DeFiRanger's two-trade rule still catches it — the one known
    attack it detects and LeiShen does not (Table IV)."""
    return build_vault_mbs(
        name="valuedefi",
        chain="ethereum",
        provider="AAVE",
        app="ValueDeFi",
        underlying_symbol="DAI",
        quote_symbol="USDT",
        share_symbol="mvUSD",
        rounds=1,
        sensitivity=1.2,
    )


def build_belt() -> ScenarioOutcome:
    return build_vault_mbs(
        name="belt",
        chain="bsc",
        provider="PancakeSwap",
        app="Belt",
        underlying_symbol="BUSD",
        quote_symbol="USDT",
        share_symbol="beltBUSD",
        sensitivity=0.08,
    )


def build_xwin() -> ScenarioOutcome:
    """xWin's vault emits trade events, making it one of the four attacks
    the Explorer+LeiShen baseline can see (Table IV)."""
    return build_vault_mbs(
        name="xwin",
        chain="bsc",
        provider="PancakeSwap",
        app="xWin",
        underlying_symbol="WBNBx",
        quote_symbol="BUSD",
        share_symbol="XWIN",
        sensitivity=4.8,
        vault_events=True,
    )


def build_wault() -> ScenarioOutcome:
    """Withdrawals run through a second attacker contract: LeiShen's
    creation-root tagging still groups both contracts, DeFiRanger's
    account anchoring does not."""
    return build_vault_mbs(
        name="wault",
        chain="bsc",
        provider="PancakeSwap",
        app="Wault",
        underlying_symbol="USDT",
        quote_symbol="BUSD",
        share_symbol="wUSDT",
        sensitivity=0.1,
        accomplice_withdraws=True,
    )
