"""The Yearn DAI vault attack (Feb 2021) — SBS through vault share pricing.

The attacker deposits while the vault's Curve-based mark is crushed (the
cheap symmetric buy), makes a small deposit at the restored mark (the
price-raising trade), nudges the mark partway down and withdraws the
original shares (the dear symmetric sell, priced between the other two).
"""

from __future__ import annotations

from .base import ScenarioOutcome, ScriptedAttackContract, run_flash_loan_attack
from .common import imbalance_mark, world_for

__all__ = ["build_yearn"]


def build_yearn() -> ScenarioOutcome:
    world = world_for("ethereum")
    dai = world.new_token("DAI")
    usdt = world.new_token("USDT3")
    pool_size = 200_000_000 * dai.unit
    curve = world.curve_pool({dai: pool_size, usdt: pool_size})
    vault = world.vault(
        dai,
        "yDAI",
        app="Yearn",
        value_per_underlying=imbalance_mark(curve, 1.5),
        seed_amount=300_000_000 * dai.unit,
    )
    vault.emits_trade_events = False

    big_nudge = 40_000_000 * dai.unit  # mark ~0.7
    small_nudge = 13_000_000 * dai.unit  # mark ~0.9
    deposit = 50_000_000 * dai.unit
    raise_deposit = 100_000 * dai.unit

    def body(atk: ScriptedAttackContract) -> None:
        # crush the mark and deposit cheap (t1)
        got = atk.curve_swap(curve.address, 0, 1, big_nudge)
        shares = atk.vault_deposit(vault.address, deposit)
        atk.curve_swap(curve.address, 1, 0, got)
        # small deposit at the restored (higher) share price (t2, the raise)
        extra = atk.vault_deposit(vault.address, raise_deposit)
        # nudge the mark partway down and sell t1's exact shares (t3)
        got2 = atk.curve_swap(curve.address, 0, 1, small_nudge)
        atk.vault_withdraw(vault.address, shares)
        atk.curve_swap(curve.address, 1, 0, got2)
        atk.vault_withdraw(vault.address, extra)

    solo = world.dydx(funding={dai: 250_000_000 * dai.unit})
    borrow = big_nudge + small_nudge + deposit + raise_deposit
    return run_flash_loan_attack(
        world, body, "dydx", solo.address, dai.address, borrow, name="yearn"
    )
