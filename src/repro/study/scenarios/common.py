"""Parameterized attack-shape builders shared by the 22 scenarios.

Four shapes cover most of the studied attacks:

- :func:`build_vault_mbs` — Harvest-style multi-round vault share-price
  skimming (Harvest, Eminence, Value DeFi, Belt, xWin, Wault);
- :func:`build_oracle_sbs` — symmetrical buy/sell against an
  oracle-priced venue with a DEX price raise in between (Cheese Bank,
  AutoShark-2/-3, Ploutoz, JulSwap);
- :func:`build_krp` — batch buys on a pool followed by a dump on a second
  venue (bZx-2, Spartan, PancakeHunny);
- :func:`build_mint_dump` — pump a pool, mint a reward/synth token at the
  manipulated oracle rate, dump it (XToken-1, PancakeBunny, Twindex,
  MY FARM PET; the paper's "no clear pattern" group).

Every builder returns a :class:`ScenarioOutcome` whose trace is the one
flash-loan attack transaction, executed for real on the substrate.
"""

from __future__ import annotations

from typing import Callable

from ...chain.contract import Contract
from ...chain.types import Address
from ...defi.curve import StableSwapPool
from ...tokens.erc20 import ERC20
from ...world import BSC_PROFILE, ChainProfile, DeFiWorld, ETHEREUM_PROFILE
from .base import ScenarioOutcome, ScriptedAttackContract, run_flash_loan_attack

__all__ = [
    "world_for",
    "flash_source",
    "imbalance_mark",
    "conflict_tag",
    "build_vault_mbs",
    "build_oracle_sbs",
    "build_krp",
    "build_mint_dump",
]


def world_for(chain: str) -> DeFiWorld:
    profile: ChainProfile = ETHEREUM_PROFILE if chain == "ethereum" else BSC_PROFILE
    return DeFiWorld(profile=profile)


def flash_source(
    world: DeFiWorld, token: ERC20, amount: int, provider: str
) -> tuple[str, Address]:
    """Arrange liquidity so ``amount`` of ``token`` can be flash-borrowed.

    Returns ``(entry_key, provider_account)`` for
    :func:`~repro.study.scenarios.base.run_flash_loan_attack`. ``provider``
    is a catalog provider name (``"dYdX"``, ``"AAVE"``, ``"Uniswap"`` or
    ``"PancakeSwap"`` — forks share the Uniswap flash-swap fingerprint).
    """
    if provider == "dYdX":
        solo = world.dydx(funding={token: amount * 2})
        return "dydx", solo.address
    if provider == "AAVE":
        pool = world.aave(funding={token: amount * 2})
        return "aave", pool.address
    # Uniswap-style flash swap: borrow from a pair deep in `token`; the
    # counter-asset's depth (and hence the pair's rate) is irrelevant to a
    # same-token flash swap repayment. When the borrowed token is the
    # wrapped native asset itself, pair it against a stablecoin instead.
    if token.address == world.weth.address:
        counter: ERC20 = world.new_token("USDF", 18)
    else:
        counter = world.weth
    pair = world.dex_pair(token, counter, amount * 2, 10_000 * counter.unit)
    return "uniswap", pair.address


def imbalance_mark(
    pool: StableSwapPool, sensitivity: float, floor: float = 0.01
) -> Callable[[], float]:
    """Vault mark-to-market hook driven by a Curve pool's imbalance.

    Balanced pool -> 1.0; the more coin 0 dominates, the lower the mark.
    This is the stand-in for Harvest/Yearn's strategy valuation reading an
    instantaneous Curve rate.
    """

    def mark() -> float:
        xp = pool._xp()
        u, q = xp[0], sum(xp[1:])
        total = u + q
        if total == 0:
            return 1.0
        return max(floor, 1.0 + sensitivity * (q - u) / total)

    return mark


class _DummyChild(Contract):
    """Placeholder contract used to inject conflicting creation-tree tags."""


def conflict_tag(world: DeFiWorld, contract: Contract, other_app: str) -> None:
    """Make ``contract`` untaggable: deploy a child carrying another app's
    Etherscan label, creating the conflicting-tag tree of paper Fig. 7(c)."""
    world.chain.deploy(
        contract.address, _DummyChild, label=f"{other_app}: Pool", hint="conflict-child"
    )


# ---------------------------------------------------------------------------
# shape 1: multi-round vault share-price skimming (MBS)
# ---------------------------------------------------------------------------


def build_vault_mbs(
    *,
    name: str,
    chain: str,
    provider: str,
    app: str,
    underlying_symbol: str,
    quote_symbol: str,
    share_symbol: str,
    rounds: int = 3,
    deposit: int | None = None,
    manipulation: int | None = None,
    sensitivity: float = 0.05,
    vault_events: bool = False,
    split_withdraw: bool = False,
    accomplice_withdraws: bool = False,
    decimals: int = 18,
) -> ScenarioOutcome:
    """Harvest-shape attack: N rounds of deposit-cheap / withdraw-dear.

    ``split_withdraw`` sells each round's shares in two unequal chunks
    (breaks DeFiRanger's symmetric-round rule — the Eminence variant);
    ``accomplice_withdraws`` routes withdrawals through a second attacker
    contract (breaks DeFiRanger's single-account anchoring — the Wault
    variant) while LeiShen still groups both contracts under the creation
    root.
    """
    world = world_for(chain)
    underlying = world.new_token(underlying_symbol, decimals)
    quote = world.new_token(quote_symbol, decimals)
    pool_size = 200_000_000 * underlying.unit
    curve = world.curve_pool({underlying: pool_size, quote: pool_size})
    vault = world.vault(
        underlying,
        share_symbol,
        app=app,
        value_per_underlying=imbalance_mark(curve, sensitivity),
        seed_amount=300_000_000 * underlying.unit,
    )
    vault.emits_trade_events = vault_events

    deposit = deposit if deposit is not None else 50_000_000 * underlying.unit
    manipulation = (
        manipulation if manipulation is not None else 40_000_000 * underlying.unit
    )
    accomplice: ScriptedAttackContract | None = None

    def body(atk: ScriptedAttackContract) -> None:
        for _ in range(rounds):
            got_quote = atk.curve_swap(curve.address, 0, 1, manipulation)
            shares = atk.vault_deposit(vault.address, deposit)
            atk.curve_swap(curve.address, 1, 0, got_quote)
            if accomplice_withdraws and accomplice is not None:
                atk.transfer(vault.address, accomplice.address, shares)
                atk.call(accomplice.address, "run")
            elif split_withdraw:
                first = shares * 3 // 5
                atk.vault_withdraw(vault.address, first)
                atk.vault_withdraw(vault.address, shares - first)
            else:
                atk.vault_withdraw(vault.address, shares)

    attacker = world.create_attacker(f"{name}-eoa")
    if accomplice_withdraws:

        def accomplice_body(acc: ScriptedAttackContract) -> None:
            shares = acc.balance(vault.address)
            amount = acc.vault_withdraw(vault.address, shares)
            acc.transfer(underlying.address, acc.caller, amount)

        accomplice = world.chain.deploy(
            attacker, ScriptedAttackContract, accomplice_body, hint=f"{name}-accomplice"
        )

    entry, source = flash_source(world, underlying, deposit + manipulation, provider)
    outcome = run_flash_loan_attack(
        world,
        body,
        entry,
        source,
        underlying.address,
        deposit + manipulation,
        attacker=attacker,
        accomplices=(accomplice,) if accomplice is not None else (),
        name=name,
    )
    return outcome


# ---------------------------------------------------------------------------
# shape 2: symmetrical buy/sell against an oracle venue (SBS)
# ---------------------------------------------------------------------------


def build_oracle_sbs(
    *,
    name: str,
    chain: str,
    provider: str,
    app: str,
    target_symbol: str,
    symmetric_amount: int | None = None,
    raise_amount: int | None = None,
    two_venues: bool = False,
    conflicting_tags: bool = False,
    pool_events: bool = True,
) -> ScenarioOutcome:
    """Cheese Bank-shape attack.

    t1 buys the target cheaply from an oracle-priced venue, t2 pumps the
    oracle pool (>= 28%), a partial dump brings the spot between t1's and
    t2's rates, t3 sells t1's exact amount back to the venue, and the
    remaining pumped inventory is dumped at a loss.

    ``two_venues`` places t1 and t3 on different accounts of the same app
    (AutoShark-2); ``conflicting_tags`` additionally makes those venue
    accounts untaggable (JulSwap — LeiShen's documented miss).
    """
    world = world_for(chain)
    quote = world.weth
    target = world.new_token(target_symbol, 18)
    pool = world.dex_pair(target, quote, 1_000_000 * target.unit, 10_000 * quote.unit)
    pool.emits_trade_events = pool_events
    venue_funding = {world.registry.by_symbol(quote.symbol): 200_000 * quote.unit,
                     target: 2_000_000 * target.unit}
    venue1 = world.margin_venue([pool], funding=venue_funding, app=app)
    venue1.emits_trade_events = False
    venue2 = venue1
    if two_venues:
        venue2 = world.margin_venue([pool], funding=venue_funding, app=app)
        venue2.emits_trade_events = False
    if conflicting_tags:
        other = "Uniswap" if chain == "ethereum" else "PancakeSwap"
        conflict_tag(world, venue1, other)
        if two_venues:
            conflict_tag(world, venue2, other)

    amount_quote = symmetric_amount if symmetric_amount is not None else 1_000 * quote.unit
    pump = raise_amount if raise_amount is not None else 6_000 * quote.unit

    def body(atk: ScriptedAttackContract) -> None:
        # t1: buy target at the honest oracle price.
        bought = atk.oracle_swap(venue1.address, quote.address, amount_quote, target.address)
        # t2: pump the oracle pool (the SBS "raise" trade).
        pumped = atk.swap_pool(pool.address, quote.address, pump)
        # partial dump so the spot lands between t1's and t2's rates.
        atk.swap_pool(pool.address, target.address, pumped * 55 // 100)
        # t3: sell exactly t1's amount back to the venue at the pumped oracle.
        atk.oracle_swap(venue2.address, target.address, bought, quote.address)
        # liquidate the rest of the pumped inventory (at a loss).
        rest = atk.balance(target.address)
        if rest > 0:
            atk.swap_pool(pool.address, target.address, rest)

    borrow = amount_quote + pump
    entry, source = flash_source(world, quote, borrow, provider)
    return run_flash_loan_attack(
        world, body, entry, source, quote.address, borrow, name=name
    )


# ---------------------------------------------------------------------------
# shape 3: keep raising price (KRP)
# ---------------------------------------------------------------------------


def build_krp(
    *,
    name: str,
    chain: str,
    provider: str,
    pool_app: str | None,
    sink_app: str,
    target_symbol: str,
    n_buys: int = 18,
    buy_amount: int | None = None,
    pool_events: bool = True,
    sink_is_pool: bool = False,
    accomplice_sells: bool = False,
    conflicting_tags: bool = False,
) -> ScenarioOutcome:
    """bZx-2-shape attack: N equal buys on a pool, then one dump.

    The dump happens on a *sink*: either a second, deeper pool (bZx-2's
    Synthetix-depot substitute, ``sink_is_pool=True``) or an oracle-priced
    venue reading the pumped pool (Spartan, PancakeHunny).
    """
    world = world_for(chain)
    quote = world.weth
    target = world.new_token(target_symbol, 18)
    pool = world.dex_pair(
        target, quote, 263_000 * target.unit, 1_000 * quote.unit, app=pool_app
    )
    pool.emits_trade_events = pool_events
    sink_pool = None
    sink_venue = None
    if sink_is_pool:
        # deep secondary market at a mid-level price.
        sink_pool = world.dex_pair(
            target, quote, 2_000_000 * target.unit, 12_400 * quote.unit, app=sink_app
        )
    else:
        sink_venue = world.margin_venue(
            [pool],
            funding={world.registry.by_symbol(quote.symbol): 500_000 * quote.unit},
            app=sink_app,
        )
        sink_venue.emits_trade_events = False
    if conflicting_tags:
        other = "Uniswap" if chain == "ethereum" else "PancakeSwap"
        conflict_tag(world, pool, other)
        if sink_venue is not None:
            conflict_tag(world, sink_venue, other)

    buy_amount = buy_amount if buy_amount is not None else 20 * quote.unit
    accomplice: ScriptedAttackContract | None = None
    attacker = world.create_attacker(f"{name}-eoa")
    sink_address = sink_pool.address if sink_pool is not None else sink_venue.address

    def sell_all(contract: ScriptedAttackContract) -> None:
        amount = contract.balance(target.address)
        if sink_pool is not None:
            contract.swap_pool(sink_pool.address, target.address, amount)
        else:
            contract.oracle_swap(sink_venue.address, target.address, amount, quote.address)

    def body(atk: ScriptedAttackContract) -> None:
        for _ in range(n_buys):
            atk.swap_pool(pool.address, quote.address, buy_amount)
        if accomplice_sells and accomplice is not None:
            atk.transfer(target.address, accomplice.address, atk.balance(target.address))
            atk.call(accomplice.address, "run")
        else:
            sell_all(atk)

    if accomplice_sells:
        def accomplice_body(acc: ScriptedAttackContract) -> None:
            sell_all(acc)
            # hand proceeds back to the borrower contract for repayment
            acc.transfer(quote.address, acc.caller, acc.balance(quote.address))

        accomplice = world.chain.deploy(
            attacker, ScriptedAttackContract, accomplice_body, hint=f"{name}-accomplice"
        )

    borrow = buy_amount * n_buys + 10 * quote.unit
    entry, source = flash_source(world, quote, borrow, provider)
    outcome = run_flash_loan_attack(
        world,
        body,
        entry,
        source,
        quote.address,
        borrow,
        attacker=attacker,
        accomplices=(accomplice,) if accomplice is not None else (),
        name=name,
    )
    _ = sink_address
    return outcome


# ---------------------------------------------------------------------------
# shape 4: mint-and-dump (no clear pattern)
# ---------------------------------------------------------------------------


def build_mint_dump(
    *,
    name: str,
    chain: str,
    provider: str,
    app: str,
    pumped_symbol: str,
    reward_symbol: str,
    pump_amount: int | None = None,
) -> ScenarioOutcome:
    """Pump a pool, mint/buy a reward token at the skewed oracle, dump it.

    No repeated same-token round exists, so neither LeiShen's patterns nor
    DeFiRanger's two-trade rule fire — the paper's "cannot observe clear
    attack patterns" group.
    """
    world = world_for(chain)
    quote = world.weth
    pumped = world.new_token(pumped_symbol, 18)
    reward = world.new_token(reward_symbol, 18)
    pool = world.dex_pair(pumped, quote, 500_000 * pumped.unit, 5_000 * quote.unit)
    reward_pool = world.dex_pair(reward, quote, 3_000_000 * reward.unit, 30_000 * quote.unit)
    minter = world.margin_venue(
        [pool], funding={reward: 10_000_000 * reward.unit}, app=app
    )
    minter.emits_trade_events = False
    # the minter venue prices `pumped -> reward` via the pumped pool's spot
    # against quote; wire a composite oracle for that path.
    from ...defi.oracle import DexSpotOracle

    minter.oracle = DexSpotOracle([pool, reward_pool])

    pump_amount = pump_amount if pump_amount is not None else 4_000 * quote.unit

    def body(atk: ScriptedAttackContract) -> None:
        bought = atk.swap_pool(pool.address, quote.address, pump_amount)
        # mint rewards with a sliver of the pumped token at the skewed rate
        sliver = bought // 100
        atk.oracle_swap(minter.address, pumped.address, sliver, reward.address)
        # dump everything
        atk.swap_pool(reward_pool.address, reward.address, atk.balance(reward.address))
        atk.swap_pool(pool.address, pumped.address, atk.balance(pumped.address))

    borrow = pump_amount + 10 * quote.unit
    entry, source = flash_source(world, quote, borrow, provider)
    return run_flash_loan_attack(
        world, body, entry, source, quote.address, borrow, name=name
    )

