"""Scenario framework: scripted attack contracts and outcome plumbing.

Each of the 22 real-world flpAttacks is replayed as a *scripted attack
contract* on a fresh :class:`~repro.world.DeFiWorld`. The script (the
attack body) is a Python closure executed inside the flash-loan callback,
exactly where the real attack logic ran; the surrounding machinery takes
care of borrowing from the right provider and repaying with the fee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ...chain.contract import Msg, external
from ...chain.trace import TransactionTrace
from ...chain.types import Address
from ...defi.aave import AAVE_FLASHLOAN_FEE_BPS
from ...defi.base import FlashLoanReceiver
from ...defi.dydx import call_action, deposit_action, withdraw_action
from ...defi.uniswap import UniswapV2Pair
from ...world import DeFiWorld

if TYPE_CHECKING:  # pragma: no cover
    from ...chain.chain import Chain

__all__ = ["ScriptedAttackContract", "ScenarioOutcome", "run_flash_loan_attack"]

Body = Callable[["ScriptedAttackContract"], None]


class ScriptedAttackContract(FlashLoanReceiver):
    """An attack contract whose logic is supplied as a Python closure."""

    def __init__(self, chain: "Chain", address: Address, body: Body | None = None) -> None:
        super().__init__(chain, address)
        self._body = body
        self._continuations: list[Body] = []
        #: the account that invoked the current entry point — accomplice
        #: contracts use it to hand proceeds back to their caller.
        self.caller: Address | None = None

    # -- entry points -------------------------------------------------------

    @external
    def run(self, msg: Msg) -> None:
        """Execute the body without any flash loan (plain transaction)."""
        self.caller = msg.sender
        self._run_body()

    @external
    def run_dydx(self, msg: Msg, solo: Address, token: Address, amount: int) -> None:
        """Borrow via dYdX's Withdraw/Call/Deposit sequence, then run."""
        self.approve(token, solo, amount + 2)
        self.call(
            solo,
            "operate",
            [
                withdraw_action(token, amount),
                call_action(self.address),
                deposit_action(token, amount + 2),
            ],
        )

    @external
    def run_aave(self, msg: Msg, pool: Address, token: Address, amount: int) -> None:
        """Borrow via AAVE flashLoan, then run."""
        self.call(pool, "flashLoan", self.address, token, amount, "flp")

    @external
    def run_uniswap(self, msg: Msg, pair: Address, token: Address, amount: int) -> None:
        """Borrow via a Uniswap V2 flash swap, then run."""
        pool = self.chain.contract_of(pair, UniswapV2Pair)
        out0, out1 = (amount, 0) if token == pool.token0 else (0, amount)
        self.call(pair, "swap", out0, out1, self.address, "flash")

    # -- provider callbacks ----------------------------------------------------

    @external
    def callFunction(self, msg: Msg, sender: Address, data: object) -> None:
        self._run_body()

    @external
    def executeOperation(self, msg: Msg, token: Address, amount: int, fee: int, params: object) -> None:
        self._run_body()
        self.approve(token, msg.sender, amount + fee)

    @external
    def uniswapV2Call(self, msg: Msg, sender: Address, amount0: int, amount1: int, data: object) -> None:
        pair = self.chain.contract_of(msg.sender, UniswapV2Pair)
        self._run_body()
        borrowed = amount0 or amount1
        token = pair.token0 if amount0 else pair.token1
        fee = borrowed * 3 // 997 + 1
        self.transfer(token, msg.sender, borrowed + fee)

    def _run_body(self) -> None:
        if self._continuations:
            self._continuations.pop()(self)
        elif self._body is not None:
            self._body(self)

    # -- nested loans (multi-provider attacks, e.g. Yearn) ----------------------

    def flash_aave_then(self, pool: Address, token: Address, amount: int, then: Body) -> None:
        self._continuations.append(then)
        self.call(pool, "flashLoan", self.address, token, amount, "nested")

    def flash_uniswap_then(self, pair: Address, token: Address, amount: int, then: Body) -> None:
        self._continuations.append(then)
        pool = self.chain.contract_of(pair, UniswapV2Pair)
        out0, out1 = (amount, 0) if token == pool.token0 else (0, amount)
        self.call(pair, "swap", out0, out1, self.address, "flash")

    # -- action helpers ------------------------------------------------------------

    def approve(self, token: Address, spender: Address, amount: int = 2**200) -> None:
        self.call(token, "approve", spender, amount)

    def transfer(self, token: Address, to: Address, amount: int) -> None:
        self.call(token, "transfer", to, amount)

    def balance(self, token: Address) -> int:
        from ...tokens.erc20 import ERC20

        return self.chain.contract_of(token, ERC20).balance_of(self.address)

    def swap_pool(self, pair: Address, token_in: Address, amount_in: int) -> int:
        """Direct swap on a Uniswap-style pair; returns the output amount."""
        pool = self.chain.contract_of(pair, UniswapV2Pair)
        amount_out = pool.get_amount_out(amount_in, token_in)
        self.transfer(token_in, pair, amount_in)
        token_out = pool.other_token(token_in)
        out0, out1 = (amount_out, 0) if token_out == pool.token0 else (0, amount_out)
        self.call(pair, "swap", out0, out1, self.address)
        return amount_out

    def balancer_swap(self, pool: Address, token_in: Address, amount_in: int, token_out: Address) -> int:
        self.approve(token_in, pool, amount_in)
        return self.call(pool, "swapExactAmountIn", token_in, amount_in, token_out)

    def curve_swap(self, pool: Address, i: int, j: int, amount: int) -> int:
        coins = self.chain.contract_at(pool).coins  # type: ignore[attr-defined]
        self.approve(coins[i], pool, amount)
        return self.call(pool, "exchange", i, j, amount)

    def vault_deposit(self, vault: Address, amount: int) -> int:
        underlying = self.chain.contract_at(vault).underlying  # type: ignore[attr-defined]
        self.approve(underlying, vault, amount)
        return self.call(vault, "deposit", amount)

    def vault_withdraw(self, vault: Address, shares: int) -> int:
        return self.call(vault, "withdraw", shares)

    def oracle_swap(self, venue: Address, token_in: Address, amount_in: int, token_out: Address) -> int:
        self.approve(token_in, venue, amount_in)
        return self.call(venue, "oracle_swap", token_in, amount_in, token_out)

    def aggregator_trade(
        self, aggregator: Address, venue: Address, token_in: Address, amount_in: int, token_out: Address
    ) -> int:
        self.approve(token_in, aggregator, amount_in)
        return self.call(aggregator, "trade", venue, token_in, amount_in, token_out, self.address)

    def sweep(self, tokens: Sequence[Address], to: Address) -> None:
        """Send the full balance of each token to ``to`` (profit exit)."""
        for token in tokens:
            amount = self.balance(token)
            if amount > 0:
                self.transfer(token, to, amount)

    @external
    def collect(self, msg: Msg, token: Address) -> int:
        """Step 3 of the paper's attack model: the attack contract hands
        its profit to the attacker. Only the deployer may collect."""
        if self.chain.created_by.get(self.address) != msg.sender:
            from ...chain.errors import Revert

            raise Revert("only the deployer collects")
        amount = self.balance(token)
        if amount > 0:
            self.transfer(token, msg.sender, amount)
        return amount


@dataclass(slots=True)
class ScenarioOutcome:
    """A replayed attack: the world it ran in and its transaction trace."""

    name: str
    world: DeFiWorld
    trace: TransactionTrace
    attacker: Address
    attack_contracts: list[Address] = field(default_factory=list)

    @property
    def chain(self):
        return self.world.chain


def run_flash_loan_attack(
    world: DeFiWorld,
    body: Body,
    provider: str,
    provider_account: Address,
    token: Address,
    amount: int,
    attacker: Address | None = None,
    accomplices: Sequence[ScriptedAttackContract] = (),
    name: str = "attack",
) -> ScenarioOutcome:
    """Deploy a scripted attack contract and fire the flash-loan tx.

    ``provider`` selects the entry point: ``"dydx"``, ``"aave"`` or
    ``"uniswap"`` (which also covers PancakeSwap-style forks).
    """
    attacker = attacker or world.create_attacker(f"{name}-eoa")
    contract = world.chain.deploy(attacker, ScriptedAttackContract, body, hint=f"{name}-contract")
    entry = {"dydx": "run_dydx", "aave": "run_aave", "uniswap": "run_uniswap"}[provider]
    trace = world.chain.transact(
        attacker, contract.address, entry, provider_account, token, amount
    )
    # Step 3 of the attack model (paper Fig. 2): the contract transfers
    # its profit to the attacker, in follow-up transactions that do not
    # touch the analyzed attack trace.
    for held in world.registry:
        if held.balance_of(contract.address) > 0:
            world.chain.transact(attacker, contract.address, "collect", held.address)
    return ScenarioOutcome(
        name=name,
        world=world,
        trace=trace,
        attacker=attacker,
        attack_contracts=[contract.address, *(a.address for a in accomplices)],
    )


# AAVE fee constant re-exported for scenario profit arithmetic.
AAVE_FEE_BPS = AAVE_FLASHLOAN_FEE_BPS
