"""The Balancer STA attack (Jun 2020) — KRP with a deflationary token.

STA burns 1% of every transfer while the Balancer pool prices against
its internal balance records. The attacker escalates WETH->STA buys until
the pool's STA record is dust (each buy doubles the recorded WETH and
halves the recorded STA, quadrupling STA's price), resyncs with ``gulp``,
then spends slivers of STA to drain the pool's WETH, WBTC, SNX and LINK
— the four astronomically-volatile pairs of paper Table I.
"""

from __future__ import annotations

from ...chain.types import ETH
from .base import ScenarioOutcome, ScriptedAttackContract, run_flash_loan_attack
from .common import world_for

__all__ = ["build_balancer"]

_N_BUYS = 8


def build_balancer() -> ScenarioOutcome:
    world = world_for("ethereum")
    weth = world.weth
    wbtc = world.new_token("WBTC", 8)
    snx = world.new_token("SNX")
    link = world.new_token("LINK")
    sta = world.deflationary_token("STA", fee_bps=100)

    pool = world.balancer_pool(
        {
            weth: 200 * ETH,
            wbtc: 40 * wbtc.unit,
            snx: 20_000 * snx.unit,
            link: 10_000 * link.unit,
            sta: 100_000 * sta.unit,
        }
    )
    # external market to convert WBTC loot back into WETH for repayment
    wbtc_market = world.dex_pair(wbtc, weth, 2_000 * wbtc.unit, 77_000 * ETH)
    solo = world.dydx(funding={weth: 120_000 * ETH})

    def body(atk: ScriptedAttackContract) -> None:
        # Keep raising STA's price: each buy spends the pool's current
        # recorded WETH balance, halving the recorded STA (price x4/round).
        for _ in range(_N_BUYS):
            weth_in = pool.record_balance(weth.address)
            atk.balancer_swap(pool.address, weth.address, weth_in, sta.address)
        # Resync records with actual (burned) balances — the real attack's
        # gulp() step; with the records already drained this is a nudge.
        atk.call(pool.address, "gulp", sta.address)
        # Drain the other assets with slivers of now-astronomically-priced
        # STA: the big sells recover nearly all WETH plus the WBTC pot.
        unit = sta.unit
        atk.balancer_swap(pool.address, sta.address, 50_000 * unit, weth.address)
        atk.balancer_swap(pool.address, sta.address, 30_000 * unit, wbtc.address)
        atk.balancer_swap(pool.address, sta.address, 10_000 * unit, snx.address)
        atk.balancer_swap(pool.address, sta.address, 7_000 * unit, link.address)
        # Convert WBTC loot to WETH so the flash loan can be repaid.
        atk.swap_pool(wbtc_market.address, wbtc.address, atk.balance(wbtc.address))

    borrow = 200 * ETH * (2**_N_BUYS)  # covers the escalating buy series
    return run_flash_loan_attack(
        world, body, "dydx", solo.address, weth.address, borrow, name="balancer"
    )
