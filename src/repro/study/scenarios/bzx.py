"""The two bZx attacks (Feb 2020) — the first known flpAttacks.

- **bZx-1** (paper Fig. 3, SBS): dYdX flash loan; collateralized WBTC
  borrow on Compound (the cheap symmetric buy); an over-leveraged margin
  trade on bZx routed through a Kyber-style aggregator pumps Uniswap's
  WBTC price (the raise); the borrowed WBTC is dumped on the pumped pool
  (the dear symmetric sell).
- **bZx-2** (KRP): 18 equal 20-ETH buys of sUSD on Uniswap, then one dump
  on a deep Synthetix-depot-like secondary market. The paper notes the
  original loan came from bZx itself; we substitute dYdX, one of the
  three providers Table II fingerprints.
"""

from __future__ import annotations

from ...chain.types import ETH
from .base import ScenarioOutcome, ScriptedAttackContract, run_flash_loan_attack
from .common import build_krp, world_for

__all__ = ["build_bzx1", "build_bzx2"]


def build_bzx1() -> ScenarioOutcome:
    world = world_for("ethereum")
    weth = world.weth
    wbtc = world.new_token("WBTC", 8)

    # Shallow Uniswap WETH/WBTC pool at 38.5 WETH per WBTC (like the real one).
    pool = world.dex_pair(weth, wbtc, 8_085 * ETH, 210 * wbtc.unit)

    solo = world.dydx(funding={weth: 100_000 * ETH})
    market = world.lending_market(
        prices={weth.address: 1.0, wbtc.address: 36.8 * 10**18 / 10**8},
        funding={wbtc: 10_000 * wbtc.unit},
    )
    venue = world.margin_venue([pool], funding={weth: 50_000 * ETH}, app="bZx")
    kyber = world.aggregator("Kyber")

    def body(atk: ScriptedAttackContract) -> None:
        # Step 2: collateralize 5,500 ETH, borrow 112 WBTC on Compound.
        atk.approve(weth.address, market.address)
        atk.call(
            market.address, "borrow", weth.address, 5_500 * ETH, wbtc.address, 112 * wbtc.unit
        )
        # Steps 3-4: 5x margin trade on bZx, routed via Kyber to Uniswap.
        atk.approve(weth.address, venue.address)
        atk.call(
            venue.address,
            "open_margin_position",
            weth.address,
            1_300 * ETH,
            pool.address,
            5,
            kyber.address,
        )
        # Step 5: sell the 112 WBTC at the pumped price.
        atk.swap_pool(pool.address, wbtc.address, 112 * wbtc.unit)

    return run_flash_loan_attack(
        world, body, "dydx", solo.address, weth.address, 10_000 * ETH, name="bzx1"
    )


def build_bzx2() -> ScenarioOutcome:
    return build_krp(
        name="bzx2",
        chain="ethereum",
        provider="dYdX",
        pool_app=None,  # Uniswap
        sink_app="Synthetix",
        target_symbol="sUSD",
        n_buys=18,
        sink_is_pool=True,
    )

