"""Oracle-venue SBS attacks: Cheese Bank, AutoShark-2/-3, Ploutoz, JulSwap.

Each buys the target cheaply from an oracle-priced venue, pumps the
oracle pool by >= 28%, and sells the exact bought amount back dear —
the Symmetrical Buying and Selling shape of paper Sec. IV-B2.
"""

from __future__ import annotations

from .base import ScenarioOutcome
from .common import build_oracle_sbs

__all__ = [
    "build_cheesebank",
    "build_autoshark2",
    "build_autoshark3",
    "build_ploutoz",
    "build_julswap",
]


def build_cheesebank() -> ScenarioOutcome:
    return build_oracle_sbs(
        name="cheesebank",
        chain="ethereum",
        provider="dYdX",
        app="CheeseBank",
        target_symbol="CHEESE",
    )


def build_autoshark2() -> ScenarioOutcome:
    """t1 and t3 hit *different accounts* of the AutoShark app: LeiShen's
    app-level transfers still line them up, DeFiRanger's account-level
    view does not (the paper's core argument for application tagging)."""
    return build_oracle_sbs(
        name="autoshark2",
        chain="bsc",
        provider="PancakeSwap",
        app="AutoShark",
        target_symbol="SHARK",
        two_venues=True,
    )


def build_autoshark3() -> ScenarioOutcome:
    return build_oracle_sbs(
        name="autoshark3",
        chain="bsc",
        provider="PancakeSwap",
        app="AutoShark",
        target_symbol="JAWS",
    )


def build_ploutoz() -> ScenarioOutcome:
    return build_oracle_sbs(
        name="ploutoz",
        chain="bsc",
        provider="PancakeSwap",
        app="Ploutoz",
        target_symbol="DOP",
    )


def build_julswap() -> ScenarioOutcome:
    """SBS by manual analysis, but the venue accounts live in a
    conflicting-tag creation tree (paper Fig. 7c): LeiShen cannot tag
    them and misses the attack — its first documented miss in Table IV."""
    return build_oracle_sbs(
        name="julswap",
        chain="bsc",
        provider="PancakeSwap",
        app="JulSwap",
        target_symbol="JULb",
        two_venues=True,
        conflicting_tags=True,
    )
