"""KRP batch-buy attacks beyond bZx-2: Spartan Protocol and PancakeHunny."""

from __future__ import annotations

from .base import ScenarioOutcome
from .common import build_krp

__all__ = ["build_spartan", "build_pancakehunny"]


def build_spartan() -> ScenarioOutcome:
    """Six escalating SPARTA buys on Spartan's own (event-less) pool, with
    the final dump executed by a *second* attacker contract — LeiShen's
    creation-root tag still covers it, DeFiRanger's account view does not."""
    return build_krp(
        name="spartan",
        chain="bsc",
        provider="PancakeSwap",
        pool_app="Spartan",
        sink_app="Spartan",
        target_symbol="SPARTA",
        n_buys=6,
        buy_amount=None,
        pool_events=False,
        sink_is_pool=False,
        accomplice_sells=True,
    )


def build_pancakehunny() -> ScenarioOutcome:
    """KRP by manual analysis, but both the pool and the venue live in
    conflicting-tag creation trees — LeiShen's second documented miss."""
    return build_krp(
        name="pancakehunny",
        chain="bsc",
        provider="PancakeSwap",
        pool_app="PancakeHunny",
        sink_app="PancakeHunny",
        target_symbol="HUNNY",
        n_buys=6,
        pool_events=False,
        sink_is_pool=False,
        conflicting_tags=True,
    )
