"""The "no clear pattern" group: XToken-1, PancakeBunny, Twindex, MY FARM PET.

All four pump a pool, mint or buy a reward/synth token at the skewed
oracle rate, and dump it elsewhere. There is no repeated same-token round
for any detector's pattern to latch onto — the five-attack residue of the
paper's empirical study (Value DeFi being the fifth, in vault_attacks).
"""

from __future__ import annotations

from .base import ScenarioOutcome
from .common import build_mint_dump

__all__ = [
    "build_xtoken1",
    "build_pancakebunny",
    "build_twindex",
    "build_myfarmpet",
]


def build_xtoken1() -> ScenarioOutcome:
    return build_mint_dump(
        name="xtoken1",
        chain="bsc",
        provider="PancakeSwap",
        app="xToken",
        pumped_symbol="SNXb",
        reward_symbol="xSNXa",
    )


def build_pancakebunny() -> ScenarioOutcome:
    return build_mint_dump(
        name="pancakebunny",
        chain="bsc",
        provider="PancakeSwap",
        app="PancakeBunny",
        pumped_symbol="USDTb",
        reward_symbol="BUNNY",
    )


def build_twindex() -> ScenarioOutcome:
    return build_mint_dump(
        name="twindex",
        chain="bsc",
        provider="PancakeSwap",
        app="Twindex",
        pumped_symbol="TWX",
        reward_symbol="KUSD",
    )


def build_myfarmpet() -> ScenarioOutcome:
    return build_mint_dump(
        name="myfarmpet",
        chain="bsc",
        provider="PancakeSwap",
        app="MyFarmPet",
        pumped_symbol="PETB",
        reward_symbol="MyFarmPET",
    )
