"""The Saddle Finance attack (Jan 2022) — the one dual-pattern attack.

Three profitable symmetric rounds against Saddle's (event-less) swap
venue satisfy MBS, while the first buy, a later dearer buy and a sell
priced between them satisfy SBS — Table I's only row with two checkmarks.
The venue prices sUSD via a Uniswap pool the attacker nudges between
trades.
"""

from __future__ import annotations

from .base import ScenarioOutcome, ScriptedAttackContract, run_flash_loan_attack
from .common import flash_source, world_for

__all__ = ["build_saddle"]


def build_saddle() -> ScenarioOutcome:
    world = world_for("ethereum")
    usdc = world.new_token("USDC", 18)
    susd = world.new_token("sUSD2", 18)
    # the oracle pool starts balanced at 1 sUSD = 1 USDC
    pool = world.dex_pair(susd, usdc, 1_000_000 * susd.unit, 1_000_000 * usdc.unit)
    venue = world.margin_venue(
        [pool],
        funding={susd: 5_000_000 * susd.unit, usdc: 5_000_000 * usdc.unit},
        app="Saddle",
    )
    venue.emits_trade_events = False

    round_amount = 100_000 * usdc.unit

    def buy_round(atk: ScriptedAttackContract, usdc_in: int) -> int:
        return atk.oracle_swap(venue.address, usdc.address, usdc_in, susd.address)

    def sell_round(atk: ScriptedAttackContract, susd_in: int) -> int:
        return atk.oracle_swap(venue.address, susd.address, susd_in, usdc.address)

    def body(atk: ScriptedAttackContract) -> None:
        # round 1: buy at par (this is also SBS's t1)
        got1 = buy_round(atk, round_amount)
        # nudge the oracle up hard (SBS's implicit price path), sell dear
        atk.swap_pool(pool.address, usdc.address, 300_000 * usdc.unit)
        # bring the spot below the raise trade's average before selling
        atk.swap_pool(pool.address, susd.address, 150_000 * susd.unit)
        sell_round(atk, got1)
        # round 2: buy at the elevated price (SBS's t2, the raise), small
        got2 = buy_round(atk, 30_000 * usdc.unit)
        atk.swap_pool(pool.address, usdc.address, 40_000 * usdc.unit)
        sell_round(atk, got2)
        # round 3: nudge down, buy, nudge up, sell the round's sUSD
        atk.swap_pool(pool.address, susd.address, 80_000 * susd.unit)
        got3 = buy_round(atk, 60_000 * usdc.unit)
        atk.swap_pool(pool.address, usdc.address, 60_000 * usdc.unit)
        sell_round(atk, got3)
        # liquidate leftover nudge inventory so the USDC loan can be repaid
        atk.swap_pool(pool.address, susd.address, atk.balance(susd.address))

    entry, source = flash_source(world, usdc, 1_000_000 * usdc.unit, "Uniswap")
    return run_flash_loan_attack(
        world, body, entry, source, usdc.address, 1_000_000 * usdc.unit, name="saddle"
    )
