"""Empirical study: the 22 real-world flpAttack scenarios and analyses."""

from .analysis import StudyRow, analyze_scenario, flash_loan_analysis, run_study
from .non_price import build_governance, build_reentrancy
from .behaviors import (
    ExitReport,
    launder_through_intermediaries,
    launder_through_mixer,
    simulate_selfdestruct,
    trace_profit_exit,
)
from .catalog import (
    AttackMeta,
    FLP_ATTACKS,
    NON_PRICE_ATTACKS,
    flp_attack,
    patterned_attacks,
)
from .scenarios import SCENARIO_BUILDERS, ScenarioOutcome, build_scenario

__all__ = [
    "AttackMeta",
    "ExitReport",
    "FLP_ATTACKS",
    "NON_PRICE_ATTACKS",
    "SCENARIO_BUILDERS",
    "ScenarioOutcome",
    "StudyRow",
    "analyze_scenario",
    "build_governance",
    "build_reentrancy",
    "flash_loan_analysis",
    "build_scenario",
    "flp_attack",
    "launder_through_intermediaries",
    "launder_through_mixer",
    "patterned_attacks",
    "run_study",
    "simulate_selfdestruct",
    "trace_profit_exit",
]
