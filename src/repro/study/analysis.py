"""Empirical-study analyses (paper Sec. III).

Regenerates the study's quantitative parts from the replayed scenarios:

- flash-loan analysis (Sec. III-B): providers used and value borrowed;
- price-volatility analysis (Sec. III-D / Table I): per token pair,
  ``(rate_max - rate_min) / rate_min`` over the attack's trades.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..leishen.identify import FlashLoanIdentifier
from ..leishen.profit import ProfitAnalyzer
from ..leishen.report import pair_volatilities
from .catalog import AttackMeta, FLP_ATTACKS, flp_attack
from .scenarios import SCENARIO_BUILDERS, ScenarioOutcome

__all__ = ["StudyRow", "analyze_scenario", "run_study", "flash_loan_analysis"]


@dataclass(frozen=True, slots=True)
class StudyRow:
    """One Table I row, measured from the replay."""

    meta: AttackMeta
    volatility_by_pair: tuple[tuple[str, float], ...]
    patterns_detected: tuple[str, ...]
    borrowed_usd: float
    profit_usd: float

    @property
    def max_volatility_pct(self) -> float:
        return max((v for _, v in self.volatility_by_pair), default=0.0)


def analyze_scenario(outcome: ScenarioOutcome, meta: AttackMeta | None = None) -> StudyRow:
    """Measure one replayed attack the way the manual study did."""
    meta = meta or flp_attack(outcome.name)
    world = outcome.world
    detector = world.detector()
    report = detector.analyze(outcome.trace)
    volatility: tuple[tuple[str, float], ...] = ()
    patterns: tuple[str, ...] = ()
    if report is not None:
        by_pair = pair_volatilities(report.trades)
        volatility = tuple(
            (world.registry.pair_name(a, b), vol * 100.0)
            for (a, b), vol in sorted(by_pair.items(), key=lambda kv: -kv[1])
        )
        patterns = tuple(sorted(report.patterns))
    analyzer = ProfitAnalyzer(world.registry)
    flash_loans = FlashLoanIdentifier().identify(outcome.trace)
    accounts = [outcome.attacker, *outcome.attack_contracts]
    breakdown = analyzer.breakdown(outcome.trace, flash_loans, accounts)
    return StudyRow(
        meta=meta,
        volatility_by_pair=volatility,
        patterns_detected=patterns,
        borrowed_usd=breakdown.borrowed_usd,
        profit_usd=breakdown.profit_usd,
    )


def flash_loan_analysis(rows: list[StudyRow]) -> dict:
    """Sec. III-B aggregates over the replayed attacks.

    The paper reports: most attackers borrow from a single provider,
    and borrowed assets in price manipulation attacks are worth more
    than one million USD each.
    """
    providers: dict[str, int] = {}
    over_one_million = 0
    max_borrowed = 0.0
    for row in rows:
        for provider in row.meta.providers:
            providers[provider] = providers.get(provider, 0) + 1
        if row.borrowed_usd > 1_000_000:
            over_one_million += 1
        max_borrowed = max(max_borrowed, row.borrowed_usd)
    return {
        "providers": providers,
        "attacks": len(rows),
        "over_one_million_usd": over_one_million,
        "max_borrowed_usd": max_borrowed,
    }


def run_study(keys: list[str] | None = None) -> list[StudyRow]:
    """Replay and analyze all (or selected) flpAttack scenarios."""
    rows: list[StudyRow] = []
    for meta in FLP_ATTACKS:
        if keys is not None and meta.key not in keys:
            continue
        outcome = SCENARIO_BUILDERS[meta.key]()
        rows.append(analyze_scenario(outcome, meta))
    return rows
