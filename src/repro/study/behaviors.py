"""Attacker post-attack behaviours (paper Sec. VI-D2).

The paper reports two findings about what attackers do after the attack
transaction:

1. **trace hiding** — some attackers ``selfdestruct`` the attack contract
   ("a removed contract will be no longer accessible. However, the
   contract code remains in the entire blockchain history and can be
   replayed exactly" — which our chain honours: traces survive
   ``destroy``);
2. **money laundering** — nearly all attackers move profits through
   multi-level intermediary accounts they control, and some through
   coin-mixing services (Tornado Cash).

This module simulates both behaviours on top of a finished attack and
provides the forensic analysis that recovers them from chain history:
the exit-path tracer follows profits hop by hop until they vanish into a
mixer or settle at a terminal account.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..chain.chain import Chain
from ..chain.types import Address
from ..defi.mixer import Mixer, commitment_of
from ..tokens.erc20 import ERC20
from .scenarios.base import ScenarioOutcome

__all__ = [
    "ExitReport",
    "simulate_selfdestruct",
    "launder_through_intermediaries",
    "launder_through_mixer",
    "trace_profit_exit",
]


@dataclass(slots=True)
class ExitReport:
    """Forensic reconstruction of where an attack's profit went."""

    token: Address
    #: chain of accounts the profit moved through, in order.
    hops: list[Address] = field(default_factory=list)
    #: terminal account still holding funds, if the trail ends in the open.
    terminal: Address | None = None
    #: True when the trail ends in a mixer deposit.
    entered_mixer: bool = False
    #: True when the attack contract's code was selfdestructed.
    contract_destroyed: bool = False

    @property
    def laundering_depth(self) -> int:
        return len(self.hops)


def simulate_selfdestruct(outcome: ScenarioOutcome) -> None:
    """The attacker removes the attack contract's code post-attack.

    The transaction history (and therefore replayability) is untouched —
    the property the paper leans on to analyze destroyed contracts.
    """
    for contract in outcome.attack_contracts:
        outcome.chain.destroy(contract)


def _fresh_secret(chain: Chain, hint: str) -> str:
    return hashlib.sha256(f"{chain.name}|{hint}|{len(chain.creations)}".encode()).hexdigest()


def launder_through_intermediaries(
    outcome: ScenarioOutcome, token: ERC20, depth: int = 3
) -> list[Address]:
    """Move the attacker's profit through ``depth`` fresh EOAs.

    Each hop is a plain ERC20 transfer to a new attacker-controlled
    account — the multi-level intermediary pattern the paper observed.
    Returns the intermediary chain (last one holds the funds).
    """
    chain = outcome.chain
    holder = outcome.attacker
    amount = token.balance_of(holder)
    if amount <= 0:
        raise ValueError("attacker holds no profit in this token")
    intermediaries: list[Address] = []
    for level in range(depth):
        nxt = chain.create_eoa(f"laundry-{outcome.name}-{level}")
        chain.transact(holder, token.address, "transfer", nxt, amount)
        intermediaries.append(nxt)
        holder = nxt
    return intermediaries


def launder_through_mixer(
    outcome: ScenarioOutcome,
    token: ERC20,
    mixer: Mixer,
    clean_recipient: Address | None = None,
) -> Address:
    """Push profit denominations into a mixer and withdraw them clean.

    Returns the clean recipient address. Any profit remainder below one
    denomination stays on the last dirty account (as on the real chain).
    """
    chain = outcome.chain
    holder = outcome.attacker
    amount = token.balance_of(holder)
    notes = amount // mixer.denomination
    if notes <= 0:
        raise ValueError("profit below one mixer denomination")
    clean = clean_recipient or chain.create_eoa(f"clean-{outcome.name}")
    chain.transact(holder, token.address, "approve", mixer.address, amount)
    secrets = []
    for i in range(notes):
        secret = _fresh_secret(chain, f"{outcome.name}-{i}")
        secrets.append(secret)
        chain.transact(holder, mixer.address, "deposit", commitment_of(secret))
    for secret in secrets:
        chain.transact(holder, mixer.address, "withdraw", secret, clean)
    return clean


def trace_profit_exit(outcome: ScenarioOutcome, token: ERC20) -> ExitReport:
    """Follow the profit's exit path through chain history.

    Starting from the attacker EOA, follows full-balance transfers of
    ``token`` hop by hop. The trail ends at a mixer (unlinkable), or at
    the last account still holding the funds.
    """
    chain = outcome.chain
    report = ExitReport(token=token.address)
    report.contract_destroyed = any(
        contract not in chain.contracts for contract in outcome.attack_contracts
    )
    transfers = [
        transfer
        for block in chain.blocks
        for trace in block.traces
        for transfer in trace.transfers
        if transfer.token == token.address
    ]
    current = outcome.attacker
    seen = {current}
    while True:
        outgoing = [t for t in transfers if t.sender == current]
        if not outgoing:
            report.terminal = current
            return report
        hop = max(outgoing, key=lambda t: t.amount)
        receiver = hop.receiver
        if isinstance(chain.contracts.get(receiver), Mixer):
            report.entered_mixer = True
            report.hops.append(receiver)
            return report
        if receiver in seen:
            report.terminal = current
            return report
        report.hops.append(receiver)
        seen.add(receiver)
        current = receiver
