"""Attack report data structures and price-volatility utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..chain.types import Address
from .identify import FlashLoan
from .patterns import PatternMatch
from .tagging import Tag
from .trades import Trade

__all__ = ["AttackReport", "price_volatility", "pair_volatilities"]


def _pair_key(token_a: Address, token_b: Address) -> tuple[Address, Address]:
    return (token_a, token_b) if token_a <= token_b else (token_b, token_a)


def pair_volatilities(trades: Sequence[Trade]) -> dict[tuple[Address, Address], float]:
    """Per token pair: ``(rate_max - rate_min) / rate_min`` over a trade list.

    This is the paper's price-volatility metric (Sec. III-D). Rates are
    normalized so each pair's rate is quoted in a fixed direction
    regardless of trade direction. Pairs traded fewer than two times are
    skipped, matching the empirical study.
    """
    rates: dict[tuple[Address, Address], list[float]] = {}
    for trade in trades:
        if trade.amount_buy <= 0 or trade.amount_sell <= 0:
            continue
        key = _pair_key(trade.token_sell, trade.token_buy)
        rate = trade.amount_sell / trade.amount_buy
        if key != (trade.token_sell, trade.token_buy):
            rate = 1.0 / rate
        rates.setdefault(key, []).append(rate)
    volatilities: dict[tuple[Address, Address], float] = {}
    for key, series in rates.items():
        if len(series) < 2:
            continue
        rate_min, rate_max = min(series), max(series)
        if rate_min <= 0:
            continue
        volatilities[key] = (rate_max - rate_min) / rate_min
    return volatilities


def price_volatility(trades: Sequence[Trade]) -> float:
    """The transaction's headline volatility: the max over all token pairs."""
    by_pair = pair_volatilities(trades)
    return max(by_pair.values(), default=0.0)


@dataclass(slots=True)
class AttackReport:
    """LeiShen's output for one flash loan transaction."""

    tx_hash: str
    flash_loans: list[FlashLoan]
    #: the first-identified loan's borrower (kept for compatibility; the
    #: full borrower set is in ``borrowers``).
    borrower: Address
    borrower_tag: Tag
    trades: list[Trade]
    matches: list[PatternMatch]
    #: every distinct borrower across providers, in identification order.
    borrowers: tuple[Address, ...] = ()
    #: resolved tag per entry of ``borrowers`` (``None`` = untaggable).
    borrower_tags: tuple[Tag, ...] = ()
    #: net asset deltas of the borrower group across the tx, token -> amount.
    profit_flows: dict[Address, int] = field(default_factory=dict)
    #: profit valued in USD (filled by the profit analyzer when available).
    profit_usd: float | None = None

    @property
    def is_attack(self) -> bool:
        return bool(self.matches)

    @property
    def patterns(self) -> set[str]:
        """Registry keys of every matched pattern."""
        return {match.pattern for match in self.matches}

    def volatility(self) -> float:
        return price_volatility(self.trades)

    def summary(self) -> str:
        names = ",".join(sorted(self.patterns)) or "none"
        providers = ",".join(sorted({fl.provider for fl in self.flash_loans}))
        return (
            f"tx={self.tx_hash[:10]} providers={providers} patterns={names} "
            f"trades={len(self.trades)} volatility={self.volatility():.4f}"
        )
