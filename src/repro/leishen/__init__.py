"""LeiShen: the paper's flpAttack detector."""

from .detector import LeiShen, LeiShenConfig
from .export import report_to_dict, report_to_json, scan_result_to_dict
from .heuristics import DEFAULT_AGGREGATOR_APPS, YieldAggregatorHeuristic
from .identify import FlashLoan, FlashLoanIdentifier, PROVIDERS
from .labels import LabelDatabase, app_name_of_label
from .patterns import AttackPattern, PatternConfig, PatternMatch, PatternMatcher
from .prescreen import BLOOM_THRESHOLD, AddressBloom, PreScreen
from .profit import ProfitAnalyzer, ProfitBreakdown, profit_statistics
from .registry import (
    ALL_PATTERN_KEYS,
    PAPER_PATTERN_KEYS,
    REGISTRY_VERSION,
    Pattern,
    PatternRegistry,
    PatternSettings,
    default_registry,
    enabled_pattern_keys,
)
from .report import AttackReport, pair_volatilities, price_volatility
from .simplify import AppTransfer, SimplifierConfig, TransferSimplifier
from .tagging import AccountTagger, BLACKHOLE_TAG, Tag, TaggedTransfer
from .trades import Trade, TradeIdentifier, TradeKind

__all__ = [
    "AccountTagger",
    "AddressBloom",
    "AppTransfer",
    "ALL_PATTERN_KEYS",
    "AttackPattern",
    "AttackReport",
    "BLACKHOLE_TAG",
    "BLOOM_THRESHOLD",
    "DEFAULT_AGGREGATOR_APPS",
    "FlashLoan",
    "FlashLoanIdentifier",
    "LabelDatabase",
    "LeiShen",
    "LeiShenConfig",
    "PAPER_PATTERN_KEYS",
    "PROVIDERS",
    "Pattern",
    "PatternRegistry",
    "PatternSettings",
    "PatternConfig",
    "PatternMatch",
    "PatternMatcher",
    "PreScreen",
    "REGISTRY_VERSION",
    "ProfitAnalyzer",
    "ProfitBreakdown",
    "SimplifierConfig",
    "Tag",
    "TaggedTransfer",
    "Trade",
    "TradeIdentifier",
    "TradeKind",
    "TransferSimplifier",
    "YieldAggregatorHeuristic",
    "app_name_of_label",
    "default_registry",
    "enabled_pattern_keys",
    "pair_volatilities",
    "report_to_dict",
    "report_to_json",
    "scan_result_to_dict",
    "price_volatility",
    "profit_statistics",
]
