"""Attack pattern matching (paper Sec. IV-B).

Three patterns summarized from the 22 real-world flpAttacks:

- **KRP — Keep Raising Price**: >= 5 buys of a target token from the same
  seller at rising prices, followed by a sell (bZx-2's 18 x 20 ETH trades);
- **SBS — Symmetrical Buying and Selling**: buy an amount of the target
  token, raise its price with a second buy (>= 28% dearer), then sell
  exactly the first amount at the elevated price (bZx-1);
- **MBS — Multi-Round Buying and Selling**: >= 3 profitable buy-then-sell
  rounds against the same seller (Harvest Finance's three vault rounds).

Implementation notes (documented deviations):

- The paper's formal SBS text says the borrower makes all three trades,
  but its own running example (bZx-1) has the price-raising middle trade
  executed *by bZx* with the attacker's margin deposit. We therefore
  require the borrower only on the symmetrical trades ``trade_1`` /
  ``trade_3``; ``trade_2`` may be any application's buy of the target
  token, which is what makes the bZx-1 detection in Table IV work.
- Amount equality in SBS condition (a) uses a small relative tolerance
  (default 0.1%, the same bound as the inter-app merge rule) because
  transfer fees make exact integer equality brittle.

The matching logic itself lives in :mod:`repro.leishen.registry` as
pluggable pattern classes; :class:`PatternMatcher` is the thin façade
that selects and runs the enabled plugins. Pattern identity is the
registry *key* string everywhere; :class:`AttackPattern` is a
``StrEnum`` over the paper keys so ``match.pattern == AttackPattern.KRP``
and plain ``"KRP"`` comparisons are interchangeable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from ..chain.types import Address
from .tagging import Tag
from .trades import Trade

__all__ = ["AttackPattern", "PatternConfig", "PatternMatch", "PatternMatcher"]


class AttackPattern(enum.StrEnum):
    """The paper's three pattern keys (see the registry for the full set)."""

    KRP = "KRP"
    SBS = "SBS"
    MBS = "MBS"


@dataclass(frozen=True, slots=True)
class PatternConfig:
    """Detection thresholds; defaults are the paper's calibrated minima."""

    #: KRP condition (c): minimum number of buy trades.
    krp_min_buys: int = 5
    #: SBS condition (c): minimum relative price rise between trade1 and trade2.
    sbs_min_volatility: float = 0.28
    #: SBS condition (a): relative tolerance on the symmetrical amounts.
    sbs_amount_tolerance: float = 0.001
    #: MBS condition (c): minimum number of profitable rounds.
    mbs_min_rounds: int = 3


@dataclass(frozen=True, slots=True)
class PatternMatch:
    """One matched pattern on one target token.

    ``pattern`` is the plugin's registry key (``"KRP"``, ``"SBS"``,
    ``"MBS"``, ``"SANDWICH"``, …); the :class:`AttackPattern` members
    compare equal to the paper keys.
    """

    pattern: str
    target_token: Address
    trades: tuple[Trade, ...]
    details: tuple[tuple[str, float | int | str], ...] = field(default_factory=tuple)

    def detail(self, key: str, default=None):
        for k, v in self.details:
            if k == key:
                return v
        return default


class PatternMatcher:
    """Runs the enabled registry patterns over a transaction's trade list."""

    def __init__(self, config=None) -> None:
        from .registry import PatternSettings, default_registry

        self.settings = PatternSettings.from_value(config)
        self.registry = default_registry()
        self._patterns = self.registry.select(self.settings.enabled)

    @property
    def config(self) -> PatternConfig:
        """Flat paper-config view (legacy callers; paper thresholds only)."""
        return self.settings.to_legacy_config()

    def match(self, trades: Sequence[Trade], borrower: Tag) -> list[PatternMatch]:
        """All pattern matches for the given flash-loan borrower tag."""
        if borrower is None:
            return []
        ordered = sorted(trades, key=lambda t: t.seq)
        matches: list[PatternMatch] = []
        for pattern in self._patterns:
            matches.extend(pattern.match(ordered, borrower, self.settings))
        return matches
