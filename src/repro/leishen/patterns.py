"""Attack pattern matching (paper Sec. IV-B).

Three patterns summarized from the 22 real-world flpAttacks:

- **KRP — Keep Raising Price**: >= 5 buys of a target token from the same
  seller at rising prices, followed by a sell (bZx-2's 18 x 20 ETH trades);
- **SBS — Symmetrical Buying and Selling**: buy an amount of the target
  token, raise its price with a second buy (>= 28% dearer), then sell
  exactly the first amount at the elevated price (bZx-1);
- **MBS — Multi-Round Buying and Selling**: >= 3 profitable buy-then-sell
  rounds against the same seller (Harvest Finance's three vault rounds).

Implementation notes (documented deviations):

- The paper's formal SBS text says the borrower makes all three trades,
  but its own running example (bZx-1) has the price-raising middle trade
  executed *by bZx* with the attacker's margin deposit. We therefore
  require the borrower only on the symmetrical trades ``trade_1`` /
  ``trade_3``; ``trade_2`` may be any application's buy of the target
  token, which is what makes the bZx-1 detection in Table IV work.
- Amount equality in SBS condition (a) uses a small relative tolerance
  (default 0.1%, the same bound as the inter-app merge rule) because
  transfer fees make exact integer equality brittle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from ..chain.types import Address
from .tagging import Tag
from .trades import Trade

__all__ = ["AttackPattern", "PatternConfig", "PatternMatch", "PatternMatcher"]


class AttackPattern(enum.Enum):
    KRP = "keep_raising_price"
    SBS = "symmetrical_buying_selling"
    MBS = "multi_round_buying_selling"


@dataclass(frozen=True, slots=True)
class PatternConfig:
    """Detection thresholds; defaults are the paper's calibrated minima."""

    #: KRP condition (c): minimum number of buy trades.
    krp_min_buys: int = 5
    #: SBS condition (c): minimum relative price rise between trade1 and trade2.
    sbs_min_volatility: float = 0.28
    #: SBS condition (a): relative tolerance on the symmetrical amounts.
    sbs_amount_tolerance: float = 0.001
    #: MBS condition (c): minimum number of profitable rounds.
    mbs_min_rounds: int = 3


@dataclass(frozen=True, slots=True)
class PatternMatch:
    """One matched pattern on one target token."""

    pattern: AttackPattern
    target_token: Address
    trades: tuple[Trade, ...]
    details: tuple[tuple[str, float | int | str], ...] = field(default_factory=tuple)

    def detail(self, key: str, default=None):
        for k, v in self.details:
            if k == key:
                return v
        return default


class PatternMatcher:
    """Matches the three patterns over a transaction's trade list."""

    def __init__(self, config: PatternConfig | None = None) -> None:
        self.config = config or PatternConfig()

    def match(self, trades: Sequence[Trade], borrower: Tag) -> list[PatternMatch]:
        """All pattern matches for the given flash-loan borrower tag."""
        if borrower is None:
            return []
        ordered = sorted(trades, key=lambda t: t.seq)
        matches: list[PatternMatch] = []
        matches.extend(self._match_krp(ordered, borrower))
        matches.extend(self._match_sbs(ordered, borrower))
        matches.extend(self._match_mbs(ordered, borrower))
        return matches

    # -- KRP ------------------------------------------------------------------

    def _match_krp(self, trades: Sequence[Trade], borrower: Tag) -> list[PatternMatch]:
        matches: list[PatternMatch] = []
        tokens = {t.token_buy for t in trades if t.buyer == borrower}
        for token in tokens:
            buys = [t for t in trades if t.buyer == borrower and t.token_buy == token]
            sells = [t for t in trades if t.buyer == borrower and t.token_sell == token]
            if not sells:
                continue
            for sell in sells:
                prior = [b for b in buys if b.seq < sell.seq]
                by_seller: dict[Tag, list[Trade]] = {}
                for buy in prior:
                    by_seller.setdefault(buy.seller, []).append(buy)
                for seller, series in by_seller.items():
                    if len(series) < self.config.krp_min_buys:
                        continue
                    # condition (b): buys at *rising* prices. The rise
                    # must hold across the whole series, not merely
                    # endpoint-to-endpoint — a mid-series dip means the
                    # price was not being kept raised (and endpoint
                    # comparison alone admits ordinary oscillating trade
                    # sequences as false positives). Plateaus are
                    # tolerated (oracle-rate buys repeat a price), but
                    # the series overall must strictly rise.
                    rates = [buy.sell_rate for buy in series]
                    rising = rates[0] < rates[-1] and all(
                        earlier <= later for earlier, later in zip(rates, rates[1:])
                    )
                    first, last = series[0], series[-1]
                    if rising:
                        matches.append(
                            PatternMatch(
                                pattern=AttackPattern.KRP,
                                target_token=token,
                                trades=(*series, sell),
                                details=(
                                    ("n_buys", len(series)),
                                    ("first_rate", first.sell_rate),
                                    ("last_rate", last.sell_rate),
                                    ("seller", str(seller)),
                                ),
                            )
                        )
                        break  # one match per (token, sell) is enough
                else:
                    continue
                break  # token matched; move on
        return matches

    # -- SBS -----------------------------------------------------------------------

    def _match_sbs(self, trades: Sequence[Trade], borrower: Tag) -> list[PatternMatch]:
        matches: list[PatternMatch] = []
        tokens = {t.token_buy for t in trades if t.buyer == borrower}
        for token in tokens:
            own_buys = [t for t in trades if t.buyer == borrower and t.token_buy == token]
            own_sells = [t for t in trades if t.buyer == borrower and t.token_sell == token]
            any_buys = [t for t in trades if t.token_buy == token]
            found = self._find_sbs_triple(token, own_buys, own_sells, any_buys)
            if found is not None:
                matches.append(found)
        return matches

    def _find_sbs_triple(
        self,
        token: Address,
        own_buys: list[Trade],
        own_sells: list[Trade],
        any_buys: list[Trade],
    ) -> PatternMatch | None:
        tol = self.config.sbs_amount_tolerance
        for t1 in own_buys:
            for t3 in own_sells:
                if t3.seq <= t1.seq:
                    continue
                if t1.token_sell != t3.token_buy:
                    continue  # different quote currency; rates not comparable
                big = max(t1.amount_buy, t3.amount_sell)
                if big == 0 or abs(t1.amount_buy - t3.amount_sell) / big > tol:
                    continue
                for t2 in any_buys:
                    if not (t1.seq < t2.seq < t3.seq) or t2 is t1:
                        continue
                    if t2.token_sell != t1.token_sell:
                        continue
                    p1, p2 = t1.sell_rate, t2.sell_rate
                    p3 = t3.amount_buy / t3.amount_sell if t3.amount_sell else float("inf")
                    if not (p1 < p3 < p2):
                        continue
                    if p1 <= 0 or (p2 - p1) / p1 < self.config.sbs_min_volatility:
                        continue
                    return PatternMatch(
                        pattern=AttackPattern.SBS,
                        target_token=token,
                        trades=(t1, t2, t3),
                        details=(
                            ("buy_rate", p1),
                            ("raise_rate", p2),
                            ("sell_rate", p3),
                            ("volatility", (p2 - p1) / p1),
                        ),
                    )
        return None

    # -- MBS ----------------------------------------------------------------------------

    def _match_mbs(self, trades: Sequence[Trade], borrower: Tag) -> list[PatternMatch]:
        matches: list[PatternMatch] = []
        pairs = {
            (t.token_buy, t.seller)
            for t in trades
            if t.buyer == borrower and t.seller is not None
        }
        for token, seller in pairs:
            relevant = [
                t
                for t in trades
                if t.buyer == borrower
                and t.seller == seller
                and (t.token_buy == token or t.token_sell == token)
            ]
            rounds = self._count_profitable_rounds(relevant, token)
            if len(rounds) >= self.config.mbs_min_rounds:
                flat = tuple(trade for pair in rounds for trade in pair)
                matches.append(
                    PatternMatch(
                        pattern=AttackPattern.MBS,
                        target_token=token,
                        trades=flat,
                        details=(
                            ("n_rounds", len(rounds)),
                            ("seller", str(seller)),
                        ),
                    )
                )
        return matches

    @staticmethod
    def _count_profitable_rounds(trades: list[Trade], token: Address) -> list[tuple[Trade, Trade]]:
        """Pair alternating buy/sell trades into profitable rounds."""
        rounds: list[tuple[Trade, Trade]] = []
        pending_buy: Trade | None = None
        for trade in trades:
            if trade.token_buy == token:
                pending_buy = trade
            elif trade.token_sell == token and pending_buy is not None:
                buy, sell = pending_buy, trade
                same_quote = buy.token_sell == sell.token_buy
                profitable = buy.sell_rate < sell.buy_rate
                if same_quote and profitable:
                    rounds.append((buy, sell))
                pending_buy = None
        return rounds
