"""Account tagging via contract-creation trees (paper Sec. V-B-1).

Most accounts in an asset-transfer stream carry no Etherscan label. The
paper observes that 52,482 of 52,500 labelled accounts follow one rule:
*accounts connected by creation relationships share the application name*.
Tagging therefore:

1. builds the creation tree containing the account (ancestors via
   creator edges, descendants via created edges);
2. collects the application names of every labelled tree member into a
   tag set;
3. resolves the account's tag by the tag set:

   - exactly one name -> that application name (Fig. 7a);
   - empty -> the tree root's address, so accounts created by the same
     (unknown) deployer still share one tag (Fig. 7b);
   - more than one name -> **untaggable** (conflicting tags, Fig. 7c — the
     rare publicly-deployable-contract case that makes LeiShen miss the
     JulSwap and PancakeHunny attacks).

The BlackHole (zero address) gets a reserved tag, and plain user accounts
with no creations and no label are tagged with their own address.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, Iterable

from ..chain.trace import TransferRecord
from ..chain.types import Address, ZERO_ADDRESS
from .labels import LabelDatabase

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["AccountTagger", "TaggedTransfer", "BLACKHOLE_TAG", "Tag"]

#: Reserved tag for the zero address (mint/burn endpoint).
BLACKHOLE_TAG = "BlackHole"

#: A resolved tag: an application name, a root-address string, the
#: BlackHole sentinel — or ``None`` for untaggable (conflicting) accounts.
Tag = str | None


@dataclass(frozen=True, slots=True)
class TaggedTransfer:
    """An account-level transfer lifted to tags:
    ``tagT = (tag_sender, tag_receiver, amount, token)``."""

    seq: int
    tag_sender: Tag
    tag_receiver: Tag
    amount: int
    token: Address
    sender: Address
    receiver: Address


_MISSING = object()


class AccountTagger:
    """Resolves account tags against one chain's creation graph.

    Cache invalidation is generation-counter based: every ``tag_of`` call
    compares one integer (``chain.version``) against the last synced
    generation instead of re-scanning the creation and label stores. When
    the chain did grow, the label database and children index are synced
    *incrementally* (only the new records are visited); the tag cache is
    dropped only when something actually changed.

    ``snapshot`` warm-starts the initial sync: a
    :meth:`label_sync_snapshot` captured from an identically built chain
    installs the children index and label database directly instead of
    re-scanning the creation and label stores. The snapshot records the
    exact chain generation it was taken at, and is silently ignored (cold
    sync instead) unless *every* counter matches this chain — a warm
    start can therefore never change a tag result, only skip recomputing
    it (``tests/leishen/test_tag_snapshot.py`` pins the equivalence).
    """

    def __init__(
        self,
        chain: "Chain",
        labels: LabelDatabase | None = None,
        snapshot: dict | None = None,
    ) -> None:
        self._chain = chain
        #: when no explicit database is supplied, labels mirror the chain's
        #: and are re-synced whenever the chain gains labels (contracts get
        #: labelled mid-scan in long-running detections).
        self._auto_labels = labels is None
        self._labels = labels if labels is not None else LabelDatabase()
        self._synced_labels = 0
        self._synced_labels_version = -1
        self._children: dict[Address, list[Address]] = {}
        self._indexed_creations = 0
        self._cache: dict[Address, Tag] = {}
        self._synced_version = -1
        #: True when a snapshot was accepted and the cold sync skipped.
        self.warm_started = False
        if snapshot is not None and self._auto_labels:
            self.warm_started = self._install_snapshot(snapshot)
        if not self.warm_started:
            self._refresh()

    @property
    def labels(self) -> LabelDatabase:
        return self._labels

    def invalidate(self) -> None:
        """Drop caches after the chain gained new contracts or labels.

        The label database is kept as-is (so explicit removals, e.g.
        stripping attacker tags, survive); the creation index and tag
        cache are rebuilt on the next lookup.
        """
        self._children.clear()
        self._indexed_creations = 0
        self._cache.clear()
        self._synced_version = -1

    # -- tag resolution -----------------------------------------------------

    def tag_of(self, address: Address) -> Tag:
        """Resolve one account's tag (cached)."""
        if address == ZERO_ADDRESS:
            return BLACKHOLE_TAG
        if self._synced_version != self._chain.version:
            self._refresh()
        tag = self._cache.get(address, _MISSING)
        if tag is not _MISSING:
            return tag
        tag = self._resolve(address)
        self._cache[address] = tag
        return tag

    def _resolve(self, address: Address) -> Tag:
        own = self._labels.app_of(address)
        tree = self._tree_members(address)
        tag_set = {self._labels.app_of(member) for member in tree}
        tag_set.discard(None)
        if own is not None:
            tag_set.add(own)
        if len(tag_set) == 1:
            return next(iter(tag_set))
        if len(tag_set) > 1:
            return None  # conflicting tags: cannot be tagged (Fig. 7c)
        return self._root_of(address)  # no tags anywhere: tag by tree root

    def _tree_members(self, address: Address) -> set[Address]:
        """Ancestors and descendants of ``address`` in its creation tree."""
        members: set[Address] = set()
        # ancestors
        current: Address | None = address
        while current is not None and current not in members:
            members.add(current)
            current = self._chain.created_by.get(current)
        # descendants (breadth-first through created edges)
        children = self._children_index()
        frontier = [address]
        while frontier:
            node = frontier.pop()
            for child in children.get(node, ()):
                if child not in members:
                    members.add(child)
                    frontier.append(child)
        return members

    def _root_of(self, address: Address) -> str:
        current = address
        seen = {current}
        while True:
            parent = self._chain.created_by.get(current)
            if parent is None or parent in seen:
                return str(current)
            seen.add(parent)
            current = parent

    def _children_index(self) -> dict[Address, list[Address]]:
        if self._synced_version != self._chain.version:
            self._refresh()
        return self._children

    # -- label-sync snapshots (cross-build warm start) ----------------------

    def label_sync_snapshot(self) -> dict:
        """JSON-safe snapshot of the synced label/creation state.

        Captured right after a shard context is built (pre-execution),
        the snapshot is a pure function of the shard's deterministic
        world build, so any later rebuild of the *same* shard — a batch
        re-run, a cluster requeue, a probation trial — can skip the
        creation-tree and label scans and install this state directly.
        """
        if self._synced_version != self._chain.version:
            self._refresh()
        return {
            "chain": self._chain.name,
            "version": self._synced_version,
            "labels_version": self._synced_labels_version,
            "indexed_creations": self._indexed_creations,
            "synced_labels": self._synced_labels,
            "children": {
                str(parent): [str(child) for child in children]
                for parent, children in self._children.items()
            },
            "labels": dict(self._labels.raw_items()),
        }

    def _install_snapshot(self, snapshot: dict) -> bool:
        """Install a :meth:`label_sync_snapshot` if it matches this chain.

        Strict equality on every generation counter: the snapshot applies
        only to a chain in byte-identically the same state it was taken
        from (the deterministic-rebuild case). Anything else — a
        different chain, an older or newer generation — is rejected and
        the caller falls back to the cold sync, so a stale or foreign
        snapshot can never corrupt tags.
        """
        chain = self._chain
        try:
            if (
                snapshot["chain"] != chain.name
                or snapshot["version"] != chain.version
                or snapshot["labels_version"] != chain.labels_version
                or snapshot["indexed_creations"] != len(chain.creations)
                or snapshot["synced_labels"] != len(chain.labels)
            ):
                return False
            children = {
                Address(parent): [Address(child) for child in childs]
                for parent, childs in snapshot["children"].items()
            }
            labels = LabelDatabase(
                {Address(a): label for a, label in snapshot["labels"].items()}
            )
        except (KeyError, TypeError, ValueError):
            return False  # malformed snapshot: cold sync instead
        self._children = children
        self._labels = labels
        self._indexed_creations = snapshot["indexed_creations"]
        self._synced_labels = snapshot["synced_labels"]
        self._synced_labels_version = snapshot["labels_version"]
        self._synced_version = snapshot["version"]
        return True

    # -- incremental cache maintenance -------------------------------------

    def _refresh(self) -> None:
        """Bring label/creation views up to the chain's current generation."""
        changed = self._sync_creations()
        if self._auto_labels:
            changed = self._sync_labels() or changed
        if changed:
            self._cache.clear()
        self._synced_version = self._chain.version

    def _sync_creations(self) -> bool:
        creations = self._chain.creations
        count = len(creations)
        if count == self._indexed_creations:
            return False
        index = self._children
        for record in creations[self._indexed_creations:]:
            index.setdefault(record.creator, []).append(record.created)
        self._indexed_creations = count
        return True

    def _sync_labels(self) -> bool:
        chain = self._chain
        version = chain.labels_version
        if self._synced_labels_version == version:
            return False
        chain_labels = chain.labels
        count = len(chain_labels)
        if (
            count > self._synced_labels
            and version - self._synced_labels_version == count - self._synced_labels
        ):
            # pure appends since the last sync (the overwhelmingly common
            # case): merge only the new tail — dicts preserve insertion
            # order, so the tail is exactly the new labels.
            for address, label in islice(chain_labels.items(), self._synced_labels, None):
                self._labels.add(address, label)
        else:
            # removals or in-place re-labels: rebuild from scratch.
            self._labels = LabelDatabase.from_chain(chain)
        self._synced_labels = count
        self._synced_labels_version = version
        return True

    # -- transfer lifting --------------------------------------------------------

    def tag_transfers(self, transfers: Iterable[TransferRecord]) -> list[TaggedTransfer]:
        """Lift account-level transfers to tagged transfers."""
        tag_of = self.tag_of
        return [
            TaggedTransfer(
                t.seq,
                tag_of(t.sender),
                tag_of(t.receiver),
                t.amount,
                t.token,
                t.sender,
                t.receiver,
            )
            for t in transfers
        ]
