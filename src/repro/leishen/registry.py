"""Pluggable attack-pattern registry.

The paper's three behaviour patterns (KRP/SBS/MBS) were originally
private methods on :class:`~repro.leishen.patterns.PatternMatcher`.
They live here now as standalone plugin classes behind a small
:class:`Pattern` protocol, so new families (sandwich/frontrunning,
infinite-mint, donation-style share inflation) plug in beside them
without touching the matcher, the windowed merger, the prescreen, or
the baselines.

Identity model
--------------

A pattern is identified everywhere by its registry ``key`` (a short
upper-case string: ``"KRP"``, ``"SBS"``, ``"MBS"``, ``"SANDWICH"``,
``"MINT"``, ``"DONATION"``). Detections, windowed observations, wire
payloads, and ground-truth labels all carry these keys; the
:class:`~repro.leishen.patterns.AttackPattern` enum is a thin
``StrEnum`` alias over the paper keys kept for ergonomic comparisons.

Configuration is namespaced per pattern key via
:class:`PatternSettings` — a frozen, hashable value carrying the
*enabled* key tuple (match order!) and per-pattern parameter
overrides. The legacy flat :class:`PatternConfig` field names
(``krp_min_buys`` …) are still accepted everywhere a settings value is
and normalise through :meth:`PatternSettings.from_value`; with the
default registry the results are byte-identical to the pre-registry
matcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Protocol, Sequence, runtime_checkable

from ..chain.types import Address
from .tagging import Tag
from .trades import Trade, TradeKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (patterns imports us lazily)
    from .patterns import PatternConfig, PatternMatch

__all__ = [
    "ALL_PATTERN_KEYS",
    "PAPER_PATTERN_KEYS",
    "REGISTRY_VERSION",
    "Pattern",
    "PatternPlugin",
    "PatternRegistry",
    "PatternSettings",
    "default_registry",
    "enabled_pattern_keys",
]

#: Bumped whenever a plugin's matching semantics change; part of the
#: run identity whenever a :class:`PatternSettings` is in play.
REGISTRY_VERSION = 1

#: The paper's three patterns, in the match order the pre-registry
#: matcher used (KRP, then SBS, then MBS) — the default enabled set.
PAPER_PATTERN_KEYS: tuple[str, ...] = ("KRP", "SBS", "MBS")

#: Every pattern the default registry ships.
ALL_PATTERN_KEYS: tuple[str, ...] = PAPER_PATTERN_KEYS + ("SANDWICH", "MINT", "DONATION")

#: Legacy flat ``PatternConfig`` field -> (pattern key, parameter name).
LEGACY_FIELD_MAP: dict[str, tuple[str, str]] = {
    "krp_min_buys": ("KRP", "min_buys"),
    "sbs_min_volatility": ("SBS", "min_volatility"),
    "sbs_amount_tolerance": ("SBS", "amount_tolerance"),
    "mbs_min_rounds": ("MBS", "min_rounds"),
}


@dataclass(frozen=True, slots=True)
class PatternSettings:
    """Namespaced pattern configuration: enabled keys + per-key params.

    Frozen and built from nested tuples so it hashes and equality-
    compares structurally — it participates in ``config_digest`` (the
    run identity), so two runs with different enabled sets or
    thresholds are different runs.
    """

    #: Pattern keys to run, in match order.
    enabled: tuple[str, ...] = PAPER_PATTERN_KEYS
    #: ``((pattern_key, ((param, value), ...)), ...)`` sorted by key.
    params: tuple[tuple[str, tuple[tuple[str, float | int], ...]], ...] = ()
    #: Registry semantics version the settings were authored against.
    registry_version: int = REGISTRY_VERSION

    @classmethod
    def make(
        cls,
        enabled: Sequence[str] | None = None,
        params: Mapping[str, Mapping[str, float | int]] | None = None,
        registry_version: int = REGISTRY_VERSION,
    ) -> "PatternSettings":
        """Build settings from friendly dict/list inputs."""
        keys = tuple(enabled) if enabled is not None else PAPER_PATTERN_KEYS
        packed: tuple[tuple[str, tuple[tuple[str, float | int], ...]], ...] = ()
        if params:
            packed = tuple(
                (key, tuple(sorted(values.items())))
                for key, values in sorted(params.items())
                if values
            )
        return cls(enabled=keys, params=packed, registry_version=registry_version)

    @classmethod
    def from_value(
        cls, value: "PatternSettings | PatternConfig | None"
    ) -> "PatternSettings":
        """Normalise any accepted pattern-config value.

        ``None`` means the defaults; a legacy flat
        :class:`~repro.leishen.patterns.PatternConfig` maps through
        :data:`LEGACY_FIELD_MAP`; a :class:`PatternSettings` passes
        through unchanged.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        from .patterns import PatternConfig

        if isinstance(value, PatternConfig):
            params: dict[str, dict[str, float | int]] = {}
            for legacy, (key, name) in LEGACY_FIELD_MAP.items():
                params.setdefault(key, {})[name] = getattr(value, legacy)
            return cls.make(enabled=PAPER_PATTERN_KEYS, params=params)
        raise TypeError(
            f"pattern config must be PatternSettings, PatternConfig or None, "
            f"got {type(value).__name__}"
        )

    def params_for(self, key: str) -> dict[str, float | int]:
        for pattern_key, values in self.params:
            if pattern_key == key:
                return dict(values)
        return {}

    def param(self, key: str, name: str, default: float | int) -> float | int:
        return self.params_for(key).get(name, default)

    def to_legacy_config(self) -> "PatternConfig":
        """Project onto the flat paper config (best effort; paper keys only)."""
        from .patterns import PatternConfig

        base = PatternConfig()
        kwargs = {
            legacy: self.param(key, name, getattr(base, legacy))
            for legacy, (key, name) in LEGACY_FIELD_MAP.items()
        }
        return PatternConfig(**kwargs)


@runtime_checkable
class Pattern(Protocol):
    """One pluggable behaviour pattern.

    ``match`` receives the transaction's trades *already sorted by
    seq* plus the flash-loan borrower tag, and returns zero or more
    :class:`~repro.leishen.patterns.PatternMatch` whose ``pattern``
    field is this plugin's ``key``.
    """

    key: str
    defaults: Mapping[str, float | int]

    def match(
        self,
        trades: Sequence[Trade],
        borrower: Tag,
        settings: PatternSettings,
    ) -> "list[PatternMatch]":
        ...


class PatternPlugin:
    """Base class wiring parameter lookup for concrete plugins."""

    key: str = ""
    defaults: Mapping[str, float | int] = {}

    def config(self, settings: PatternSettings) -> dict[str, float | int]:
        return {**self.defaults, **settings.params_for(self.key)}


def _match(pattern: str, token: Address, trades, details) -> "PatternMatch":
    from .patterns import PatternMatch

    return PatternMatch(
        pattern=pattern, target_token=token, trades=tuple(trades), details=tuple(details)
    )


# -- KRP — Keep Raising Price -------------------------------------------------


class KeepRaisingPrice(PatternPlugin):
    """>= ``min_buys`` buys from one seller at rising prices, then a sell."""

    key = "KRP"
    defaults = {"min_buys": 5}

    def match(self, trades, borrower, settings):
        cfg = self.config(settings)
        min_buys = cfg["min_buys"]
        matches: "list[PatternMatch]" = []
        tokens = {t.token_buy for t in trades if t.buyer == borrower}
        for token in tokens:
            buys = [t for t in trades if t.buyer == borrower and t.token_buy == token]
            sells = [t for t in trades if t.buyer == borrower and t.token_sell == token]
            if not sells:
                continue
            for sell in sells:
                prior = [b for b in buys if b.seq < sell.seq]
                by_seller: dict[Tag, list[Trade]] = {}
                for buy in prior:
                    by_seller.setdefault(buy.seller, []).append(buy)
                for seller, series in by_seller.items():
                    if len(series) < min_buys:
                        continue
                    # condition (b): buys at *rising* prices. The rise
                    # must hold across the whole series, not merely
                    # endpoint-to-endpoint — a mid-series dip means the
                    # price was not being kept raised (and endpoint
                    # comparison alone admits ordinary oscillating trade
                    # sequences as false positives). Plateaus are
                    # tolerated (oracle-rate buys repeat a price), but
                    # the series overall must strictly rise.
                    rates = [buy.sell_rate for buy in series]
                    rising = rates[0] < rates[-1] and all(
                        earlier <= later for earlier, later in zip(rates, rates[1:])
                    )
                    first, last = series[0], series[-1]
                    if rising:
                        matches.append(
                            _match(
                                self.key,
                                token,
                                (*series, sell),
                                (
                                    ("n_buys", len(series)),
                                    ("first_rate", first.sell_rate),
                                    ("last_rate", last.sell_rate),
                                    ("seller", str(seller)),
                                ),
                            )
                        )
                        break  # one match per (token, sell) is enough
                else:
                    continue
                break  # token matched; move on
        return matches


# -- SBS — Symmetrical Buying and Selling -------------------------------------


class SymmetricBuySell(PatternPlugin):
    """Buy, let any app raise the price >= ``min_volatility``, sell the same amount."""

    key = "SBS"
    defaults = {"min_volatility": 0.28, "amount_tolerance": 0.001}

    def match(self, trades, borrower, settings):
        cfg = self.config(settings)
        matches: "list[PatternMatch]" = []
        tokens = {t.token_buy for t in trades if t.buyer == borrower}
        for token in tokens:
            own_buys = [t for t in trades if t.buyer == borrower and t.token_buy == token]
            own_sells = [t for t in trades if t.buyer == borrower and t.token_sell == token]
            any_buys = [t for t in trades if t.token_buy == token]
            found = self._find_triple(
                token, own_buys, own_sells, any_buys,
                tol=cfg["amount_tolerance"], min_volatility=cfg["min_volatility"],
            )
            if found is not None:
                matches.append(found)
        return matches

    def _find_triple(self, token, own_buys, own_sells, any_buys, *, tol, min_volatility):
        for t1 in own_buys:
            for t3 in own_sells:
                if t3.seq <= t1.seq:
                    continue
                if t1.token_sell != t3.token_buy:
                    continue  # different quote currency; rates not comparable
                big = max(t1.amount_buy, t3.amount_sell)
                if big == 0 or abs(t1.amount_buy - t3.amount_sell) / big > tol:
                    continue
                for t2 in any_buys:
                    if not (t1.seq < t2.seq < t3.seq) or t2 is t1:
                        continue
                    if t2.token_sell != t1.token_sell:
                        continue
                    p1, p2 = t1.sell_rate, t2.sell_rate
                    p3 = t3.amount_buy / t3.amount_sell if t3.amount_sell else float("inf")
                    if not (p1 < p3 < p2):
                        continue
                    if p1 <= 0 or (p2 - p1) / p1 < min_volatility:
                        continue
                    return _match(
                        self.key,
                        token,
                        (t1, t2, t3),
                        (
                            ("buy_rate", p1),
                            ("raise_rate", p2),
                            ("sell_rate", p3),
                            ("volatility", (p2 - p1) / p1),
                        ),
                    )
        return None


# -- MBS — Multi-Round Buying and Selling -------------------------------------


class MultiRoundBuySell(PatternPlugin):
    """>= ``min_rounds`` profitable buy-then-sell rounds against one seller."""

    key = "MBS"
    defaults = {"min_rounds": 3}

    def match(self, trades, borrower, settings):
        cfg = self.config(settings)
        matches: "list[PatternMatch]" = []
        pairs = {
            (t.token_buy, t.seller)
            for t in trades
            if t.buyer == borrower and t.seller is not None
        }
        for token, seller in pairs:
            relevant = [
                t
                for t in trades
                if t.buyer == borrower
                and t.seller == seller
                and (t.token_buy == token or t.token_sell == token)
            ]
            rounds = self._count_profitable_rounds(relevant, token)
            if len(rounds) >= cfg["min_rounds"]:
                flat = tuple(trade for pair in rounds for trade in pair)
                matches.append(
                    _match(
                        self.key,
                        token,
                        flat,
                        (
                            ("n_rounds", len(rounds)),
                            ("seller", str(seller)),
                        ),
                    )
                )
        return matches

    @staticmethod
    def _count_profitable_rounds(
        trades: list[Trade], token: Address
    ) -> list[tuple[Trade, Trade]]:
        """Pair alternating buy/sell trades into profitable rounds."""
        rounds: list[tuple[Trade, Trade]] = []
        pending_buy: Trade | None = None
        for trade in trades:
            if trade.token_buy == token:
                pending_buy = trade
            elif trade.token_sell == token and pending_buy is not None:
                buy, sell = pending_buy, trade
                same_quote = buy.token_sell == sell.token_buy
                profitable = buy.sell_rate < sell.buy_rate
                if same_quote and profitable:
                    rounds.append((buy, sell))
                pending_buy = None
        return rounds


# -- SANDWICH — frontrun / backrun around a victim buy ------------------------


class SandwichFrontrun(PatternPlugin):
    """Borrower buys, a *different* account buys at or above the borrower's
    price on the same venue, and the borrower exits symmetrically at a
    profit — the classic frontrun/backrun sandwich.

    Distinguished from SBS by the victim trade: SBS requires the
    middle trade to raise the price *above* the borrower's exit
    (``p1 < p3 < p2``); a sandwich exits *after* the victim pushed the
    price, so the exit rate exceeds the victim's (``p3 >= p2``), and the
    middle trade must come from a non-borrower account.
    """

    key = "SANDWICH"
    defaults = {"amount_tolerance": 0.01}

    def match(self, trades, borrower, settings):
        cfg = self.config(settings)
        tol = cfg["amount_tolerance"]
        matches: "list[PatternMatch]" = []
        tokens = {t.token_buy for t in trades if t.buyer == borrower}
        for token in tokens:
            own_buys = [t for t in trades if t.buyer == borrower and t.token_buy == token]
            own_sells = [t for t in trades if t.buyer == borrower and t.token_sell == token]
            victim_buys = [
                t for t in trades if t.token_buy == token and t.buyer != borrower
            ]
            found = self._find_sandwich(token, own_buys, own_sells, victim_buys, tol)
            if found is not None:
                matches.append(found)
        return matches

    def _find_sandwich(self, token, own_buys, own_sells, victim_buys, tol):
        for t1 in own_buys:
            for t3 in own_sells:
                if t3.seq <= t1.seq:
                    continue
                if t1.token_sell != t3.token_buy:
                    continue  # different quote; rates not comparable
                if t1.seller != t3.seller:
                    continue  # frontrun and backrun hit the same venue
                big = max(t1.amount_buy, t3.amount_sell)
                if big == 0 or abs(t1.amount_buy - t3.amount_sell) / big > tol:
                    continue
                if t3.buy_rate <= t1.sell_rate:
                    continue  # exit not profitable; no sandwich payoff
                for t2 in victim_buys:
                    if not (t1.seq < t2.seq < t3.seq):
                        continue
                    if t2.seller != t1.seller or t2.token_sell != t1.token_sell:
                        continue
                    if t2.sell_rate < t1.sell_rate:
                        continue  # victim paid less than the frontrun; no squeeze
                    return _match(
                        self.key,
                        token,
                        (t1, t2, t3),
                        (
                            ("front_rate", t1.sell_rate),
                            ("victim_rate", t2.sell_rate),
                            ("exit_rate", t3.buy_rate),
                        ),
                    )
        return None


# -- MINT — infinite mint / unbacked supply dump ------------------------------


class InfiniteMint(PatternPlugin):
    """Borrower dumps a token it never (meaningfully) acquired in-trade.

    An unprotected-mint exploit conjures supply out of thin air, so the
    attacker's trade flow shows >= ``min_dumps`` sells of the token
    with bought-back volume at most ``max_buyback`` of the sold volume.
    Profitable flows on real attacks (KRP/SBS quote legs) buy back at
    least what they sold, so they stay well clear of the ratio.
    """

    key = "MINT"
    defaults = {"min_dumps": 2, "max_buyback": 0.5}

    def match(self, trades, borrower, settings):
        cfg = self.config(settings)
        min_dumps = cfg["min_dumps"]
        max_buyback = cfg["max_buyback"]
        matches: "list[PatternMatch]" = []
        tokens = {t.token_sell for t in trades if t.buyer == borrower}
        for token in tokens:
            sells = [t for t in trades if t.buyer == borrower and t.token_sell == token]
            if len(sells) < min_dumps:
                continue
            buys = [t for t in trades if t.buyer == borrower and t.token_buy == token]
            total_sold = sum(t.amount_sell for t in sells)
            total_bought = sum(t.amount_buy for t in buys)
            if total_sold <= 0 or total_bought > total_sold * max_buyback:
                continue
            matches.append(
                _match(
                    self.key,
                    token,
                    tuple(sells),
                    (
                        ("n_dumps", len(sells)),
                        ("buyback_ratio", total_bought / total_sold),
                    ),
                )
            )
        return matches


# -- DONATION — single-round share-price inflation ----------------------------


class DonationInflation(PatternPlugin):
    """One mint/remove round of a share token at an outsized gain.

    The single-round analogue of MBS: manipulate a vault's pricing
    source, deposit while shares are cheap, withdraw the *same* share
    amount for >= ``min_gain`` more underlying than deposited. MBS
    needs three such rounds; donation-style attacks take the whole
    profit in one, which the round-count threshold never sees. Honest
    LP cycles and yield strategies round-trip at near-zero gain.
    """

    key = "DONATION"
    defaults = {"amount_tolerance": 0.001, "min_gain": 0.25}

    def match(self, trades, borrower, settings):
        cfg = self.config(settings)
        tol = cfg["amount_tolerance"]
        min_gain = cfg["min_gain"]
        matches: "list[PatternMatch]" = []
        deposits = [
            t
            for t in trades
            if t.buyer == borrower and t.kind is TradeKind.MINT_LIQUIDITY
        ]
        removals = [
            t
            for t in trades
            if t.buyer == borrower and t.kind is TradeKind.REMOVE_LIQUIDITY
        ]
        seen: set[Address] = set()
        for t1 in deposits:
            if t1.token_buy in seen:
                continue
            for t2 in removals:
                if t2.seq <= t1.seq:
                    continue
                if t2.token_sell != t1.token_buy or t2.token_buy != t1.token_sell:
                    continue  # not the same share/underlying pair
                if t1.seller != t2.seller:
                    continue
                big = max(t1.amount_buy, t2.amount_sell)
                if big == 0 or abs(t1.amount_buy - t2.amount_sell) / big > tol:
                    continue  # share amounts must round-trip
                if t1.amount_sell <= 0:
                    continue
                gain = (t2.amount_buy - t1.amount_sell) / t1.amount_sell
                if gain < min_gain:
                    continue
                seen.add(t1.token_buy)
                matches.append(
                    _match(
                        self.key,
                        t1.token_buy,
                        (t1, t2),
                        (
                            ("gain", gain),
                            ("deposit", float(t1.amount_sell)),
                        ),
                    )
                )
                break
        return matches


# -- registry -----------------------------------------------------------------


class PatternRegistry:
    """Ordered, keyed collection of pattern plugins."""

    def __init__(self, patterns: Sequence[Pattern], version: int = REGISTRY_VERSION):
        self.version = version
        self._patterns: dict[str, Pattern] = {}
        for pattern in patterns:
            if pattern.key in self._patterns:
                raise ValueError(f"duplicate pattern key {pattern.key!r}")
            self._patterns[pattern.key] = pattern

    def keys(self) -> tuple[str, ...]:
        return tuple(self._patterns)

    def get(self, key: str) -> Pattern:
        try:
            return self._patterns[key]
        except KeyError:
            raise KeyError(
                f"unknown pattern key {key!r}; registered: {sorted(self._patterns)}"
            ) from None

    def select(self, enabled: Sequence[str]) -> tuple[Pattern, ...]:
        """Plugins for the enabled keys, *in enabled order* (= match order)."""
        return tuple(self.get(key) for key in enabled)


_DEFAULT_REGISTRY = PatternRegistry(
    [
        KeepRaisingPrice(),
        SymmetricBuySell(),
        MultiRoundBuySell(),
        SandwichFrontrun(),
        InfiniteMint(),
        DonationInflation(),
    ]
)


def default_registry() -> PatternRegistry:
    return _DEFAULT_REGISTRY


def enabled_pattern_keys(
    config: "PatternSettings | PatternConfig | None",
) -> tuple[str, ...]:
    """The enabled pattern keys for any accepted pattern-config value."""
    return PatternSettings.from_value(config).enabled
