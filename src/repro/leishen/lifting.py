"""Vectorized transfer lifting: numpy kernels behind simplify/identify.

The per-transaction object pipeline (:class:`~repro.leishen.simplify
.TransferSimplifier`, :class:`~repro.leishen.trades.TradeIdentifier`)
spends its time evaluating the same small predicates row by row in
Python. This module evaluates those predicates over *arrays* of
``(from, to, token, amount)`` rows instead — one batch per transaction
(or many transactions concatenated, with boundary masks) — in the style
of the Aegis synthetic-benchmark exemplar, then materializes objects
only at the few positions the predicates selected.

Two invariants make the kernels drop-in:

- **Exact semantics.** Tags and tokens are interned to integer codes
  (``None`` -> -1) so every equality the object path tests becomes an
  integer comparison; *amount* comparisons — the merge tolerance and the
  fee-burn ratio, whose operands overflow int64 (token amounts reach
  10^26) — are never vectorized: they run on the original Python ints
  with the original float expressions, only at candidate positions the
  integer masks already selected. Greedy consumption order (3-window
  before 2-window, first-match-wins shape priority) is preserved by
  running the consume loop in Python over precomputed masks.
- **Auto dispatch.** Arrays win only past a size threshold (numpy call
  overhead dominates a 13-row trace); below ``VECTOR_MIN_ROWS`` the
  wrappers keep the tuned object path. ``tests/leishen/test_lifting.py``
  pins byte-equality of both paths either way.

numpy is an optional accelerator: when missing, ``HAVE_NUMPY`` is False
and the wrappers never dispatch here.
"""

from __future__ import annotations

from typing import Sequence

try:  # pragma: no cover - exercised implicitly by dispatch tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "VECTOR_MIN_ROWS",
    "TagInterner",
    "lift_codes",
    "merge_candidates_exist",
    "fee_burn_candidates",
    "trade_shape_masks",
]

HAVE_NUMPY = _np is not None

#: minimum row count before the vector path beats the object path
#: (numpy's per-call overhead amortizes at roughly this many rows).
VECTOR_MIN_ROWS = 32

#: interner code reserved for ``None`` (untaggable) senders/receivers.
NONE_CODE = -1


class TagInterner:
    """Interns hashable values (tags, token addresses) to dense ints.

    ``None`` always maps to :data:`NONE_CODE`; everything else gets the
    next dense code, so equality of codes is exactly equality of values
    and a fresh interner per batch keeps code tables tiny.
    """

    __slots__ = ("codes",)

    def __init__(self) -> None:
        self.codes: dict = {}

    def code(self, value) -> int:
        if value is None:
            return NONE_CODE
        code = self.codes.get(value)
        if code is None:
            code = len(self.codes)
            self.codes[value] = code
        return code

    def code_of(self, value, default: int = -2) -> int:
        """The existing code for ``value`` without interning it — used to
        look up sentinels (the BlackHole tag) that may be absent from the
        batch; ``default`` must never collide with a real code."""
        if value is None:
            return NONE_CODE
        return self.codes.get(value, default)


def lift_codes(rows: Sequence, interner: TagInterner):
    """Intern one batch of ``(sender, receiver, token)`` triples into
    three int64 code arrays. Callers extract the triples from their row
    type (``TaggedTransfer`` tag fields, ``AppTransfer`` fields) so one
    kernel serves both stages."""
    code = interner.code
    n = len(rows)
    senders = _np.empty(n, dtype=_np.int64)
    receivers = _np.empty(n, dtype=_np.int64)
    tokens = _np.empty(n, dtype=_np.int64)
    for i, (sender, receiver, token) in enumerate(rows):
        senders[i] = code(sender)
        receivers[i] = code(receiver)
        tokens[i] = code(token)
    return senders, receivers, tokens


# ---------------------------------------------------------------------------
# simplify: rule masks + merge candidate pre-check
# ---------------------------------------------------------------------------


def keep_mask(
    senders,
    receivers,
    *,
    remove_intra: bool,
    weth_code: int,
):
    """Survivor mask for simplification rules 1 and 2 over code arrays.

    Rule 1 drops rows whose sender is taggable and equals the receiver;
    rule 2 drops rows touching the WETH tag (``weth_code`` is -2-ish
    when the batch never saw the tag, matching nothing).
    """
    keep = _np.ones(len(senders), dtype=bool)
    if remove_intra:
        keep &= ~((senders != NONE_CODE) & (senders == receivers))
    if weth_code is not None:
        keep &= (senders != weth_code) & (receivers != weth_code)
    return keep


def merge_candidates_exist(senders, receivers, tokens, boundaries=None) -> bool:
    """Whether any *adjacent* pair could start an inter-app merge.

    Evaluates every integer-code condition of
    ``TransferSimplifier._mergeable`` (same token, intermediary hop
    through a taggable receiver) across all adjacent pairs at once; the
    amount-tolerance condition is deliberately ignored, making this a
    necessary-condition pre-check: ``False`` proves the merge fixpoint
    is the identity and can be skipped wholesale — the common case.
    ``boundaries`` (optional bool array, True at each batch's last row)
    invalidates pairs straddling two transactions.
    """
    if len(senders) < 2:
        return False
    first_r = receivers[:-1]
    cand = (
        (tokens[:-1] == tokens[1:])
        & (first_r != NONE_CODE)
        & (first_r == senders[1:])
        & (first_r != senders[:-1])
        & (first_r != receivers[1:])
    )
    if boundaries is not None:
        cand &= ~boundaries[:-1]
    return bool(cand.any())


# ---------------------------------------------------------------------------
# trades: fee-burn candidates + greedy shape masks
# ---------------------------------------------------------------------------


def fee_burn_candidates(senders, receivers, tokens, blackhole_code: int):
    """Indices whose integer conditions allow a fee burn (amount check
    stays in Python): receiver is the BlackHole, same token as the
    previous row, and the sender touches the previous row's endpoints."""
    n = len(receivers)
    if n < 2:
        return ()
    cand = _np.zeros(n, dtype=bool)
    cand[1:] = (
        (receivers[1:] == blackhole_code)
        & (tokens[1:] == tokens[:-1])
        & ((senders[1:] == senders[:-1]) | (senders[1:] == receivers[:-1]))
    )
    return _np.nonzero(cand)[0]


#: shape ids for the greedy scan (priority order inside each window size).
SWAP3, MINT3, REMOVE3 = 1, 2, 3
SWAP2, MINT2_A, MINT2_B, REMOVE2_A, REMOVE2_B = 1, 2, 3, 4, 5


def trade_shape_masks(senders, receivers, tokens, blackhole_code: int):
    """Precompute Table III shape codes for every window start.

    Returns ``(shape3, shape2)`` int8 arrays of length ``n``: the shape
    matched by the 3-window/2-window starting at each index (0 = none),
    encoding exactly the first-match priority of ``_match3``/``_match2``.
    The greedy consume loop then only reads two precomputed codes per
    step.
    """
    n = len(senders)
    shape3 = _np.zeros(n, dtype=_np.int8)
    shape2 = _np.zeros(n, dtype=_np.int8)
    bh = blackhole_code
    if n >= 2:
        s1, r1, t1 = senders[:-1], receivers[:-1], tokens[:-1]
        s2, r2, t2 = senders[1:], receivers[1:], tokens[1:]
        nn2 = (s1 != NONE_CODE) & (r1 != NONE_CODE) & (s2 != NONE_CODE) & (r2 != NONE_CODE)
        base2 = nn2 & (t1 != t2)
        swap2 = base2 & (s1 == r2) & (r1 == s2) & (s1 != bh) & (r1 != bh)
        mint2a = base2 & (s2 == bh) & (r2 == s1) & (r1 != bh) & (s1 != bh)
        mint2b = base2 & (s1 == bh) & (r1 == s2) & (r2 != bh) & (s2 != bh)
        rem2a = base2 & (r1 == bh) & (r2 == s1) & (s1 != bh) & (s2 != bh)
        rem2b = base2 & (r2 == bh) & (r1 == s2) & (s2 != bh) & (s1 != bh)
        codes2 = _np.zeros(n - 1, dtype=_np.int8)
        # reverse priority: earlier shapes overwrite later ones.
        codes2[rem2b] = REMOVE2_B
        codes2[rem2a] = REMOVE2_A
        codes2[mint2b] = MINT2_B
        codes2[mint2a] = MINT2_A
        codes2[swap2] = SWAP2
        shape2[: n - 1] = codes2
    if n >= 3:
        s1, r1, t1 = senders[:-2], receivers[:-2], tokens[:-2]
        s2, r2, t2 = senders[1:-1], receivers[1:-1], tokens[1:-1]
        s3, r3, t3 = senders[2:], receivers[2:], tokens[2:]
        nn3 = (
            (s1 != NONE_CODE) & (r1 != NONE_CODE)
            & (s2 != NONE_CODE) & (r2 != NONE_CODE)
            & (s3 != NONE_CODE) & (r3 != NONE_CODE)
        )
        base3 = nn3 & (t1 != t2) & (t1 != t3) & (t2 != t3)
        swap3 = (
            base3
            & (s1 == r2) & (r2 == r3)
            & (r1 == s2) & (s2 == s3)
            & (s1 != bh) & (r1 != bh)
        )
        mint3 = (
            base3
            & (s1 == s2) & (s1 == r3)
            & (r1 == r2)
            & (s3 == bh) & (s1 != bh) & (r1 != bh)
        )
        rem3 = (
            base3
            & (r1 == bh)
            & (r2 == s1) & (r3 == s1)
            & (s2 == s3)
            & (s1 != bh) & (s2 != bh)
        )
        codes3 = _np.zeros(n - 2, dtype=_np.int8)
        codes3[rem3] = REMOVE3
        codes3[mint3] = MINT3
        codes3[swap3] = SWAP3
        shape3[: n - 2] = codes3
    return shape3, shape2
