"""Flash loan transaction identification (paper Sec. V-A, Table II).

A transaction is a *flash loan transaction* when it matches a provider
fingerprint:

==========  =====================================  =======================
Provider    Functions                              Events
==========  =====================================  =======================
Uniswap     ``swap`` then ``uniswapV2Call``        —
AAVE        ``flashLoan``                          ``FlashLoan``
dYdX        ``Operate``/``Withdraw``/              ``LogOperation``/
            ``callFunction``/``Deposit``           ``LogWithdraw``/
                                                   ``LogCall``/``LogDeposit``
==========  =====================================  =======================

Identification also recovers the *flash loan borrower* — the contract the
provider calls back into — which downstream pattern matching anchors on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.trace import TransactionTrace
from ..chain.types import Address

__all__ = ["FlashLoan", "FlashLoanIdentifier", "PROVIDERS"]

PROVIDERS = ("Uniswap", "AAVE", "dYdX")


@dataclass(frozen=True, slots=True)
class FlashLoan:
    """One identified flash loan inside a transaction."""

    provider: str
    provider_account: Address
    borrower: Address
    token: Address
    amount: int


class FlashLoanIdentifier:
    """Stateless matcher for the three provider fingerprints."""

    def identify(self, trace: TransactionTrace) -> list[FlashLoan]:
        """Return every flash loan taken in ``trace`` (possibly several:
        seven of the studied attacks borrow from more than one provider)."""
        loans: list[FlashLoan] = []
        loans.extend(self._identify_uniswap(trace))
        loans.extend(self._identify_aave(trace))
        loans.extend(self._identify_dydx(trace))
        return loans

    def is_flash_loan_transaction(self, trace: TransactionTrace, prescreen=None) -> bool:
        """Whether any provider fingerprint matches ``trace``.

        With a :class:`~repro.leishen.prescreen.PreScreen`, the negative
        verdict is decided on raw trace call/log markers (and confirmed
        against the provider/pool address table) without running full
        identification — the scan engine's hot-path skip. The screen
        checks *necessary* conditions of the fingerprints, so
        ``prescreen.admits(trace) == False`` implies ``identify(trace)``
        is empty and the two paths always agree.
        """
        if prescreen is not None and not prescreen.admits(trace):
            return False
        return bool(self.identify(trace))

    # -- Uniswap: swap followed by uniswapV2Call ---------------------------

    def _identify_uniswap(self, trace: TransactionTrace) -> list[FlashLoan]:
        loans: list[FlashLoan] = []
        open_swaps: list = []
        for call in trace.calls:
            if call.function == "swap":
                open_swaps.append(call)
            elif call.function == "uniswapV2Call":
                matching = [c for c in open_swaps if c.callee == call.caller]
                if not matching:
                    continue
                swap_call = matching[-1]
                token, amount = self._loaned_asset(trace, swap_call.callee, call.callee, call.seq)
                loans.append(
                    FlashLoan(
                        provider="Uniswap",
                        provider_account=swap_call.callee,
                        borrower=call.callee,
                        token=token,
                        amount=amount,
                    )
                )
        return loans

    # -- AAVE: flashLoan function + FlashLoan event ---------------------------

    def _identify_aave(self, trace: TransactionTrace) -> list[FlashLoan]:
        if "flashLoan" not in trace.called_functions():
            return []
        loans: list[FlashLoan] = []
        for log in trace.logs:
            if log.event == "FlashLoan":
                loans.append(
                    FlashLoan(
                        provider="AAVE",
                        provider_account=log.emitter,
                        borrower=log.param("target"),
                        token=log.param("reserve"),
                        amount=log.param("amount", 0),
                    )
                )
        return loans

    # -- dYdX: the Operate/Withdraw/callFunction/Deposit quadruple --------------

    def _identify_dydx(self, trace: TransactionTrace) -> list[FlashLoan]:
        events = trace.emitted_events()
        required = {"LogOperation", "LogWithdraw", "LogCall", "LogDeposit"}
        if not required <= events:
            return []
        loans: list[FlashLoan] = []
        for log in trace.logs:
            if log.event == "LogWithdraw":
                loans.append(
                    FlashLoan(
                        provider="dYdX",
                        provider_account=log.emitter,
                        borrower=log.param("account"),
                        token=log.param("market"),
                        amount=log.param("amount", 0),
                    )
                )
        return loans

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _loaned_asset(
        trace: TransactionTrace, pair: Address, borrower: Address, before_seq: int
    ) -> tuple[Address, int]:
        """The optimistic transfer a pair sent the borrower before calling back."""
        for transfer in reversed(trace.transfers):
            if (
                transfer.seq < before_seq
                and transfer.sender == pair
                and transfer.receiver == borrower
            ):
                return transfer.token, transfer.amount
        # Flash swap where funds were sent elsewhere: fall back to unknown.
        return Address("0x" + "0" * 40), 0
