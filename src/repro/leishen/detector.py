"""The LeiShen detection pipeline (paper Fig. 5).

``LeiShen.analyze(trace)`` runs the full three-step pipeline on one
transaction:

1. *transfer history extraction* — the substrate already records ordered
   account-level transfers (Sec. V-A);
2. *application-level asset transfer construction* — account tagging plus
   the three simplification rules (Sec. V-B);
3. *attack pattern identification* — trade action identification and
   KRP/SBS/MBS matching anchored on the flash-loan borrower (Sec. V-C).

Transactions that are not flash loan transactions yield ``None``; flash
loan transactions yield an :class:`~repro.leishen.report.AttackReport`
whose ``is_attack`` reflects whether any pattern matched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..chain.trace import TransactionTrace
from ..chain.types import Address, ZERO_ADDRESS
from .identify import FlashLoanIdentifier
from .labels import LabelDatabase
from .patterns import PatternConfig, PatternMatcher
from .report import AttackReport
from .simplify import SimplifierConfig, TransferSimplifier
from .tagging import AccountTagger
from .trades import TradeIdentifier

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["LeiShen", "LeiShenConfig"]


@dataclass(slots=True)
class LeiShenConfig:
    """End-to-end detector configuration."""

    simplifier: SimplifierConfig = field(default_factory=SimplifierConfig)
    patterns: PatternConfig = field(default_factory=PatternConfig)
    #: ablation switch: skip tagging/simplification and run patterns on
    #: raw account-level transfers (DESIGN.md ablation 1).
    use_app_level_transfers: bool = True


class LeiShen:
    """The detector. One instance per chain; reusable across transactions."""

    def __init__(
        self,
        chain: "Chain",
        config: LeiShenConfig | None = None,
        labels: LabelDatabase | None = None,
    ) -> None:
        self.chain = chain
        self.config = config or LeiShenConfig()
        self.identifier = FlashLoanIdentifier()
        self.tagger = AccountTagger(chain, labels)
        self.simplifier = TransferSimplifier(self.config.simplifier)
        self.trade_identifier = TradeIdentifier()
        self.matcher = PatternMatcher(self.config.patterns)

    # ------------------------------------------------------------------

    def analyze(self, trace: TransactionTrace) -> AttackReport | None:
        """Run the pipeline; ``None`` when ``trace`` is not a flash loan tx."""
        if not trace.success:
            return None
        flash_loans = self.identifier.identify(trace)
        if not flash_loans:
            return None
        borrower = flash_loans[0].borrower
        tagged = self.tagger.tag_transfers(trace.transfers)
        if self.config.use_app_level_transfers:
            app_transfers = self.simplifier.simplify(tagged)
        else:
            # Ablation: account-level "tags" are the raw addresses.
            from .simplify import AppTransfer

            app_transfers = [
                AppTransfer(
                    seq=t.seq,
                    sender=str(t.sender),
                    receiver=str(t.receiver) if t.receiver != ZERO_ADDRESS else "BlackHole",
                    amount=t.amount,
                    token=t.token,
                )
                for t in trace.transfers
            ]
        trades = self.trade_identifier.identify(app_transfers)
        borrower_tag = (
            self.tagger.tag_of(borrower)
            if self.config.use_app_level_transfers
            else str(borrower)
        )
        matches = self.matcher.match(trades, borrower_tag)
        report = AttackReport(
            tx_hash=trace.tx_hash,
            flash_loans=flash_loans,
            borrower=borrower,
            borrower_tag=borrower_tag,
            trades=trades,
            matches=matches,
            profit_flows=trace.net_flows(borrower),
        )
        return report

    def detect(self, trace: TransactionTrace) -> bool:
        """Convenience: is this transaction a detected flpAttack?"""
        report = self.analyze(trace)
        return report is not None and report.is_attack

    # -- evaluation hygiene ------------------------------------------------

    def remove_attacker_labels(self, addresses: list[Address]) -> None:
        """Strip labels added to attacker accounts after publication
        (paper Sec. VI-B removes attacker tags before detection)."""
        self.tagger.labels.remove_all(addresses)
        self.tagger.invalidate()
