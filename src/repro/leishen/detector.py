"""The LeiShen detection pipeline (paper Fig. 5).

``LeiShen.analyze(trace)`` runs the full three-step pipeline on one
transaction:

1. *transfer history extraction* — the substrate already records ordered
   account-level transfers (Sec. V-A);
2. *application-level asset transfer construction* — account tagging plus
   the three simplification rules (Sec. V-B);
3. *attack pattern identification* — trade action identification and
   KRP/SBS/MBS matching anchored on the flash-loan borrower (Sec. V-C).

Transactions that are not flash loan transactions yield ``None``; flash
loan transactions yield an :class:`~repro.leishen.report.AttackReport`
whose ``is_attack`` reflects whether any pattern matched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import TYPE_CHECKING

from ..chain.trace import TransactionTrace
from ..chain.types import Address, ZERO_ADDRESS
from .identify import FlashLoanIdentifier
from .labels import LabelDatabase
from .patterns import PatternConfig, PatternMatcher
from .registry import PatternSettings
from .report import AttackReport
from .simplify import SimplifierConfig, TransferSimplifier
from .tagging import AccountTagger
from .trades import TradeIdentifier

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["LeiShen", "LeiShenConfig"]


@dataclass(slots=True)
class LeiShenConfig:
    """End-to-end detector configuration."""

    simplifier: SimplifierConfig = field(default_factory=SimplifierConfig)
    #: pattern selection + thresholds: a legacy flat ``PatternConfig``,
    #: a namespaced :class:`~repro.leishen.registry.PatternSettings`
    #: (which can also enable non-paper patterns), or ``None`` for the
    #: paper defaults.
    patterns: "PatternConfig | PatternSettings | None" = field(
        default_factory=PatternConfig
    )
    #: ablation switch: skip tagging/simplification and run patterns on
    #: raw account-level transfers (DESIGN.md ablation 1).
    use_app_level_transfers: bool = True
    #: execution knob for the lifting kernels: ``None`` auto-dispatches
    #: on trace size, ``True``/``False`` pin the numpy/object path (see
    #: :mod:`repro.leishen.lifting`). Never changes a result byte.
    vectorize: bool | None = None


class LeiShen:
    """The detector. One instance per chain; reusable across transactions."""

    def __init__(
        self,
        chain: "Chain",
        config: LeiShenConfig | None = None,
        labels: LabelDatabase | None = None,
        tag_snapshot: dict | None = None,
    ) -> None:
        self.chain = chain
        self.config = config or LeiShenConfig()
        self.identifier = FlashLoanIdentifier()
        self.tagger = AccountTagger(chain, labels, snapshot=tag_snapshot)
        self.simplifier = TransferSimplifier(
            self.config.simplifier, vectorize=self.config.vectorize
        )
        self.trade_identifier = TradeIdentifier(vectorize=self.config.vectorize)
        self.matcher = PatternMatcher(self.config.patterns)
        #: optional :class:`~repro.leishen.prescreen.PreScreen` consulted
        #: before identification. Rejection is provably result-neutral
        #: (the screen checks necessary conditions of the fingerprints),
        #: so installing one never changes what ``analyze`` returns.
        self.prescreen = None
        #: optional :class:`~repro.runtime.profile.StageProfiler`;
        #: ``None`` keeps the pipeline free of timing overhead.
        self.profiler = None

    # ------------------------------------------------------------------

    def analyze(self, trace: TransactionTrace) -> AttackReport | None:
        """Run the pipeline; ``None`` when ``trace`` is not a flash loan tx."""
        if not trace.success:
            return None
        prof = self.profiler
        now = perf_counter_ns if prof is not None else None
        if self.prescreen is not None:
            if prof is None:
                if not self.prescreen.admits(trace):
                    return None
            else:
                started = now()
                admitted = self.prescreen.admits(trace)
                prof.add("prescreen", now() - started)
                if not admitted:
                    prof.count("screened_out")
                    return None
        if prof is None:
            flash_loans = self.identifier.identify(trace)
        else:
            started = now()
            flash_loans = self.identifier.identify(trace)
            prof.add("identify", now() - started)
        if not flash_loans:
            return None
        # Seven of the 22 studied flpAttacks borrow from more than one
        # provider, and the borrowing contracts need not coincide — anchor
        # pattern matching on every distinct borrower, not just the first.
        borrowers: list[Address] = []
        for loan in flash_loans:
            if loan.borrower not in borrowers:
                borrowers.append(loan.borrower)
        if prof is not None:
            started = now()
        tagged = self.tagger.tag_transfers(trace.transfers)
        if prof is not None:
            prof.add("tag", now() - started)
            started = now()
        if self.config.use_app_level_transfers:
            app_transfers = self.simplifier.simplify(tagged)
        else:
            # Ablation: account-level "tags" are the raw addresses.
            from .simplify import AppTransfer

            app_transfers = [
                AppTransfer(
                    seq=t.seq,
                    sender=str(t.sender),
                    receiver=str(t.receiver) if t.receiver != ZERO_ADDRESS else "BlackHole",
                    amount=t.amount,
                    token=t.token,
                )
                for t in trace.transfers
            ]
        if prof is not None:
            prof.add("simplify", now() - started)
            started = now()
        trades = self.trade_identifier.identify(app_transfers)
        if prof is not None:
            prof.add("trades", now() - started)
            started = now()
        if self.config.use_app_level_transfers:
            borrower_tags = tuple(self.tagger.tag_of(b) for b in borrowers)
        else:
            borrower_tags = tuple(str(b) for b in borrowers)
        matches: list = []
        seen_tags: set = set()
        for tag in borrower_tags:
            if tag is None or tag in seen_tags:
                continue  # untaggable borrower, or same creation-root tag
            seen_tags.add(tag)
            matches.extend(self.matcher.match(trades, tag))
        if prof is not None:
            prof.add("match", now() - started)
        report = AttackReport(
            tx_hash=trace.tx_hash,
            flash_loans=flash_loans,
            borrower=borrowers[0],
            borrower_tag=borrower_tags[0],
            trades=trades,
            matches=matches,
            borrowers=tuple(borrowers),
            borrower_tags=borrower_tags,
            profit_flows=self._group_net_flows(trace, borrowers),
        )
        return report

    @staticmethod
    def _group_net_flows(
        trace: TransactionTrace, borrowers: list[Address]
    ) -> dict[Address, int]:
        """Net asset deltas of the borrower group; intra-group transfers
        cancel, so multi-provider attacks report one coherent profit view."""
        if len(borrowers) == 1:
            return trace.net_flows(borrowers[0])
        group = set(borrowers)
        flows: dict[Address, int] = {}
        for transfer in trace.transfers:
            if transfer.receiver in group:
                flows[transfer.token] = flows.get(transfer.token, 0) + transfer.amount
            if transfer.sender in group:
                flows[transfer.token] = flows.get(transfer.token, 0) - transfer.amount
        return {token: delta for token, delta in flows.items() if delta != 0}

    def detect(self, trace: TransactionTrace) -> bool:
        """Convenience: is this transaction a detected flpAttack?"""
        report = self.analyze(trace)
        return report is not None and report.is_attack

    # -- evaluation hygiene ------------------------------------------------

    def remove_attacker_labels(self, addresses: list[Address]) -> None:
        """Strip labels added to attacker accounts after publication
        (paper Sec. VI-B removes attacker tags before detection)."""
        self.tagger.labels.remove_all(addresses)
        self.tagger.invalidate()
