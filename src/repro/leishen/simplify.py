"""Asset transfer simplification (paper Sec. V-B-2).

Converts tagged account-level transfers into *application-level* transfers
with three rules, applied in the paper's order:

1. **Remove intra-app transfers** — ``tag_sender == tag_receiver`` shows
   asset flow inside one application and carries no trade information.
2. **Remove WETH related transfers** — WETH and ETH are unified into one
   asset, after which transfers into/out of the Wrapped Ether contract
   are 1:1 no-ops and can be dropped.
3. **Merge inter-app transfers** — two consecutive transfers of (nearly)
   the same amount of the same token through an intermediary tag are
   collapsed into one direct transfer, revealing the real counterparties
   behind aggregator hops. The amount tolerance (default 0.1%) absorbs
   the intermediary's service fee.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..chain.types import Address, ETHER
from .tagging import Tag, TaggedTransfer

__all__ = ["AppTransfer", "SimplifierConfig", "TransferSimplifier"]


@dataclass(frozen=True, slots=True)
class AppTransfer:
    """An application-level transfer ``appT = (sender, receiver, amount, token)``."""

    seq: int
    sender: Tag
    receiver: Tag
    amount: int
    token: Address


@dataclass(frozen=True, slots=True)
class SimplifierConfig:
    """Tuning knobs for the simplification rules."""

    #: application tag of the Wrapped Ether contract.
    weth_tag: str = "Wrapped Ether"
    #: token addresses to unify with native ETH (the WETH token).
    weth_tokens: frozenset[Address] = frozenset()
    #: max relative amount difference for the inter-app merge rule.
    merge_tolerance: float = 0.001
    #: individually togglable rules (ablation benches flip these).
    remove_intra_app: bool = True
    remove_weth: bool = True
    merge_inter_app: bool = True


class TransferSimplifier:
    """Applies the three rules and yields application-level transfers."""

    def __init__(self, config: SimplifierConfig | None = None) -> None:
        self.config = config or SimplifierConfig()

    def simplify(self, tagged: Sequence[TaggedTransfer]) -> list[AppTransfer]:
        # Rules 1 and 2 are per-item filters applied in order, so they are
        # fused into the lifting pass: one output list instead of three
        # intermediate ones (this path runs once per scanned transaction).
        cfg = self.config
        remove_intra = cfg.remove_intra_app
        remove_weth = cfg.remove_weth
        weth_tag = cfg.weth_tag
        weth_tokens = cfg.weth_tokens
        transfers: list[AppTransfer] = []
        append = transfers.append
        for t in tagged:
            sender = t.tag_sender
            receiver = t.tag_receiver
            if remove_intra and sender is not None and sender == receiver:
                continue
            if remove_weth:
                if sender == weth_tag or receiver == weth_tag:
                    continue
                token = ETHER if t.token in weth_tokens else t.token
            else:
                token = t.token
            append(AppTransfer(t.seq, sender, receiver, t.amount, token))
        if cfg.merge_inter_app:
            transfers = self._merge_inter_app(transfers)
        return transfers

    # -- rule 1 -----------------------------------------------------------

    @staticmethod
    def _remove_intra_app(transfers: Iterable[AppTransfer]) -> list[AppTransfer]:
        return [
            t
            for t in transfers
            if t.sender is None or t.receiver is None or t.sender != t.receiver
        ]

    # -- rule 2 -----------------------------------------------------------

    def _remove_weth(self, transfers: Iterable[AppTransfer]) -> list[AppTransfer]:
        weth_tag = self.config.weth_tag
        weth_tokens = self.config.weth_tokens
        unified: list[AppTransfer] = []
        for t in transfers:
            if t.sender == weth_tag or t.receiver == weth_tag:
                continue
            if t.token in weth_tokens:
                t = replace(t, token=ETHER)
            unified.append(t)
        return unified

    # -- rule 3 -----------------------------------------------------------

    def _merge_inter_app(self, transfers: list[AppTransfer]) -> list[AppTransfer]:
        """Collapse A->I->B chains; iterates to a fixpoint so longer relay
        chains (A->I1->I2->B) also merge."""
        tolerance = self.config.merge_tolerance
        changed = True
        while changed:
            changed = False
            merged: list[AppTransfer] = []
            i = 0
            while i < len(transfers):
                current = transfers[i]
                if i + 1 < len(transfers):
                    nxt = transfers[i + 1]
                    if self._mergeable(current, nxt, tolerance):
                        merged.append(
                            AppTransfer(
                                seq=current.seq,
                                sender=current.sender,
                                receiver=nxt.receiver,
                                amount=nxt.amount,
                                token=current.token,
                            )
                        )
                        i += 2
                        changed = True
                        continue
                merged.append(current)
                i += 1
            transfers = merged
            if self.config.remove_intra_app and changed:
                # A merge can surface a new intra-app transfer
                # (A -> I -> A); keep the stream clean between passes.
                transfers = self._remove_intra_app(transfers)
        return transfers

    @staticmethod
    def _mergeable(first: AppTransfer, second: AppTransfer, tolerance: float) -> bool:
        if first.token != second.token:
            return False
        if first.receiver is None or first.receiver != second.sender:
            return False
        if first.receiver in (first.sender, second.receiver):
            return False  # not an intermediary hop
        big = max(first.amount, second.amount)
        if big == 0:
            return False
        return abs(first.amount - second.amount) / big <= tolerance
