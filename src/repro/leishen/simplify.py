"""Asset transfer simplification (paper Sec. V-B-2).

Converts tagged account-level transfers into *application-level* transfers
with three rules, applied in the paper's order:

1. **Remove intra-app transfers** — ``tag_sender == tag_receiver`` shows
   asset flow inside one application and carries no trade information.
2. **Remove WETH related transfers** — WETH and ETH are unified into one
   asset, after which transfers into/out of the Wrapped Ether contract
   are 1:1 no-ops and can be dropped.
3. **Merge inter-app transfers** — two consecutive transfers of (nearly)
   the same amount of the same token through an intermediary tag are
   collapsed into one direct transfer, revealing the real counterparties
   behind aggregator hops. The amount tolerance (default 0.1%) absorbs
   the intermediary's service fee.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..chain.types import Address, ETHER
from .tagging import Tag, TaggedTransfer

__all__ = ["AppTransfer", "SimplifierConfig", "TransferSimplifier"]


@dataclass(frozen=True, slots=True)
class AppTransfer:
    """An application-level transfer ``appT = (sender, receiver, amount, token)``."""

    seq: int
    sender: Tag
    receiver: Tag
    amount: int
    token: Address


@dataclass(frozen=True, slots=True)
class SimplifierConfig:
    """Tuning knobs for the simplification rules."""

    #: application tag of the Wrapped Ether contract.
    weth_tag: str = "Wrapped Ether"
    #: token addresses to unify with native ETH (the WETH token).
    weth_tokens: frozenset[Address] = frozenset()
    #: max relative amount difference for the inter-app merge rule.
    merge_tolerance: float = 0.001
    #: individually togglable rules (ablation benches flip these).
    remove_intra_app: bool = True
    remove_weth: bool = True
    merge_inter_app: bool = True


class TransferSimplifier:
    """Applies the three rules and yields application-level transfers.

    ``vectorize`` selects the execution path: ``True`` forces the numpy
    kernels of :mod:`repro.leishen.lifting`, ``False`` the per-row object
    path, and ``None`` (default) auto-dispatches on trace size — large
    traces go vectorized, small ones keep the tuned loop. Both paths are
    byte-equivalent (``tests/leishen/test_lifting.py``).
    """

    def __init__(
        self,
        config: SimplifierConfig | None = None,
        *,
        vectorize: bool | None = None,
    ) -> None:
        self.config = config or SimplifierConfig()
        self.vectorize = vectorize

    def simplify(self, tagged: Sequence[TaggedTransfer]) -> list[AppTransfer]:
        from .lifting import HAVE_NUMPY, VECTOR_MIN_ROWS

        vectorize = self.vectorize
        if vectorize is None:
            vectorize = len(tagged) >= VECTOR_MIN_ROWS
        if vectorize and HAVE_NUMPY:
            return self._simplify_vector(tagged)
        return self._simplify_rows(tagged)

    def simplify_batch(
        self, batches: Sequence[Sequence[TaggedTransfer]]
    ) -> list[list[AppTransfer]]:
        """Simplify many transactions' transfer batches in one pass.

        The kernels operate on the concatenated rows of all batches at
        once (the vector path's native shape — one interning pass, one
        rule-mask evaluation), then slice the survivors back per
        transaction; the merge fixpoint can never cross a transaction
        boundary because each span is merged on its own. Results are
        identical to calling :meth:`simplify` per batch.
        """
        from .lifting import HAVE_NUMPY, VECTOR_MIN_ROWS

        total = sum(len(batch) for batch in batches)
        vectorize = self.vectorize
        if vectorize is None:
            vectorize = total >= VECTOR_MIN_ROWS
        if not (vectorize and HAVE_NUMPY):
            return [self._simplify_rows(batch) for batch in batches]
        flat: list[TaggedTransfer] = []
        spans: list[tuple[int, int]] = []
        for batch in batches:
            start = len(flat)
            flat.extend(batch)
            spans.append((start, len(flat)))
        return self._simplify_vector_spans(flat, spans)

    def _simplify_vector(self, tagged: Sequence[TaggedTransfer]) -> list[AppTransfer]:
        return self._simplify_vector_spans(list(tagged), [(0, len(tagged))])[0]

    def _simplify_vector_spans(
        self, rows: list[TaggedTransfer], spans: list[tuple[int, int]]
    ) -> list[list[AppTransfer]]:
        """Vector core: rules 1+2 as array masks over interned codes, the
        rule 3 fixpoint gated behind a vectorized candidate pre-check.

        Amounts never enter an array (token amounts overflow int64); the
        only amount-sensitive comparison (merge tolerance) runs in the
        unchanged object-path fixpoint, and only for spans whose integer
        conditions admit at least one adjacent merge candidate.
        """
        import numpy as np

        from .lifting import (
            TagInterner,
            keep_mask,
            lift_codes,
            merge_candidates_exist,
        )

        cfg = self.config
        interner = TagInterner()
        senders, receivers, tokens = lift_codes(
            [(t.tag_sender, t.tag_receiver, t.token) for t in rows], interner
        )
        weth_code = interner.code_of(cfg.weth_tag) if cfg.remove_weth else None
        keep = keep_mask(
            senders, receivers, remove_intra=cfg.remove_intra_app, weth_code=weth_code
        )
        # rule 2's token unification, reflected into code space so the
        # merge pre-check sees WETH and ETH as one token.
        remap = cfg.remove_weth and cfg.weth_tokens
        if remap:
            weth_token_codes = [
                code
                for token in cfg.weth_tokens
                if (code := interner.code_of(token)) >= 0
            ]
            if weth_token_codes:
                ether_code = interner.code(ETHER)
                tokens = np.where(
                    np.isin(tokens, weth_token_codes), ether_code, tokens
                )
        results: list[list[AppTransfer]] = []
        weth_tokens = cfg.weth_tokens if cfg.remove_weth else frozenset()
        for start, stop in spans:
            span_keep = keep[start:stop]
            kept = np.nonzero(span_keep)[0]
            out: list[AppTransfer] = []
            append = out.append
            for offset in kept.tolist():
                t = rows[start + offset]
                token = ETHER if t.token in weth_tokens else t.token
                append(AppTransfer(t.seq, t.tag_sender, t.tag_receiver, t.amount, token))
            if cfg.merge_inter_app and len(out) >= 2:
                idx = kept + start
                if merge_candidates_exist(
                    senders[idx], receivers[idx], tokens[idx]
                ):
                    out = self._merge_inter_app(out)
            results.append(out)
        return results

    def _simplify_rows(self, tagged: Sequence[TaggedTransfer]) -> list[AppTransfer]:
        # Rules 1 and 2 are per-item filters applied in order, so they are
        # fused into the lifting pass: one output list instead of three
        # intermediate ones (this path runs once per scanned transaction).
        cfg = self.config
        remove_intra = cfg.remove_intra_app
        remove_weth = cfg.remove_weth
        weth_tag = cfg.weth_tag
        weth_tokens = cfg.weth_tokens
        transfers: list[AppTransfer] = []
        append = transfers.append
        for t in tagged:
            sender = t.tag_sender
            receiver = t.tag_receiver
            if remove_intra and sender is not None and sender == receiver:
                continue
            if remove_weth:
                if sender == weth_tag or receiver == weth_tag:
                    continue
                token = ETHER if t.token in weth_tokens else t.token
            else:
                token = t.token
            append(AppTransfer(t.seq, sender, receiver, t.amount, token))
        if cfg.merge_inter_app:
            transfers = self._merge_inter_app(transfers)
        return transfers

    # -- rule 1 -----------------------------------------------------------

    @staticmethod
    def _remove_intra_app(transfers: Iterable[AppTransfer]) -> list[AppTransfer]:
        return [
            t
            for t in transfers
            if t.sender is None or t.receiver is None or t.sender != t.receiver
        ]

    # -- rule 2 -----------------------------------------------------------

    def _remove_weth(self, transfers: Iterable[AppTransfer]) -> list[AppTransfer]:
        weth_tag = self.config.weth_tag
        weth_tokens = self.config.weth_tokens
        unified: list[AppTransfer] = []
        for t in transfers:
            if t.sender == weth_tag or t.receiver == weth_tag:
                continue
            if t.token in weth_tokens:
                t = replace(t, token=ETHER)
            unified.append(t)
        return unified

    # -- rule 3 -----------------------------------------------------------

    def _merge_inter_app(self, transfers: list[AppTransfer]) -> list[AppTransfer]:
        """Collapse A->I->B chains; iterates to a fixpoint so longer relay
        chains (A->I1->I2->B) also merge."""
        tolerance = self.config.merge_tolerance
        changed = True
        while changed:
            changed = False
            merged: list[AppTransfer] = []
            i = 0
            while i < len(transfers):
                current = transfers[i]
                if i + 1 < len(transfers):
                    nxt = transfers[i + 1]
                    if self._mergeable(current, nxt, tolerance):
                        merged.append(
                            AppTransfer(
                                seq=current.seq,
                                sender=current.sender,
                                receiver=nxt.receiver,
                                amount=nxt.amount,
                                token=current.token,
                            )
                        )
                        i += 2
                        changed = True
                        continue
                merged.append(current)
                i += 1
            transfers = merged
            if self.config.remove_intra_app and changed:
                # A merge can surface a new intra-app transfer
                # (A -> I -> A); keep the stream clean between passes.
                transfers = self._remove_intra_app(transfers)
        return transfers

    @staticmethod
    def _mergeable(first: AppTransfer, second: AppTransfer, tolerance: float) -> bool:
        if first.token != second.token:
            return False
        if first.receiver is None or first.receiver != second.sender:
            return False
        if first.receiver in (first.sender, second.receiver):
            return False  # not an intermediary hop
        big = max(first.amount, second.amount)
        if big == 0:
            return False
        return abs(first.amount - second.amount) / big <= tolerance
