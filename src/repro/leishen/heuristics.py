"""Post-detection heuristics (paper Sec. VI-C).

The MBS pattern's main false-positive source is yield aggregators, whose
investment strategies legitimately buy and sell the same asset over many
rounds. The paper reports that assuming *transactions initiated from
yield aggregators are not attacks* lifts MBS precision from 56.1% to 80%.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from .patterns import AttackPattern
from .report import AttackReport
from .tagging import AccountTagger

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.trace import TransactionTrace

__all__ = ["YieldAggregatorHeuristic", "DEFAULT_AGGREGATOR_APPS"]

#: Application names treated as yield aggregators / strategy operators.
DEFAULT_AGGREGATOR_APPS = frozenset(
    {"Yearn Strategy", "Harvest Strategy", "Idle", "Rari Capital", "APY.Finance"}
)


class YieldAggregatorHeuristic:
    """Drops MBS-only detections whose transaction sender is an aggregator."""

    def __init__(
        self,
        tagger: AccountTagger,
        aggregator_apps: Iterable[str] = DEFAULT_AGGREGATOR_APPS,
    ) -> None:
        self._tagger = tagger
        self._apps = set(aggregator_apps)

    def initiated_by_aggregator(self, trace: "TransactionTrace") -> bool:
        sender_tag = self._tagger.tag_of(trace.sender)
        return sender_tag in self._apps

    def apply(self, trace: "TransactionTrace", report: AttackReport) -> AttackReport:
        """Return the report with MBS matches suppressed when appropriate.

        Only MBS matches are dropped: a KRP or SBS match from an
        aggregator-initiated transaction still flags the transaction.
        """
        if not report.matches or not self.initiated_by_aggregator(trace):
            return report
        report.matches = [m for m in report.matches if m.pattern != AttackPattern.MBS]
        return report
