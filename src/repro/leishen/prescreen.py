"""Cheap flash-loan pre-screen over raw traces (scan hot-path filter).

The overwhelming majority of mainnet transactions contain no flash-loan
borrow at all (the observation FlashSyn builds on), yet the naive scan
runs every one of them through tagging, simplification and trade
identification just so :class:`~repro.leishen.identify.FlashLoanIdentifier`
can return an empty list. This module front-loads that verdict with two
layers, both consulted *before* any tagging work:

1. **Fingerprint markers** — a single fused pass over ``trace.calls``
   and ``trace.logs`` checking the *necessary* conditions of the three
   provider fingerprints of Table II: a ``swap`` call preceding a
   ``uniswapV2Call`` call, a ``flashLoan`` call plus a ``FlashLoan``
   event, or the full dYdX ``LogOperation``/``LogWithdraw``/``LogCall``/
   ``LogDeposit`` event quadruple. A transaction failing all three can
   *provably* not be identified as a flash-loan transaction, so the
   pipeline may skip it without changing any result byte.
2. **Provider/pool address table** — flash-loan provider accounts (the
   AAVE lending pool, the dYdX solo margin) and factory-created pair
   pools harvested from the chain's label/creation records, with a
   deterministic Bloom filter (:class:`AddressBloom`) layered on top
   once the table grows large. The table is advisory: it confirms
   marker admits cheaply (``fast_hits``) and ships inside shard-context
   snapshots so warm-started workers skip the harvest scan — but it is
   **never the sole reason to reject**, because an attacker-deployed,
   unlabelled provider must still reach the full identifier. Rejection
   stays anchored on the provable marker conditions above; that is the
   parity guarantee ``tests/engine/test_prescreen_parity.py`` pins.

Like the account tagger, the table syncs incrementally against the
chain's generation counters, so the per-transaction cost stays one
integer comparison once the world is built.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from ..chain.trace import TransactionTrace
from .labels import app_name_of_label

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["AddressBloom", "PreScreen", "BLOOM_THRESHOLD"]

#: switch the address table's membership test to a Bloom filter once the
#: exact set holds this many addresses (full-scale worlds stay below it;
#: replayed mainnet history does not).
BLOOM_THRESHOLD = 4096

#: raw-label substrings marking a flash-loan *provider* account.
_PROVIDER_MARKERS = ("Lending Pool", "Solo Margin")

#: raw-label substring marking a pool *factory*; its creations are pools.
_FACTORY_MARKER = "Factory"


class AddressBloom:
    """Deterministic Bloom filter over address strings.

    Stdlib-only (``blake2b`` with per-probe salts — no third-party
    ``mmh3``/``bitarray``), so membership bits are identical across
    processes, hosts and Python builds: a filter serialized into a shard
    snapshot answers exactly like the one it was captured from. False
    positives only ever *admit* a transaction the markers already
    admitted, never reject one, so Bloom error can't affect parity.
    """

    __slots__ = ("bits", "num_bits", "num_hashes", "count")

    def __init__(self, capacity: int, bits_per_item: int = 10) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.num_bits = max(64, capacity * bits_per_item)
        #: ~0.7 * bits/item approximates the optimal hash count (k = m/n ln2).
        self.num_hashes = max(1, int(round(bits_per_item * 0.7)))
        self.bits = bytearray((self.num_bits + 7) // 8)
        self.count = 0

    def _probes(self, item: str):
        payload = item.encode("utf-8")
        for salt in range(self.num_hashes):
            digest = hashlib.blake2b(
                payload, digest_size=8, salt=salt.to_bytes(8, "little")
            ).digest()
            yield int.from_bytes(digest, "big") % self.num_bits

    def add(self, item: str) -> None:
        for probe in self._probes(item):
            self.bits[probe >> 3] |= 1 << (probe & 7)
        self.count += 1

    def __contains__(self, item: str) -> bool:
        return all(
            self.bits[probe >> 3] & (1 << (probe & 7)) for probe in self._probes(item)
        )

    def to_wire(self) -> dict:
        return {
            "num_bits": self.num_bits,
            "num_hashes": self.num_hashes,
            "count": self.count,
            "bits": self.bits.hex(),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "AddressBloom":
        bloom = cls.__new__(cls)
        bloom.num_bits = payload["num_bits"]
        bloom.num_hashes = payload["num_hashes"]
        bloom.count = payload["count"]
        bloom.bits = bytearray.fromhex(payload["bits"])
        return bloom


class PreScreen:
    """Front-of-pipeline flash-loan transaction filter.

    ``admits(trace)`` returns ``False`` only when the trace provably
    cannot be identified as a flash-loan transaction (no provider
    fingerprint's necessary markers are present), so screening is
    result-transparent by construction. Build one per shard context via
    ``PreScreen(chain)``; it harvests and incrementally re-syncs the
    provider/pool address table from the chain's labels and creations.
    """

    __slots__ = (
        "_chain",
        "providers",
        "pools",
        "_factories",
        "_bloom",
        "_synced_version",
        "_indexed_creations",
        "_synced_labels",
        "admitted",
        "screened",
        "fast_hits",
    )

    def __init__(self, chain: "Chain | None" = None) -> None:
        self._chain = chain
        #: exact address tables (strings — raw trace addresses compare
        #: without constructing Address objects).
        self.providers: set[str] = set()
        self.pools: set[str] = set()
        self._factories: set[str] = set()
        self._bloom: AddressBloom | None = None
        self._synced_version = -1
        self._indexed_creations = 0
        self._synced_labels = 0
        #: lifetime counters (observability; surfaced by ``--profile``).
        self.admitted = 0
        self.screened = 0
        self.fast_hits = 0
        if chain is not None:
            self._sync()

    # -- address-table maintenance -----------------------------------------

    def _sync(self) -> None:
        """Bring the address table up to the chain's current generation."""
        chain = self._chain
        labels = chain.labels
        if len(labels) != self._synced_labels:
            for address, label in labels.items():
                if any(marker in label for marker in _PROVIDER_MARKERS):
                    self.providers.add(str(address))
                elif _FACTORY_MARKER in label:
                    self._factories.add(str(address))
            self._synced_labels = len(labels)
        creations = chain.creations
        if len(creations) != self._indexed_creations:
            factories = self._factories
            for record in creations[self._indexed_creations :]:
                if str(record.creator) in factories:
                    self.pools.add(str(record.created))
            self._indexed_creations = len(creations)
        table_size = len(self.providers) + len(self.pools)
        if self._bloom is None:
            if table_size >= BLOOM_THRESHOLD:
                self._rebuild_bloom()
        elif self._bloom.count != table_size:
            # the table grew since the filter was built: rebuild, because
            # a Bloom filter supports no incremental deletion/merge and
            # the exact sets stay authoritative anyway.
            self._rebuild_bloom()
        self._synced_version = chain.version

    def _rebuild_bloom(self) -> None:
        table = self.providers | self.pools
        bloom = AddressBloom(max(len(table) * 2, BLOOM_THRESHOLD))
        for address in table:
            bloom.add(address)
        self._bloom = bloom

    def _known(self, address: str) -> bool:
        if self._bloom is not None and address not in self._bloom:
            return False  # definite miss: skip the exact-set probes
        return address in self.providers or address in self.pools

    @property
    def table_size(self) -> int:
        return len(self.providers) + len(self.pools)

    # -- the screen itself --------------------------------------------------

    def admits(self, trace: TransactionTrace) -> bool:
        """``False`` iff ``trace`` provably contains no flash loan.

        One fused pass over calls, then (only if needed) one over logs,
        mirroring the necessary conditions of the three Table II
        fingerprints exactly; see the module docstring for why rejection
        never consults the address table.
        """
        if self._chain is not None and self._synced_version != self._chain.version:
            self._sync()
        saw_swap = saw_flash_loan_call = False
        uniswap = False
        provider_account: str | None = None
        for call in trace.calls:
            function = call.function
            if function == "swap":
                saw_swap = True
            elif function == "uniswapV2Call":
                if saw_swap:
                    # necessary condition of the Uniswap fingerprint: a
                    # swap opened before the pair called back.
                    uniswap = True
                    provider_account = str(call.caller)
                    break
            elif function == "flashLoan":
                saw_flash_loan_call = True
        if uniswap:
            self.admitted += 1
            if provider_account is not None and self._known(provider_account):
                self.fast_hits += 1
            return True
        dydx_mask = 0
        aave = False
        for log in trace.logs:
            event = log.event
            if saw_flash_loan_call and event == "FlashLoan":
                aave = True
                provider_account = str(log.emitter)
                break
            if event == "LogOperation":
                dydx_mask |= 1
            elif event == "LogWithdraw":
                dydx_mask |= 2
                provider_account = str(log.emitter)
            elif event == "LogCall":
                dydx_mask |= 4
            elif event == "LogDeposit":
                dydx_mask |= 8
            if dydx_mask == 15:
                break
        if aave or dydx_mask == 15:
            self.admitted += 1
            if provider_account is not None and self._known(provider_account):
                self.fast_hits += 1
            return True
        self.screened += 1
        return False

    # -- snapshots (shard-context warm start) -------------------------------

    def to_wire(self) -> dict:
        """JSON-safe snapshot of the harvested address table."""
        return {
            "providers": sorted(self.providers),
            "pools": sorted(self.pools),
            "factories": sorted(self._factories),
            "synced_version": self._synced_version,
            "indexed_creations": self._indexed_creations,
            "synced_labels": self._synced_labels,
            "bloom": self._bloom.to_wire() if self._bloom is not None else None,
        }

    @classmethod
    def from_wire(cls, payload: dict, chain: "Chain | None" = None) -> "PreScreen":
        """Rebuild a pre-screen from a snapshot, bound to ``chain``.

        Counter validation mirrors the tag-snapshot contract: the
        snapshot installs only when the chain is in exactly the recorded
        generation; otherwise the table is harvested cold, so a stale
        snapshot can never mask a provider.
        """
        if chain is not None and (
            payload["synced_version"] != chain.version
            or payload["indexed_creations"] != len(chain.creations)
            or payload["synced_labels"] != len(chain.labels)
        ):
            return cls(chain)
        screen = cls()
        screen._chain = chain
        screen.providers = set(payload["providers"])
        screen.pools = set(payload["pools"])
        screen._factories = set(payload["factories"])
        screen._synced_version = payload["synced_version"]
        screen._indexed_creations = payload["indexed_creations"]
        screen._synced_labels = payload["synced_labels"]
        bloom = payload.get("bloom")
        screen._bloom = AddressBloom.from_wire(bloom) if bloom else None
        return screen
