"""Attack profit and yield-rate analysis (paper Sec. VI-D3, Table VII).

The paper values each attack's net profit at the average asset prices of
the attack day and defines *yield rate* as profit value divided by the
value of the flash-borrowed assets. We reproduce both measures on top of
the substitute USD price oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..chain.trace import TransactionTrace
from ..chain.types import Address
from ..defi.oracle import UsdPriceOracle
from ..tokens.registry import TokenRegistry
from .identify import FlashLoan

__all__ = ["ProfitAnalyzer", "ProfitBreakdown", "profit_statistics"]

_SECONDS_PER_DAY = 86_400


@dataclass(frozen=True, slots=True)
class ProfitBreakdown:
    """USD-valued profit of one transaction's borrower."""

    tx_hash: str
    profit_usd: float
    borrowed_usd: float

    @property
    def yield_rate(self) -> float:
        """Profit per borrowed value, as a fraction (paper reports %)."""
        if self.borrowed_usd <= 0:
            return 0.0
        return self.profit_usd / self.borrowed_usd


class ProfitAnalyzer:
    """Values net asset flows with the historical USD oracle."""

    def __init__(self, registry: TokenRegistry, oracle: UsdPriceOracle | None = None) -> None:
        self._registry = registry
        self._oracle = oracle or UsdPriceOracle()

    def day_of(self, trace: TransactionTrace) -> int:
        return trace.timestamp // _SECONDS_PER_DAY

    def value_usd(self, token: Address, amount: int, day: int) -> float:
        symbol = self._registry.symbol_of(token)
        registered = self._registry.get(token)
        decimals = registered.decimals if registered is not None else 18
        return self._oracle.value_usd(symbol, amount, decimals=decimals, day=day)

    def net_profit_usd(self, trace: TransactionTrace, accounts: Sequence[Address]) -> float:
        """USD value of the net flows into ``accounts`` over the transaction.

        ``accounts`` should contain every account controlled by the
        borrower (the attack contract and its EOA), since attackers route
        profit through their own intermediaries.
        """
        day = self.day_of(trace)
        owned = set(accounts)
        flows: dict[Address, int] = {}
        for transfer in trace.transfers:
            into = transfer.receiver in owned
            outof = transfer.sender in owned
            if into == outof:
                continue  # internal shuffle or unrelated transfer
            delta = transfer.amount if into else -transfer.amount
            flows[transfer.token] = flows.get(transfer.token, 0) + delta
        return sum(self.value_usd(token, amount, day) for token, amount in flows.items())

    def borrowed_usd(self, trace: TransactionTrace, flash_loans: Sequence[FlashLoan]) -> float:
        day = self.day_of(trace)
        return sum(self.value_usd(fl.token, fl.amount, day) for fl in flash_loans)

    def breakdown(
        self,
        trace: TransactionTrace,
        flash_loans: Sequence[FlashLoan],
        accounts: Sequence[Address],
    ) -> ProfitBreakdown:
        return ProfitBreakdown(
            tx_hash=trace.tx_hash,
            profit_usd=self.net_profit_usd(trace, accounts),
            borrowed_usd=self.borrowed_usd(trace, flash_loans),
        )


def profit_statistics(breakdowns: Sequence[ProfitBreakdown]) -> dict[str, float]:
    """The Table VII aggregate rows: mean/min/max and top-decile averages."""
    if not breakdowns:
        return {}
    profits = sorted((b.profit_usd for b in breakdowns), reverse=True)
    yields = sorted((b.yield_rate for b in breakdowns), reverse=True)

    def top_avg(values: list[float], fraction: float) -> float:
        k = max(1, int(round(len(values) * fraction)))
        return sum(values[:k]) / k

    return {
        "mean_profit_usd": sum(profits) / len(profits),
        "min_profit_usd": profits[-1],
        "max_profit_usd": profits[0],
        "top10_profit_usd": top_avg(profits, 0.10),
        "top20_profit_usd": top_avg(profits, 0.20),
        "total_profit_usd": sum(profits),
        "mean_yield_rate": sum(yields) / len(yields),
        "min_yield_rate": yields[-1],
        "max_yield_rate": yields[0],
        "top10_yield_rate": top_avg(yields, 0.10),
        "top20_yield_rate": top_avg(yields, 0.20),
    }
