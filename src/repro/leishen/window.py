"""Cross-transaction windowed pattern matching.

LeiShen (paper Sec. IV) is per-transaction by construction: the
:class:`~repro.leishen.patterns.PatternMatcher` only ever sees the
simplified trades of one flash-loan transaction, so an attacker who
splits MBS rounds — or a KRP buy series — across consecutive
transactions is invisible even though every action is on-chain. This
module closes that gap the way DeFiRanger and the Frontrunner-Jones
displacement detector do: accumulate trades over a sliding block window
and re-run the unchanged pattern matcher over the windowed sequence.

:class:`WindowedMatcher` is fed by the streaming engine's watermark
merger (:class:`~repro.engine.stream.StreamEngine` with
``windowed=True``), one emitted block at a time, with one
:class:`TradeObservation` per identified flash-loan transaction. It is
strictly additive observability:

- per-transaction detection state is never touched, so the
  per-transaction ``WildScanResult`` is byte-identical with windowing
  on or off;
- a windowed match whose pattern was already reported per-transaction
  by *every* contributing transaction is suppressed (the window adds
  nothing a per-transaction alert didn't already say);
- state is bounded: only the last ``window_blocks`` *emitted* blocks of
  observations are retained, and dedup keys are evicted with their
  blocks.

The window is counted in distinct emitted stream blocks rather than raw
height deltas: the synthetic study timeline spreads a small population
over 5.2M mainnet heights, so consecutive stream blocks are tens of
thousands of heights apart. For contiguous replayed history the two
notions coincide.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..chain.types import Address
from .patterns import PatternConfig, PatternMatcher
from .registry import PatternSettings
from .tagging import Tag
from .trades import Trade

__all__ = [
    "TradeObservation",
    "WindowedDetection",
    "WindowedMatcher",
    "windowed_recall",
    "DEFAULT_WINDOW_BLOCKS",
]

#: default sliding-window span, in emitted stream blocks.
DEFAULT_WINDOW_BLOCKS = 8


@dataclass(frozen=True, slots=True)
class TradeObservation:
    """One identified flash-loan transaction's contribution to the window.

    Built by the streaming workers from the detector's
    :class:`~repro.leishen.report.AttackReport` — including reports that
    matched nothing per-transaction, which is exactly where the windowed
    matcher earns its keep.
    """

    tx_hash: str
    #: global schedule position (the merger's ordering key).
    position: int
    borrower_tags: tuple[Tag, ...]
    trades: tuple[Trade, ...]
    #: pattern names this transaction already matched on its own
    #: (``{"KRP", ...}``) — the same-transaction dedup input.
    matched_patterns: frozenset[str]
    #: split-attack group id from the ground truth, when known (windowed
    #: recall scoring); ``None`` for wild traffic.
    split_group: int | None = None


@dataclass(frozen=True, slots=True)
class WindowedDetection:
    """One pattern match assembled across transactions in the window."""

    pattern: str  # "KRP" | "SBS" | "MBS"
    target_token: Address
    borrower_tag: Tag
    #: contributing transactions in schedule order (every transaction
    #: that supplied at least one trade of the match).
    tx_hashes: tuple[str, ...]
    #: block span of the contributing transactions.
    first_block: int
    last_block: int
    #: the split-attack group when every labelled contributor agrees.
    split_group: int | None = None
    details: tuple[tuple[str, float | int | str], ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        """JSON-safe form for bench artifacts and service payloads."""
        return {
            "pattern": self.pattern,
            "target_token": str(self.target_token),
            "borrower_tag": str(self.borrower_tag),
            "tx_hashes": list(self.tx_hashes),
            "first_block": self.first_block,
            "last_block": self.last_block,
            "split_group": self.split_group,
        }


@dataclass(slots=True)
class _WindowBlock:
    number: int
    observations: list[TradeObservation]


class WindowedMatcher:
    """Sliding-window cross-transaction matcher over emitted blocks.

    Single-threaded by design: the streaming engine calls
    :meth:`observe_block` from its merger thread only, in block order,
    which is what makes windowed emission deterministic for any worker
    count.
    """

    def __init__(
        self,
        window_blocks: int = DEFAULT_WINDOW_BLOCKS,
        pattern_config: PatternConfig | PatternSettings | None = None,
    ) -> None:
        if window_blocks < 1:
            raise ValueError(f"window_blocks must be >= 1, got {window_blocks}")
        self.window_blocks = window_blocks
        self._matcher = PatternMatcher(pattern_config)
        self._blocks: deque[_WindowBlock] = deque()
        #: dedup: match identity -> last contributing block number.
        self._seen: dict[tuple, int] = {}

    # -- bounded-state introspection ------------------------------------

    @property
    def block_count(self) -> int:
        """Blocks currently retained (``<= window_blocks`` always)."""
        return len(self._blocks)

    @property
    def observation_count(self) -> int:
        """Observations currently retained across the window."""
        return sum(len(block.observations) for block in self._blocks)

    # -- the one entry point --------------------------------------------

    def observe_block(
        self, number: int, observations: Iterable[TradeObservation]
    ) -> list[WindowedDetection]:
        """Slide the window to ``number`` and return the *new* windowed
        detections its observations complete.

        Every emitted block advances (and prunes) the window, even when
        it carried no flash-loan transaction — the window is a span of
        emitted blocks, not of observations.
        """
        fresh = list(observations)
        self._blocks.append(_WindowBlock(number, fresh))
        while len(self._blocks) > self.window_blocks:
            self._blocks.popleft()
        oldest = self._blocks[0].number
        if self._seen:
            self._seen = {
                key: block
                for key, block in self._seen.items()
                if block >= oldest
            }
        if not fresh:
            return []
        # only tags with new trades can produce new matches
        affected = {tag for obs in fresh for tag in obs.borrower_tags}
        detections: list[WindowedDetection] = []
        for tag in sorted(affected, key=str):
            detections.extend(self._match_tag(tag))
        return detections

    # -- internals -------------------------------------------------------

    def _windowed_sequence(
        self, tag: Tag
    ) -> tuple[list[Trade], list[TradeObservation], list[int]]:
        """The tag's trades across the window, re-sequenced 0..n-1, plus
        per-trade provenance (observation and block number)."""
        trades: list[Trade] = []
        sources: list[TradeObservation] = []
        blocks: list[int] = []
        for block in self._blocks:
            for obs in block.observations:
                if tag not in obs.borrower_tags:
                    continue
                for trade in obs.trades:
                    trades.append(replace(trade, seq=len(trades)))
                    sources.append(obs)
                    blocks.append(block.number)
        return trades, sources, blocks

    def _match_tag(self, tag: Tag) -> list[WindowedDetection]:
        trades, sources, blocks = self._windowed_sequence(tag)
        if not trades:
            return []
        detections: list[WindowedDetection] = []
        for match in self._matcher.match(trades, tag):
            pattern = str(match.pattern)
            contributing: list[TradeObservation] = []
            seen_tx: set[str] = set()
            span: list[int] = []
            for trade in match.trades:
                obs = sources[trade.seq]
                span.append(blocks[trade.seq])
                if obs.tx_hash not in seen_tx:
                    seen_tx.add(obs.tx_hash)
                    contributing.append(obs)
            contributing.sort(key=lambda obs: obs.position)
            # same-transaction dedup: when every contributor already
            # matched this pattern on its own, the per-transaction
            # alerts cover it and the windowed match is redundant.
            if all(pattern in obs.matched_patterns for obs in contributing):
                continue
            tx_hashes = tuple(obs.tx_hash for obs in contributing)
            key = (pattern, match.target_token, tag, tx_hashes)
            if key in self._seen:
                continue  # already emitted while its trades stay in-window
            self._seen[key] = max(span)
            groups = {
                obs.split_group
                for obs in contributing
                if obs.split_group is not None
            }
            detections.append(
                WindowedDetection(
                    pattern=pattern,
                    target_token=match.target_token,
                    borrower_tag=tag,
                    tx_hashes=tx_hashes,
                    first_block=min(span),
                    last_block=max(span),
                    split_group=groups.pop() if len(groups) == 1 else None,
                    details=match.details,
                )
            )
        return detections


def windowed_recall(
    detections: Sequence[WindowedDetection], truth_groups: Sequence[int]
) -> float:
    """Fraction of labelled split-attack groups a windowed run detected."""
    if not truth_groups:
        return 0.0
    hit = {d.split_group for d in detections if d.split_group is not None}
    return len(hit & set(truth_groups)) / len(set(truth_groups))
