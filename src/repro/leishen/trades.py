"""Key trade action identification (paper Sec. V-C, Table III).

From application-level transfers, LeiShen recognizes three trade actions,
each matched against two or three *continuous* transfers:

- **Swap** — A sends token t1 to B and receives t2 (and possibly t3) back;
- **Mint liquidity** — A sends assets to B and receives tokens freshly
  minted from the BlackHole;
- **Remove liquidity** — A sends tokens to the BlackHole and receives
  assets back from B.

Every action is normalized into the paper's trade tuple
``(buyer, seller, amountSell, tokenSell, amountBuy, tokenBuy)``: the buyer
is the initiating application, the seller its counterparty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..chain.types import Address
from .simplify import AppTransfer
from .tagging import BLACKHOLE_TAG, Tag

__all__ = ["Trade", "TradeKind", "TradeIdentifier"]


class TradeKind(enum.Enum):
    SWAP = "swap"
    MINT_LIQUIDITY = "mint_liquidity"
    REMOVE_LIQUIDITY = "remove_liquidity"


@dataclass(frozen=True, slots=True)
class Trade:
    """The paper's trade tuple, plus bookkeeping.

    ``extra_legs`` carries the secondary output of three-transfer swaps /
    removals (the ``a3 t3`` leg of Table III); pattern matching uses the
    primary legs.
    """

    seq: int
    kind: TradeKind
    buyer: Tag
    seller: Tag
    amount_sell: int
    token_sell: Address
    amount_buy: int
    token_buy: Address
    extra_legs: tuple[tuple[Address, int], ...] = ()

    @property
    def sell_rate(self) -> float:
        """Price paid per bought token: ``amountSell / amountBuy``."""
        if self.amount_buy == 0:
            return float("inf")
        return self.amount_sell / self.amount_buy

    @property
    def buy_rate(self) -> float:
        """Amount received per sold token: ``amountBuy / amountSell``."""
        if self.amount_sell == 0:
            return float("inf")
        return self.amount_buy / self.amount_sell


class TradeIdentifier:
    """Greedy scanner matching Table III's two- and three-transfer shapes.

    Three-transfer conditions are tried before two-transfer ones so a
    dual-output swap does not get split into a swap plus a dangling
    transfer; matched transfers are consumed and the scan continues after
    them.
    """

    #: a BlackHole transfer at most this fraction of the adjacent same-token
    #: transfer is treated as a fee burn, not an action of its own.
    FEE_BURN_RATIO = 0.2

    def __init__(self, *, vectorize: bool | None = None) -> None:
        #: ``True`` forces the numpy path, ``False`` the object path,
        #: ``None`` auto-dispatches on transfer count (see
        #: :mod:`repro.leishen.lifting`); both paths are byte-equivalent.
        self.vectorize = vectorize

    def identify(self, transfers: list[AppTransfer]) -> list[Trade]:
        from .lifting import HAVE_NUMPY, VECTOR_MIN_ROWS

        vectorize = self.vectorize
        if vectorize is None:
            vectorize = len(transfers) >= VECTOR_MIN_ROWS
        if vectorize and HAVE_NUMPY:
            return self._identify_vector(transfers)
        transfers = self._strip_fee_burns(transfers)
        trades: list[Trade] = []
        i = 0
        n = len(transfers)
        while i < n:
            window3 = transfers[i : i + 3]
            trade = self._match3(window3) if len(window3) == 3 else None
            if trade is not None:
                trades.append(trade)
                i += 3
                continue
            window2 = transfers[i : i + 2]
            trade = self._match2(window2) if len(window2) == 2 else None
            if trade is not None:
                trades.append(trade)
                i += 2
                continue
            i += 1
        return trades

    def identify_batch(self, batches: list[list[AppTransfer]]) -> list[list[Trade]]:
        """Identify trades for many transactions' transfer lists.

        Each batch is scanned independently (the greedy window never
        crosses a transaction boundary); the vector path amortizes its
        mask precomputation per batch.
        """
        return [self.identify(batch) for batch in batches]

    # -- vectorized path ------------------------------------------------------

    def _identify_vector(self, transfers: list[AppTransfer]) -> list[Trade]:
        """Array-mask evaluation of the Table III predicates.

        Integer-code conditions (tag/token equalities, BlackHole tests)
        are evaluated over the whole transfer list at once; the
        amount-sensitive fee-burn ratio runs on Python ints at candidate
        positions only, and the greedy consume loop replays the object
        path's exact first-match order by reading precomputed shape
        codes. Byte-equivalence with the object path is pinned by
        ``tests/leishen/test_lifting.py``.
        """
        from .lifting import (
            TagInterner,
            fee_burn_candidates,
            lift_codes,
            trade_shape_masks,
        )

        interner = TagInterner()
        senders, receivers, tokens = lift_codes(
            [(t.sender, t.receiver, t.token) for t in transfers], interner
        )
        bh = interner.code_of(BLACKHOLE_TAG)
        burn_drops: set[int] = set()
        if bh >= 0:
            ratio = self.FEE_BURN_RATIO
            for idx in fee_burn_candidates(senders, receivers, tokens, bh):
                # exact original expression, on the original Python ints
                # (idx > 0 is guaranteed by the candidate mask).
                if transfers[idx].amount <= transfers[idx - 1].amount * ratio:
                    burn_drops.add(int(idx))
        if burn_drops:
            kept = [i for i in range(len(transfers)) if i not in burn_drops]
            transfers = [transfers[i] for i in kept]
            senders, receivers, tokens = senders[kept], receivers[kept], tokens[kept]
        shape3, shape2 = trade_shape_masks(senders, receivers, tokens, bh)
        trades: list[Trade] = []
        i = 0
        n = len(transfers)
        while i < n:
            if i + 3 <= n and shape3[i]:
                trades.append(self._build3(int(shape3[i]), transfers, i))
                i += 3
                continue
            if i + 2 <= n and shape2[i]:
                trades.append(self._build2(int(shape2[i]), transfers, i))
                i += 2
                continue
            i += 1
        return trades

    @staticmethod
    def _build3(shape: int, transfers: list[AppTransfer], i: int) -> Trade:
        from .lifting import MINT3, REMOVE3, SWAP3

        t1, t2, t3 = transfers[i], transfers[i + 1], transfers[i + 2]
        if shape == SWAP3:
            kind = TradeKind.SWAP
        elif shape == MINT3:
            kind = TradeKind.MINT_LIQUIDITY
        else:
            kind = TradeKind.REMOVE_LIQUIDITY
        if shape == MINT3:
            amount_buy, token_buy = t3.amount, t3.token
            extra = ((t2.token, t2.amount),)
        else:
            amount_buy, token_buy = t2.amount, t2.token
            extra = ((t3.token, t3.amount),)
        return Trade(
            seq=t1.seq,
            kind=kind,
            buyer=t1.sender,
            seller=t1.receiver if shape != REMOVE3 else t2.sender,
            amount_sell=t1.amount,
            token_sell=t1.token,
            amount_buy=amount_buy,
            token_buy=token_buy,
            extra_legs=extra,
        )

    @staticmethod
    def _build2(shape: int, transfers: list[AppTransfer], i: int) -> Trade:
        from .lifting import MINT2_A, MINT2_B, REMOVE2_A, SWAP2

        t1, t2 = transfers[i], transfers[i + 1]
        if shape == SWAP2:
            return Trade(
                seq=t1.seq,
                kind=TradeKind.SWAP,
                buyer=t1.sender,
                seller=t1.receiver,
                amount_sell=t1.amount,
                token_sell=t1.token,
                amount_buy=t2.amount,
                token_buy=t2.token,
            )
        if shape in (MINT2_A, MINT2_B):
            deposit, minted = (t1, t2) if shape == MINT2_A else (t2, t1)
            return Trade(
                seq=min(deposit.seq, minted.seq),
                kind=TradeKind.MINT_LIQUIDITY,
                buyer=deposit.sender,
                seller=deposit.receiver,
                amount_sell=deposit.amount,
                token_sell=deposit.token,
                amount_buy=minted.amount,
                token_buy=minted.token,
            )
        burned, payout = (t1, t2) if shape == REMOVE2_A else (t2, t1)
        return Trade(
            seq=min(burned.seq, payout.seq),
            kind=TradeKind.REMOVE_LIQUIDITY,
            buyer=burned.sender,
            seller=payout.sender,
            amount_sell=burned.amount,
            token_sell=burned.token,
            amount_buy=payout.amount,
            token_buy=payout.token,
        )

    def _strip_fee_burns(self, transfers: list[AppTransfer]) -> list[AppTransfer]:
        """Drop fee-on-transfer burn records.

        Deflationary tokens (STA in the Balancer attack) emit a small
        ``Transfer(x, BlackHole, fee)`` beside every real transfer; left
        in the stream it pairs with neighbours into phantom
        remove-liquidity actions and corrupts the greedy scan. A burn is
        considered a fee when the immediately preceding transfer moves
        >= 5x the amount of the same token through the burning account.
        """
        cleaned: list[AppTransfer] = []
        for idx, transfer in enumerate(transfers):
            if (
                transfer.receiver == BLACKHOLE_TAG
                and idx > 0
                and (prev := transfers[idx - 1]).token == transfer.token
                and transfer.sender in (prev.sender, prev.receiver)
                and transfer.amount <= prev.amount * self.FEE_BURN_RATIO
            ):
                continue
            cleaned.append(transfer)
        return cleaned

    # -- two-transfer shapes --------------------------------------------------

    def _match2(self, pair: list[AppTransfer]) -> Trade | None:
        t1, t2 = pair
        if t1.sender is None or t1.receiver is None or t2.sender is None or t2.receiver is None:
            return None
        if t1.token == t2.token:
            return None
        # Swap: A -> B then B -> A.
        if (
            t1.sender == t2.receiver
            and t1.receiver == t2.sender
            and t1.sender != BLACKHOLE_TAG
            and t1.receiver != BLACKHOLE_TAG
        ):
            return Trade(
                seq=t1.seq,
                kind=TradeKind.SWAP,
                buyer=t1.sender,
                seller=t1.receiver,
                amount_sell=t1.amount,
                token_sell=t1.token,
                amount_buy=t2.amount,
                token_buy=t2.token,
            )
        # Mint liquidity: A -> B plus BlackHole -> A (either order).
        mint = self._match_mint2(t1, t2) or self._match_mint2(t2, t1)
        if mint is not None:
            return mint
        # Remove liquidity: A -> BlackHole plus B -> A (either order).
        remove = self._match_remove2(t1, t2) or self._match_remove2(t2, t1)
        return remove

    @staticmethod
    def _match_mint2(deposit: AppTransfer, minted: AppTransfer) -> Trade | None:
        if (
            minted.sender == BLACKHOLE_TAG
            and minted.receiver == deposit.sender
            and deposit.receiver != BLACKHOLE_TAG
            and deposit.sender != BLACKHOLE_TAG
        ):
            return Trade(
                seq=min(deposit.seq, minted.seq),
                kind=TradeKind.MINT_LIQUIDITY,
                buyer=deposit.sender,
                seller=deposit.receiver,
                amount_sell=deposit.amount,
                token_sell=deposit.token,
                amount_buy=minted.amount,
                token_buy=minted.token,
            )
        return None

    @staticmethod
    def _match_remove2(burned: AppTransfer, payout: AppTransfer) -> Trade | None:
        if (
            burned.receiver == BLACKHOLE_TAG
            and payout.receiver == burned.sender
            and burned.sender != BLACKHOLE_TAG
            and payout.sender != BLACKHOLE_TAG
        ):
            return Trade(
                seq=min(burned.seq, payout.seq),
                kind=TradeKind.REMOVE_LIQUIDITY,
                buyer=burned.sender,
                seller=payout.sender,
                amount_sell=burned.amount,
                token_sell=burned.token,
                amount_buy=payout.amount,
                token_buy=payout.token,
            )
        return None

    # -- three-transfer shapes ------------------------------------------------------

    def _match3(self, triple: list[AppTransfer]) -> Trade | None:
        t1, t2, t3 = triple
        if any(t.sender is None or t.receiver is None for t in triple):
            return None
        if len({t1.token, t2.token, t3.token}) != 3:
            return None
        # Swap with two outputs: A->B, B->A, B->A.
        if (
            t1.sender == t2.receiver == t3.receiver
            and t1.receiver == t2.sender == t3.sender
            and BLACKHOLE_TAG not in (t1.sender, t1.receiver)
        ):
            return Trade(
                seq=t1.seq,
                kind=TradeKind.SWAP,
                buyer=t1.sender,
                seller=t1.receiver,
                amount_sell=t1.amount,
                token_sell=t1.token,
                amount_buy=t2.amount,
                token_buy=t2.token,
                extra_legs=((t3.token, t3.amount),),
            )
        # Mint with two deposits: A->B, A->B, BlackHole->A.
        if (
            t1.sender == t2.sender == t3.receiver
            and t1.receiver == t2.receiver
            and t3.sender == BLACKHOLE_TAG
            and t1.sender != BLACKHOLE_TAG
            and t1.receiver != BLACKHOLE_TAG
        ):
            return Trade(
                seq=t1.seq,
                kind=TradeKind.MINT_LIQUIDITY,
                buyer=t1.sender,
                seller=t1.receiver,
                amount_sell=t1.amount,
                token_sell=t1.token,
                amount_buy=t3.amount,
                token_buy=t3.token,
                extra_legs=((t2.token, t2.amount),),
            )
        # Remove with two payouts: A->BlackHole, B->A, B->A.
        if (
            t1.receiver == BLACKHOLE_TAG
            and t2.receiver == t3.receiver == t1.sender
            and t2.sender == t3.sender
            and t1.sender != BLACKHOLE_TAG
            and t2.sender != BLACKHOLE_TAG
        ):
            return Trade(
                seq=t1.seq,
                kind=TradeKind.REMOVE_LIQUIDITY,
                buyer=t1.sender,
                seller=t2.sender,
                amount_sell=t1.amount,
                token_sell=t1.token,
                amount_buy=t2.amount,
                token_buy=t2.token,
                extra_legs=((t3.token, t3.amount),),
            )
        return None
