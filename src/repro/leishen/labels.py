"""Etherscan-style account label database.

The paper seeds account tagging with 52,500 labelled accounts of 119 DeFi
applications scraped from Etherscan's label cloud. Labels look like
``"Uniswap: Factory Contract"`` — the application name is the part before
the colon. This module normalizes raw labels to application names and
supports the paper's evaluation hygiene step of *removing attacker tags*
before detection (Sec. VI-B).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from ..chain.types import Address

if TYPE_CHECKING:  # pragma: no cover
    from ..chain.chain import Chain

__all__ = ["LabelDatabase", "app_name_of_label"]


def app_name_of_label(label: str) -> str:
    """Extract the application name from an Etherscan-style label.

    ``"Uniswap: Factory Contract"`` -> ``"Uniswap"``; a label without a
    role suffix is already an application name.
    """
    return label.split(":", 1)[0].strip()


class LabelDatabase:
    """Address -> application-name map with provenance-preserving edits."""

    def __init__(self, labels: Mapping[Address, str] | None = None) -> None:
        self._apps: dict[Address, str] = {}
        self._raw: dict[Address, str] = {}
        if labels:
            for address, label in labels.items():
                self.add(address, label)

    @classmethod
    def from_chain(cls, chain: "Chain") -> "LabelDatabase":
        """Build the database from the chain's deployment-time labels."""
        return cls(chain.labels)

    def add(self, address: Address, label: str) -> None:
        self._raw[address] = label
        self._apps[address] = app_name_of_label(label)

    def remove(self, address: Address) -> None:
        """Forget an account's label (used to strip attacker tags)."""
        self._raw.pop(address, None)
        self._apps.pop(address, None)

    def remove_all(self, addresses: Iterable[Address]) -> None:
        for address in addresses:
            self.remove(address)

    def app_of(self, address: Address) -> str | None:
        return self._apps.get(address)

    def raw_label_of(self, address: Address) -> str | None:
        return self._raw.get(address)

    def raw_items(self) -> Iterable[tuple[Address, str]]:
        """``(address, raw label)`` pairs, for serialization/snapshots."""
        return self._raw.items()

    def addresses_of_app(self, app: str) -> list[Address]:
        return [address for address, name in self._apps.items() if name == app]

    def app_names(self) -> set[str]:
        return set(self._apps.values())

    def __contains__(self, address: Address) -> bool:
        return address in self._apps

    def __len__(self) -> int:
        return len(self._apps)
