"""JSON export of detection results.

The paper's pipeline "returns a detailed report regarding attack patterns
as output" (Sec. V). This module serializes
:class:`~repro.leishen.report.AttackReport` and wild-scan results into
plain JSON for downstream alerting/archival — the operational surface a
deployed monitor needs.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from .report import AttackReport

if TYPE_CHECKING:  # pragma: no cover
    from ..tokens.registry import TokenRegistry
    from ..workload.generator import WildScanResult

__all__ = ["report_to_dict", "report_to_json", "scan_result_to_dict"]


def report_to_dict(report: AttackReport, registry: "TokenRegistry | None" = None) -> dict[str, Any]:
    """A stable, JSON-safe rendering of one attack report."""

    def symbol(token: str) -> str:
        return registry.symbol_of(token) if registry is not None else str(token)

    return {
        "tx_hash": report.tx_hash,
        "is_attack": report.is_attack,
        "borrower": str(report.borrower),
        "borrower_tag": report.borrower_tag,
        "borrowers": [str(b) for b in (report.borrowers or (report.borrower,))],
        "borrower_tags": list(report.borrower_tags or (report.borrower_tag,)),
        "flash_loans": [
            {
                "provider": loan.provider,
                "token": symbol(loan.token),
                "amount": str(loan.amount),
                "borrower": str(loan.borrower),
            }
            for loan in report.flash_loans
        ],
        "patterns": sorted(report.patterns),
        "matches": [
            {
                "pattern": str(match.pattern),
                "target_token": symbol(match.target_token),
                "n_trades": len(match.trades),
                "details": {key: value for key, value in match.details},
            }
            for match in report.matches
        ],
        "trades": [
            {
                "kind": trade.kind.value,
                "buyer": str(trade.buyer),
                "seller": str(trade.seller),
                "sell": {"token": symbol(trade.token_sell), "amount": str(trade.amount_sell)},
                "buy": {"token": symbol(trade.token_buy), "amount": str(trade.amount_buy)},
            }
            for trade in report.trades
        ],
        "price_volatility": report.volatility(),
        "profit_flows": {
            symbol(token): str(amount) for token, amount in report.profit_flows.items()
        },
        "profit_usd": report.profit_usd,
    }


def report_to_json(report: AttackReport, registry: "TokenRegistry | None" = None, **dumps_kwargs: Any) -> str:
    dumps_kwargs.setdefault("indent", 2)
    return json.dumps(report_to_dict(report, registry), **dumps_kwargs)


def scan_result_to_dict(result: "WildScanResult") -> dict[str, Any]:
    """JSON-safe summary of a wild scan (the Table V/VI/VII payload)."""
    return {
        "scale": result.config.scale,
        "seed": result.config.seed,
        "with_heuristic": result.config.with_heuristic,
        "total_transactions": result.total_transactions,
        "detected": result.detected_count,
        "true_positives": result.true_positives,
        "precision": result.precision,
        "per_pattern": {
            row.pattern: {"n": row.n, "tp": row.tp, "fp": row.fp, "precision": row.precision}
            for row in result.table5()
        },
        "top_attacked_apps": [
            {
                "app": app,
                "attacks": attacks,
                "attackers": attackers,
                "contracts": contracts,
                "assets": assets,
            }
            for app, attacks, attackers, contracts, assets in result.table6()
        ],
        "profit": result.table7(),
        "monthly_unknown_attacks": result.fig8_months(),
    }
