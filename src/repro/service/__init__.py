"""Long-lived multi-tenant scan service over the ledger tier.

The batch, stream and cluster engines each answer one scan and exit.
This package keeps them resident: a :class:`ScanService` owns an
admission-controlled run queue (duplicate configs coalesce onto one
run), a warm-entity cache of shard context snapshots (back-to-back runs
skip world rebuilds), and per-run :class:`~repro.runtime.RunLedger`
journals under a data directory — so results survive restarts and are
served *from the ledger*, never by re-scanning. A framed-JSON TCP
server/client pair (:class:`ServiceServer` / :class:`ServiceClient`)
makes the whole thing reachable from other processes, reusing the
cluster tier's wire protocol.

See ``README.md`` ("Running as a service") and
``repro.experiments.service`` for the CLI front
(``leishen serve | submit | status | results``).
"""

from .cache import TTLCache
from .client import PaginationError, ServiceClient
from .registry import RUN_STATES, RunRecord, RunRegistry, run_id_for
from .server import SERVICE_PROTOCOL_VERSION, ServiceServer
from .service import (
    BACKENDS,
    AdmissionError,
    ScanService,
    ServiceError,
    UnknownRunError,
)

__all__ = [
    "AdmissionError",
    "BACKENDS",
    "PaginationError",
    "RUN_STATES",
    "RunRecord",
    "RunRegistry",
    "SERVICE_PROTOCOL_VERSION",
    "ScanService",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "TTLCache",
    "UnknownRunError",
    "run_id_for",
]
