"""TCP front for the scan service: length-prefixed JSON over loopback.

One :class:`ServiceServer` wraps a running
:class:`~repro.service.service.ScanService` and serves it to any number
of clients over the same framed-JSON protocol the cluster tier speaks
(:mod:`repro.cluster.protocol`: 4-byte big-endian length prefix, JSON
body). A connection handler thread per client keeps slow readers from
blocking each other; all real state lives in the (thread-safe) service.

Requests are ``{"type": ..., "protocol_version": 1, ...}``; responses
are ``{"type": "response", "ok": true, ...}`` or ``{"type": "response",
"ok": false, "error": ..., "kind": ...}`` where ``kind`` names the error
class (``admission``, ``unknown-run``, ``bad-request``) so clients can
react without parsing prose. (The frame codec requires every payload to
be a *typed* object, hence the constant ``type`` on responses.)

Request types::

    ping     -> {ok}
    submit   {config, backend?, jobs?}        -> {ok, run, coalesced}
    status   {run_id}                         -> {ok, run}
    runs     {}                               -> {ok, runs: [...]}
    results  {run_id, offset?, limit?}        -> {ok, ...paged payload}
    stats    {}                               -> {ok, stats}
    drain    {timeout?}                       -> {ok, drained}

Connections are serial per client (request, response, repeat), exactly
like the worker protocol — no pipelining, no partial responses.
"""

from __future__ import annotations

import socket
import threading

from ..cluster.protocol import ConnectionClosed, ProtocolError, recv_message, send_message
from .service import AdmissionError, ScanService, ServiceError, UnknownRunError

__all__ = ["SERVICE_PROTOCOL_VERSION", "ServiceServer"]

#: framed-request schema version; bumped on incompatible change.
SERVICE_PROTOCOL_VERSION = 1


class ServiceServer:
    """Serve a :class:`ScanService` on a TCP address.

    ``host``/``port`` default to an ephemeral loopback port (the bound
    address is ``self.address`` after :meth:`start`). The server owns
    only transport state; stopping it leaves the service running.
    """

    def __init__(self, service: ScanService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._host = host
        self._port = port
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self.address: tuple[str, int] | None = None

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(32)
        self._sock = sock
        self.address = sock.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="scan-service-accept", daemon=True
        )
        self._accept_thread.start()

    def stop(self) -> None:
        """Stop accepting and close the listener; in-flight handlers
        finish their current request and exit on the next read."""
        self._stopping.set()
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        if self._accept_thread is not None:
            self._accept_thread.join(5.0)
            self._accept_thread = None
        for thread in self._conn_threads:
            thread.join(5.0)
        self._conn_threads = [t for t in self._conn_threads if t.is_alive()]

    # -- transport -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            sock = self._sock
            if sock is None:
                return
            try:
                conn, _addr = sock.accept()
            except OSError:  # listener closed under us: clean stop
                return
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="scan-service-conn",
                daemon=True,
            )
            thread.start()
            self._conn_threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stopping.is_set():
                try:
                    request = recv_message(conn)
                except (ConnectionClosed, ConnectionError, OSError):
                    return
                except ProtocolError as exc:
                    # unframeable input: answer once, then hang up — the
                    # stream offset is unrecoverable.
                    try:
                        send_message(
                            conn,
                            {
                                "type": "response",
                                "ok": False,
                                "error": str(exc),
                                "kind": "bad-request",
                            },
                        )
                    except OSError:
                        pass
                    return
                response = {"type": "response", **self._dispatch(request)}
                try:
                    send_message(conn, response)
                except (ConnectionError, OSError):
                    return

    # -- request handling ------------------------------------------------

    def _dispatch(self, request: dict) -> dict:
        try:
            return self._handle(request)
        except AdmissionError as exc:
            return {"ok": False, "error": str(exc), "kind": "admission"}
        except UnknownRunError as exc:
            return {"ok": False, "error": str(exc), "kind": "unknown-run"}
        except (ServiceError, ValueError) as exc:
            return {"ok": False, "error": str(exc), "kind": "bad-request"}
        except TimeoutError as exc:
            return {"ok": False, "error": str(exc), "kind": "timeout"}

    def _handle(self, request: dict) -> dict:
        if not isinstance(request, dict):
            raise ServiceError("request is not a JSON object")
        version = request.get("protocol_version", SERVICE_PROTOCOL_VERSION)
        if version != SERVICE_PROTOCOL_VERSION:
            raise ServiceError(
                f"service protocol version mismatch — client speaks {version!r}, "
                f"server speaks v{SERVICE_PROTOCOL_VERSION}"
            )
        kind = request.get("type")
        if kind == "ping":
            return {"ok": True, "protocol_version": SERVICE_PROTOCOL_VERSION}
        if kind == "submit":
            config = request.get("config")
            if not isinstance(config, dict):
                raise ServiceError("submit needs a wire-form 'config' object")
            view, coalesced = self.service.submit(
                config,
                backend=request.get("backend"),
                jobs=int(request.get("jobs", 1)),
            )
            return {"ok": True, "run": view, "coalesced": coalesced}
        if kind == "status":
            return {"ok": True, "run": self.service.status(self._run_id(request))}
        if kind == "wait":
            timeout = request.get("timeout")
            view = self.service.wait(
                self._run_id(request),
                timeout=None if timeout is None else float(timeout),
            )
            return {"ok": True, "run": view}
        if kind == "runs":
            return {"ok": True, "runs": self.service.runs()}
        if kind == "results":
            limit = request.get("limit")
            payload = self.service.results(
                self._run_id(request),
                offset=int(request.get("offset", 0)),
                limit=None if limit is None else int(limit),
            )
            return {"ok": True, **payload}
        if kind == "stats":
            return {"ok": True, "stats": self.service.stats()}
        if kind == "drain":
            timeout = request.get("timeout")
            drained = self.service.drain(
                None if timeout is None else float(timeout)
            )
            return {"ok": True, "drained": drained}
        raise ServiceError(f"unknown request type {kind!r}")

    @staticmethod
    def _run_id(request: dict) -> str:
        run_id = request.get("run_id")
        if not isinstance(run_id, str) or not run_id:
            raise ServiceError("request needs a 'run_id' string")
        return run_id
