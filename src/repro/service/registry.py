"""Durable run registry: one manifest + one ledger per submitted scan.

The scan service namespaces every run under its data directory::

    <data_dir>/runs/<run_id>/run.json        # manifest (this module)
    <data_dir>/runs/<run_id>/ledger.jsonl    # repro.runtime.RunLedger

The **run id is the config digest**: ``run-<sha256(config_to_wire)[:16]>``.
Two submissions of the same (seed, scale, shards, thresholds, ...) name
the same run by construction, which is what lets the service coalesce
duplicates onto the in-flight or completed run instead of scanning
twice — and what makes restart adoption unambiguous: a directory on disk
*is* the run, whatever process wrote it.

Manifests are plain JSON written atomically (tmp + ``os.replace``), so a
kill mid-transition leaves the previous manifest, never a torn one. The
ledger — not the manifest — is the source of truth for completion: a
manifest that says ``running`` next to a complete ledger simply means
the service died between the last shard landing and the state flip, and
adoption reclassifies it from the ledger bytes.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..engine.wire import config_digest, config_to_wire

__all__ = [
    "MANIFEST_VERSION",
    "RUN_STATES",
    "RunRecord",
    "RunRegistry",
    "run_id_for",
]

#: manifest schema version; readers reject anything newer.
MANIFEST_VERSION = 1

#: every state a run moves through::
#:
#:     queued ──▶ running ──▶ completed
#:       ▲           │
#:       │           └──▶ failed ──(resubmit)──▶ queued
#:     resuming  (restart adoption of an incomplete ledger)
RUN_STATES = ("queued", "resuming", "running", "completed", "failed")

#: states in which a duplicate submission coalesces instead of enqueueing.
COALESCE_STATES = ("queued", "resuming", "running", "completed")


def run_id_for(config) -> str:
    """Derive the deterministic run id from a scan config's identity."""
    return f"run-{config_digest(config)[:16]}"


@dataclass(slots=True)
class RunRecord:
    """One run's manifest: identity, lifecycle, and completion summary."""

    run_id: str
    #: the scan config in wire form (:func:`repro.engine.wire.config_to_wire`).
    config: dict
    config_digest: str
    state: str = "queued"
    backend: str = "batch"
    #: local execution parallelism for the batch/stream backends
    #: (identity-irrelevant, like ``WildScanConfig.jobs``).
    jobs: int = 1
    #: resolved at execution time (``None`` until the run first starts).
    shard_count: int | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: the run re-entered the queue from a restart's ledger adoption.
    adopted: bool = False
    #: warm-entity cache accounting for this run's world builds.
    warm_hits: int = 0
    warm_misses: int = 0
    #: shards loaded from the journal vs. freshly executed.
    shards_resumed: int = 0
    shards_recorded: int = 0
    #: completion summary: totals and Table-V rows, servable without
    #: decoding the ledger (``None`` until completed).
    summary: dict | None = None

    def to_dict(self) -> dict:
        return {
            "manifest_version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "config": self.config,
            "config_digest": self.config_digest,
            "state": self.state,
            "backend": self.backend,
            "jobs": self.jobs,
            "shard_count": self.shard_count,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "adopted": self.adopted,
            "warm_hits": self.warm_hits,
            "warm_misses": self.warm_misses,
            "shards_resumed": self.shards_resumed,
            "shards_recorded": self.shards_recorded,
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        if not isinstance(payload, dict):
            raise ValueError("run manifest is not a JSON object")
        version = payload.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"run manifest version mismatch — file says {version!r}, "
                f"this build speaks v{MANIFEST_VERSION}"
            )
        known = {f for f in cls.__dataclass_fields__}
        fields = {k: v for k, v in payload.items() if k != "manifest_version"}
        unknown = sorted(set(fields) - known)
        if unknown:
            raise ValueError(f"run manifest has unknown field(s) {unknown}")
        missing = sorted(known - set(fields))
        if missing:
            raise ValueError(f"run manifest is missing field(s) {missing}")
        record = cls(**fields)
        if record.state not in RUN_STATES:
            raise ValueError(f"run manifest names unknown state {record.state!r}")
        return record


class RunRegistry:
    """Filesystem layout + manifest persistence for the scan service.

    Pure mechanism: directory naming, atomic manifest writes, and
    load-all for restart adoption. Policy — state machines, queues,
    dedup — lives in :class:`repro.service.service.ScanService`, which
    serializes access; the registry itself holds no lock.
    """

    def __init__(self, data_dir) -> None:
        self.data_dir = Path(data_dir)
        self.runs_dir = self.data_dir / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    # -- layout ----------------------------------------------------------

    def run_dir(self, run_id: str) -> Path:
        return self.runs_dir / run_id

    def manifest_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "run.json"

    def ledger_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "ledger.jsonl"

    # -- persistence -----------------------------------------------------

    def create(self, config, *, backend: str = "batch", jobs: int = 1) -> RunRecord:
        """Materialize a fresh run record (and its directory) for ``config``."""
        wire = config_to_wire(config)
        digest = config_digest(config)
        record = RunRecord(
            run_id=run_id_for(config),
            config=wire,
            config_digest=digest,
            backend=backend,
            jobs=jobs,
        )
        self.save(record)
        return record

    def save(self, record: RunRecord) -> None:
        """Write the manifest atomically (tmp + rename)."""
        directory = self.run_dir(record.run_id)
        directory.mkdir(parents=True, exist_ok=True)
        path = self.manifest_path(record.run_id)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(record.to_dict(), handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def load(self, run_id: str) -> RunRecord:
        path = self.manifest_path(run_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise KeyError(f"no run manifest at {path}") from None
        return RunRecord.from_dict(payload)

    def load_all(self) -> dict[str, RunRecord]:
        """Every persisted run, by id (restart adoption's raw material).

        Directories without a readable manifest are skipped, not fatal:
        a kill between ``mkdir`` and the first manifest write leaves an
        empty shell that the next submission of the same config reuses.
        """
        records: dict[str, RunRecord] = {}
        for directory in sorted(self.runs_dir.iterdir()):
            if not directory.is_dir():
                continue
            try:
                record = self.load(directory.name)
            except (KeyError, ValueError, json.JSONDecodeError):
                continue
            if record.run_id == directory.name:
                records[record.run_id] = record
        return records
