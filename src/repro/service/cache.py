"""TTL + LRU caches for the scan service's warm entities.

A long-lived service keeps hot state resident between requests — shard
context snapshots so back-to-back runs skip world rebuilds, and merged
scan results so paged fetches decode each completed ledger once. Both
tiers want the same policy: entries expire after a TTL (a world nobody
has asked about in minutes should not pin memory forever) and the store
is bounded (inserting over capacity evicts the least recently used
entry).

:class:`TTLCache` is that policy, deliberately tiny and dependency-free:
an ``OrderedDict`` in recency order plus per-entry deadlines. The clock
is injectable so tests drive expiry deterministically instead of
sleeping. All operations are O(1) except :meth:`purge`, which is O(n)
over expired entries only. The cache is thread-safe — the service reads
it from executor threads while the server mutates it from connection
handlers.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

__all__ = ["TTLCache"]


class TTLCache:
    """A bounded mapping with TTL expiry and LRU eviction.

    ``ttl`` is seconds until an entry expires (``None`` disables expiry:
    pure LRU); ``max_entries`` bounds residency. ``clock`` must be a
    monotonic float source (``time.monotonic`` by default; tests inject
    a fake). A :meth:`get` of a live entry refreshes its recency but not
    its deadline — TTL measures time since the entry was *stored*, so a
    steadily re-read entry still refreshes eventually unless re-``put``.
    """

    def __init__(
        self,
        max_entries: int = 64,
        ttl: float | None = None,
        *,
        clock=time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be > 0 (or None), got {ttl}")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (value, deadline-or-None), in recency order (LRU first).
        self._entries: "OrderedDict[object, tuple[object, float | None]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    # -- core ------------------------------------------------------------

    def get(self, key, default=None):
        """The live value for ``key`` (recency refreshed), else ``default``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return default
            value, deadline = entry
            if deadline is not None and self._clock() >= deadline:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        """Store ``key`` (resetting its TTL deadline), evicting LRU overflow."""
        with self._lock:
            deadline = None if self.ttl is None else self._clock() + self.ttl
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, deadline)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def pop(self, key, default=None):
        """Remove and return ``key``'s value (expired entries count as absent).

        ``pop`` is a lookup and is accounted like one, so the invariant
        ``hits + misses == lookups`` holds across ``get`` *and* ``pop``:
        a live pop is a hit, an absent key is a miss, and an expired
        entry is an expiration *and* a miss (it was absent as far as the
        caller can tell).
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                self.misses += 1
                return default
            value, deadline = entry
            if deadline is not None and self._clock() >= deadline:
                self.expirations += 1
                self.misses += 1
                return default
            self.hits += 1
            return value

    def __contains__(self, key) -> bool:
        """Live membership — a pure read.

        Counts toward no statistic and never mutates the store: an
        expired-but-resident entry merely reads as absent here and stays
        put until :meth:`purge`, :meth:`get` or :meth:`pop` removes it.
        A membership probe that silently dropped entries would make
        ``in`` racy against a concurrent ``get`` and skew the
        expiration counter double-counting the same entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            _, deadline = entry
            if deadline is not None and self._clock() >= deadline:
                return False
            return True

    def __len__(self) -> int:
        """Resident entry count, including not-yet-purged expired entries."""
        with self._lock:
            return len(self._entries)

    # -- maintenance -----------------------------------------------------

    def purge(self) -> int:
        """Drop every expired entry now; returns how many were dropped."""
        with self._lock:
            if self.ttl is None:
                return 0
            now = self._clock()
            stale = [
                key
                for key, (_, deadline) in self._entries.items()
                if deadline is not None and now >= deadline
            ]
            for key in stale:
                del self._entries[key]
            self.expirations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list:
        """Resident keys in recency order (LRU first), liveness unchecked."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_s": self.ttl,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }
